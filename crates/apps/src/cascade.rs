//! Viola–Jones-style attentional decision cascade.
//!
//! The paper cites decision cascades in machine learning (Viola & Jones
//! 2001) as an irregular streaming workload: a stream of candidate
//! windows flows through increasingly expensive classifier stages, each
//! of which rejects most of its input, so data volume collapses as
//! compute-per-item grows.
//!
//! The cascade here is a real (if miniature) one: each window carries a
//! feature vector; stage `i` computes a linear score over a prefix of
//! the features and passes the window iff the score clears the stage
//! threshold. Thresholds are chosen from a calibration sample to hit
//! configured per-stage pass rates, then gains are *measured* on fresh
//! data — the same calibrate-then-measure flow a production cascade
//! uses.

use dataflow_model::{GainModel, ModelError, PipelineSpec, PipelineSpecBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A candidate window: a small feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Feature values.
    pub features: Vec<f64>,
    /// Whether the window truly contains the object (drives feature
    /// distribution; the cascade never sees this).
    pub positive: bool,
}

/// Cascade parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CascadeConfig {
    /// Features per window.
    pub features: usize,
    /// Fraction of windows that truly contain the object.
    pub positive_fraction: f64,
    /// Target pass rate of each stage (length = number of stages).
    pub stage_pass_rates: Vec<f64>,
    /// Per-stage service times (cycles under the 1/N share); later
    /// stages use more features and cost more.
    pub service_times: Vec<f64>,
    /// Calibration + measurement sample sizes.
    pub samples: usize,
    /// SIMD width.
    pub vector_width: u32,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            features: 16,
            positive_fraction: 0.02,
            stage_pass_rates: vec![0.4, 0.25, 0.15],
            service_times: vec![150.0, 480.0, 1_900.0],
            samples: 30_000,
            vector_width: 128,
        }
    }
}

/// A calibrated cascade: per-stage thresholds over growing feature
/// prefixes.
#[derive(Debug, Clone)]
pub struct Cascade {
    thresholds: Vec<f64>,
    prefix_lens: Vec<usize>,
}

/// Generate one window. Positives have shifted feature means, which is
/// what gives later stages discriminative power.
pub fn synth_window<R: Rng + ?Sized>(config: &CascadeConfig, rng: &mut R) -> Window {
    let positive = rng.gen::<f64>() < config.positive_fraction;
    let shift = if positive { 0.8 } else { 0.0 };
    let features = (0..config.features)
        .map(|_| {
            // Approximately normal via the sum of uniforms.
            let u: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() - 2.0;
            u + shift
        })
        .collect();
    Window { features, positive }
}

impl Cascade {
    /// Calibrate stage thresholds on `config.samples` windows so each
    /// stage passes its configured fraction *of its own input*.
    pub fn calibrate<R: Rng + ?Sized>(config: &CascadeConfig, rng: &mut R) -> Self {
        let stages = config.stage_pass_rates.len();
        let prefix_lens: Vec<usize> = (0..stages)
            .map(|i| ((i + 1) * config.features / stages).max(1))
            .collect();
        let mut pool: Vec<Window> = (0..config.samples)
            .map(|_| synth_window(config, rng))
            .collect();
        let mut thresholds = Vec::with_capacity(stages);
        for (i, &rate) in config.stage_pass_rates.iter().enumerate() {
            let mut scores: Vec<f64> = pool
                .iter()
                .map(|w| stage_score(w, prefix_lens[i]))
                .collect();
            scores.sort_by(f64::total_cmp);
            let cut_idx = ((1.0 - rate) * scores.len() as f64) as usize;
            let threshold = scores[cut_idx.min(scores.len() - 1)];
            thresholds.push(threshold);
            // Only survivors reach the next stage's calibration.
            pool.retain(|w| stage_score(w, prefix_lens[i]) >= threshold);
            if pool.is_empty() {
                // Degenerate calibration: keep remaining thresholds at 0.
                thresholds.resize(stages, 0.0);
                break;
            }
        }
        thresholds.resize(stages.max(thresholds.len()), 0.0);
        Cascade {
            thresholds,
            prefix_lens,
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.thresholds.len()
    }

    /// Does `window` pass stage `i`?
    pub fn pass(&self, window: &Window, stage: usize) -> bool {
        stage_score(window, self.prefix_lens[stage]) >= self.thresholds[stage]
    }

    /// Run the whole cascade; returns the index of the rejecting stage,
    /// or `None` if the window survives everything (a detection).
    pub fn run(&self, window: &Window) -> Option<usize> {
        (0..self.stages()).find(|&i| !self.pass(window, i))
    }
}

/// Stage score: mean of the first `prefix` features.
fn stage_score(window: &Window, prefix: usize) -> f64 {
    let p = prefix.min(window.features.len()).max(1);
    window.features[..p].iter().sum::<f64>() / p as f64
}

/// Measure per-stage pass rates on fresh windows and assemble the
/// pipeline (each classifier stage is Bernoulli; a final deterministic
/// reporting stage emits detections).
pub fn synthesize(config: &CascadeConfig, seed: u64) -> Result<PipelineSpec, ModelError> {
    assert_eq!(
        config.stage_pass_rates.len(),
        config.service_times.len(),
        "one service time per cascade stage"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let cascade = Cascade::calibrate(config, &mut rng);

    // Fresh data for measurement.
    let mut reached = vec![0u64; cascade.stages()];
    let mut passed = vec![0u64; cascade.stages()];
    for _ in 0..config.samples {
        let w = synth_window(config, &mut rng);
        for i in 0..cascade.stages() {
            reached[i] += 1;
            if cascade.pass(&w, i) {
                passed[i] += 1;
            } else {
                break;
            }
        }
    }

    let mut builder = PipelineSpecBuilder::new(config.vector_width);
    for i in 0..cascade.stages() {
        let p = if reached[i] == 0 {
            0.0
        } else {
            passed[i] as f64 / reached[i] as f64
        };
        builder = builder.stage(
            format!("classifier-{i}"),
            config.service_times[i],
            GainModel::Bernoulli { p },
        );
    }
    builder
        .stage("report", 300.0, GainModel::Deterministic { k: 1 })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_target_pass_rates() {
        let config = CascadeConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let cascade = Cascade::calibrate(&config, &mut rng);
        // Measure stage-0 pass rate on fresh data.
        let n = 20_000;
        let passed = (0..n)
            .filter(|_| cascade.pass(&synth_window(&config, &mut rng), 0))
            .count();
        let rate = passed as f64 / n as f64;
        assert!((rate - 0.4).abs() < 0.03, "stage-0 pass rate {rate}");
    }

    #[test]
    fn positives_survive_more_often() {
        let config = CascadeConfig {
            positive_fraction: 0.5,
            ..CascadeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let cascade = Cascade::calibrate(&config, &mut rng);
        let n = 10_000;
        let mut pos_detect = 0u32;
        let mut neg_detect = 0u32;
        let mut pos = 0u32;
        let mut neg = 0u32;
        for _ in 0..n {
            let w = synth_window(&config, &mut rng);
            let detected = cascade.run(&w).is_none();
            if w.positive {
                pos += 1;
                pos_detect += detected as u32;
            } else {
                neg += 1;
                neg_detect += detected as u32;
            }
        }
        let pos_rate = pos_detect as f64 / pos.max(1) as f64;
        let neg_rate = neg_detect as f64 / neg.max(1) as f64;
        assert!(
            pos_rate > 3.0 * neg_rate,
            "detection rates: positive {pos_rate}, negative {neg_rate}"
        );
    }

    #[test]
    fn run_reports_rejecting_stage() {
        let config = CascadeConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let cascade = Cascade::calibrate(&config, &mut rng);
        let w = synth_window(&config, &mut rng);
        match cascade.run(&w) {
            Some(stage) => {
                assert!(stage < cascade.stages());
                assert!(!cascade.pass(&w, stage));
                for earlier in 0..stage {
                    assert!(cascade.pass(&w, earlier));
                }
            }
            None => {
                for i in 0..cascade.stages() {
                    assert!(cascade.pass(&w, i));
                }
            }
        }
    }

    #[test]
    fn synthesized_pipeline_attenuates_stage_over_stage() {
        let p = synthesize(&CascadeConfig::default(), 4).unwrap();
        assert_eq!(p.len(), 4); // 3 classifiers + report
        let g = p.mean_gains();
        assert!((g[0] - 0.4).abs() < 0.05, "g0 = {}", g[0]);
        // Later stages pass conditioned on earlier survival; measured
        // conditional rates should be near the calibration targets.
        assert!(g[1] < 0.6 && g[1] > 0.05, "g1 = {}", g[1]);
        assert!(g[2] < 0.6, "g2 = {}", g[2]);
        // Total survival is tiny.
        assert!(p.total_gains()[3] < 0.05, "{:?}", p.total_gains());
    }

    #[test]
    #[should_panic(expected = "one service time per cascade stage")]
    fn mismatched_config_panics() {
        let config = CascadeConfig {
            service_times: vec![1.0],
            ..CascadeConfig::default()
        };
        let _ = synthesize(&config, 0);
    }
}
