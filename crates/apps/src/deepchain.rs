//! Synthetic deep pipeline chains for solver scaling studies.
//!
//! The paper's measured workloads are 3–5 stages deep, but the
//! scheduling machinery is built for pipelines orders of magnitude
//! deeper — micro-service meshes, compiler pass stacks, deep packet
//! inspection cascades. This module synthesizes a deterministic
//! `N`-stage chain whose enforced-waits design problem has an exactly
//! tridiagonal KKT structure, so it exercises the banded interior-point
//! path end to end: stage `i` costs `base_service + service_step·i`
//! cycles and passes each item independently with probability
//! `pass_rate` (a Bernoulli gain), giving smooth geometric attenuation
//! down the chain.
//!
//! Synthesis takes no RNG: the spec is a pure function of the config,
//! so `--workload deepchain:N` runs (and the `solver_deep` bench built
//! on them) are reproducible across machines by construction.

use dataflow_model::{GainModel, ModelError, PipelineSpec, PipelineSpecBuilder};
use serde::{Deserialize, Serialize};

/// Deep-chain parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeepChainConfig {
    /// Number of pipeline stages (`N`).
    pub stages: usize,
    /// Service time of stage 0, in cycles under the 1/N share.
    pub base_service: f64,
    /// Per-stage service-time increment: stage `i` costs
    /// `base_service + service_step·i`. A nonzero step keeps the
    /// water-filling levels distinct so deep solves don't degenerate
    /// into one flat tier.
    pub service_step: f64,
    /// Bernoulli pass probability of every stage.
    pub pass_rate: f64,
    /// SIMD width.
    pub vector_width: u32,
}

impl Default for DeepChainConfig {
    fn default() -> Self {
        DeepChainConfig {
            stages: 128,
            base_service: 100.0,
            service_step: 1.0,
            pass_rate: 0.9,
            vector_width: 128,
        }
    }
}

/// Build the deterministic deep chain described by `config`.
pub fn synthesize(config: &DeepChainConfig) -> Result<PipelineSpec, ModelError> {
    let mut builder = PipelineSpecBuilder::new(config.vector_width);
    for i in 0..config.stages {
        builder = builder.stage(
            format!("s{i}"),
            config.base_service + config.service_step * i as f64,
            GainModel::Bernoulli {
                p: config.pass_rate,
            },
        );
    }
    builder.build()
}

/// An `n`-stage chain with the default service/gain profile — the shape
/// the `solver_deep` bench and the `deepchain:N` CLI workload use.
pub fn deep_chain(n: usize) -> Result<PipelineSpec, ModelError> {
    synthesize(&DeepChainConfig {
        stages: n,
        ..DeepChainConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic_and_sized() {
        let a = deep_chain(512).unwrap();
        let b = deep_chain(512).unwrap();
        assert_eq!(a.len(), 512);
        assert_eq!(a.service_times(), b.service_times());
        assert_eq!(a.service_times()[0], 100.0);
        assert_eq!(a.service_times()[511], 611.0);
        for g in a.mean_gains() {
            assert!((g - 0.9).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_stage_chain_is_a_model_error() {
        assert!(deep_chain(0).is_err());
    }

    #[test]
    fn deep_chain_is_schedulable_with_banded_interior_point() {
        use dataflow_model::RtParams;
        use rtsdf_core::{minimal_periods, EnforcedWaitsProblem, SolveMethod};

        let p = deep_chain(128).unwrap();
        let b = EnforcedWaitsProblem::optimistic_backlog(&p);
        let min_d: f64 = minimal_periods(&p)
            .iter()
            .zip(&b)
            .map(|(x, bi)| x * bi)
            .sum();
        let params = RtParams::new(5.0, min_d * 2.0).unwrap();
        let s = EnforcedWaitsProblem::new(&p, params, b)
            .solve(SolveMethod::InteriorPoint)
            .unwrap();
        let t = s.telemetry.expect("telemetry");
        assert_eq!(t.factorization.as_deref(), Some("banded"));
        assert_eq!(t.bandwidth, Some(1));
        assert!(s.active_fraction > 0.0 && s.active_fraction <= 1.0);
    }
}
