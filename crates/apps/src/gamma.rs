//! Gamma-ray burst detection pipeline.
//!
//! Modeled after the processing chain of an orbiting gamma-ray
//! telescope (the paper cites the Advanced Particle-astrophysics
//! Telescope): each incoming photon event must be processed within a
//! bounded latency so that a detected burst can be relayed to
//! ground-based instruments while the burst is still observable.
//!
//! Stages:
//!
//! 0. **hit filter** — reject noise hits below an energy threshold
//!    (attenuating, Bernoulli-like);
//! 1. **pair split** — a photon converting in the tracker produces a
//!    variable number of track-segment candidates (expanding);
//! 2. **track cut** — geometric quality cut on candidates (strongly
//!    attenuating);
//! 3. **burst update** — update the burst-significance accumulator
//!    (deterministic).

use dataflow_model::{GainModel, ModelError, PipelineSpec, PipelineSpecBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One detector event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhotonEvent {
    /// Deposited energy (MeV).
    pub energy: f64,
    /// Conversion depth in the tracker (layers).
    pub depth: u32,
    /// Incidence angle (radians, 0 = normal).
    pub angle: f64,
}

/// Synthetic-workload and pipeline parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GammaConfig {
    /// Fraction of events that are instrument noise.
    pub noise_fraction: f64,
    /// Energy threshold for the hit filter (MeV).
    pub energy_threshold: f64,
    /// Maximum track-segment candidates one conversion can spawn.
    pub max_segments: u32,
    /// Track quality-cut acceptance steepness.
    pub quality_cut: f64,
    /// Events used to measure the gain distributions.
    pub events: usize,
    /// Per-stage service times (cycles under the 1/N share); these play
    /// the role of the paper's hardware-measured `t_i`.
    pub service_times: [f64; 4],
    /// SIMD width.
    pub vector_width: u32,
}

impl Default for GammaConfig {
    fn default() -> Self {
        GammaConfig {
            noise_fraction: 0.55,
            energy_threshold: 5.0,
            max_segments: 8,
            quality_cut: 0.15,
            events: 40_000,
            service_times: [120.0, 640.0, 310.0, 980.0],
            vector_width: 128,
        }
    }
}

/// Generate one synthetic event: a mixture of low-energy noise and
/// power-law-distributed photons.
pub fn synth_event<R: Rng + ?Sized>(config: &GammaConfig, rng: &mut R) -> PhotonEvent {
    let is_noise = rng.gen::<f64>() < config.noise_fraction;
    let energy = if is_noise {
        // Noise: soft exponential spectrum well below threshold.
        -2.0 * rng.gen::<f64>().max(1e-12).ln()
    } else {
        // Photons: E ~ 5 / U (a crude power-law tail).
        5.0 / rng.gen::<f64>().max(1e-3)
    };
    PhotonEvent {
        energy,
        depth: rng.gen_range(0..20),
        angle: rng.gen::<f64>() * 1.2,
    }
}

/// Stage 0: energy threshold. `true` keeps the event.
pub fn hit_filter(config: &GammaConfig, ev: &PhotonEvent) -> bool {
    ev.energy >= config.energy_threshold
}

/// Stage 1: number of track-segment candidates from a conversion.
/// Higher-energy photons converting early in the tracker shower into
/// more candidates.
pub fn pair_split<R: Rng + ?Sized>(config: &GammaConfig, ev: &PhotonEvent, rng: &mut R) -> u32 {
    let expected = 1.0 + (ev.energy / 50.0).min(4.0) + (20 - ev.depth) as f64 / 10.0;
    // Poisson-ish via exponential inter-arrival counting.
    let mut count = 0u32;
    let mut acc = 0.0;
    while count < config.max_segments {
        acc += -rng.gen::<f64>().max(1e-12).ln() / expected;
        if acc > 1.0 {
            break;
        }
        count += 1;
    }
    count.max(1)
}

/// Stage 2: geometric quality cut on a candidate. Steep incidence
/// angles fail more often.
pub fn track_cut<R: Rng + ?Sized>(config: &GammaConfig, ev: &PhotonEvent, rng: &mut R) -> bool {
    let p_pass = config.quality_cut * (1.0 - ev.angle / 1.5).max(0.05);
    rng.gen::<f64>() < p_pass
}

/// Measure the gain distributions over a synthetic event stream and
/// assemble the pipeline.
pub fn synthesize(config: &GammaConfig, seed: u64) -> Result<PipelineSpec, ModelError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kept = 0u64;
    let mut split_counts = vec![0u64; config.max_segments as usize + 1];
    let mut split_total = 0u64;
    let mut cut_pass = 0u64;
    let mut cut_total = 0u64;

    for _ in 0..config.events {
        let ev = synth_event(config, &mut rng);
        if !hit_filter(config, &ev) {
            continue;
        }
        kept += 1;
        let segs = pair_split(config, &ev, &mut rng);
        split_counts[segs as usize] += 1;
        split_total += 1;
        for _ in 0..segs {
            cut_total += 1;
            if track_cut(config, &ev, &mut rng) {
                cut_pass += 1;
            }
        }
    }

    let g0 = kept as f64 / config.events.max(1) as f64;
    let pmf: Vec<(u32, f64)> = split_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(k, &c)| (k as u32, c as f64 / split_total.max(1) as f64))
        .collect();
    let total: f64 = pmf.iter().map(|(_, p)| p).sum();
    let pmf: Vec<(u32, f64)> = pmf.into_iter().map(|(k, p)| (k, p / total)).collect();
    let g2 = if cut_total == 0 {
        0.0
    } else {
        cut_pass as f64 / cut_total as f64
    };

    let [t0, t1, t2, t3] = config.service_times;
    PipelineSpecBuilder::new(config.vector_width)
        .stage("hit-filter", t0, GainModel::Bernoulli { p: g0 })
        .stage("pair-split", t1, GainModel::Empirical { pmf })
        .stage("track-cut", t2, GainModel::Bernoulli { p: g2 })
        .stage("burst-update", t3, GainModel::Deterministic { k: 1 })
        .build()
}

/// Like [`synthesize`], but with service times *measured* by running
/// the stage kernels on the simulated SIMT device over the synthetic
/// event stream (instead of taking `config.service_times` on faith).
pub fn synthesize_measured(config: &GammaConfig, seed: u64) -> Result<PipelineSpec, ModelError> {
    use crate::kernels;
    use simd_device::{LaneValue, Machine};

    // Gains exactly as in `synthesize`, but also collect per-event work
    // amounts for the kernels.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut energies: Vec<Vec<LaneValue>> = Vec::new();
    let mut segment_counts: Vec<Vec<LaneValue>> = Vec::new();
    let mut cut_inputs: Vec<Vec<LaneValue>> = Vec::new();
    for _ in 0..config.events.min(8_192) {
        let ev = synth_event(config, &mut rng);
        energies.push(vec![ev.energy as LaneValue + 1]);
        if hit_filter(config, &ev) {
            let segs = pair_split(config, &ev, &mut rng);
            segment_counts.push(vec![segs as LaneValue]);
            for _ in 0..segs {
                cut_inputs.push(vec![(ev.angle * 100.0) as LaneValue + 1]);
            }
        }
    }
    if segment_counts.is_empty() {
        segment_counts.push(vec![1]);
    }
    if cut_inputs.is_empty() {
        cut_inputs.push(vec![1]);
    }

    let machine = Machine::new(config.vector_width);
    let shares = 4;
    let t = [
        kernels::mean_service_time(&machine, &kernels::hit_filter_kernel(), &energies, shares),
        kernels::mean_service_time(
            &machine,
            &kernels::pair_split_kernel(),
            &segment_counts,
            shares,
        ),
        kernels::mean_service_time(&machine, &kernels::track_cut_kernel(), &cut_inputs, shares),
        kernels::mean_service_time(
            &machine,
            &kernels::burst_update_kernel(),
            &cut_inputs,
            shares,
        ),
    ];
    let measured = GammaConfig {
        service_times: [
            t[0].round().max(1.0),
            t[1].round().max(1.0),
            t[2].round().max(1.0),
            t[3].round().max(1.0),
        ],
        ..config.clone()
    };
    synthesize(&measured, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_pipeline_shape() {
        let p = synthesize(&GammaConfig::default(), 7).unwrap();
        assert_eq!(p.len(), 4);
        let g = p.mean_gains();
        // Noise rejection keeps a minority-to-half of events.
        assert!(g[0] > 0.1 && g[0] < 0.7, "g0 = {}", g[0]);
        // Pair conversion expands.
        assert!(g[1] > 1.0 && g[1] <= 8.0, "g1 = {}", g[1]);
        // Quality cut strongly attenuates.
        assert!(g[2] < 0.3, "g2 = {}", g[2]);
        assert_eq!(p.vector_width(), 128);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = synthesize(&GammaConfig::default(), 3).unwrap();
        let b = synthesize(&GammaConfig::default(), 3).unwrap();
        assert_eq!(a.mean_gains(), b.mean_gains());
        let c = synthesize(&GammaConfig::default(), 4).unwrap();
        assert_ne!(a.mean_gains(), c.mean_gains());
    }

    #[test]
    fn hit_filter_threshold() {
        let cfg = GammaConfig::default();
        assert!(hit_filter(
            &cfg,
            &PhotonEvent {
                energy: 5.0,
                depth: 0,
                angle: 0.0
            }
        ));
        assert!(!hit_filter(
            &cfg,
            &PhotonEvent {
                energy: 4.9,
                depth: 0,
                angle: 0.0
            }
        ));
    }

    #[test]
    fn pair_split_bounds() {
        let cfg = GammaConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let ev = synth_event(&cfg, &mut rng);
            let s = pair_split(&cfg, &ev, &mut rng);
            assert!(s >= 1 && s <= cfg.max_segments);
        }
    }

    #[test]
    fn energetic_events_split_more() {
        let cfg = GammaConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let soft = PhotonEvent {
            energy: 6.0,
            depth: 19,
            angle: 0.1,
        };
        let hard = PhotonEvent {
            energy: 300.0,
            depth: 0,
            angle: 0.1,
        };
        let n = 5_000;
        let mean = |ev: &PhotonEvent, rng: &mut StdRng| {
            (0..n)
                .map(|_| pair_split(&cfg, ev, rng) as f64)
                .sum::<f64>()
                / n as f64
        };
        let m_soft = mean(&soft, &mut rng);
        let m_hard = mean(&hard, &mut rng);
        assert!(m_hard > m_soft + 0.5, "soft {m_soft}, hard {m_hard}");
    }

    #[test]
    fn measured_variant_produces_positive_times_and_schedules() {
        let config = GammaConfig {
            events: 4_000,
            ..GammaConfig::default()
        };
        let p = synthesize_measured(&config, 3).unwrap();
        let t = p.service_times();
        assert!(t.iter().all(|&ti| ti >= 1.0), "{t:?}");
        // The split stage loops over segments; it must cost more than
        // the fixed-cost filter stage.
        assert!(t[1] > t[0], "{t:?}");
        // And the whole thing must be schedulable.
        use dataflow_model::RtParams;
        let b: Vec<f64> = p
            .mean_gains()
            .iter()
            .map(|g| (g.ceil() + 1.0).max(2.0))
            .collect();
        let params = RtParams::new(60.0, 1e5).unwrap();
        assert!(rtsdf_core::EnforcedWaitsProblem::new(&p, params, b)
            .solve(rtsdf_core::SolveMethod::WaterFilling)
            .is_ok());
    }

    #[test]
    fn schedulable_with_enforced_waits() {
        // The synthesized pipeline must be usable by the core machinery.
        use dataflow_model::RtParams;
        let p = synthesize(&GammaConfig::default(), 11).unwrap();
        let b: Vec<f64> = p.mean_gains().iter().map(|g| g.ceil().max(1.0)).collect();
        let params = RtParams::new(20.0, 1e5).unwrap();
        let sched = rtsdf_core::EnforcedWaitsProblem::new(&p, params, b)
            .solve(rtsdf_core::SolveMethod::WaterFilling);
        assert!(sched.is_ok(), "{sched:?}");
    }
}
