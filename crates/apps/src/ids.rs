//! Network intrusion detection cascade (Snort-like).
//!
//! The paper's §1 cites network intrusion detection as a canonical
//! irregular streaming workload: every packet must be inspected within
//! a latency budget (before the forwarding decision), but the amount of
//! work per packet is wildly data-dependent.
//!
//! Stages:
//!
//! 0. **header filter** — only packets for monitored ports proceed;
//! 1. **pattern scan** — multi-pattern payload search; each signature
//!    occurrence spawns a rule-evaluation work item (expanding);
//! 2. **rule eval** — full rule predicates (offsets, severity); most
//!    matches are benign (attenuating);
//! 3. **alert** — format and emit the alert (deterministic).

use dataflow_model::{GainModel, ModelError, PipelineSpec, PipelineSpecBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A synthetic packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Destination port.
    pub port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Workload and pipeline parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdsConfig {
    /// Ports the sensor monitors.
    pub monitored_ports: Vec<u16>,
    /// Fraction of traffic addressed to monitored ports.
    pub monitored_fraction: f64,
    /// Payload length (bytes).
    pub payload_len: usize,
    /// Number of signatures in the rule set.
    pub signatures: usize,
    /// Signature length (bytes).
    pub signature_len: usize,
    /// Probability a monitored packet has one signature planted.
    pub attack_fraction: f64,
    /// Maximum matches reported per packet.
    pub max_matches: u32,
    /// Probability a signature match survives full rule evaluation.
    pub rule_severity: f64,
    /// Packets used to measure the gain distributions.
    pub packets: usize,
    /// Per-stage service times (cycles under the 1/N share).
    pub service_times: [f64; 4],
    /// SIMD width.
    pub vector_width: u32,
}

impl Default for IdsConfig {
    fn default() -> Self {
        IdsConfig {
            monitored_ports: vec![80, 443, 22, 25],
            monitored_fraction: 0.45,
            payload_len: 256,
            signatures: 24,
            signature_len: 6,
            attack_fraction: 0.08,
            max_matches: 12,
            rule_severity: 0.1,
            packets: 20_000,
            service_times: [90.0, 1_400.0, 520.0, 760.0],
            vector_width: 128,
        }
    }
}

/// The rule set: signatures to scan for.
#[derive(Debug, Clone)]
pub struct RuleSet {
    signatures: Vec<Vec<u8>>,
}

impl RuleSet {
    /// Generate `config.signatures` random signatures.
    pub fn generate<R: Rng + ?Sized>(config: &IdsConfig, rng: &mut R) -> Self {
        let signatures = (0..config.signatures)
            .map(|_| (0..config.signature_len).map(|_| rng.gen::<u8>()).collect())
            .collect();
        RuleSet { signatures }
    }

    /// The signatures.
    pub fn signatures(&self) -> &[Vec<u8>] {
        &self.signatures
    }

    /// Stage 1: scan a payload for all signature occurrences, capped at
    /// `max_matches`.
    pub fn scan(&self, payload: &[u8], max_matches: u32) -> u32 {
        let mut matches = 0u32;
        for sig in &self.signatures {
            if sig.is_empty() || sig.len() > payload.len() {
                continue;
            }
            for window in payload.windows(sig.len()) {
                if window == sig.as_slice() {
                    matches += 1;
                    if matches == max_matches {
                        return matches;
                    }
                }
            }
        }
        matches
    }
}

/// Generate one synthetic packet, planting a signature with probability
/// `attack_fraction` when the packet is monitored.
pub fn synth_packet<R: Rng + ?Sized>(config: &IdsConfig, rules: &RuleSet, rng: &mut R) -> Packet {
    let port = if rng.gen::<f64>() < config.monitored_fraction {
        config.monitored_ports[rng.gen_range(0..config.monitored_ports.len())]
    } else {
        rng.gen_range(1024..u16::MAX)
    };
    let mut payload: Vec<u8> = (0..config.payload_len).map(|_| rng.gen()).collect();
    if config.monitored_ports.contains(&port) && rng.gen::<f64>() < config.attack_fraction {
        let sig = &rules.signatures()[rng.gen_range(0..rules.signatures().len())];
        let at = rng.gen_range(0..payload.len() - sig.len());
        payload[at..at + sig.len()].copy_from_slice(sig);
    }
    Packet { port, payload }
}

/// Stage 0: header filter.
pub fn header_filter(config: &IdsConfig, packet: &Packet) -> bool {
    config.monitored_ports.contains(&packet.port)
}

/// Measure the cascade's gains over synthetic traffic and assemble the
/// pipeline.
pub fn synthesize(config: &IdsConfig, seed: u64) -> Result<PipelineSpec, ModelError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rules = RuleSet::generate(config, &mut rng);

    let mut passed_header = 0u64;
    let mut match_counts = vec![0u64; config.max_matches as usize + 1];
    let mut match_total = 0u64;
    let mut rule_pass = 0u64;
    let mut rule_total = 0u64;

    for _ in 0..config.packets {
        let pkt = synth_packet(config, &rules, &mut rng);
        if !header_filter(config, &pkt) {
            continue;
        }
        passed_header += 1;
        let matches = rules.scan(&pkt.payload, config.max_matches);
        match_counts[matches as usize] += 1;
        match_total += 1;
        for _ in 0..matches {
            rule_total += 1;
            if rng.gen::<f64>() < config.rule_severity {
                rule_pass += 1;
            }
        }
    }

    let g0 = passed_header as f64 / config.packets.max(1) as f64;
    let pmf_raw: Vec<(u32, f64)> = match_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(k, &c)| (k as u32, c as f64 / match_total.max(1) as f64))
        .collect();
    let total: f64 = pmf_raw.iter().map(|(_, p)| p).sum();
    let pmf: Vec<(u32, f64)> = pmf_raw.into_iter().map(|(k, p)| (k, p / total)).collect();
    let g2 = if rule_total == 0 {
        0.0
    } else {
        rule_pass as f64 / rule_total as f64
    };

    let [t0, t1, t2, t3] = config.service_times;
    PipelineSpecBuilder::new(config.vector_width)
        .stage("header-filter", t0, GainModel::Bernoulli { p: g0 })
        .stage("pattern-scan", t1, GainModel::Empirical { pmf })
        .stage("rule-eval", t2, GainModel::Bernoulli { p: g2 })
        .stage("alert", t3, GainModel::Deterministic { k: 1 })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finds_planted_signature() {
        let config = IdsConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let rules = RuleSet::generate(&config, &mut rng);
        let mut payload = vec![0u8; 100];
        let sig = rules.signatures()[0].clone();
        payload[40..40 + sig.len()].copy_from_slice(&sig);
        assert!(rules.scan(&payload, 12) >= 1);
    }

    #[test]
    fn scan_respects_cap() {
        let config = IdsConfig {
            signature_len: 2,
            ..IdsConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let rules = RuleSet::generate(&config, &mut rng);
        // Payload = first signature repeated: many overlapping matches.
        let sig = rules.signatures()[0].clone();
        let payload: Vec<u8> = sig.iter().copied().cycle().take(200).collect();
        assert_eq!(rules.scan(&payload, 5), 5);
    }

    #[test]
    fn scan_empty_edge_cases() {
        let config = IdsConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        let rules = RuleSet::generate(&config, &mut rng);
        assert_eq!(rules.scan(&[], 12), 0);
        assert_eq!(
            rules.scan(&[1, 2, 3], 12),
            0,
            "payload shorter than signatures"
        );
    }

    #[test]
    fn header_filter_ports() {
        let config = IdsConfig::default();
        assert!(header_filter(
            &config,
            &Packet {
                port: 443,
                payload: vec![]
            }
        ));
        assert!(!header_filter(
            &config,
            &Packet {
                port: 5_000,
                payload: vec![]
            }
        ));
    }

    #[test]
    fn synthesized_pipeline_shape() {
        let p = synthesize(&IdsConfig::default(), 1).unwrap();
        assert_eq!(p.len(), 4);
        let g = p.mean_gains();
        // Header filter keeps roughly the monitored fraction.
        assert!((g[0] - 0.45).abs() < 0.05, "g0 = {}", g[0]);
        // Pattern scan gain is small but positive (attacks are rare, so
        // this stage attenuates on average despite its expansion cap).
        assert!(g[1] > 0.0 && g[1] < 2.0, "g1 = {}", g[1]);
        // Rule evaluation attenuates further.
        assert!(g[2] <= 0.3, "g2 = {}", g[2]);
    }

    #[test]
    fn more_attacks_more_scan_gain() {
        let quiet = synthesize(
            &IdsConfig {
                attack_fraction: 0.01,
                ..IdsConfig::default()
            },
            2,
        )
        .unwrap();
        let noisy = synthesize(
            &IdsConfig {
                attack_fraction: 0.5,
                ..IdsConfig::default()
            },
            2,
        )
        .unwrap();
        assert!(
            noisy.mean_gains()[1] > quiet.mean_gains()[1],
            "quiet {} vs noisy {}",
            quiet.mean_gains()[1],
            noisy.mean_gains()[1]
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = synthesize(&IdsConfig::default(), 9).unwrap();
        let b = synthesize(&IdsConfig::default(), 9).unwrap();
        assert_eq!(a.mean_gains(), b.mean_gains());
    }
}
