//! SIMT kernels for the bundled applications.
//!
//! The BLAST crate measures its Table-1 service times by running stage
//! kernels on the simulated device; this module does the same for the
//! gamma-ray pipeline so that an `apps` pipeline can also be built with
//! *measured* rather than assumed service times. Instruction mixes
//! mirror each stage's real work: thresholding is a short ALU sequence,
//! pair splitting loops over candidate segments, the quality cut reloads
//! geometry, and the burst update maintains a windowed accumulator.

use simd_device::machine::AluFn;
use simd_device::{LaneValue, Machine, Op, Program};

/// Stage 0: energy threshold test (compare + predicated flag write).
pub fn hit_filter_kernel() -> Program {
    Program {
        registers: 4,
        ops: vec![
            Op::Load {
                dst: 1,
                addr: 0,
                cycles: 10,
            },
            Op::Alu {
                dst: 2,
                a: 1,
                b: 0,
                f: AluFn::CmpLt,
                cycles: 5,
            },
            Op::Alu {
                dst: 3,
                a: 2,
                b: 2,
                f: AluFn::Max,
                cycles: 5,
            },
            Op::Alu {
                dst: 3,
                a: 3,
                b: 1,
                f: AluFn::And,
                cycles: 5,
            },
        ],
    }
}

/// Stage 1: shower reconstruction — lane register 0 carries the number
/// of track-segment candidates; each loop trip fits one segment.
pub fn pair_split_kernel() -> Program {
    Program {
        registers: 5,
        ops: vec![
            Op::SetImm {
                dst: 1,
                value: 1,
                cycles: 2,
            },
            Op::Load {
                dst: 2,
                addr: 0,
                cycles: 14,
            },
            Op::While {
                cond: 0,
                body: vec![
                    Op::Load {
                        dst: 3,
                        addr: 2,
                        cycles: 10,
                    },
                    Op::Alu {
                        dst: 4,
                        a: 3,
                        b: 2,
                        f: AluFn::Add,
                        cycles: 6,
                    },
                    Op::Alu {
                        dst: 4,
                        a: 4,
                        b: 3,
                        f: AluFn::Max,
                        cycles: 6,
                    },
                    Op::Alu {
                        dst: 0,
                        a: 0,
                        b: 1,
                        f: AluFn::Sub,
                        cycles: 4,
                    },
                ],
                max_iters: 64,
            },
        ],
    }
}

/// Stage 2: geometric quality cut — angle reload + a few trig-ish ALU
/// steps + threshold.
pub fn track_cut_kernel() -> Program {
    Program {
        registers: 5,
        ops: vec![
            Op::Load {
                dst: 1,
                addr: 0,
                cycles: 14,
            },
            Op::Alu {
                dst: 2,
                a: 1,
                b: 1,
                f: AluFn::Mul,
                cycles: 8,
            },
            Op::Alu {
                dst: 3,
                a: 2,
                b: 1,
                f: AluFn::Add,
                cycles: 8,
            },
            Op::Alu {
                dst: 3,
                a: 3,
                b: 2,
                f: AluFn::Mod,
                cycles: 10,
            },
            Op::Alu {
                dst: 4,
                a: 3,
                b: 1,
                f: AluFn::CmpLt,
                cycles: 8,
            },
        ],
    }
}

/// Stage 3: burst-significance update — windowed accumulator with a
/// fixed small loop (time bins).
pub fn burst_update_kernel() -> Program {
    Program {
        registers: 5,
        ops: vec![
            Op::SetImm {
                dst: 0,
                value: 16,
                cycles: 2,
            },
            Op::SetImm {
                dst: 1,
                value: 1,
                cycles: 2,
            },
            Op::While {
                cond: 0,
                body: vec![
                    Op::Load {
                        dst: 2,
                        addr: 0,
                        cycles: 6,
                    },
                    Op::Alu {
                        dst: 3,
                        a: 3,
                        b: 2,
                        f: AluFn::Add,
                        cycles: 4,
                    },
                    Op::Alu {
                        dst: 0,
                        a: 0,
                        b: 1,
                        f: AluFn::Sub,
                        cycles: 3,
                    },
                ],
                max_iters: 64,
            },
            Op::Alu {
                dst: 4,
                a: 3,
                b: 1,
                f: AluFn::Max,
                cycles: 6,
            },
        ],
    }
}

/// Measure the mean wall-clock service time of `program` under a `1/N`
/// share, over batches of the given per-lane inputs.
pub fn mean_service_time(
    machine: &Machine,
    program: &Program,
    lane_inputs: &[Vec<LaneValue>],
    shares: u32,
) -> f64 {
    assert!(!lane_inputs.is_empty(), "need at least one lane input");
    let width = machine.width() as usize;
    let mut mean = 0.0;
    let mut batches = 0usize;
    for chunk in lane_inputs.chunks(width) {
        let (_, stats) = machine.run(program, chunk);
        batches += 1;
        mean += (stats.cycles as f64 * shares as f64 - mean) / batches as f64;
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_and_cut_costs_are_data_independent() {
        let m = Machine::new(64);
        for kernel in [hit_filter_kernel(), track_cut_kernel()] {
            let (_, a) = m.run(&kernel, &[vec![1]]);
            let (_, b) = m.run(&kernel, &[vec![999], vec![-5], vec![0]]);
            assert_eq!(a.cycles, b.cycles);
        }
    }

    #[test]
    fn pair_split_cost_scales_with_segments() {
        let m = Machine::new(64);
        let k = pair_split_kernel();
        let (_, one) = m.run(&k, &[vec![1]]);
        let (_, eight) = m.run(&k, &[vec![8]]);
        assert!(eight.cycles > one.cycles);
        // SIMT max-trip semantics.
        let (_, mixed) = m.run(&k, &[vec![1], vec![8], vec![3]]);
        assert_eq!(mixed.cycles, eight.cycles);
    }

    #[test]
    fn burst_update_cost_fixed_by_window() {
        let m = Machine::new(64);
        let k = burst_update_kernel();
        let (_, a) = m.run(&k, &[vec![0]]);
        let (_, b) = m.run(&k, &[vec![7], vec![100]]);
        assert_eq!(a.cycles, b.cycles, "window length is architectural");
    }

    #[test]
    fn mean_service_time_scales_with_shares() {
        let m = Machine::new(64);
        let k = hit_filter_kernel();
        let inputs: Vec<Vec<LaneValue>> = (0..100).map(|i| vec![i]).collect();
        let one = mean_service_time(&m, &k, &inputs, 1);
        let four = mean_service_time(&m, &k, &inputs, 4);
        assert!((four - 4.0 * one).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one lane input")]
    fn mean_service_time_requires_inputs() {
        let m = Machine::new(4);
        mean_service_time(&m, &hit_filter_kernel(), &[], 4);
    }
}
