//! # apps — additional irregular streaming applications
//!
//! The paper motivates latency-constrained irregular streaming with
//! applications beyond BLAST (§1): gamma-ray burst detection on an
//! orbiting telescope, network intrusion detection, and
//! decision-cascade machine learning. This crate provides those three
//! as concrete pipelines:
//!
//! * [`gamma`] — photon-event processing for burst detection (the APT
//!   instrument the paper cites): hit filter → pair-conversion split →
//!   track quality cut → burst accumulation.
//! * [`ids`] — a Snort-like intrusion detection cascade: header filter
//!   → multi-pattern payload scan (expanding) → rule evaluation →
//!   alerting.
//! * [`cascade`] — a Viola–Jones-style attentional cascade: cheap
//!   classifiers discard most windows, expensive ones confirm.
//! * [`logalytics`] — a streaming log-analytics diamond (parse →
//!   {filter, enrich} → join → aggregate), the flagship *DAG* workload:
//!   it synthesizes a [`dataflow_model::Topology`] with per-edge gains
//!   and routing weights rather than a linear chain.
//! * [`deepchain`] — deterministic `N`-stage synthetic chains (no RNG)
//!   for solver scaling studies: their tridiagonal KKT structure
//!   exercises the banded interior-point path at depths (N up to 1000)
//!   far beyond the measured workloads.
//!
//! Each module synthesizes a workload, *measures* its gain
//! distributions from actual (simplified but real) computations over
//! that workload, and assembles a [`dataflow_model::PipelineSpec`]
//! ready for the scheduling machinery in `rtsdf-core`. The [`kernels`]
//! module additionally provides SIMT lane programs so the gamma
//! pipeline's service times can be *measured* on the simulated device
//! ([`gamma::synthesize_measured`]) the same way the BLAST Table 1 is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascade;
pub mod deepchain;
pub mod gamma;
pub mod ids;
pub mod kernels;
pub mod logalytics;
