//! Streaming log-analytics pipeline — the flagship DAG workload.
//!
//! A real-time observability backend ingests a firehose of log lines
//! and must surface correlated alerts within a bounded latency. Unlike
//! the BLAST chain, the natural shape is a diamond:
//!
//! ```text
//!            ┌─> filter ─┐
//!   parse ───┤           ├─> join ──> aggregate
//!            └─> enrich ─┘
//! ```
//!
//! * **parse** — decode raw lines into structured records; malformed
//!   lines are dropped (attenuating edge to `filter`). Each record also
//!   references a variable number of entities (hosts, services, trace
//!   ids) that need enrichment (expanding edge to `enrich`), of which
//!   only a sampled subset is looked up (routing weight < 1).
//! * **filter** — severity/relevance cut on the record stream
//!   (attenuating).
//! * **enrich** — resolve entity references against metadata tables;
//!   lookups can miss (attenuating).
//! * **join** — correlate filtered records with resolved entities in a
//!   time window; only matched pairs survive (attenuating fan-in).
//! * **aggregate** — fold matches into rollup windows (deterministic
//!   sink).
//!
//! As with the other app modules, the gain models are *measured* by
//! running simplified-but-real per-record computations over a synthetic
//! log stream, then assembled into a [`Topology`] ready for the DAG
//! scheduling machinery in `rtsdf-core`.

use dataflow_model::{GainModel, ModelError, Topology, TopologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One synthetic log line.
#[derive(Debug, Clone, PartialEq)]
pub struct LogLine {
    /// Syslog-style severity, 0 (emergency) … 7 (debug).
    pub severity: u8,
    /// Whether the line parses as structured data at all.
    pub well_formed: bool,
    /// Entity references (hosts, services, trace ids) in the line.
    pub entities: u32,
    /// Whether each referenced entity exists in the metadata tables
    /// (modeled as one shared hit probability realized per entity).
    pub entity_known: f64,
}

/// Synthetic-workload and pipeline parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogalyticsConfig {
    /// Fraction of lines that fail to parse.
    pub malformed_fraction: f64,
    /// Severity threshold: records at or below this pass the filter.
    pub severity_threshold: u8,
    /// Maximum entity references per record.
    pub max_entities: u32,
    /// Fraction of entity references sampled for enrichment (the
    /// routing weight of the `parse → enrich` edge).
    pub enrich_sample: f64,
    /// Probability an entity lookup hits the metadata tables.
    pub metadata_hit: f64,
    /// Probability a filtered record or resolved entity finds its
    /// counterpart inside the join window.
    pub join_match: f64,
    /// Lines used to measure the gain distributions.
    pub lines: usize,
    /// Per-node service times (cycles under the 1/N share) for
    /// parse, filter, enrich, join, aggregate.
    pub service_times: [f64; 5],
    /// SIMD width.
    pub vector_width: u32,
}

impl Default for LogalyticsConfig {
    fn default() -> Self {
        LogalyticsConfig {
            malformed_fraction: 0.08,
            severity_threshold: 4,
            max_entities: 6,
            enrich_sample: 0.75,
            metadata_hit: 0.82,
            join_match: 0.6,
            lines: 40_000,
            service_times: [240.0, 130.0, 870.0, 1450.0, 510.0],
            vector_width: 128,
        }
    }
}

/// Generate one synthetic log line: mostly chatty low-severity traffic
/// with a long tail of severe events carrying more entity references.
pub fn synth_line<R: Rng + ?Sized>(config: &LogalyticsConfig, rng: &mut R) -> LogLine {
    // Severity skews verbose: P(sev) ∝ 2^sev over 0..=7.
    let u = rng.gen::<f64>() * 255.0;
    let mut severity = 0u8;
    let mut mass = 1.0;
    let mut acc = mass;
    while severity < 7 && u >= acc {
        severity += 1;
        mass *= 2.0;
        acc += mass;
    }
    // Severe events reference more entities (bigger blast radius).
    let expected = 1.0 + (7 - severity) as f64 * 0.5;
    let mut entities = 0u32;
    let mut t = 0.0;
    while entities < config.max_entities {
        t += -rng.gen::<f64>().max(1e-12).ln() / expected;
        if t > 1.0 {
            break;
        }
        entities += 1;
    }
    LogLine {
        severity,
        well_formed: rng.gen::<f64>() >= config.malformed_fraction,
        entities,
        entity_known: config.metadata_hit,
    }
}

/// Parse node: `true` keeps the line as a structured record.
pub fn parse_ok(line: &LogLine) -> bool {
    line.well_formed
}

/// Filter node: severity cut. `true` keeps the record.
pub fn severity_filter(config: &LogalyticsConfig, line: &LogLine) -> bool {
    line.severity <= config.severity_threshold
}

/// Enrich node: one metadata lookup per sampled entity reference.
/// `true` means the lookup hit.
pub fn metadata_lookup<R: Rng + ?Sized>(line: &LogLine, rng: &mut R) -> bool {
    rng.gen::<f64>() < line.entity_known
}

/// Join node: window correlation. `true` means the record or entity
/// found its counterpart and produces a match.
pub fn window_join<R: Rng + ?Sized>(config: &LogalyticsConfig, rng: &mut R) -> bool {
    rng.gen::<f64>() < config.join_match
}

/// Measure the per-edge gain distributions over a synthetic log stream
/// and assemble the diamond topology.
pub fn synthesize(config: &LogalyticsConfig, seed: u64) -> Result<Topology, ModelError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parsed = 0u64;
    let mut entity_counts = vec![0u64; config.max_entities as usize + 1];
    let mut filter_pass = 0u64;
    let mut lookup_hit = 0u64;
    let mut lookup_total = 0u64;
    let mut join_match = 0u64;
    let mut join_total = 0u64;

    for _ in 0..config.lines {
        let line = synth_line(config, &mut rng);
        if !parse_ok(&line) {
            continue;
        }
        parsed += 1;
        entity_counts[line.entities as usize] += 1;
        if severity_filter(config, &line) {
            filter_pass += 1;
            join_total += 1;
            if window_join(config, &mut rng) {
                join_match += 1;
            }
        }
        for _ in 0..line.entities {
            lookup_total += 1;
            if metadata_lookup(&line, &mut rng) {
                lookup_hit += 1;
            }
        }
    }

    // parse → filter: fraction of lines surviving the parse, thinned
    // further by the filter's pass rate downstream — the edge gain is
    // the parse survival alone; the filter node's own attenuation lives
    // on its out-edge.
    let g_parse = parsed as f64 / config.lines.max(1) as f64;
    // parse → enrich: entity references per *parsed* record, as an
    // empirical pmf (includes zero-entity records).
    let pmf: Vec<(u32, f64)> = entity_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(k, &c)| (k as u32, c as f64 / parsed.max(1) as f64))
        .collect();
    let total: f64 = pmf.iter().map(|(_, p)| p).sum();
    let pmf: Vec<(u32, f64)> = pmf.into_iter().map(|(k, p)| (k, p / total)).collect();
    let g_filter = filter_pass as f64 / parsed.max(1) as f64;
    let g_enrich = if lookup_total == 0 {
        0.0
    } else {
        lookup_hit as f64 / lookup_total as f64
    };
    let g_join = if join_total == 0 {
        0.0
    } else {
        join_match as f64 / join_total as f64
    };

    let [t_parse, t_filter, t_enrich, t_join, t_agg] = config.service_times;
    TopologyBuilder::new(config.vector_width)
        .node("parse", t_parse)
        .node("filter", t_filter)
        .node("enrich", t_enrich)
        .node("join", t_join)
        .node("aggregate", t_agg)
        // Records: survive parsing, then get severity-filtered.
        .edge(0, 1, GainModel::Bernoulli { p: g_parse }, 1.0)
        // Entities: a variable count per record, of which only a
        // sampled subset is enriched (routing weight).
        .edge(0, 2, GainModel::Empirical { pmf }, config.enrich_sample)
        // Filtered records flow into the join window.
        .edge(1, 3, GainModel::Bernoulli { p: g_filter }, 1.0)
        // Resolved entities flow into the join window.
        .edge(2, 3, GainModel::Bernoulli { p: g_enrich }, 1.0)
        // Matches flow into the rollup.
        .edge(3, 4, GainModel::Bernoulli { p: g_join }, 1.0)
        .build()
}

/// Backlog-factor starting point for the DAG solver: the optimistic
/// per-node factor `max(1, ⌈Σ out-edge mean flow⌉)` the paper's chain
/// calibration also starts from.
pub fn optimistic_backlog(topology: &Topology) -> Vec<f64> {
    (0..topology.len())
        .map(|i| {
            let out: f64 = topology
                .out_edges(i)
                .iter()
                .map(|&e| topology.edge(e).mean_flow())
                .sum();
            out.ceil().max(1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::RtParams;
    use rtsdf_core::EnforcedDagProblem;

    #[test]
    fn synthesized_topology_shape() {
        let t = synthesize(&LogalyticsConfig::default(), 7).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.edges().len(), 5);
        assert_eq!(t.vector_width(), 128);
        assert_eq!(t.source(), 0);
        assert!(t.is_sink(4));
        assert!(t.as_chain().is_none(), "diamond must not look like a chain");
        // parse keeps most lines.
        let g_parse = t.edge(0).gain.mean();
        assert!(g_parse > 0.85 && g_parse <= 1.0, "g_parse = {g_parse}");
        // entity references expand.
        let g_ent = t.edge(1).gain.mean();
        assert!(g_ent > 1.0, "g_ent = {g_ent}");
        // the sampled-enrichment routing weight thins the entity flow.
        assert!(t.edge(1).weight < 1.0);
        assert!(t.edge(1).mean_flow() < g_ent);
        // filter, enrich, join all attenuate.
        for e in [2, 3, 4] {
            let g = t.edge(e).gain.mean();
            assert!(g > 0.0 && g < 1.0, "edge {e}: g = {g}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = synthesize(&LogalyticsConfig::default(), 3).unwrap();
        let b = synthesize(&LogalyticsConfig::default(), 3).unwrap();
        assert_eq!(a.total_gains(), b.total_gains());
        let c = synthesize(&LogalyticsConfig::default(), 4).unwrap();
        assert_ne!(a.total_gains(), c.total_gains());
    }

    #[test]
    fn entity_counts_respect_cap() {
        let cfg = LogalyticsConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let line = synth_line(&cfg, &mut rng);
            assert!(line.entities <= cfg.max_entities);
            assert!(line.severity <= 7);
        }
    }

    #[test]
    fn severe_lines_reference_more_entities() {
        let cfg = LogalyticsConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut sev_sum = 0.0;
        let mut sev_n = 0u64;
        let mut dbg_sum = 0.0;
        let mut dbg_n = 0u64;
        for _ in 0..20_000 {
            let line = synth_line(&cfg, &mut rng);
            if line.severity <= 2 {
                sev_sum += line.entities as f64;
                sev_n += 1;
            } else if line.severity == 7 {
                dbg_sum += line.entities as f64;
                dbg_n += 1;
            }
        }
        assert!(sev_n > 0 && dbg_n > 0);
        let m_sev = sev_sum / sev_n as f64;
        let m_dbg = dbg_sum / dbg_n as f64;
        assert!(m_sev > m_dbg, "severe {m_sev} vs debug {m_dbg}");
    }

    #[test]
    fn schedulable_with_dag_solver() {
        let t = synthesize(&LogalyticsConfig::default(), 11).unwrap();
        let b = optimistic_backlog(&t);
        let params = RtParams::new(30.0, 2e5).unwrap();
        let sched = EnforcedDagProblem::new(&t, params, b).solve();
        assert!(sched.is_ok(), "{sched:?}");
        let sched = sched.unwrap();
        assert_eq!(sched.periods.len(), 5);
        assert!(sched.active_fraction > 0.0 && sched.active_fraction <= 1.0);
    }
}
