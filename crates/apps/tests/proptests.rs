//! Property-based tests for the bundled applications.

use apps::cascade::{synth_window, Cascade, CascadeConfig};
use apps::gamma::{pair_split, synth_event, GammaConfig};
use apps::ids::{synth_packet, IdsConfig, RuleSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gamma_pair_split_is_within_architectural_bounds(
        seed in 0u64..1000,
        max_segments in 1u32..16,
    ) {
        let config = GammaConfig { max_segments, ..GammaConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let ev = synth_event(&config, &mut rng);
            let s = pair_split(&config, &ev, &mut rng);
            prop_assert!(s >= 1 && s <= max_segments);
        }
    }

    #[test]
    fn gamma_pipeline_valid_across_configs(
        noise in 0.1..0.9f64,
        threshold in 1.0..20.0f64,
        seed in 0u64..100,
    ) {
        let config = GammaConfig {
            noise_fraction: noise,
            energy_threshold: threshold,
            events: 4_000,
            ..GammaConfig::default()
        };
        let p = apps::gamma::synthesize(&config, seed).unwrap();
        prop_assert_eq!(p.len(), 4);
        let g = p.mean_gains();
        prop_assert!(g[0] >= 0.0 && g[0] <= 1.0);
        prop_assert!(g[1] >= 1.0, "pair split always emits at least one");
        prop_assert!(g[2] >= 0.0 && g[2] <= 1.0);
    }

    #[test]
    fn ids_scan_counts_are_bounded_and_planted_signatures_found(
        seed in 0u64..500,
        cap in 1u32..20,
    ) {
        let config = IdsConfig { max_matches: cap, ..IdsConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let rules = RuleSet::generate(&config, &mut rng);
        for _ in 0..50 {
            let pkt = synth_packet(&config, &rules, &mut rng);
            let n = rules.scan(&pkt.payload, cap);
            prop_assert!(n <= cap);
        }
        // A payload that *is* a signature must match.
        let sig = rules.signatures()[0].clone();
        prop_assert!(rules.scan(&sig, cap) >= 1);
    }

    #[test]
    fn cascade_stage_decisions_are_deterministic(seed in 0u64..200) {
        let config = CascadeConfig { samples: 3_000, ..CascadeConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let cascade = Cascade::calibrate(&config, &mut rng);
        let w = synth_window(&config, &mut rng);
        for stage in 0..cascade.stages() {
            prop_assert_eq!(cascade.pass(&w, stage), cascade.pass(&w, stage));
        }
        // run() is consistent with pass().
        match cascade.run(&w) {
            Some(rej) => prop_assert!(!cascade.pass(&w, rej)),
            None => {
                for s in 0..cascade.stages() {
                    prop_assert!(cascade.pass(&w, s));
                }
            }
        }
    }

    #[test]
    fn cascade_survival_is_monotone_in_stage(seed in 0u64..100) {
        // The fraction of windows surviving through stage i is
        // nonincreasing in i.
        let config = CascadeConfig { samples: 4_000, ..CascadeConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let cascade = Cascade::calibrate(&config, &mut rng);
        let n = 2_000;
        let mut survivors = vec![0u32; cascade.stages() + 1];
        for _ in 0..n {
            let w = synth_window(&config, &mut rng);
            survivors[0] += 1;
            for s in 0..cascade.stages() {
                if cascade.pass(&w, s) {
                    survivors[s + 1] += 1;
                } else {
                    break;
                }
            }
        }
        for w in survivors.windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
    }
}
