//! Criterion bench for experiments E3/E4: one Fig.-3 grid cell (both
//! strategies optimized) and a small grid sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use rtsdf::core::comparison::{compare_at, sweep, SweepConfig};
use rtsdf::prelude::*;
use std::hint::black_box;

fn bench_fig3_cell(c: &mut Criterion) {
    let p = rtsdf::blast::paper_pipeline();
    let cfg = SweepConfig::paper_blast();
    let params = RtParams::new(10.0, 1e5).unwrap();
    c.bench_function("fig3_single_cell", |b| {
        b.iter(|| black_box(compare_at(&p, params, &cfg)))
    });
}

fn bench_fig3_grid(c: &mut Criterion) {
    let p = rtsdf::blast::paper_pipeline();
    let cfg = SweepConfig::paper_blast();
    let (tau0s, ds) = RtParams::paper_grid(6, 6);
    c.bench_function("fig3_grid_6x6", |b| {
        b.iter(|| black_box(sweep(&p, &tau0s, &ds, &cfg).unwrap()))
    });
}

criterion_group!(benches, bench_fig3_cell, bench_fig3_grid);
criterion_main!(benches);
