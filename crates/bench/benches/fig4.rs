//! Criterion bench for experiment E5: computing the Fig.-4 difference
//! statistics from a sweep.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rtsdf::core::comparison::{sweep, SweepConfig};
use rtsdf::prelude::*;
use std::hint::black_box;

fn bench_fig4_difference_stats(c: &mut Criterion) {
    let p = rtsdf::blast::paper_pipeline();
    let cfg = SweepConfig::paper_blast();
    let (tau0s, ds) = RtParams::paper_grid(8, 8);
    let result = sweep(&p, &tau0s, &ds, &cfg).unwrap();
    c.bench_function("fig4_stats_from_sweep", |b| {
        b.iter_batched(
            || result.clone(),
            |r| {
                black_box((
                    r.enforced_win_fraction(),
                    r.max_enforced_advantage(),
                    r.max_monolithic_advantage(),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fig4_full(c: &mut Criterion) {
    let p = rtsdf::blast::paper_pipeline();
    let cfg = SweepConfig::paper_blast();
    let (tau0s, ds) = RtParams::paper_grid(4, 4);
    c.bench_function("fig4_sweep_and_stats_4x4", |b| {
        b.iter(|| {
            let r = sweep(&p, &tau0s, &ds, &cfg).unwrap();
            black_box(r.enforced_win_fraction())
        })
    });
}

criterion_group!(benches, bench_fig4_difference_stats, bench_fig4_full);
criterion_main!(benches);
