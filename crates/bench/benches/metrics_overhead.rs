//! Criterion bench: cost of the live-metrics layer on the simulator
//! hot loop.
//!
//! Two measurements of the same fixed-seed enforced-waits BLAST run:
//!
//! * **disabled** — `simulate_enforced`, the default entry point. The
//!   live layer is compiled in but detached (`live = None`), so its
//!   cost is one untaken branch per event. This is the configuration
//!   every experiment runs in, and its `items_per_sec` is the gated
//!   key: `bench_diff --throughput-threshold 0.01` against the
//!   committed baseline enforces that attaching the telemetry layer to
//!   the codebase cost the uninstrumented hot loop less than 1%.
//! * **enabled** — `simulate_enforced_live` publishing counters, queue
//!   high-water marks, and throughput gauges into a real registry. Its
//!   rate is informational (instrumentation is allowed to cost
//!   something); the printed overhead fraction documents how much.
//!
//! The monolithic loop gets the same treatment at block granularity.
//!
//! ```text
//! cargo bench -p bench --bench metrics_overhead -- [--metrics json|csv]
//! ```

use bench::manifest::{write_metrics_csv, MetricsFormat, RunManifest};
use criterion::{black_box, Criterion};
use rtsdf::prelude::*;
use rtsdf::sim::{simulate_enforced_live, simulate_monolithic_live, SimLiveMetrics};
use serde_json::json;

fn mean_ns(results: &[criterion::BenchResult], id: &str) -> f64 {
    results
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.mean_ns)
        .unwrap_or(f64::NAN)
}

/// Best-case (minimum) iteration time. The gated throughput keys use
/// this rather than the mean: a 1% regression gate needs a low-noise
/// statistic, and the minimum over a measurement window is far more
/// stable under scheduler jitter than the mean, while still moving
/// whenever real work is added to the hot loop.
fn min_ns(results: &[criterion::BenchResult], id: &str) -> f64 {
    results
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.min_ns)
        .unwrap_or(f64::NAN)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let metrics = bench::parse_metrics_flag(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let pipeline = rtsdf::blast::paper_pipeline();

    // Same workload as sweep_hot_path's sim group, so the gated
    // disabled-path rate is comparable across the two manifests.
    let items = 2_000usize;
    let enf_cfg = SimConfig::quick(10.0, 7, items);
    let mono_cfg = SimConfig::quick(50.0, 7, items);
    let enf_sched = EnforcedWaitsProblem::new(
        &pipeline,
        RtParams::new(10.0, 1e5).unwrap(),
        vec![1.0, 3.0, 9.0, 6.0],
    )
    .solve(SolveMethod::WaterFilling)
    .expect("enforced point is feasible");
    let mono_sched = MonolithicProblem::new(&pipeline, RtParams::new(50.0, 1e5).unwrap(), 1.0, 1.0)
        .solve_fast()
        .expect("monolithic point is feasible");

    // One registry reused across iterations: steady-state publishing
    // cost, not registry construction.
    let live = SimLiveMetrics::new(pipeline.len(), 1);

    // This bench parses its own flags, so the shim's positional-filter
    // sniffing must be disabled.
    //
    // Each variant is measured in TWO windows ("x" and "x2"),
    // interleaved with the other variant, and the gated statistic is
    // the min over both. A transient load burst (a parallel build, a
    // scheduler hiccup) can poison one whole measurement window; it is
    // very unlikely to poison two windows several seconds apart, so
    // the min-of-mins stays on the quiet-machine value.
    let mut c = Criterion::default().with_filter(None);
    {
        let mut group = c.benchmark_group("enforced");
        for pass in ["", "2"] {
            group.bench_function(format!("disabled{pass}"), |b| {
                b.iter(|| black_box(simulate_enforced(&pipeline, &enf_sched, 1e5, &enf_cfg)))
            });
            group.bench_function(format!("enabled{pass}"), |b| {
                b.iter(|| {
                    let h = live.handle(0);
                    black_box(simulate_enforced_live(
                        &pipeline, &enf_sched, 1e5, &enf_cfg, &h,
                    ))
                })
            });
        }
        group.finish();
    }
    {
        let mut group = c.benchmark_group("monolithic");
        for pass in ["", "2"] {
            group.bench_function(format!("disabled{pass}"), |b| {
                b.iter(|| black_box(simulate_monolithic(&pipeline, &mono_sched, 1e5, &mono_cfg)))
            });
            group.bench_function(format!("enabled{pass}"), |b| {
                b.iter(|| {
                    let h = live.handle(0);
                    black_box(simulate_monolithic_live(
                        &pipeline,
                        &mono_sched,
                        1e5,
                        &mono_cfg,
                        &h,
                    ))
                })
            });
        }
        group.finish();
    }

    let results = c.take_results();
    let rate = |ns: f64| items as f64 / (ns / 1e9);
    let overhead = |disabled_ns: f64, enabled_ns: f64| enabled_ns / disabled_ns - 1.0;
    let best = |id: &str| min_ns(&results, id).min(min_ns(&results, &format!("{id}2")));
    let enf_off = best("enforced/disabled");
    let enf_on = best("enforced/enabled");
    let mono_off = best("monolithic/disabled");
    let mono_on = best("monolithic/enabled");
    println!();
    println!(
        "enforced:   disabled {:.2}M items/s, enabled {:.2}M items/s (publishing overhead {:+.2}%)",
        rate(enf_off) / 1e6,
        rate(enf_on) / 1e6,
        100.0 * overhead(enf_off, enf_on),
    );
    println!(
        "monolithic: disabled {:.2}M items/s, enabled {:.2}M items/s (publishing overhead {:+.2}%)",
        rate(mono_off) / 1e6,
        rate(mono_on) / 1e6,
        100.0 * overhead(mono_off, mono_on),
    );

    let Some(format) = metrics else { return };
    match format {
        MetricsFormat::Json => {
            // `items_per_sec` on the disabled paths is the gated key
            // (Throughput direction); the enabled rates use a
            // non-gated name on purpose — instrumented throughput is
            // informational.
            let results_blob = json!({
                "items": items,
                "sim": json!({
                    "enforced": json!({
                        "wall_micros": enf_off / 1e3,
                        "mean_wall_micros": mean_ns(&results, "enforced/disabled") / 1e3,
                        "items_per_sec": rate(enf_off),
                        "enabled_wall_micros": enf_on / 1e3,
                        "enabled_rate": rate(enf_on),
                        "publish_overhead_fraction": overhead(enf_off, enf_on),
                    }),
                    "monolithic": json!({
                        "wall_micros": mono_off / 1e3,
                        "mean_wall_micros": mean_ns(&results, "monolithic/disabled") / 1e3,
                        "items_per_sec": rate(mono_off),
                        "enabled_wall_micros": mono_on / 1e3,
                        "enabled_rate": rate(mono_on),
                        "publish_overhead_fraction": overhead(mono_off, mono_on),
                    }),
                }),
            });
            let config_blob = json!({
                "items": items,
                "enforced_tau0": 10.0,
                "monolithic_tau0": 50.0,
                "deadline": 1e5,
                "seed": 7,
            });
            let manifest = RunManifest::new("metrics_overhead", config_blob, results_blob);
            match manifest.write() {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write manifest: {e}");
                    std::process::exit(2);
                }
            }
        }
        MetricsFormat::Csv => {
            let row = |name: &str, off: f64, on: f64| {
                vec![
                    name.to_string(),
                    format!("{:.1}", off / 1e3),
                    format!("{:.1}", on / 1e3),
                    format!("{:.0}", rate(off)),
                    format!("{:.0}", rate(on)),
                    format!("{:.6}", overhead(off, on)),
                ]
            };
            let path = write_metrics_csv(
                "metrics_overhead",
                &[
                    "simulator",
                    "disabled_wall_us",
                    "enabled_wall_us",
                    "disabled_items_per_sec",
                    "enabled_items_per_sec",
                    "publish_overhead_fraction",
                ],
                &[
                    row("enforced", enf_off, enf_on),
                    row("monolithic", mono_off, mono_on),
                ],
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot write csv: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {}", path.display());
        }
    }
}
