//! Criterion bench: the bulk-service queue analysis (experiment E7's
//! computational core).

use criterion::{criterion_group, criterion_main, Criterion};
use rtsdf::prelude::*;
use rtsdf::queueing::bulk::BulkQueue;
use rtsdf::queueing::estimate::{estimate_backlog_factors, EstimateConfig};
use rtsdf::queueing::pmf;
use std::hint::black_box;

fn bench_stationary_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_stationary");
    for load in [0.5, 0.8, 0.95] {
        let q = BulkQueue::new(128, pmf::poisson(128.0 * load, 1024));
        group.bench_function(format!("poisson_load_{load}"), |b| {
            b.iter(|| black_box(q.stationary(2048)))
        });
    }
    group.finish();
}

fn bench_backlog_estimation(c: &mut Criterion) {
    let p = rtsdf::blast::paper_pipeline();
    let params = RtParams::new(10.0, 3e4).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    c.bench_function("estimate_backlog_factors_blast", |b| {
        b.iter(|| {
            black_box(estimate_backlog_factors(
                &p,
                &sched.periods,
                10.0,
                &EstimateConfig::default(),
            ))
        })
    });
}

criterion_group!(benches, bench_stationary_solve, bench_backlog_estimation);
criterion_main!(benches);
