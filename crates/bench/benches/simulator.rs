//! Criterion bench: the discrete-event simulator's throughput (items
//! simulated per second) under both runtimes — the cost that dominates
//! experiments E2 and E6.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rtsdf::prelude::*;
use std::hint::black_box;

fn bench_enforced_simulation(c: &mut Criterion) {
    let p = rtsdf::blast::paper_pipeline();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let items = 5_000usize;
    let mut group = c.benchmark_group("simulate");
    group.throughput(Throughput::Elements(items as u64));
    group.bench_function("enforced_5k_items", |b| {
        b.iter(|| {
            let cfg = SimConfig::quick(10.0, 42, items);
            black_box(simulate_enforced(&p, &sched, 1e5, &cfg))
        })
    });
    group.finish();
}

fn bench_monolithic_simulation(c: &mut Criterion) {
    let p = rtsdf::blast::paper_pipeline();
    let params = RtParams::new(50.0, 1e5).unwrap();
    let sched = MonolithicProblem::new(&p, params, 1.0, 1.0)
        .solve()
        .unwrap();
    let items = 20_000usize;
    let mut group = c.benchmark_group("simulate");
    group.throughput(Throughput::Elements(items as u64));
    group.bench_function("monolithic_20k_items", |b| {
        b.iter(|| {
            let cfg = SimConfig::quick(50.0, 42, items);
            black_box(simulate_monolithic(&p, &sched, 1e5, &cfg))
        })
    });
    group.finish();
}

fn bench_multi_seed(c: &mut Criterion) {
    let p = rtsdf::blast::paper_pipeline();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    c.bench_function("run_seeds_enforced_8x2k", |b| {
        b.iter(|| {
            let cfg = SimConfig::quick(10.0, 0, 2_000);
            black_box(run_seeds_enforced(&p, &sched, 1e5, &cfg, 8))
        })
    });
}

criterion_group!(
    benches,
    bench_enforced_simulation,
    bench_monolithic_simulation,
    bench_multi_seed
);
criterion_main!(benches);
