//! Criterion bench: the Fig.-1 and Fig.-2 optimizers themselves.
//!
//! The paper relied on AMPL + BONMIN per grid cell; these benches show
//! that the specialized solvers answer in microseconds, which is what
//! makes full-resolution Fig. 3/4 sweeps cheap.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rtsdf::prelude::*;
use std::hint::black_box;

fn blast() -> PipelineSpec {
    rtsdf::blast::paper_pipeline()
}

fn bench_enforced_solvers(c: &mut Criterion) {
    let p = blast();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let b = vec![1.0, 3.0, 9.0, 6.0];
    let mut group = c.benchmark_group("enforced_solve");
    group.bench_function("waterfilling", |bench| {
        bench.iter(|| {
            let prob = EnforcedWaitsProblem::new(&p, params, b.clone());
            black_box(prob.solve(SolveMethod::WaterFilling).unwrap())
        })
    });
    group.bench_function("interior_point", |bench| {
        bench.iter(|| {
            let prob = EnforcedWaitsProblem::new(&p, params, b.clone());
            black_box(prob.solve(SolveMethod::InteriorPoint).unwrap())
        })
    });
    group.finish();
}

fn bench_monolithic_solvers(c: &mut Criterion) {
    let p = blast();
    let params = RtParams::new(30.0, 2e5).unwrap();
    let mut group = c.benchmark_group("monolithic_solve");
    group.bench_function("exact_scan", |bench| {
        bench.iter(|| {
            black_box(
                MonolithicProblem::new(&p, params, 1.0, 1.0)
                    .solve()
                    .unwrap(),
            )
        })
    });
    group.bench_function("fast_unimodal", |bench| {
        bench.iter(|| {
            black_box(
                MonolithicProblem::new(&p, params, 1.0, 1.0)
                    .solve_fast()
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_deep_pipeline_scaling(c: &mut Criterion) {
    // Solver cost vs pipeline depth (the dense Newton is O(N^3) per
    // step; the water-filling inner solve is O(N) per λ).
    let mut group = c.benchmark_group("enforced_solve_depth");
    for n in [4usize, 16, 64] {
        let mut b = PipelineSpecBuilder::new(128);
        for i in 0..n {
            b = b.stage(
                format!("s{i}"),
                100.0 + i as f64,
                GainModel::Bernoulli { p: 0.9 },
            );
        }
        let p = b.build().unwrap();
        let factors = vec![2.0; n];
        let params = RtParams::new(5.0, 1e6 * n as f64).unwrap();
        group.bench_function(format!("waterfilling_n{n}"), |bench| {
            bench.iter_batched(
                || EnforcedWaitsProblem::new(&p, params, factors.clone()),
                |prob| black_box(prob.solve(SolveMethod::WaterFilling).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_enforced_solvers,
    bench_monolithic_solvers,
    bench_deep_pipeline_scaling
);
criterion_main!(benches);
