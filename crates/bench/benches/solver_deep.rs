//! Criterion bench: interior-point scaling on deep synthetic chains.
//!
//! The paper's pipelines are 4 stages deep; this bench drives the
//! enforced-waits interior point through the deterministic
//! `deepchain` workloads at N ∈ {4, 32, 64, 128, 512, 1000} to show
//! the banded Newton path holds its O(N·b²)-per-step promise. Each
//! depth's solve is measured cold, and one representative solve's
//! telemetry records the factorization kind (`dense` below the
//! banded engagement threshold, `banded` with bandwidth 1 above it),
//! total Newton iterations, and the derived wall-per-iteration cost.
//!
//! The scaling gate: the per-Newton-step KKT kernel cost (assembly +
//! banded factor + solve, reported by `SolveTelemetry::
//! newton_solve_micros`) between N=512 and N=64 must stay ≤ 12× (a
//! dense O(N³) step would be ~64×). The full wall per iteration is
//! recorded alongside but not gated: the Armijo line search runs an
//! instance-dependent number of barrier evaluations per step (5–13 on
//! these chains), which measures conditioning, not factorization
//! scaling. The bench exits non-zero when the gate fails, and
//! `--metrics json` writes the measurements to `BENCH_deep.json`
//! (iterations gated by `bench_diff`, wall times informational) so CI
//! tracks the trajectory.
//!
//! ```text
//! cargo bench -p bench --bench solver_deep -- [--metrics json|csv]
//! ```

use bench::manifest::{write_metrics_csv, MetricsFormat, RunManifest};
use criterion::{black_box, Criterion};
use rtsdf::core::minimal_periods;
use rtsdf::prelude::*;
use serde_json::json;

/// Chain depths to measure (the acceptance gate compares 512 vs 64).
const DEPTHS: &[usize] = &[4, 32, 64, 128, 512, 1000];

/// Maximum allowed per-Newton-step KKT kernel ratio between N=512 and
/// N=64 (linear scaling predicts 8×; dense O(N³) steps would be ~512×).
const MAX_KERNEL_PER_ITER_RATIO: f64 = 12.0;

/// One depth's measurements.
struct DepthRow {
    n: usize,
    wall_micros: f64,
    min_wall_micros: f64,
    /// Smallest per-solve Newton-kernel wall over the repeat solves
    /// (`None` on the dense path below the banded engagement size).
    kernel_micros: Option<f64>,
    iterations: u64,
    phase1_iterations: u64,
    factorization: String,
    bandwidth: Option<u64>,
    active_fraction: f64,
}

impl DepthRow {
    /// Full-solve wall per Newton iteration, from the fastest sample:
    /// the minimum is the run-to-run-stable measure of what the work
    /// itself costs, while the mean absorbs scheduler and frequency
    /// interference that scales with wall time.
    fn wall_per_iter(&self) -> f64 {
        self.min_wall_micros / self.iterations.max(1) as f64
    }

    /// Gated metric: KKT assembly + banded factor + solve per Newton
    /// step, excluding the instance-conditioned line-search work.
    fn kernel_per_iter(&self) -> Option<f64> {
        self.kernel_micros
            .map(|k| k / self.iterations.max(1) as f64)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let metrics = bench::parse_metrics_flag(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    // This bench parses its own flags, so the shim's positional-filter
    // sniffing must be disabled.
    let mut c = Criterion::default().with_filter(None);

    let mut rows: Vec<DepthRow> = Vec::with_capacity(DEPTHS.len());
    for &n in DEPTHS {
        let p = rtsdf::apps::deepchain::deep_chain(n).expect("deep chain builds");
        let b = EnforcedWaitsProblem::optimistic_backlog(&p);
        let min_d: f64 = minimal_periods(&p)
            .iter()
            .zip(&b)
            .map(|(x, bi)| x * bi)
            .sum();
        let params = RtParams::new(5.0, min_d * 2.0).expect("valid operating point");
        let prob = EnforcedWaitsProblem::new(&p, params, b);
        {
            let mut group = c.benchmark_group("deep_ip");
            group.bench_function(format!("n{n}"), |bench| {
                bench.iter(|| black_box(prob.solve(SolveMethod::InteriorPoint).unwrap()))
            });
            group.finish();
        }
        // Representative solves for telemetry; min-of-repeats stabilizes
        // the in-solve kernel timer against scheduler interference.
        let mut kernel_micros: Option<f64> = None;
        let mut last = None;
        for _ in 0..3 {
            let sched = prob
                .solve(SolveMethod::InteriorPoint)
                .expect("deep chain is schedulable");
            let t = sched
                .telemetry
                .clone()
                .expect("interior point reports telemetry");
            if let Some(k) = t.newton_solve_micros {
                kernel_micros = Some(kernel_micros.map_or(k, |b: f64| b.min(k)));
            }
            last = Some((sched, t));
        }
        let (sched, t) = last.expect("at least one solve ran");
        rows.push(DepthRow {
            n,
            wall_micros: f64::NAN,     // filled from criterion below
            min_wall_micros: f64::NAN, // filled from criterion below
            kernel_micros,
            iterations: t.iterations,
            phase1_iterations: t.phase1_iterations.unwrap_or(0),
            factorization: t.factorization.unwrap_or_else(|| "unknown".into()),
            bandwidth: t.bandwidth,
            active_fraction: sched.active_fraction,
        });
    }

    let results = c.take_results();
    for row in &mut rows {
        let hit = results
            .iter()
            .find(|r| r.id == format!("deep_ip/n{}", row.n));
        row.wall_micros = hit.map(|r| r.mean_ns / 1e3).unwrap_or(f64::NAN);
        row.min_wall_micros = hit.map(|r| r.min_ns / 1e3).unwrap_or(f64::NAN);
    }

    println!();
    for row in &rows {
        println!(
            "N={:<5} {:>10.1} µs/solve  {:>4} iters ({} phase-1)  {:>8.2} µs/iter  {} kernel µs/iter  {}{}",
            row.n,
            row.wall_micros,
            row.iterations,
            row.phase1_iterations,
            row.wall_per_iter(),
            row.kernel_per_iter()
                .map_or("     n/a".into(), |k| format!("{k:>8.2}")),
            row.factorization,
            row.bandwidth.map_or(String::new(), |b| format!("(bw={b})")),
        );
    }

    let at = |n: usize| rows.iter().find(|r| r.n == n).expect("depth measured");
    let wall_ratio = at(512).wall_per_iter() / at(64).wall_per_iter();
    let kernel_ratio = match (at(512).kernel_per_iter(), at(64).kernel_per_iter()) {
        (Some(a), Some(b)) => a / b,
        _ => f64::NAN,
    };
    println!(
        "scaling: per-step KKT kernel N=512 / N=64 = {kernel_ratio:.2}x \
         (gate: <= {MAX_KERNEL_PER_ITER_RATIO}x); full wall per iter = {wall_ratio:.2}x (info)"
    );

    if let Some(format) = metrics {
        match format {
            MetricsFormat::Json => {
                let mut depths = serde_json::Map::new();
                for row in &rows {
                    depths.insert(
                        format!("n{}", row.n),
                        json!({
                            "wall_micros": row.wall_micros,
                            "min_wall_micros": row.min_wall_micros,
                            "kernel_micros": row.kernel_micros,
                            "iterations": row.iterations,
                            "phase1_newton_steps": row.phase1_iterations,
                            "wall_per_iter_micros": row.wall_per_iter(),
                            "kernel_per_iter_micros": row.kernel_per_iter(),
                            "factorization": row.factorization,
                            "bandwidth_value": row.bandwidth,
                            "active_fraction_value": row.active_fraction,
                        }),
                    );
                }
                let results_blob = json!({
                    "depths": depths,
                    "scaling": json!({
                        "kernel_per_iter_ratio_512_over_64": kernel_ratio,
                        "wall_per_iter_ratio_512_over_64": wall_ratio,
                        "max_allowed_kernel_ratio": MAX_KERNEL_PER_ITER_RATIO,
                    }),
                });
                let config_blob = json!({
                    "depths": DEPTHS,
                    "tau0": 5.0,
                    "deadline_over_minimum": 2.0,
                });
                let path = RunManifest::new("deep", config_blob, results_blob)
                    .write()
                    .expect("metrics written");
                eprintln!("wrote {}", path.display());
            }
            MetricsFormat::Csv => {
                let csv_rows: Vec<Vec<String>> = rows
                    .iter()
                    .map(|r| {
                        vec![
                            format!("n{}", r.n),
                            format!("{:.3}", r.wall_micros),
                            r.iterations.to_string(),
                            format!("{:.4}", r.wall_per_iter()),
                            r.factorization.clone(),
                        ]
                    })
                    .collect();
                let path = write_metrics_csv(
                    "deep",
                    &[
                        "id",
                        "wall_micros",
                        "iterations",
                        "wall_per_iter",
                        "factorization",
                    ],
                    &csv_rows,
                )
                .expect("metrics written");
                eprintln!("wrote {}", path.display());
            }
        }
    }

    // NaN (missing banded kernel telemetry) must fail the gate too.
    if kernel_ratio.is_nan() || kernel_ratio > MAX_KERNEL_PER_ITER_RATIO {
        eprintln!(
            "FAIL: per-step KKT kernel ratio N=512/N=64 = {kernel_ratio:.2}x exceeds \
             {MAX_KERNEL_PER_ITER_RATIO}x — the banded Newton path is not engaging \
             (or regressed to dense scaling)"
        );
        std::process::exit(1);
    }
}
