//! Criterion bench: the end-to-end sweep hot path.
//!
//! Measures the three layers the sweep acceleration touched, against
//! their baselines, on one deliberately *imbalanced* grid:
//!
//! * **Scheduling** — cell-level work stealing (`sweep_parallel`) vs the
//!   old static row-chunked scheduler (`sweep_parallel_chunked`). The
//!   grid puts its cheap, infeasible rows (τ0 below the enforced
//!   head-stability limit ≈ 2.83) first and its expensive feasible rows
//!   last, so static chunking serializes the expensive tail behind one
//!   thread — exactly the shape work stealing fixes.
//! * **Solver** — a cold `solve_with_fallback` vs the same solve warm-
//!   started from a neighboring deadline's schedule.
//! * **Simulator** — the allocation-free enforced/monolithic hot loops,
//!   reported as items/second.
//!
//! `--metrics json` writes a `BENCH_perf.json` run manifest (wall times
//! informational, solver iteration counts gated) so `bench_diff` tracks
//! the perf trajectory across commits; `--metrics csv` writes the raw
//! timing rows instead.
//!
//! ```text
//! cargo bench -p bench --bench sweep_hot_path -- [--grid RxC] [--metrics json|csv]
//! ```

use bench::manifest::{write_metrics_csv, MetricsFormat, RunManifest};
use criterion::{black_box, Criterion};
use rtsdf::core::comparison::{
    sweep_parallel, sweep_parallel_chunked, sweep_parallel_live, sweep_parallel_with, SweepConfig,
    SweepOptions, SweepProgress, SweepResult,
};
use rtsdf::core::{worker_threads, WarmStart};
use rtsdf::prelude::*;
use serde_json::json;
use std::time::Instant;

/// Parse `--grid RxC` (default 8x8).
fn parse_grid(args: &[String]) -> (usize, usize) {
    match args.iter().position(|a| a == "--grid") {
        None => (8, 8),
        Some(pos) => {
            let parsed = args.get(pos + 1).and_then(|v| {
                let (r, c) = v.split_once('x')?;
                Some((r.parse::<usize>().ok()?, c.parse::<usize>().ok()?))
            });
            match parsed {
                Some((r, c)) if r >= 2 && c >= 2 => (r, c),
                _ => {
                    eprintln!("--grid expects RxC with R, C >= 2 (e.g. --grid 4x4)");
                    std::process::exit(2);
                }
            }
        }
    }
}

/// An imbalanced `(τ0, D)` grid: the first half of the rows sit below
/// the enforced head-stability limit (every cell fails fast — cheap),
/// the second half are feasible and expensive (τ0 geometric in
/// [8, 80]). Deadlines are the paper's linear 2.4e4..3.5e5 span.
fn imbalanced_grid(rows: usize, cols: usize) -> (Vec<f64>, Vec<f64>) {
    let cheap = rows / 2;
    let mut tau0s = Vec::with_capacity(rows);
    for i in 0..cheap {
        tau0s.push(1.0 + 1.5 * i as f64 / cheap as f64);
    }
    let costly = rows - cheap;
    for i in 0..costly {
        let f = if costly > 1 {
            i as f64 / (costly - 1) as f64
        } else {
            0.0
        };
        tau0s.push(8.0 * 10f64.powf(f));
    }
    let deadlines = (0..cols)
        .map(|j| 2.4e4 + (3.5e5 - 2.4e4) * j as f64 / (cols - 1) as f64)
        .collect();
    (tau0s, deadlines)
}

fn mean_ns(results: &[criterion::BenchResult], id: &str) -> f64 {
    results
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.mean_ns)
        .unwrap_or(f64::NAN)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let metrics = bench::parse_metrics_flag(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let (rows, cols) = parse_grid(&args);
    let pipeline = rtsdf::blast::paper_pipeline();
    let (tau0s, ds) = imbalanced_grid(rows, cols);
    let sweep_config = SweepConfig::paper_blast();

    // This bench parses its own flags, so the shim's positional-filter
    // sniffing must be disabled.
    let mut c = Criterion::default().with_filter(None);

    {
        let mut group = c.benchmark_group("sweep");
        group.bench_function("chunked", |b| {
            b.iter(|| {
                black_box(sweep_parallel_chunked(&pipeline, &tau0s, &ds, &sweep_config).unwrap())
            })
        });
        group.bench_function("work_stealing", |b| {
            b.iter(|| black_box(sweep_parallel(&pipeline, &tau0s, &ds, &sweep_config).unwrap()))
        });
        group.bench_function("warm_work_stealing", |b| {
            b.iter(|| {
                black_box(
                    sweep_parallel_with(
                        &pipeline,
                        &tau0s,
                        &ds,
                        &sweep_config,
                        &SweepOptions::warm(),
                    )
                    .unwrap(),
                )
            })
        });
        group.finish();
    }

    // Solver: one feasible BLAST operating point, warm hint from the
    // neighboring (next larger) deadline — the sweep's actual access
    // pattern.
    let b_factors = sweep_config.enforced_b.clone();
    let point = RtParams::new(10.0, 1e5).unwrap();
    let neighbor = RtParams::new(10.0, 1.2e5).unwrap();
    let prob = EnforcedWaitsProblem::new(&pipeline, point, b_factors.clone());
    let hint_sched = EnforcedWaitsProblem::new(&pipeline, neighbor, b_factors.clone())
        .solve_with_fallback()
        .expect("neighbor point is feasible");
    let hint = WarmStart::from_schedule(&hint_sched);
    {
        let mut group = c.benchmark_group("solver");
        group.bench_function("cold", |b| {
            b.iter(|| black_box(prob.solve_with_fallback().unwrap()))
        });
        group.bench_function("warm", |b| {
            b.iter(|| black_box(prob.solve_with_fallback_warm(&hint).unwrap()))
        });
        group.finish();
    }
    let cold_sched = prob.solve_with_fallback().unwrap();
    let warm_sched = prob.solve_with_fallback_warm(&hint).unwrap();
    let cold_iters = cold_sched.telemetry.as_ref().map_or(0, |t| t.iterations);
    let warm_iters = warm_sched.telemetry.as_ref().map_or(0, |t| t.iterations);

    // Simulators: fixed-seed BLAST streams through the hot loops.
    let sim_items = 2_000usize;
    let sim_cfg = SimConfig::quick(10.0, 7, sim_items);
    let mono_cfg = SimConfig::quick(50.0, 7, sim_items);
    let mono_sched = MonolithicProblem::new(&pipeline, RtParams::new(50.0, 1e5).unwrap(), 1.0, 1.0)
        .solve_fast()
        .expect("monolithic point is feasible");
    {
        let mut group = c.benchmark_group("sim");
        group.bench_function("enforced", |b| {
            b.iter(|| black_box(simulate_enforced(&pipeline, &cold_sched, 1e5, &sim_cfg)))
        });
        group.bench_function("monolithic", |b| {
            b.iter(|| black_box(simulate_monolithic(&pipeline, &mono_sched, 1e5, &mono_cfg)))
        });
        group.finish();
    }

    // Stats pipeline: the histogram + moments + quantile path every
    // observed run funnels its sojourn/latency samples through. A fixed
    // pseudo-latency buffer (10% past the histogram range, so the
    // overflow tracking is exercised) streams through `push_batch` /
    // `push_slice`, then the three tail quantiles are read back.
    let stats_samples = 65_536usize;
    let hist_range = 24_000.0;
    let samples: Vec<f64> = {
        use rtsdf::engine::rng::RngStream;
        let mut rng = RngStream::new(7);
        use rand::Rng;
        (0..stats_samples)
            .map(|_| rng.gen::<f64>() * hist_range * 1.1)
            .collect()
    };
    {
        use rtsdf::engine::stats::{Histogram, OnlineStats};
        let mut group = c.benchmark_group("stats");
        group.bench_function("histogram", |b| {
            b.iter(|| {
                let mut h = Histogram::new(0.0, hist_range, 256);
                let mut s = OnlineStats::new();
                h.push_batch(black_box(&samples));
                s.push_slice(black_box(&samples));
                black_box((
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.quantile(0.999),
                    s.mean(),
                ))
            })
        });
        group.finish();
    }

    // Production-scale work-stealing profile (ROADMAP item 3 leftover:
    // stealing measured ~1x over chunked on small grids — answer the
    // question at a 64×64 production grid). Single timed passes, not
    // criterion groups: at 4096 cells one pass is already seconds, and
    // the wall keys are informational. The work-stealing pass publishes
    // into a live metrics registry so the row records actual steals and
    // per-worker busy fractions; the two warm modes' deterministic
    // iteration totals quantify the cross-cell seeding win at scale.
    let (prof_rows, prof_cols) = (64usize, 64usize);
    let (prof_tau0s, prof_ds) = imbalanced_grid(prof_rows, prof_cols);
    let t0 = Instant::now();
    let _ = sweep_parallel_chunked(&pipeline, &prof_tau0s, &prof_ds, &sweep_config).unwrap();
    let prof_chunked = t0.elapsed();
    let progress = SweepProgress::new(worker_threads());
    let t0 = Instant::now();
    let _ = sweep_parallel_live(
        &pipeline,
        &prof_tau0s,
        &prof_ds,
        &sweep_config,
        &SweepOptions::default(),
        Some(&progress),
    )
    .unwrap();
    let prof_ws = t0.elapsed();
    let total_iters = |r: &SweepResult| {
        r.cells
            .iter()
            .filter_map(|c| c.enforced_telemetry.as_ref())
            .map(|t| t.iterations)
            .sum::<u64>()
    };
    let warm_rows_sweep = sweep_parallel_with(
        &pipeline,
        &prof_tau0s,
        &prof_ds,
        &sweep_config,
        &SweepOptions::warm(),
    )
    .unwrap();
    let warm_graph_sweep = sweep_parallel_with(
        &pipeline,
        &prof_tau0s,
        &prof_ds,
        &sweep_config,
        &SweepOptions::warm_graph(),
    )
    .unwrap();
    let (warm_rows_iters, warm_graph_iters) = (
        total_iters(&warm_rows_sweep),
        total_iters(&warm_graph_sweep),
    );
    let snap = progress.registry().snapshot();
    let prof_steals = snap.total("rtsdf_sweep_steals");
    let prof_claims = snap.total("rtsdf_sweep_cells_claimed");
    let busy: Vec<f64> = snap
        .family("rtsdf_sweep_worker_busy_fraction")
        .map(|f| f.samples.iter().map(|s| s.value).collect())
        .unwrap_or_default();
    let busy_min = busy.iter().copied().fold(f64::INFINITY, f64::min);
    let busy_mean = busy.iter().sum::<f64>() / busy.len().max(1) as f64;

    let results = c.take_results();
    let cells = (rows * cols) as f64;
    let chunked = mean_ns(&results, "sweep/chunked");
    let ws = mean_ns(&results, "sweep/work_stealing");
    let warm_ws = mean_ns(&results, "sweep/warm_work_stealing");
    let cells_per_sec = |ns: f64| cells / (ns / 1e9);
    let per_sec = |count: f64, ns: f64| count / (ns / 1e9);
    println!();
    println!(
        "sweep {rows}x{cols}: work stealing {:.0} cells/s vs chunked {:.0} cells/s ({:.2}x)",
        cells_per_sec(ws),
        cells_per_sec(chunked),
        chunked / ws
    );
    println!("solver: cold {cold_iters} iters, warm {warm_iters} iters");
    println!(
        "profile {prof_rows}x{prof_cols}: work stealing {:.2}s vs chunked {:.2}s ({:.2}x), \
         {prof_steals:.0} steals / {prof_claims:.0} cells, busy min {busy_min:.2} mean {busy_mean:.2}",
        prof_ws.as_secs_f64(),
        prof_chunked.as_secs_f64(),
        prof_chunked.as_secs_f64() / prof_ws.as_secs_f64(),
    );
    println!(
        "profile {prof_rows}x{prof_cols} warm: row chaining {warm_rows_iters} iters vs graph {warm_graph_iters} iters"
    );

    let Some(format) = metrics else { return };
    match format {
        MetricsFormat::Json => {
            let timing = |ns: f64| {
                json!({
                    "wall_micros": ns / 1e3,
                    "cells_per_sec": cells_per_sec(ns),
                })
            };
            let results_blob = json!({
                "tau0s": tau0s,
                "deadlines": ds,
                "sweep": json!({
                    "cells": cells,
                    "chunked": timing(chunked),
                    "work_stealing": timing(ws),
                    "warm_work_stealing": timing(warm_ws),
                    "speedup_vs_chunked": chunked / ws,
                }),
                "solver": json!({
                    "cold": json!({
                        "iterations": cold_iters,
                        "wall_micros": mean_ns(&results, "solver/cold") / 1e3,
                    }),
                    "warm": json!({
                        "iterations": warm_iters,
                        "wall_micros": mean_ns(&results, "solver/warm") / 1e3,
                    }),
                }),
                "sim": json!({
                    "enforced": json!({
                        "wall_micros": mean_ns(&results, "sim/enforced") / 1e3,
                        "items_per_sec": per_sec(sim_items as f64, mean_ns(&results, "sim/enforced")),
                    }),
                    "monolithic": json!({
                        "wall_micros": mean_ns(&results, "sim/monolithic") / 1e3,
                        "items_per_sec": per_sec(sim_items as f64, mean_ns(&results, "sim/monolithic")),
                    }),
                }),
                "stats": json!({
                    "histogram": json!({
                        "wall_micros": mean_ns(&results, "stats/histogram") / 1e3,
                        "samples_per_sec": per_sec(stats_samples as f64, mean_ns(&results, "stats/histogram")),
                    }),
                }),
                "work_steal_profile": json!({
                    "grid_rows": prof_rows,
                    "grid_cols": prof_cols,
                    "chunked": json!({
                        "wall_micros": prof_chunked.as_secs_f64() * 1e6,
                        "cells_per_sec": (prof_rows * prof_cols) as f64 / prof_chunked.as_secs_f64(),
                    }),
                    "work_stealing": json!({
                        "wall_micros": prof_ws.as_secs_f64() * 1e6,
                        "cells_per_sec": (prof_rows * prof_cols) as f64 / prof_ws.as_secs_f64(),
                    }),
                    "speedup_vs_chunked": prof_chunked.as_secs_f64() / prof_ws.as_secs_f64(),
                    "steals": prof_steals,
                    "cells_claimed": prof_claims,
                    "busy_fraction_min": busy_min,
                    "busy_fraction_mean": busy_mean,
                    "warm_rows": json!({ "iterations": warm_rows_iters }),
                    "warm_graph": json!({ "iterations": warm_graph_iters }),
                }),
            });
            let config_blob = json!({
                "grid_rows": rows,
                "grid_cols": cols,
                "sweep": sweep_config,
                "sim_items": sim_items,
            });
            let path = RunManifest::new("perf", config_blob, results_blob)
                .write()
                .expect("metrics written");
            eprintln!("wrote {}", path.display());
        }
        MetricsFormat::Csv => {
            let rows: Vec<Vec<String>> = results
                .iter()
                .map(|r| {
                    vec![
                        r.id.clone(),
                        format!("{:.0}", r.mean_ns),
                        format!("{:.0}", r.min_ns),
                        r.samples.to_string(),
                    ]
                })
                .collect();
            let path = write_metrics_csv("perf", &["id", "mean_ns", "min_ns", "samples"], &rows)
                .expect("metrics written");
            eprintln!("wrote {}", path.display());
        }
    }
}
