//! Criterion bench for experiment E1: the Table-1 measurement pipeline
//! (synthetic data generation, the four real stages, and the SIMT
//! kernels).

use criterion::{criterion_group, criterion_main, Criterion};
use rtsdf::blast::{measure_pipeline, MeasurementConfig};
use std::hint::black_box;

fn small_config() -> MeasurementConfig {
    MeasurementConfig {
        genome_len: 20_000,
        query_len: 8_000,
        homology_segments: 8,
        positions: 6_000,
        ..MeasurementConfig::default()
    }
}

fn bench_table1_measurement(c: &mut Criterion) {
    c.bench_function("table1_measure_pipeline_small", |b| {
        let cfg = small_config();
        b.iter(|| black_box(measure_pipeline(&cfg).unwrap()))
    });
}

fn bench_stage_kernels(c: &mut Criterion) {
    use rtsdf::blast::kernels::{measure_service_time, stage_kernels};
    use rtsdf::device::Machine;
    let machine = Machine::new(128);
    let kernels = stage_kernels();
    let batch: Vec<Vec<Vec<i64>>> = vec![(0..128).map(|i| vec![i * 31 + 7]).collect()];
    let mut group = c.benchmark_group("simt_kernels");
    for (name, prog) in [
        ("seed", &kernels.seed),
        ("extend", &kernels.extend),
        ("filter", &kernels.filter),
        ("align", &kernels.align),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(measure_service_time(&machine, prog, &batch, 4)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_measurement, bench_stage_kernels);
criterion_main!(benches);
