//! Experiment E8 — ablations over the design choices DESIGN.md calls
//! out: backlog factors, the monolithic (b, S) safety knobs, the SIMD
//! width, and the pipeline depth dependence of the asymptotic
//! advantage.
//!
//! ```text
//! cargo run --release -p bench --bin ablation
//! ```

use rtsdf::model::analysis;
use rtsdf::prelude::*;

fn blast() -> PipelineSpec {
    rtsdf::blast::paper_pipeline()
}

fn blast_with_width(v: u32) -> PipelineSpec {
    let p = blast();
    let mut b = PipelineSpecBuilder::new(v);
    for n in p.nodes() {
        b = b.stage(n.name.clone(), n.service_time, n.gain.clone());
    }
    b.build().unwrap()
}

fn main() {
    let params = RtParams::new(10.0, 1e5).unwrap();

    // --- A1: sensitivity to the backlog factors -----------------------
    println!("A1 — enforced active fraction vs backlog factors (tau0=10, D=1e5):");
    let mut rows = Vec::new();
    for (label, b) in [
        ("optimistic ceil(g)", vec![1.0, 2.0, 1.0, 1.0]),
        ("paper [1,3,9,6]", vec![1.0, 3.0, 9.0, 6.0]),
        ("double paper", vec![2.0, 6.0, 18.0, 12.0]),
        ("uniform 8", vec![8.0, 8.0, 8.0, 8.0]),
    ] {
        let p = blast();
        let af = EnforcedWaitsProblem::new(&p, params, b.clone())
            .solve(SolveMethod::WaterFilling)
            .map(|s| s.active_fraction);
        rows.push(vec![
            label.to_string(),
            format!("{b:?}"),
            af.map_or("infeasible".into(), |a| format!("{a:.4}")),
        ]);
    }
    print!(
        "{}",
        bench::render_table(&["label", "b", "active fraction"], &rows)
    );
    println!();

    // --- A2: monolithic safety knobs ----------------------------------
    println!("A2 — monolithic (b, S) vs active fraction (tau0=30, D=1e5):");
    let params_m = RtParams::new(30.0, 1e5).unwrap();
    let mut rows = Vec::new();
    for (b, s) in [(1.0, 1.0), (1.0, 1.5), (1.0, 2.0), (2.0, 1.0), (3.0, 1.0)] {
        let p = blast();
        let r = MonolithicProblem::new(&p, params_m, b, s).solve();
        rows.push(vec![
            format!("b={b}, S={s}"),
            r.as_ref().map_or("-".into(), |m| m.block_size.to_string()),
            r.map_or("infeasible".into(), |m| format!("{:.4}", m.active_fraction)),
        ]);
    }
    print!(
        "{}",
        bench::render_table(&["knobs", "M*", "active fraction"], &rows)
    );
    println!();

    // --- A3: SIMD width ------------------------------------------------
    println!("A3 — both strategies vs SIMD width (tau0=10, D=1e5):");
    let mut rows = Vec::new();
    for v in [32, 64, 128, 256, 512] {
        let p = blast_with_width(v);
        let e = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
            .solve(SolveMethod::WaterFilling)
            .ok()
            .map(|s| s.active_fraction);
        let m = MonolithicProblem::new(&p, params, 1.0, 1.0)
            .solve_fast()
            .ok()
            .map(|s| s.active_fraction);
        rows.push(vec![
            v.to_string(),
            bench::opt_fmt(e, 4),
            bench::opt_fmt(m, 4),
        ]);
    }
    print!(
        "{}",
        bench::render_table(&["v", "enforced", "monolithic"], &rows)
    );
    println!("(wider vectors help both, but the enforced advantage persists)");
    println!();

    // --- A4: pipeline depth and the N-fold asymptote -------------------
    println!("A4 — asymptotic monolithic/enforced ratio equals the stage count:");
    let mut rows = Vec::new();
    for n in [2usize, 3, 4, 6, 8] {
        let mut b = PipelineSpecBuilder::new(128);
        for i in 0..n {
            b = b.stage(
                format!("s{i}"),
                200.0 + 100.0 * i as f64,
                GainModel::Bernoulli { p: 0.8 },
            );
        }
        let p = b.build().unwrap();
        let pr = RtParams::new(10.0, 1e9).unwrap();
        let ratio = analysis::monolithic_limit_active_fraction(&p, &pr)
            / analysis::enforced_limit_active_fraction(&p, &pr);
        rows.push(vec![n.to_string(), format!("{ratio:.2}")]);
    }
    print!(
        "{}",
        bench::render_table(&["stages N", "limit ratio"], &rows)
    );
}
