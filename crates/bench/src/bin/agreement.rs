//! Experiment E6 — optimizer-vs-simulator agreement (§6.2's "closely
//! matched" claim, quantified).
//!
//! ```text
//! cargo run --release -p bench --bin agreement
//! ```

use rtsdf::prelude::*;
use rtsdf::sim::validate::{enforced_agreement, monolithic_agreement};

fn main() {
    let pipeline = rtsdf::blast::paper_pipeline();
    let enforced_points: Vec<RtParams> = [(5.0, 5e4), (10.0, 1e5), (30.0, 2e5), (80.0, 3e5)]
        .iter()
        .map(|&(t, d)| RtParams::new(t, d).unwrap())
        .collect();
    // Monolithic blocks hold thousands of items at fast arrival rates;
    // use points whose optimal M is well under the stream length.
    let mono_points: Vec<RtParams> = [(30.0, 1e5), (60.0, 2e5), (80.0, 3e5), (100.0, 3.5e5)]
        .iter()
        .map(|&(t, d)| RtParams::new(t, d).unwrap())
        .collect();

    println!("optimizer-predicted vs simulator-measured active fraction");
    println!();
    for report in [
        enforced_agreement(
            &pipeline,
            &enforced_points,
            &[1.0, 3.0, 9.0, 6.0],
            20_000,
            7,
        ),
        monolithic_agreement(&pipeline, &mono_points, 1.0, 1.0, 30_000, 7),
    ] {
        println!("{}:", report.strategy);
        let rows: Vec<Vec<String>> = report
            .cells
            .iter()
            .map(|c| {
                vec![
                    format!("{:.1}", c.tau0),
                    format!("{:.0}", c.deadline),
                    format!("{:.4}", c.predicted),
                    format!("{:.4}", c.measured),
                    format!("{:.2}%", 100.0 * c.rel_error()),
                ]
            })
            .collect();
        print!(
            "{}",
            bench::render_table(&["tau0", "D", "predicted", "measured", "rel err"], &rows)
        );
        println!(
            "worst relative error: {:.2}%",
            100.0 * report.worst_rel_error()
        );
        println!();
    }
}
