//! Experiment E7 (extension) — a-priori backlog factors from
//! bulk-service queueing theory vs the empirical calibration.
//!
//! The paper's §7 proposes deriving the `b_i` from queueing theory
//! rather than simulation. This binary runs both routes on the same
//! operating points and prints them side by side.
//!
//! ```text
//! cargo run --release -p bench --bin apriori_b
//! ```

use rtsdf::prelude::*;
use rtsdf::queueing::estimate::{estimate_backlog_factors, EstimateConfig};
use rtsdf::sim::calibration::{calibrate_enforced, CalibrationConfig};

fn main() {
    let pipeline = rtsdf::blast::paper_pipeline();
    let points: Vec<RtParams> = [(10.0, 3e4), (10.0, 6e4), (20.0, 1e5)]
        .iter()
        .map(|&(t, d)| RtParams::new(t, d).unwrap())
        .collect();

    println!("a-priori (bulk-queue theory) backlog factors per operating point:");
    println!();
    let mut rows = Vec::new();
    for params in &points {
        // A schedule must exist before its queues can be analyzed; use
        // the paper's factors for the design, then estimate what the
        // theory would have prescribed.
        let sched = EnforcedWaitsProblem::new(&pipeline, *params, vec![1.0, 3.0, 9.0, 6.0])
            .solve(SolveMethod::WaterFilling)
            .expect("feasible");
        let est = estimate_backlog_factors(
            &pipeline,
            &sched.periods,
            params.tau0,
            &EstimateConfig::default(),
        );
        rows.push(vec![
            format!("{:.0}", params.tau0),
            format!("{:.0}", params.deadline),
            format!("{:?}", est.iter().map(|e| e.b).collect::<Vec<_>>()),
            format!(
                "{:?}",
                est.iter()
                    .map(|e| (e.utilization * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            ),
            est.iter().any(|e| e.saturated).to_string(),
        ]);
    }
    print!(
        "{}",
        bench::render_table(
            &["tau0", "D", "b (theory)", "utilization", "saturated?"],
            &rows
        )
    );

    println!();
    println!("empirical calibration on the same points (scaled-down §6.2):");
    let result = calibrate_enforced(
        &pipeline,
        &CalibrationConfig {
            seeds_per_point: 12,
            stream_length: 6_000,
            ..CalibrationConfig::quick(points)
        },
    );
    println!(
        "  b (empirical) = {:?} in {} rounds (converged: {})",
        result.b,
        result.rounds.len(),
        result.converged
    );
    println!("  b (paper)     = [1.0, 3.0, 9.0, 6.0]");
}
