//! Compare two `BENCH_*.json` run manifests and gate on regressions.
//!
//! ```text
//! cargo run --release -p bench --bin bench_diff -- \
//!     results/baseline/BENCH_fig3.json BENCH_fig3.json \
//!     [--threshold 0.05] [--throughput-threshold 0.5] [--gate-wall] [--all] \
//!     [--json-verdict verdict.json]
//! ```
//!
//! Prints a delta table (changed leaves only; `--all` includes
//! unchanged ones) and exits 0 when clean, 1 on a regression past the
//! threshold, 2 when the manifests are not comparable (different
//! experiment or grid) or on usage errors. On a regression the full
//! table is followed by a `FAILED GATES` table holding only the keys
//! that gated, with the threshold each was judged against.
//! `--json-verdict <path>` additionally writes the verdict (exit code,
//! counts, failed gates) as JSON for downstream tooling.

use bench::{diff_manifests, diff_verdict, render_diff, render_failures, DiffConfig, RunManifest};

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff <baseline.json> <candidate.json> \
         [--threshold FRACTION] [--throughput-threshold FRACTION] \
         [--gate-wall] [--all] [--json-verdict PATH]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> RunManifest {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path} is not a run manifest: {e:?}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = DiffConfig::default();
    let mut files = Vec::new();
    let mut json_verdict: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json-verdict" => {
                let Some(path) = it.next() else {
                    usage();
                };
                json_verdict = Some(path.clone());
            }
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    usage();
                };
                if !(v.is_finite() && v >= 0.0) {
                    usage();
                }
                config.threshold = v;
            }
            "--throughput-threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    usage();
                };
                if !(v.is_finite() && v >= 0.0) {
                    usage();
                }
                config.throughput_threshold = v;
            }
            "--gate-wall" => config.gate_wall = true,
            "--all" => config.show_unchanged = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => files.push(other.to_string()),
        }
    }
    let [baseline, candidate] = files.as_slice() else {
        usage();
    };
    let old = load(baseline);
    let new = load(candidate);
    println!(
        "comparing {} ({}) -> {} ({})",
        baseline,
        old.git_rev.as_deref().unwrap_or("unknown rev"),
        candidate,
        new.git_rev.as_deref().unwrap_or("unknown rev"),
    );
    let report = diff_manifests(&old, &new, &config);
    print!("{}", render_diff(&report, &config));
    // A developer reading a red CI log wants the failed gates alone,
    // not the whole delta table: repeat just those at the end.
    print!("{}", render_failures(&report, &config));
    if let Some(path) = json_verdict {
        let verdict = diff_verdict(&report, &config);
        let text = serde_json::to_string(&verdict).expect("verdict serializes");
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("bench_diff: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote verdict to {path}");
    }
    std::process::exit(report.exit_code());
}
