//! Experiment E2 — the §6.2 backlog-factor calibration.
//!
//! Runs the escalation loop (optimize → simulate across seeds → raise
//! the factors of overflowing nodes) on a grid of operating points and
//! prints the per-round history. Flags scale the methodology:
//!
//! ```text
//! cargo run --release -p bench --bin calibrate            # scaled-down
//! cargo run --release -p bench --bin calibrate -- --full  # paper scale
//! ```
//!
//! Paper scale means 50 000-item streams and 100 seeds per grid point
//! (several minutes); the scaled-down run preserves the methodology at
//! a fraction of the cost. `--metrics json|csv` writes a
//! `BENCH_calibrate` run manifest with the per-round history.

use bench::{MetricsFormat, RunManifest};
use rtsdf::prelude::*;
use rtsdf::sim::calibration::{calibrate_enforced, CalibrationConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let metrics = bench::parse_metrics_flag(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let pipeline = rtsdf::blast::paper_pipeline();
    // The grid mixes tight deadlines (where optimistic factors fail and
    // escalation has to work) with relaxed ones (where any factors
    // pass) — the paper's calibration likewise had to survive its whole
    // (tau0, D) grid at once.
    let grid: Vec<RtParams> = [
        (5.0, 2.5e4),
        (10.0, 3e4),
        (5.0, 5e4),
        (10.0, 1e5),
        (30.0, 1.5e5),
        (80.0, 3e5),
    ]
    .iter()
    .map(|&(t, d)| RtParams::new(t, d).unwrap())
    .collect();

    let config = if full {
        CalibrationConfig {
            grid,
            seeds_per_point: 100,
            stream_length: 50_000,
            target_miss_free: 0.95,
            max_rounds: 16,
            b_cap: 64.0,
        }
    } else {
        CalibrationConfig {
            seeds_per_point: 16,
            stream_length: 8_000,
            ..CalibrationConfig::quick(grid)
        }
    };

    println!(
        "calibrating enforced-waits backlog factors ({} seeds x {} items per grid point)",
        config.seeds_per_point, config.stream_length
    );
    println!(
        "grid: {} operating points; target: >= {:.0}% miss-free seeds everywhere",
        config.grid.len(),
        100.0 * config.target_miss_free
    );
    println!();

    let result = calibrate_enforced(&pipeline, &config);

    if let Some(format) = metrics {
        let path = match format {
            MetricsFormat::Json => RunManifest::new(
                "calibrate",
                serde_json::to_value(&config).expect("config serializes"),
                serde_json::to_value(&result).expect("result serializes"),
            )
            .write()
            .expect("manifest written"),
            MetricsFormat::Csv => {
                let rows: Vec<Vec<String>> = result
                    .rounds
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        vec![
                            i.to_string(),
                            format!("{:?}", r.b).replace(',', ";"),
                            format!("{:.4}", r.worst_miss_free),
                            r.worst_point
                                .map_or("-".into(), |(t, d)| format!("({t:.0}; {d:.0})")),
                        ]
                    })
                    .collect();
                bench::manifest::write_metrics_csv(
                    "calibrate",
                    &["round", "b", "worst_miss_free", "worst_point"],
                    &rows,
                )
                .expect("metrics csv written")
            }
        };
        eprintln!("wrote {}", path.display());
    }

    let rows: Vec<Vec<String>> = result
        .rounds
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                i.to_string(),
                format!("{:?}", r.b),
                format!("{:.2}", r.worst_miss_free),
                r.worst_point
                    .map_or("-".into(), |(t, d)| format!("({t:.0}, {d:.0})")),
                format!(
                    "{:?}",
                    r.observed_backlog
                        .iter()
                        .map(|b| (b * 100.0).round() / 100.0)
                        .collect::<Vec<_>>()
                ),
            ]
        })
        .collect();
    print!(
        "{}",
        bench::render_table(
            &[
                "round",
                "b",
                "worst miss-free",
                "worst point",
                "observed backlog (vectors)"
            ],
            &rows
        )
    );
    println!();
    println!(
        "final b = {:?} (converged: {}); paper's full-scale calibration: b = [1, 3, 9, 6]",
        result.b, result.converged
    );
}
