//! Experiment E12 (extension) — co-scheduling multiple pipelines.
//!
//! The paper's §2.3 motivation for minimizing active fraction is that
//! yielded processor time "could be used, e.g., to support other
//! applications running on the same system". This binary makes that
//! concrete: how many real-time BLAST instances fit on one device as a
//! function of deadline slack, and a mixed-workload admission example.
//!
//! ```text
//! cargo run --release -p bench --bin coschedule
//! ```

use rtsdf::apps::{gamma, ids};
use rtsdf::core::coschedule::{admit, max_replicas, Workload};
use rtsdf::prelude::*;

fn main() {
    let blast = rtsdf::blast::paper_pipeline();
    let b = vec![1.0, 3.0, 9.0, 6.0];

    println!("replicas of the BLAST pipeline admissible on one device (tau0 = 30):");
    let mut rows = Vec::new();
    for d in [3e4, 5e4, 1e5, 2e5, 3.5e5] {
        let w = Workload {
            pipeline: &blast,
            params: RtParams::new(30.0, d).unwrap(),
            b: b.clone(),
        };
        match max_replicas(&w) {
            Ok(n) => rows.push(vec![format!("{d:.0}"), n.to_string()]),
            Err(e) => rows.push(vec![format!("{d:.0}"), format!("0 ({e})")]),
        }
    }
    print!(
        "{}",
        bench::render_table(&["deadline", "max replicas"], &rows)
    );
    println!("(deadline slack buys co-residency — the paper's motivation, quantified)");

    println!();
    println!("mixed workload: BLAST + gamma-ray telescope + IDS on one device");
    let gamma_p = gamma::synthesize(&gamma::GammaConfig::default(), 1).expect("gamma pipeline");
    let ids_p = ids::synthesize(&ids::IdsConfig::default(), 1).expect("ids pipeline");
    let mk_b = |p: &rtsdf::model::PipelineSpec| -> Vec<f64> {
        p.mean_gains()
            .iter()
            .map(|g| (g.ceil() + 1.0).max(2.0))
            .collect()
    };
    let workloads = [
        Workload {
            pipeline: &blast,
            params: RtParams::new(30.0, 2e5).unwrap(),
            b: b.clone(),
        },
        Workload {
            pipeline: &gamma_p,
            params: RtParams::new(40.0, 8e4).unwrap(),
            b: mk_b(&gamma_p),
        },
        Workload {
            pipeline: &ids_p,
            params: RtParams::new(60.0, 1e5).unwrap(),
            b: mk_b(&ids_p),
        },
    ];
    match admit(&workloads) {
        Ok(cs) => {
            for w in &cs.workloads {
                println!(
                    "  workload {}: utilization {:.4}, shares {:?}",
                    w.index,
                    w.schedule.utilization,
                    w.schedule
                        .shares
                        .iter()
                        .map(|s| (s * 1000.0).round() / 1000.0)
                        .collect::<Vec<_>>()
                );
            }
            println!(
                "  admitted: total utilization {:.4}, spare {:.4}",
                cs.total_utilization, cs.spare
            );
        }
        Err(e) => println!("  rejected: {e}"),
    }
}
