//! Experiment E3/E4 — regenerate Figure 3: the optimized active
//! fraction of each strategy over the (τ0, D) grid.
//!
//! Prints two ASCII surfaces plus the underlying CSV so the numbers can
//! be replotted. `--metrics json` additionally writes a `BENCH_fig3.json`
//! run manifest with per-cell solver telemetry (method, iterations,
//! wall time, fallbacks); `--metrics csv` writes the same data flat to
//! `BENCH_fig3.csv`.
//!
//! `--grid RxC` shrinks the τ0 × D grid from the paper's 16x16 (CI
//! runs a small grid and diffs the manifest against the committed
//! baseline with `bench_diff`).
//!
//! ```text
//! cargo run --release -p bench --bin fig3 [-- --csv] [--metrics json|csv] [--grid RxC]
//! ```

use bench::manifest::emit_sweep_metrics;
use rtsdf::core::comparison::{sweep_parallel, SweepConfig};
use rtsdf::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let metrics = bench::parse_metrics_flag(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let (rows, cols) = match args.iter().position(|a| a == "--grid") {
        None => (16, 16),
        Some(pos) => {
            let parsed = args.get(pos + 1).and_then(|v| {
                let (r, c) = v.split_once('x')?;
                Some((r.parse::<usize>().ok()?, c.parse::<usize>().ok()?))
            });
            match parsed {
                Some((r, c)) if r >= 2 && c >= 2 => (r, c),
                _ => {
                    eprintln!("--grid expects RxC with R, C >= 2 (e.g. --grid 4x4)");
                    std::process::exit(2);
                }
            }
        }
    };
    let pipeline = rtsdf::blast::paper_pipeline();
    let (tau0s, ds) = RtParams::paper_grid(rows, cols);
    let sweep_config = SweepConfig::paper_blast();
    let result =
        sweep_parallel(&pipeline, &tau0s, &ds, &sweep_config).expect("paper grid is valid");

    if let Some(format) = metrics {
        let path =
            emit_sweep_metrics("fig3", &result, &sweep_config, format).expect("metrics written");
        eprintln!("wrote {}", path.display());
    }

    if csv {
        let rows: Vec<Vec<String>> = result
            .cells
            .iter()
            .map(|c| {
                vec![
                    format!("{:.4}", c.tau0),
                    format!("{:.0}", c.deadline),
                    bench::opt_fmt(c.enforced, 6),
                    bench::opt_fmt(c.monolithic, 6),
                ]
            })
            .collect();
        print!(
            "{}",
            bench::render_csv(&["tau0", "deadline", "enforced_af", "monolithic_af"], &rows)
        );
        return;
    }

    println!("Figure 3 — optimized active fractions over the (tau0, D) grid");
    println!("rows: tau0 (geometric 1..100); columns: D (linear 2e4..3.5e5)");
    println!();
    let labels: Vec<String> = tau0s.iter().map(|t| format!("tau0={t:7.2}")).collect();
    for (name, pick) in [("enforced waits", 0usize), ("monolithic", 1usize)] {
        let grid: Vec<Vec<Option<f64>>> = (0..tau0s.len())
            .map(|i| {
                (0..ds.len())
                    .map(|j| {
                        let c = result.cell(i, j);
                        if pick == 0 {
                            c.enforced
                        } else {
                            c.monolithic
                        }
                    })
                    .collect()
            })
            .collect();
        print!(
            "{}",
            bench::render_heatmap(&grid, 0.0, 1.0, &labels, &format!("{name} active fraction"))
        );
        println!();
    }

    // The paper's qualitative observations, quantified on this run:
    let e_col_drop = {
        // enforced: sensitivity to D at mid tau0.
        let i = tau0s.len() / 2;
        let first = result.cell(i, 0).enforced;
        let last = result.cell(i, ds.len() - 1).enforced;
        (first, last)
    };
    println!(
        "enforced at tau0={:.1}: af {} at D={:.0} -> {} at D={:.0} (scales with D)",
        tau0s[tau0s.len() / 2],
        bench::opt_fmt(e_col_drop.0, 3),
        ds[0],
        bench::opt_fmt(e_col_drop.1, 3),
        ds[ds.len() - 1]
    );
    let m_row_drop = {
        let j = ds.len() - 1;
        (
            result.cell(tau0s.len() / 2, j).monolithic,
            result.cell(tau0s.len() - 1, j).monolithic,
        )
    };
    println!(
        "monolithic at D={:.0}: af {} at tau0={:.1} -> {} at tau0={:.1} (scales with 1/tau0)",
        ds[ds.len() - 1],
        bench::opt_fmt(m_row_drop.0, 3),
        tau0s[tau0s.len() / 2],
        bench::opt_fmt(m_row_drop.1, 3),
        tau0s[tau0s.len() - 1]
    );
}
