//! Experiment E5 — regenerate Figure 4: the difference surface
//! (monolithic − enforced active fraction) and its zero crossing.
//! `--metrics json|csv` writes a `BENCH_fig4` run manifest with
//! per-cell solver telemetry.
//!
//! ```text
//! cargo run --release -p bench --bin fig4 [-- --csv] [--metrics json|csv]
//! ```

use bench::manifest::emit_sweep_metrics;
use rtsdf::core::comparison::{sweep_parallel, SweepConfig};
use rtsdf::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let metrics = bench::parse_metrics_flag(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let pipeline = rtsdf::blast::paper_pipeline();
    let (tau0s, ds) = RtParams::paper_grid(16, 16);
    let sweep_config = SweepConfig::paper_blast();
    let result =
        sweep_parallel(&pipeline, &tau0s, &ds, &sweep_config).expect("paper grid is valid");

    if let Some(format) = metrics {
        let path =
            emit_sweep_metrics("fig4", &result, &sweep_config, format).expect("metrics written");
        eprintln!("wrote {}", path.display());
    }

    if csv {
        let rows: Vec<Vec<String>> = result
            .cells
            .iter()
            .map(|c| {
                vec![
                    format!("{:.4}", c.tau0),
                    format!("{:.0}", c.deadline),
                    bench::opt_fmt(c.difference(), 6),
                ]
            })
            .collect();
        print!(
            "{}",
            bench::render_csv(&["tau0", "deadline", "mono_minus_enforced"], &rows)
        );
        return;
    }

    println!("Figure 4 — monolithic minus enforced active fraction");
    println!("(positive = enforced waits win; 'x' = at least one strategy infeasible)");
    println!();
    let labels: Vec<String> = tau0s.iter().map(|t| format!("tau0={t:7.2}")).collect();
    let grid: Vec<Vec<Option<f64>>> = (0..tau0s.len())
        .map(|i| {
            (0..ds.len())
                .map(|j| result.cell(i, j).difference())
                .collect()
        })
        .collect();
    print!(
        "{}",
        bench::render_heatmap(&grid, -0.8, 0.8, &labels, "difference surface")
    );
    println!();

    // Zero-crossing row per τ0: the smallest D where enforced wins.
    println!("zero-plane crossing (smallest D where enforced waits win):");
    for (i, &tau0) in tau0s.iter().enumerate() {
        let crossing =
            (0..ds.len()).find(|&j| result.cell(i, j).difference().is_some_and(|d| d > 0.0));
        match crossing {
            Some(j) => println!("  tau0 = {tau0:7.2}: D >= {:9.0}", ds[j]),
            None => println!("  tau0 = {tau0:7.2}: never (monolithic wins or infeasible)"),
        }
    }
    println!();
    println!(
        "summary: enforced wins {:.0}% of comparable cells; max advantage {:+.3}; max monolithic advantage {:+.3}",
        100.0 * result.enforced_win_fraction(),
        result.max_enforced_advantage().unwrap_or(0.0),
        result.max_monolithic_advantage().unwrap_or(0.0),
    );
}
