//! Experiment E9 (extension) — flexible processor shares (§7 future
//! work: "more coarse-grained division of processor time").
//!
//! Compares processor utilization of the paper's equal-share
//! enforced-waits scheme against the flexible-share generalization
//! across deadlines, and validates the flexible schedules' deadline
//! behaviour in simulation.
//!
//! ```text
//! cargo run --release -p bench --bin flexible
//! ```

use rtsdf::core::flexible::{with_service_times, FlexibleSharesProblem};
use rtsdf::prelude::*;

fn main() {
    let p = rtsdf::blast::paper_pipeline();
    let b = vec![1.0, 3.0, 9.0, 6.0];
    let tau0 = 10.0;

    println!("equal vs flexible processor shares on the BLAST pipeline (tau0 = {tau0})");
    println!("(utilization = fraction of the whole processor consumed; lower is better)");
    println!();
    let mut rows = Vec::new();
    for d in [1.7e4, 2e4, 2.5e4, 3e4, 5e4, 1e5, 2e5, 3.5e5] {
        let params = RtParams::new(tau0, d).unwrap();
        let prob = FlexibleSharesProblem::new(&p, params, b.clone());
        let equal = prob.equal_share_baseline().ok();
        let flexible = prob.solve().ok().map(|s| s.utilization);
        rows.push(vec![
            format!("{d:.0}"),
            equal.map_or("infeasible".into(), |v| format!("{v:.4}")),
            flexible.map_or("infeasible".into(), |v| format!("{v:.4}")),
            match (equal, flexible) {
                (Some(e), Some(f)) => format!("{:+.1}%", 100.0 * (f - e) / e),
                (None, Some(_)) => "flexible only".into(),
                _ => "-".into(),
            },
        ]);
    }
    print!(
        "{}",
        bench::render_table(&["D", "equal shares", "flexible shares", "delta"], &rows)
    );

    // Validate one tight-deadline flexible schedule in simulation: build
    // the realized pipeline (service time = full period under the
    // chosen share) and check misses.
    println!();
    let d = 2.5e4;
    let params = RtParams::new(tau0, d).unwrap();
    let sched = FlexibleSharesProblem::new(&p, params, b.clone())
        .solve()
        .expect("feasible");
    println!(
        "flexible schedule at D = {d:.0}: shares {:?}",
        sched
            .shares
            .iter()
            .map(|s| (s * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    let realized = with_service_times(&p, &sched.service_times);
    let wait_schedule = WaitSchedule {
        waits: vec![0.0; p.len()],
        periods: sched.periods.clone(),
        active_fraction: sched.utilization,
        backlog_factors: b,
        latency_bound: sched.latency_bound,
        method: SolveMethod::WaterFilling,
        telemetry: None,
    };
    let report = run_seeds_enforced(
        &realized,
        &wait_schedule,
        d,
        &SimConfig::quick(tau0, 0, 10_000),
        10,
    );
    println!(
        "simulated 10 seeds x 10k items: miss-free {:.0}%, worst miss rate {:.3}%",
        100.0 * report.miss_free_fraction(),
        100.0 * report.worst_miss_rate()
    );
}
