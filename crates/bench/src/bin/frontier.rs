//! Experiment E11 (analysis) — the schedulability frontiers behind the
//! infeasible regions of Figures 3/4 and the paper's §6.1 remark that
//! deadlines below 2×10⁴ cycles admit no feasible realization.
//!
//! ```text
//! cargo run --release -p bench --bin frontier
//! ```

use rtsdf::core::frontier::{enforced_min_tau0, frontier, monolithic_min_tau0_asymptote};

fn main() {
    let p = rtsdf::blast::paper_pipeline();
    let b = [1.0, 3.0, 9.0, 6.0];

    println!("arrival-rate limits (smallest sustainable tau0):");
    println!(
        "  enforced waits:  {:.3} cycles/item (head stability x̂_0/v)",
        enforced_min_tau0(&p)
    );
    println!(
        "  monolithic:      {:.3} cycles/item (asymptote Σ G_i·t_i / v; finite M slightly worse)",
        monolithic_min_tau0_asymptote(&p)
    );
    println!();

    let tau0s: Vec<f64> = [1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 15.0, 25.0, 50.0, 100.0].to_vec();
    let pts = frontier(&p, &b, 1.0, 1.0, &tau0s);
    println!("minimum feasible deadline per strategy (cycles):");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|pt| {
            vec![
                format!("{:.0}", pt.tau0),
                pt.enforced
                    .map_or("unsustainable".into(), |d| format!("{d:.0}")),
                pt.monolithic
                    .map_or("unsustainable".into(), |d| format!("{d:.0}")),
            ]
        })
        .collect();
    print!(
        "{}",
        bench::render_table(&["tau0", "enforced D_min", "monolithic D_min"], &rows)
    );
    println!();
    println!(
        "paper §6.1: \"Values of D below 2x10^4 cycles resulted in no feasible\n\
         (that is, substantially miss-free) realizations of the pipeline by either\n\
         approach\" — the enforced frontier with the paper's b sits at {:.0} cycles,\n\
         and the monolithic frontier rises linearly with tau0 (accumulating a block\n\
         costs b·M·tau0).",
        pts.iter().find_map(|p| p.enforced).unwrap_or(f64::NAN)
    );
}
