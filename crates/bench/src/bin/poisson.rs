//! Experiment E10 (extension) — Poisson arrivals.
//!
//! The paper assumes a fixed arrival rate and notes (§7) that Poisson
//! arrivals are "a reasonable generalization". This binary quantifies
//! what that generalization costs: the same enforced-waits schedules
//! are simulated under periodic and Poisson arrivals of equal mean
//! rate, and the backlog factors are recalibrated under Poisson
//! arrivals.
//!
//! ```text
//! cargo run --release -p bench --bin poisson
//! ```

use rtsdf::model::ArrivalProcess;
use rtsdf::prelude::*;
use rtsdf::sim::calibration::{calibrate_enforced, CalibrationConfig};

fn main() {
    let p = rtsdf::blast::paper_pipeline();
    let b = vec![1.0, 3.0, 9.0, 6.0];

    println!("periodic vs Poisson arrivals under the paper-calibrated b = {b:?}");
    println!();
    let mut rows = Vec::new();
    for (tau0, d) in [(5.0, 2.6e4), (10.0, 3e4), (10.0, 1e5)] {
        let params = RtParams::new(tau0, d).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, b.clone())
            .solve(SolveMethod::WaterFilling)
            .expect("feasible");
        let mut stats = Vec::new();
        for arrivals in [
            ArrivalProcess::Periodic { tau0 },
            ArrivalProcess::Poisson { tau0 },
        ] {
            let mut cfg = SimConfig::quick(tau0, 0, 10_000);
            cfg.arrivals = arrivals;
            let report = run_seeds_enforced(&p, &sched, d, &cfg, 12);
            stats.push((report.miss_free_fraction(), report.worst_miss_rate()));
        }
        rows.push(vec![
            format!("{tau0:.0}"),
            format!("{d:.0}"),
            format!("{:.2} / {:.4}%", stats[0].0, 100.0 * stats[0].1),
            format!("{:.2} / {:.4}%", stats[1].0, 100.0 * stats[1].1),
        ]);
    }
    print!(
        "{}",
        bench::render_table(
            &[
                "tau0",
                "D",
                "periodic (miss-free / worst rate)",
                "poisson (miss-free / worst rate)"
            ],
            &rows
        )
    );

    // Recalibrate under Poisson arrivals.
    println!();
    println!("recalibrating the backlog factors under Poisson arrivals...");
    let grid = vec![
        RtParams::new(5.0, 2.6e4).unwrap(),
        RtParams::new(10.0, 3e4).unwrap(),
    ];
    let mut config = CalibrationConfig::quick(grid);
    config.seeds_per_point = 12;
    config.stream_length = 8_000;
    // The quick config simulates with periodic arrivals by default; the
    // calibration loop itself is arrival-agnostic, so we emulate the
    // Poisson study by bumping the targets through direct simulation:
    let result = calibrate_enforced(&p, &config);
    println!("  periodic-arrivals calibration: b = {:?}", result.b);

    // Poisson check at the periodic-calibrated factors, then escalate by
    // hand until miss-free, reporting the gap.
    let mut b_poisson = result.b.clone();
    for round in 0..8 {
        let mut worst: f64 = 1.0;
        let mut observed = vec![0.0_f64; p.len()];
        for params in [
            RtParams::new(5.0, 2.6e4).unwrap(),
            RtParams::new(10.0, 3e4).unwrap(),
        ] {
            let Ok(sched) = EnforcedWaitsProblem::new(&p, params, b_poisson.clone())
                .solve(SolveMethod::WaterFilling)
            else {
                continue;
            };
            let mut cfg = SimConfig::quick(params.tau0, 0, 8_000);
            cfg.arrivals = ArrivalProcess::Poisson { tau0: params.tau0 };
            let report = run_seeds_enforced(&p, &sched, params.deadline, &cfg, 12);
            worst = worst.min(report.miss_free_fraction());
            for (o, &x) in observed.iter_mut().zip(&report.max_backlog_vectors()) {
                *o = o.max(x);
            }
        }
        println!("  poisson round {round}: b = {b_poisson:?}, worst miss-free {worst:.2}");
        if worst >= 0.95 {
            break;
        }
        for (bi, &oi) in b_poisson.iter_mut().zip(&observed) {
            *bi = bi.max(oi.ceil());
        }
    }
    println!();
    if b_poisson
        .iter()
        .zip(&result.b)
        .any(|(pois, per)| pois > per)
    {
        println!(
            "conclusion: Poisson arrivals need b >= {b_poisson:?} vs periodic {:?} — burstier\n\
             input inflates worst-case queues, as the paper's queueing outlook predicts",
            result.b
        );
    } else {
        println!(
            "conclusion: at these operating points the periodic-calibrated b = {:?} already\n\
             absorbs Poisson variability (the deadline slack dominates arrival jitter)",
            result.b
        );
    }
}
