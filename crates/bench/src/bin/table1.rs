//! Experiment E1 — regenerate Table 1.
//!
//! Prints the paper's Table 1 next to the measured analogue produced by
//! running the synthetic BLAST workload through the real stage
//! computations (for gains) and the SIMT kernels (for service times).
//!
//! `--metrics json|csv` additionally writes a `BENCH_table1` run
//! manifest with the paper and measured rows side by side.
//!
//! ```text
//! cargo run --release -p bench --bin table1 [-- --json] [--metrics json|csv]
//! ```

use bench::{MetricsFormat, RunManifest};
use rtsdf::blast::{measure_pipeline, paper_table1, MeasurementConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let metrics = bench::parse_metrics_flag(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let paper = paper_table1();
    let config = MeasurementConfig::default();
    let (_, measured) = measure_pipeline(&config).expect("measurement");

    if let Some(format) = metrics {
        let path = match format {
            MetricsFormat::Json => RunManifest::new(
                "table1",
                serde_json::to_value(&config).expect("config serializes"),
                serde_json::to_value(&serde_json::json!({
                    "paper": paper,
                    "measured": measured,
                }))
                .expect("rows serialize"),
            )
            .write()
            .expect("manifest written"),
            MetricsFormat::Csv => {
                let rows: Vec<Vec<String>> = paper
                    .rows
                    .iter()
                    .zip(&measured.rows)
                    .enumerate()
                    .map(|(i, (p, m))| {
                        vec![
                            i.to_string(),
                            p.name.clone(),
                            format!("{:.0}", p.service_time),
                            bench::opt_fmt(p.mean_gain, 4),
                            format!("{:.0}", m.service_time),
                            bench::opt_fmt(m.mean_gain, 4),
                        ]
                    })
                    .collect();
                bench::manifest::write_metrics_csv(
                    "table1",
                    &[
                        "node",
                        "stage",
                        "t_paper",
                        "g_paper",
                        "t_measured",
                        "g_measured",
                    ],
                    &rows,
                )
                .expect("metrics csv written")
            }
        };
        eprintln!("wrote {}", path.display());
    }

    if json {
        let out = serde_json::json!({
            "experiment": "table1",
            "paper": paper,
            "measured": measured,
        });
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
        return;
    }

    let rows: Vec<Vec<String>> = paper
        .rows
        .iter()
        .zip(&measured.rows)
        .enumerate()
        .map(|(i, (p, m))| {
            vec![
                i.to_string(),
                p.name.clone(),
                format!("{:.0}", p.service_time),
                bench::opt_fmt(p.mean_gain, 4),
                format!("{:.0}", m.service_time),
                bench::opt_fmt(m.mean_gain, 4),
            ]
        })
        .collect();
    println!("Table 1 — BLAST pipeline properties (v = 128)");
    println!("(paper columns measured on a GTX 2080; ours on the simulated SIMT device");
    println!(" with synthetic sequences — see DESIGN.md substitutions)");
    println!();
    print!(
        "{}",
        bench::render_table(
            &[
                "node",
                "stage",
                "t_i (paper)",
                "g_i (paper)",
                "t_i (ours)",
                "g_i (ours)"
            ],
            &rows
        )
    );
}
