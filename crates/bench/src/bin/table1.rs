//! Experiment E1 — regenerate Table 1.
//!
//! Prints the paper's Table 1 next to the measured analogue produced by
//! running the synthetic BLAST workload through the real stage
//! computations (for gains) and the SIMT kernels (for service times).
//!
//! ```text
//! cargo run --release -p bench --bin table1 [-- --json]
//! ```

use rtsdf::blast::{measure_pipeline, paper_table1, MeasurementConfig};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let paper = paper_table1();
    let (_, measured) = measure_pipeline(&MeasurementConfig::default()).expect("measurement");

    if json {
        let out = serde_json::json!({
            "experiment": "table1",
            "paper": paper,
            "measured": measured,
        });
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
        return;
    }

    let rows: Vec<Vec<String>> = paper
        .rows
        .iter()
        .zip(&measured.rows)
        .enumerate()
        .map(|(i, (p, m))| {
            vec![
                i.to_string(),
                p.name.clone(),
                format!("{:.0}", p.service_time),
                bench::opt_fmt(p.mean_gain, 4),
                format!("{:.0}", m.service_time),
                bench::opt_fmt(m.mean_gain, 4),
            ]
        })
        .collect();
    println!("Table 1 — BLAST pipeline properties (v = 128)");
    println!("(paper columns measured on a GTX 2080; ours on the simulated SIMT device");
    println!(" with synthetic sequences — see DESIGN.md substitutions)");
    println!();
    print!(
        "{}",
        bench::render_table(
            &["node", "stage", "t_i (paper)", "g_i (paper)", "t_i (ours)", "g_i (ours)"],
            &rows
        )
    );
}
