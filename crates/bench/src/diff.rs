//! Manifest-diff regression gating.
//!
//! Compares two [`RunManifest`]s cell-by-cell: the `results` blob of
//! each is flattened to leaf paths (`cells[3].enforced_telemetry.
//! iterations`), matching leaves are classified by their final key
//! segment, and numeric drift past a relative threshold on a *gated*
//! key counts as a regression. The `bench-diff` binary renders the
//! delta table and exits non-zero so CI can gate on it:
//!
//! - exit 0 — no regressions (improvements and informational drift OK)
//! - exit 1 — at least one gated metric regressed past the threshold
//! - exit 2 — manifests are not comparable (different experiment,
//!   different grid axes, or mismatched structure)
//!
//! Direction rules, by final key segment:
//!
//! | keys                                   | rule                      |
//! |----------------------------------------|---------------------------|
//! | `tau0`, `deadline`, `tau0s`, `deadlines` | identity (must match)   |
//! | `enforced`, `monolithic`               | lower is better (gated)   |
//! | `iterations`, `deadline_misses`, `misses`, `items_dropped` | higher is worse (gated) |
//! | `items_shed`, `resolves`, `total_shed`, `total_misses`, `total_dropped`, `total_resolves` | higher is worse (gated) |
//! | `conservation_violations`, `agreement_failures` | higher is worse (gated) |
//! | `items_per_sec`, `samples_per_sec`     | lower is worse (gated at the wider `--throughput-threshold`) |
//! | `wall_micros`                          | info (gated with `--gate-wall`) |
//! | everything else                        | informational             |
//!
//! Feasibility flips on gated keys (`null` ↔ number) gate too: losing a
//! feasible cell is a regression, gaining one is an improvement.

use crate::manifest::RunManifest;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;

/// How a leaf path participates in gating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Axis/configuration value: any mismatch makes the manifests
    /// incomparable.
    Identity,
    /// Gated metric where an increase is a regression (covers both
    /// "lower is better" objectives and "higher is worse" counters).
    Gated,
    /// Gated throughput metric where a *decrease* is a regression.
    /// Gated at [`DiffConfig::throughput_threshold`] — wider than the
    /// main threshold because rates are machine-load sensitive, but
    /// unlike wall times they gate by default: losing half the
    /// simulator's items/s is a hot-path regression, not noise.
    Throughput,
    /// Wall-clock timing: informational unless `gate_wall` is set.
    Wall,
    /// Reported but never gated.
    Info,
}

/// Classify a flattened leaf path by its final key segment
/// (array indices are stripped: `tau0s[3]` classifies as `tau0s`).
pub fn direction(path: &str) -> Direction {
    let last = path.rsplit('.').next().unwrap_or(path);
    let key = last.split('[').next().unwrap_or(last);
    match key {
        "tau0" | "deadline" | "tau0s" | "deadlines" => Direction::Identity,
        "enforced" | "monolithic" => Direction::Gated,
        "iterations" | "deadline_misses" | "misses" | "items_dropped" => Direction::Gated,
        "items_shed" | "resolves" | "total_shed" | "total_misses" | "total_dropped"
        | "total_resolves" => Direction::Gated,
        // Sim-vs-real cross-validation (BENCH_exec.json): any item-loss
        // or agreement failure in the threaded executor is a regression.
        "conservation_violations" | "agreement_failures" => Direction::Gated,
        // Hot-path throughput rates: lower is a regression. The
        // parallel-sweep `cells_per_sec` stays informational (it depends
        // on machine core count, not on the code's hot paths).
        "items_per_sec" | "samples_per_sec" => Direction::Throughput,
        "wall_micros" => Direction::Wall,
        _ => Direction::Info,
    }
}

/// A leaf value from a flattened `results` blob.
#[derive(Debug, Clone, PartialEq)]
pub enum Leaf {
    /// JSON `null` (e.g. an infeasible cell).
    Null,
    /// Any JSON number, widened to `f64`.
    Num(f64),
    /// A boolean (e.g. `fallback`).
    Bool(bool),
    /// A string (e.g. `method`).
    Text(String),
}

impl Leaf {
    fn render(&self) -> String {
        match self {
            Leaf::Null => "null".into(),
            Leaf::Num(x) => format_num(*x),
            Leaf::Bool(b) => b.to_string(),
            Leaf::Text(s) => s.clone(),
        }
    }
}

fn format_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.0}")
    } else {
        format!("{x:.6}")
    }
}

/// Flatten a JSON value into `path -> leaf` entries, sorted by path.
pub fn flatten(value: &Value) -> BTreeMap<String, Leaf> {
    let mut out = BTreeMap::new();
    flatten_into(value, String::new(), &mut out);
    out
}

fn flatten_into(value: &Value, path: String, out: &mut BTreeMap<String, Leaf>) {
    match value {
        Value::Object(map) => {
            for (k, v) in map.iter() {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                flatten_into(v, child, out);
            }
        }
        Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten_into(v, format!("{path}[{i}]"), out);
            }
        }
        Value::Null => {
            out.insert(path, Leaf::Null);
        }
        Value::Bool(b) => {
            out.insert(path, Leaf::Bool(*b));
        }
        Value::String(s) => {
            out.insert(path, Leaf::Text(s.clone()));
        }
        other => {
            if let Some(x) = other.as_f64() {
                out.insert(path, Leaf::Num(x));
            }
        }
    }
}

/// Outcome of comparing one leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Values match (within float tolerance).
    Unchanged,
    /// Values drifted but the key is not gated (or is within threshold).
    Drift,
    /// A gated metric improved past the threshold.
    Improvement,
    /// A gated metric regressed past the threshold.
    Regression,
    /// Identity mismatch or structural mismatch: manifests are not
    /// comparable.
    Incomparable,
}

/// One row of the delta table.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Flattened leaf path within `results`.
    pub path: String,
    /// Rendered baseline value (`-` if absent).
    pub old: String,
    /// Rendered candidate value (`-` if absent).
    pub new: String,
    /// Rendered relative delta (empty when not applicable).
    pub delta: String,
    /// Classification of this row.
    pub verdict: Verdict,
}

/// Diff configuration.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative drift on a gated key beyond which the change gates
    /// (default 0.05 = 5%).
    pub threshold: f64,
    /// Relative *drop* on a throughput key (`items_per_sec`,
    /// `samples_per_sec`) beyond which the change gates (default 0.5:
    /// losing half the rate is a hot-path regression; smaller swings
    /// are machine noise).
    pub throughput_threshold: f64,
    /// Gate on `wall_micros` drift too (off by default: timings are
    /// machine-dependent).
    pub gate_wall: bool,
    /// Include unchanged rows in the report.
    pub show_unchanged: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            threshold: 0.05,
            throughput_threshold: 0.5,
            gate_wall: false,
            show_unchanged: false,
        }
    }
}

/// Full diff outcome.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Rows retained for display (ordering: regressions and
    /// incomparable rows are interleaved in path order).
    pub rows: Vec<DeltaRow>,
    /// Count of leaves compared (including unchanged ones not shown).
    pub compared: usize,
    /// Gated regressions past threshold.
    pub regressions: usize,
    /// Gated improvements past threshold.
    pub improvements: usize,
    /// Identity/structural mismatches.
    pub incomparable: usize,
}

impl DiffReport {
    /// Process exit code for CI gating: 2 incomparable, 1 regression,
    /// 0 clean.
    pub fn exit_code(&self) -> i32 {
        if self.incomparable > 0 {
            2
        } else if self.regressions > 0 {
            1
        } else {
            0
        }
    }
}

const IDENTITY_TOL: f64 = 1e-12;

fn relative_delta(old: f64, new: f64) -> f64 {
    (new - old) / old.abs().max(1e-12)
}

fn compare_leaf(path: &str, old: &Leaf, new: &Leaf, config: &DiffConfig) -> (Verdict, String) {
    let dir = direction(path);
    match (old, new) {
        (Leaf::Num(o), Leaf::Num(n)) => {
            let rel = relative_delta(*o, *n);
            let delta = format!("{:+.2}%", rel * 100.0);
            match dir {
                Direction::Identity => {
                    if rel.abs() <= IDENTITY_TOL {
                        (Verdict::Unchanged, String::new())
                    } else {
                        (Verdict::Incomparable, delta)
                    }
                }
                Direction::Gated | Direction::Wall => {
                    let gated = dir == Direction::Gated || config.gate_wall;
                    if rel.abs() <= IDENTITY_TOL {
                        (Verdict::Unchanged, String::new())
                    } else if !gated || rel.abs() <= config.threshold {
                        (Verdict::Drift, delta)
                    } else if rel > 0.0 {
                        (Verdict::Regression, delta)
                    } else {
                        (Verdict::Improvement, delta)
                    }
                }
                Direction::Throughput => {
                    // Higher is better; only a drop past the (wide)
                    // throughput threshold gates.
                    if rel.abs() <= IDENTITY_TOL {
                        (Verdict::Unchanged, String::new())
                    } else if rel < -config.throughput_threshold {
                        (Verdict::Regression, delta)
                    } else if rel > config.throughput_threshold {
                        (Verdict::Improvement, delta)
                    } else {
                        (Verdict::Drift, delta)
                    }
                }
                Direction::Info => {
                    if rel.abs() <= IDENTITY_TOL {
                        (Verdict::Unchanged, String::new())
                    } else {
                        (Verdict::Drift, delta)
                    }
                }
            }
        }
        // Feasibility flips: a gated metric disappearing (number ->
        // null) is a regression; appearing is an improvement.
        (Leaf::Num(_), Leaf::Null) => match dir {
            Direction::Gated | Direction::Throughput => (Verdict::Regression, "lost".into()),
            Direction::Identity => (Verdict::Incomparable, "lost".into()),
            _ => (Verdict::Drift, "lost".into()),
        },
        (Leaf::Null, Leaf::Num(_)) => match dir {
            Direction::Gated | Direction::Throughput => (Verdict::Improvement, "gained".into()),
            Direction::Identity => (Verdict::Incomparable, "gained".into()),
            _ => (Verdict::Drift, "gained".into()),
        },
        (a, b) if a == b => (Verdict::Unchanged, String::new()),
        // Type changes or bool/string drift: never gate, but axis keys
        // changing type means the manifests do not line up.
        _ => match dir {
            Direction::Identity => (Verdict::Incomparable, "changed".into()),
            _ => (Verdict::Drift, "changed".into()),
        },
    }
}

/// Diff the `results` blobs of two manifests.
///
/// `old` is the baseline, `new` the candidate. Manifests for different
/// experiments are incomparable outright. Paths present on one side
/// only are incomparable rows (the grids differ in shape).
pub fn diff_manifests(old: &RunManifest, new: &RunManifest, config: &DiffConfig) -> DiffReport {
    let mut rows = Vec::new();
    let mut report = DiffReport {
        rows: Vec::new(),
        compared: 0,
        regressions: 0,
        improvements: 0,
        incomparable: 0,
    };
    if old.experiment != new.experiment {
        report.incomparable += 1;
        report.rows.push(DeltaRow {
            path: "experiment".into(),
            old: old.experiment.clone(),
            new: new.experiment.clone(),
            delta: "changed".into(),
            verdict: Verdict::Incomparable,
        });
        return report;
    }
    let a = flatten(&old.results);
    let b = flatten(&new.results);
    let mut paths: Vec<&String> = a.keys().collect();
    for k in b.keys() {
        if !a.contains_key(k) {
            paths.push(k);
        }
    }
    paths.sort();
    for path in paths {
        report.compared += 1;
        let (verdict, delta) = match (a.get(path), b.get(path)) {
            (Some(o), Some(n)) => compare_leaf(path, o, n, config),
            (Some(_), None) | (None, Some(_)) => (Verdict::Incomparable, "missing".into()),
            (None, None) => unreachable!("path came from one of the maps"),
        };
        match verdict {
            Verdict::Regression => report.regressions += 1,
            Verdict::Improvement => report.improvements += 1,
            Verdict::Incomparable => report.incomparable += 1,
            _ => {}
        }
        if verdict != Verdict::Unchanged || config.show_unchanged {
            rows.push(DeltaRow {
                path: path.clone(),
                old: a.get(path).map_or_else(|| "-".into(), Leaf::render),
                new: b.get(path).map_or_else(|| "-".into(), Leaf::render),
                delta,
                verdict,
            });
        }
    }
    report.rows = rows;
    report
}

/// Render the delta table plus a one-line summary.
pub fn render_diff(report: &DiffReport, config: &DiffConfig) -> String {
    let mut out = String::new();
    if !report.rows.is_empty() {
        let rows: Vec<Vec<String>> = report
            .rows
            .iter()
            .map(|r| {
                let tag = match r.verdict {
                    Verdict::Unchanged => "=",
                    Verdict::Drift => "~",
                    Verdict::Improvement => "+",
                    Verdict::Regression => "REGRESSION",
                    Verdict::Incomparable => "INCOMPARABLE",
                };
                vec![
                    r.path.clone(),
                    r.old.clone(),
                    r.new.clone(),
                    r.delta.clone(),
                    tag.to_string(),
                ]
            })
            .collect();
        out.push_str(&crate::render_table(
            &["path", "baseline", "candidate", "delta", "verdict"],
            &rows,
        ));
    }
    out.push_str(&format!(
        "{} leaves compared: {} regression(s), {} improvement(s), {} incomparable (threshold {:.1}%)\n",
        report.compared,
        report.regressions,
        report.improvements,
        report.incomparable,
        config.threshold * 100.0,
    ));
    out
}

/// The relative threshold that applies to `path` under `config`:
/// throughput keys gate at the wider throughput threshold, everything
/// else at the main one.
pub fn applied_threshold(path: &str, config: &DiffConfig) -> f64 {
    match direction(path) {
        Direction::Throughput => config.throughput_threshold,
        _ => config.threshold,
    }
}

/// One gated key that regressed past its threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateFailure {
    /// Flattened leaf path within `results`.
    pub path: String,
    /// Rendered baseline value.
    pub baseline: String,
    /// Rendered candidate value.
    pub current: String,
    /// Rendered relative delta (or `lost` for a feasibility flip).
    pub delta: String,
    /// The relative threshold this key was gated at.
    pub threshold: f64,
}

/// Machine-readable verdict for CI: the exit code, the counts behind
/// it, and the failed gates (empty when clean). Written by the
/// `bench_diff` binary's `--json-verdict <path>` flag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffVerdict {
    /// Process exit code ([`DiffReport::exit_code`]).
    pub exit_code: i64,
    /// Leaves compared.
    pub compared: u64,
    /// Gated regressions past threshold.
    pub regressions: u64,
    /// Gated improvements past threshold.
    pub improvements: u64,
    /// Identity/structural mismatches.
    pub incomparable: u64,
    /// The failed gates, in path order.
    pub failures: Vec<GateFailure>,
}

/// Extract just the failed gates from a report: the regression rows,
/// each paired with the threshold it was judged against.
pub fn gate_failures(report: &DiffReport, config: &DiffConfig) -> Vec<GateFailure> {
    report
        .rows
        .iter()
        .filter(|r| r.verdict == Verdict::Regression)
        .map(|r| GateFailure {
            path: r.path.clone(),
            baseline: r.old.clone(),
            current: r.new.clone(),
            delta: r.delta.clone(),
            threshold: applied_threshold(&r.path, config),
        })
        .collect()
}

/// Build the machine-readable verdict for a report.
pub fn diff_verdict(report: &DiffReport, config: &DiffConfig) -> DiffVerdict {
    DiffVerdict {
        exit_code: i64::from(report.exit_code()),
        compared: report.compared as u64,
        regressions: report.regressions as u64,
        improvements: report.improvements as u64,
        incomparable: report.incomparable as u64,
        failures: gate_failures(report, config),
    }
}

/// Render a table of ONLY the failed gates — what a developer reading a
/// red CI log needs first, without digging through the full delta
/// table. Empty string when nothing failed.
pub fn render_failures(report: &DiffReport, config: &DiffConfig) -> String {
    let failures = gate_failures(report, config);
    if failures.is_empty() {
        return String::new();
    }
    let rows: Vec<Vec<String>> = failures
        .iter()
        .map(|f| {
            vec![
                f.path.clone(),
                f.baseline.clone(),
                f.current.clone(),
                f.delta.clone(),
                format!("{:.1}%", f.threshold * 100.0),
            ]
        })
        .collect();
    format!(
        "FAILED GATES ({}):\n{}",
        failures.len(),
        crate::render_table(
            &["path", "baseline", "current", "delta", "threshold"],
            &rows
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(s: &str) -> Value {
        serde_json::from_str(s).expect("test JSON parses")
    }

    fn manifest(results: Value) -> RunManifest {
        RunManifest {
            experiment: "fig3".into(),
            argv: vec![],
            git_rev: None,
            config: Value::Null,
            results,
        }
    }

    #[test]
    fn flatten_walks_nesting_and_arrays() {
        let v = json(r#"{"a": {"b": [1.0, null]}, "c": true}"#);
        let f = flatten(&v);
        assert_eq!(f.get("a.b[0]"), Some(&Leaf::Num(1.0)));
        assert_eq!(f.get("a.b[1]"), Some(&Leaf::Null));
        assert_eq!(f.get("c"), Some(&Leaf::Bool(true)));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn direction_rules() {
        assert_eq!(direction("cells[0].tau0"), Direction::Identity);
        assert_eq!(direction("tau0s[3]"), Direction::Identity);
        assert_eq!(direction("cells[0].enforced"), Direction::Gated);
        assert_eq!(
            direction("cells[0].enforced_telemetry.iterations"),
            Direction::Gated
        );
        assert_eq!(
            direction("cells[0].enforced_telemetry.wall_micros"),
            Direction::Wall
        );
        assert_eq!(direction("runs[2].items_shed"), Direction::Gated);
        assert_eq!(direction("runs[2].resolves"), Direction::Gated);
        assert_eq!(direction("conservation_violations"), Direction::Gated);
        assert_eq!(direction("agreement_failures"), Direction::Gated);
        assert_eq!(
            direction("quantities[0].error"),
            Direction::Info,
            "agreement errors are timing-noisy: gated via agreement_failures, not raw error"
        );
        assert_eq!(
            direction("points[1].enforced_mitigated.total_shed"),
            Direction::Gated
        );
        assert_eq!(
            direction("points[1].monolithic.total_resolves"),
            Direction::Gated
        );
        assert_eq!(
            direction("cells[0].enforced_telemetry.residual"),
            Direction::Info
        );
    }

    #[test]
    fn identical_manifests_are_clean() {
        let r = json(r#"{"tau0s": [1.0], "cells": [{"tau0": 1.0, "enforced": 0.5}]}"#);
        let rep = diff_manifests(&manifest(r.clone()), &manifest(r), &DiffConfig::default());
        assert_eq!(rep.exit_code(), 0);
        assert!(rep.rows.is_empty());
        assert_eq!(rep.compared, 3);
    }

    #[test]
    fn active_fraction_regression_gates() {
        let old = json(r#"{"cells": [{"tau0": 1.0, "enforced": 0.50}]}"#);
        let new = json(r#"{"cells": [{"tau0": 1.0, "enforced": 0.60}]}"#);
        let rep = diff_manifests(&manifest(old), &manifest(new), &DiffConfig::default());
        assert_eq!(rep.regressions, 1);
        assert_eq!(rep.exit_code(), 1);
        let row = &rep.rows[0];
        assert_eq!(row.path, "cells[0].enforced");
        assert_eq!(row.verdict, Verdict::Regression);
        // A decrease of the same size is an improvement, exit 0.
        let old = json(r#"{"cells": [{"enforced": 0.60}]}"#);
        let new = json(r#"{"cells": [{"enforced": 0.50}]}"#);
        let rep = diff_manifests(&manifest(old), &manifest(new), &DiffConfig::default());
        assert_eq!(rep.improvements, 1);
        assert_eq!(rep.exit_code(), 0);
    }

    #[test]
    fn drift_within_threshold_does_not_gate() {
        let old = json(r#"{"cells": [{"enforced": 0.500}]}"#);
        let new = json(r#"{"cells": [{"enforced": 0.510}]}"#);
        let rep = diff_manifests(&manifest(old), &manifest(new), &DiffConfig::default());
        assert_eq!(rep.regressions, 0);
        assert_eq!(rep.exit_code(), 0);
        assert_eq!(rep.rows[0].verdict, Verdict::Drift);
    }

    #[test]
    fn axis_mismatch_is_incomparable() {
        let old = json(r#"{"tau0s": [1.0, 2.0]}"#);
        let new = json(r#"{"tau0s": [1.0, 3.0]}"#);
        let rep = diff_manifests(&manifest(old), &manifest(new), &DiffConfig::default());
        assert_eq!(rep.exit_code(), 2);
        assert_eq!(rep.incomparable, 1);
    }

    #[test]
    fn shape_mismatch_is_incomparable() {
        let old = json(r#"{"cells": [{"enforced": 0.5}, {"enforced": 0.6}]}"#);
        let new = json(r#"{"cells": [{"enforced": 0.5}]}"#);
        let rep = diff_manifests(&manifest(old), &manifest(new), &DiffConfig::default());
        assert_eq!(rep.exit_code(), 2);
    }

    #[test]
    fn feasibility_flip_gates() {
        let old = json(r#"{"cells": [{"enforced": 0.5}]}"#);
        let new = json(r#"{"cells": [{"enforced": null}]}"#);
        let rep = diff_manifests(&manifest(old), &manifest(new), &DiffConfig::default());
        assert_eq!(rep.regressions, 1);
        assert_eq!(rep.rows[0].delta, "lost");
        let rep = diff_manifests(
            &manifest(json(r#"{"cells": [{"enforced": null}]}"#)),
            &manifest(json(r#"{"cells": [{"enforced": 0.5}]}"#)),
            &DiffConfig::default(),
        );
        assert_eq!(rep.improvements, 1);
        assert_eq!(rep.exit_code(), 0);
    }

    #[test]
    fn throughput_gates_on_drops_past_the_wide_threshold() {
        assert_eq!(
            direction("sim.enforced.items_per_sec"),
            Direction::Throughput
        );
        assert_eq!(
            direction("stats.histogram.samples_per_sec"),
            Direction::Throughput
        );
        // `cells_per_sec` depends on core count, stays informational.
        assert_eq!(direction("sweep.chunked.cells_per_sec"), Direction::Info);

        let cfg = DiffConfig::default();
        // Losing 60% of throughput (past the 50% default) gates.
        let old = json(r#"{"sim": {"enforced": {"items_per_sec": 6.0e6}}}"#);
        let new = json(r#"{"sim": {"enforced": {"items_per_sec": 2.4e6}}}"#);
        let rep = diff_manifests(&manifest(old), &manifest(new), &cfg);
        assert_eq!(rep.regressions, 1);
        assert_eq!(rep.exit_code(), 1);
        // A 30% dip is machine noise: drift, exit 0.
        let old = json(r#"{"sim": {"enforced": {"items_per_sec": 6.0e6}}}"#);
        let new = json(r#"{"sim": {"enforced": {"items_per_sec": 4.2e6}}}"#);
        let rep = diff_manifests(&manifest(old), &manifest(new), &cfg);
        assert_eq!(rep.exit_code(), 0);
        assert_eq!(rep.rows[0].verdict, Verdict::Drift);
        // Doubling is an improvement (never gates).
        let old = json(r#"{"sim": {"enforced": {"items_per_sec": 6.0e6}}}"#);
        let new = json(r#"{"sim": {"enforced": {"items_per_sec": 1.3e7}}}"#);
        let rep = diff_manifests(&manifest(old), &manifest(new), &cfg);
        assert_eq!(rep.improvements, 1);
        assert_eq!(rep.exit_code(), 0);
        // A tighter threshold turns the 30% dip into a regression.
        let tight = DiffConfig {
            throughput_threshold: 0.2,
            ..DiffConfig::default()
        };
        let old = json(r#"{"sim": {"enforced": {"items_per_sec": 6.0e6}}}"#);
        let new = json(r#"{"sim": {"enforced": {"items_per_sec": 4.2e6}}}"#);
        let rep = diff_manifests(&manifest(old), &manifest(new), &tight);
        assert_eq!(rep.exit_code(), 1);
    }

    #[test]
    fn wall_micros_is_info_unless_gated() {
        let old = json(r#"{"cells": [{"enforced_telemetry": {"wall_micros": 100.0}}]}"#);
        let new = json(r#"{"cells": [{"enforced_telemetry": {"wall_micros": 900.0}}]}"#);
        let cfg = DiffConfig::default();
        let rep = diff_manifests(&manifest(old.clone()), &manifest(new.clone()), &cfg);
        assert_eq!(rep.exit_code(), 0);
        let gated = DiffConfig {
            gate_wall: true,
            ..DiffConfig::default()
        };
        let rep = diff_manifests(&manifest(old), &manifest(new), &gated);
        assert_eq!(rep.exit_code(), 1);
    }

    #[test]
    fn different_experiments_are_incomparable() {
        let mut a = manifest(Value::Null);
        let b = manifest(Value::Null);
        a.experiment = "fig4".into();
        let rep = diff_manifests(&a, &b, &DiffConfig::default());
        assert_eq!(rep.exit_code(), 2);
    }

    #[test]
    fn render_includes_summary_and_flags() {
        let old = json(r#"{"cells": [{"enforced": 0.5}]}"#);
        let new = json(r#"{"cells": [{"enforced": 0.9}]}"#);
        let cfg = DiffConfig::default();
        let rep = diff_manifests(&manifest(old), &manifest(new), &cfg);
        let text = render_diff(&rep, &cfg);
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("1 regression(s)"));
        assert!(text.contains("threshold 5.0%"));
    }

    #[test]
    fn failure_table_lists_only_regressed_gates_with_their_thresholds() {
        // One gated regression, one throughput regression, one drift,
        // one improvement: the failure table must hold exactly the two
        // regressions, each with the threshold that judged it.
        let old = json(
            r#"{"cells": [{"enforced": 0.50, "monolithic": 0.80}],
                "sim": {"enforced": {"items_per_sec": 6.0e6}},
                "note_info": 1.0}"#,
        );
        let new = json(
            r#"{"cells": [{"enforced": 0.60, "monolithic": 0.70}],
                "sim": {"enforced": {"items_per_sec": 1.0e6}},
                "note_info": 2.0}"#,
        );
        let cfg = DiffConfig::default();
        let rep = diff_manifests(&manifest(old), &manifest(new), &cfg);
        assert_eq!(rep.regressions, 2);

        let failures = gate_failures(&rep, &cfg);
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].path, "cells[0].enforced");
        assert_eq!(failures[0].threshold, cfg.threshold);
        assert_eq!(failures[1].path, "sim.enforced.items_per_sec");
        assert_eq!(failures[1].threshold, cfg.throughput_threshold);

        let table = render_failures(&rep, &cfg);
        assert!(table.contains("FAILED GATES (2)"), "{table}");
        assert!(table.contains("cells[0].enforced"), "{table}");
        assert!(table.contains("50.0%"), "{table}");
        // Non-failures stay out of the failure table.
        assert!(!table.contains("monolithic"), "{table}");
        assert!(!table.contains("note_info"), "{table}");
    }

    #[test]
    fn failure_table_is_empty_when_clean() {
        let r = json(r#"{"cells": [{"enforced": 0.5}]}"#);
        let cfg = DiffConfig::default();
        let rep = diff_manifests(&manifest(r.clone()), &manifest(r), &cfg);
        assert_eq!(render_failures(&rep, &cfg), "");
        assert!(gate_failures(&rep, &cfg).is_empty());
    }

    #[test]
    fn verdict_json_round_trips_and_matches_report() {
        let old = json(r#"{"cells": [{"enforced": 0.50}]}"#);
        let new = json(r#"{"cells": [{"enforced": 0.75}]}"#);
        let cfg = DiffConfig::default();
        let rep = diff_manifests(&manifest(old), &manifest(new), &cfg);
        let verdict = diff_verdict(&rep, &cfg);
        assert_eq!(verdict.exit_code, 1);
        assert_eq!(verdict.regressions, 1);
        assert_eq!(verdict.failures.len(), 1);
        assert_eq!(verdict.failures[0].current, "0.750000");
        let text = serde_json::to_string(&verdict).unwrap();
        let back: DiffVerdict = serde_json::from_str(&text).unwrap();
        assert_eq!(back, verdict);
    }

    #[test]
    fn bool_and_string_drift_never_gate() {
        let old = json(
            r#"{"cells": [{"enforced_telemetry": {"method": "water-filling", "fallback": false}}]}"#,
        );
        let new = json(
            r#"{"cells": [{"enforced_telemetry": {"method": "interior-point", "fallback": true}}]}"#,
        );
        let rep = diff_manifests(&manifest(old), &manifest(new), &DiffConfig::default());
        assert_eq!(rep.exit_code(), 0);
        assert_eq!(rep.rows.len(), 2);
        assert!(rep.rows.iter().all(|r| r.verdict == Verdict::Drift));
    }
}
