//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! The binaries in `src/bin` regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index); this
//! library holds the bits they share: fixed-width table printing, CSV
//! emission, and an ASCII heatmap for the Fig. 3/4 surfaces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod manifest;

pub use diff::{
    diff_manifests, diff_verdict, render_diff, render_failures, DiffConfig, DiffReport,
    DiffVerdict, GateFailure,
};
pub use manifest::{parse_metrics_flag, MetricsFormat, RunManifest};

use std::fmt::Write as _;

/// Render a right-aligned table: `header` then `rows`, each cell padded
/// to its column's width.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (cell, w) in cells.iter().zip(widths) {
            let _ = write!(out, "{cell:>w$}  ", w = w);
        }
        out.push('\n');
    };
    fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * cols;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Quote a CSV cell per RFC 4180 when it needs it: cells containing a
/// comma, double quote, or line break are wrapped in double quotes with
/// embedded quotes doubled. Plain cells pass through unchanged.
pub fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Emit a CSV block. Cells are escaped per RFC 4180 ([`csv_escape`]),
/// so free-text columns (method names, error strings) survive commas,
/// quotes, and newlines.
pub fn render_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let fmt_row = |cells: &mut dyn Iterator<Item = &str>, out: &mut String| {
        let mut first = true;
        for cell in cells {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&csv_escape(cell));
        }
        out.push('\n');
    };
    fmt_row(&mut header.iter().copied(), &mut out);
    for row in rows {
        fmt_row(&mut row.iter().map(String::as_str), &mut out);
    }
    out
}

/// Parse a CSV block produced by [`render_csv`] back into rows
/// (header included as the first row). Handles quoted cells with
/// embedded commas, doubled quotes, and line breaks; returns `Err` on
/// an unterminated quote.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cell.push('"');
                }
                '"' => in_quotes = false,
                other => cell.push(other),
            }
            continue;
        }
        match c {
            '"' => in_quotes = true,
            ',' => row.push(std::mem::take(&mut cell)),
            '\r' => {}
            '\n' => {
                row.push(std::mem::take(&mut cell));
                rows.push(std::mem::take(&mut row));
            }
            other => cell.push(other),
        }
    }
    if in_quotes {
        return Err("unterminated quoted cell".into());
    }
    // A final line without a trailing newline still counts.
    if any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

/// An ASCII heatmap of a row-major grid (`None` = infeasible cell).
/// Values map onto the ramp `" .:-=+*#%@"` between `lo` and `hi`;
/// infeasible cells print `x`.
pub fn render_heatmap(
    grid: &[Vec<Option<f64>>],
    lo: f64,
    hi: f64,
    row_labels: &[String],
    title: &str,
) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{title}  [{lo:.2} '{}' .. '{}' {hi:.2}, x = infeasible]",
        RAMP[0] as char,
        RAMP[RAMP.len() - 1] as char
    );
    for (row, label) in grid.iter().zip(row_labels) {
        let _ = write!(out, "{label:>12} |");
        for cell in row {
            let ch = match cell {
                None => 'x',
                Some(v) => {
                    let f = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                    RAMP[((f * (RAMP.len() - 1) as f64).round()) as usize] as char
                }
            };
            out.push(ch);
        }
        out.push_str("|\n");
    }
    out
}

/// Format a float with fixed decimals, or a placeholder for `None`.
pub fn opt_fmt(v: Option<f64>, decimals: usize) -> String {
    match v {
        Some(x) => format!("{x:.decimals$}"),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2.5".into()],
            ],
        );
        assert!(t.contains("long-name"));
        assert!(t.lines().count() == 4);
        // Header and rows align on the same column width.
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_checks_row_width() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn csv_renders() {
        let c = render_csv(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "x,y\n1,2\n");
    }

    #[test]
    fn csv_escapes_special_cells() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
        let c = render_csv(&["note"], &[vec!["x, y".into()]]);
        assert_eq!(c, "note\n\"x, y\"\n");
    }

    #[test]
    fn csv_round_trips_hostile_cells() {
        let rows = vec![
            vec!["1.5".to_string(), "water-filling".to_string()],
            vec!["commas, galore".to_string(), "quote \"this\"".to_string()],
            vec!["multi\nline".to_string(), String::new()],
        ];
        let text = render_csv(&["a", "b"], &rows);
        let back = parse_csv(&text).unwrap();
        assert_eq!(back[0], vec!["a", "b"]);
        assert_eq!(&back[1..], rows.as_slice());
    }

    #[test]
    fn parse_csv_rejects_unterminated_quote() {
        assert!(parse_csv("a,\"oops\n").is_err());
        assert_eq!(parse_csv("").unwrap(), Vec::<Vec<String>>::new());
        // Missing trailing newline still yields the last row.
        assert_eq!(parse_csv("a,b").unwrap(), vec![vec!["a", "b"]]);
    }

    #[test]
    fn heatmap_maps_extremes_and_infeasible() {
        let grid = vec![vec![Some(0.0), Some(1.0), None]];
        let h = render_heatmap(&grid, 0.0, 1.0, &["row".into()], "t");
        let body = h.lines().nth(1).unwrap();
        assert!(body.contains(' ') && body.contains('@') && body.contains('x'));
    }

    #[test]
    fn opt_fmt_handles_none() {
        assert_eq!(opt_fmt(Some(0.25), 2), "0.25");
        assert_eq!(opt_fmt(None, 2), "-");
    }
}
