//! Run manifests: a structured, machine-readable record of every
//! experiment run.
//!
//! Each experiment binary can serialize a [`RunManifest`] — what was
//! run (experiment name, argv, git revision), with which configuration,
//! and what came out (per-cell results, solver telemetry aggregates) —
//! to `BENCH_<name>.json` in the current directory (override with the
//! `BENCH_OUT_DIR` environment variable). The `--metrics json|csv`
//! flag on the binaries selects the format; `csv` writes a flat
//! `BENCH_<name>.csv` instead, with one row per cell.

use rtsdf::core::comparison::{SweepConfig, SweepResult};
use rtsdf::core::SolveTelemetry;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::path::PathBuf;

/// Machine-readable metrics format selected by `--metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Full manifest to `BENCH_<name>.json`.
    Json,
    /// Flat per-cell rows to `BENCH_<name>.csv`.
    Csv,
}

/// Parse a `--metrics json|csv` flag out of `args`.
///
/// Returns `Ok(None)` when the flag is absent, `Err` on a missing or
/// unknown value.
pub fn parse_metrics_flag(args: &[String]) -> Result<Option<MetricsFormat>, String> {
    let Some(pos) = args.iter().position(|a| a == "--metrics") else {
        return Ok(None);
    };
    match args.get(pos + 1).map(String::as_str) {
        Some("json") => Ok(Some(MetricsFormat::Json)),
        Some("csv") => Ok(Some(MetricsFormat::Csv)),
        Some(other) => Err(format!("--metrics expects 'json' or 'csv', got '{other}'")),
        None => Err("--metrics expects a value: json or csv".into()),
    }
}

/// Everything needed to reproduce and interpret one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunManifest {
    /// Experiment name (`fig3`, `fig4`, `calibrate`, `table1`, ...).
    pub experiment: String,
    /// Argument vector the binary was invoked with.
    pub argv: Vec<String>,
    /// `git rev-parse HEAD` of the working tree, if available.
    pub git_rev: Option<String>,
    /// Experiment-specific configuration blob.
    pub config: Value,
    /// Experiment-specific results blob (per-cell measurements, solver
    /// telemetry aggregates, timings).
    pub results: Value,
}

impl RunManifest {
    /// Manifest for `experiment`, capturing argv and git revision from
    /// the environment.
    pub fn new(experiment: impl Into<String>, config: Value, results: Value) -> Self {
        RunManifest {
            experiment: experiment.into(),
            argv: std::env::args().collect(),
            git_rev: git_rev(),
            config,
            results,
        }
    }

    /// Pretty JSON rendering of the manifest.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Write the manifest to `BENCH_<experiment>.json` in the output
    /// directory (created if missing); returns the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = out_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Write flat per-cell metrics to `BENCH_<name>.csv`; returns the path.
pub fn write_metrics_csv(
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    let dir = out_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.csv"));
    std::fs::write(&path, crate::render_csv(header, rows))?;
    Ok(path)
}

/// Emit metrics for a sweep-shaped experiment (fig3/fig4): a full run
/// manifest with per-cell solver telemetry for [`MetricsFormat::Json`],
/// or flat per-cell rows for [`MetricsFormat::Csv`]. Returns the path
/// written.
pub fn emit_sweep_metrics(
    name: &str,
    result: &SweepResult,
    config: &SweepConfig,
    format: MetricsFormat,
) -> std::io::Result<PathBuf> {
    emit_sweep_metrics_live(name, result, config, format, None)
}

/// [`emit_sweep_metrics`] plus an optional live-metrics snapshot: when
/// present (and the format is JSON), the final registry state is
/// embedded in the manifest's results under the `live_metrics` key, so
/// the scheduler's cells-claimed / steal / busy-fraction counters land
/// next to the per-cell results they describe. CSV output ignores the
/// snapshot (its schema is per-cell rows).
pub fn emit_sweep_metrics_live(
    name: &str,
    result: &SweepResult,
    config: &SweepConfig,
    format: MetricsFormat,
    live: Option<&rtsdf::metrics::MetricsSnapshot>,
) -> std::io::Result<PathBuf> {
    match format {
        MetricsFormat::Json => {
            let mut results = serde_json::to_value(result).expect("sweep serializes");
            if let (Some(snap), Value::Object(m)) = (live, &mut results) {
                m.insert(
                    "live_metrics".into(),
                    serde_json::to_value(snap).expect("snapshot serializes"),
                );
            }
            RunManifest::new(
                name,
                serde_json::to_value(config).expect("config serializes"),
                results,
            )
            .write()
        }
        MetricsFormat::Csv => {
            let t = |t: &Option<SolveTelemetry>, f: &dyn Fn(&SolveTelemetry) -> String| {
                t.as_ref().map_or_else(|| "-".into(), f)
            };
            let rows: Vec<Vec<String>> = result
                .cells
                .iter()
                .map(|c| {
                    vec![
                        format!("{:.4}", c.tau0),
                        format!("{:.0}", c.deadline),
                        crate::opt_fmt(c.enforced, 6),
                        crate::opt_fmt(c.monolithic, 6),
                        t(&c.enforced_telemetry, &|s| s.method.clone()),
                        t(&c.enforced_telemetry, &|s| s.iterations.to_string()),
                        t(&c.enforced_telemetry, &|s| format!("{:.1}", s.wall_micros)),
                        t(&c.enforced_telemetry, &|s| s.fallback.to_string()),
                        t(&c.monolithic_telemetry, &|s| s.iterations.to_string()),
                        t(&c.monolithic_telemetry, &|s| {
                            format!("{:.1}", s.wall_micros)
                        }),
                    ]
                })
                .collect();
            write_metrics_csv(
                name,
                &[
                    "tau0",
                    "deadline",
                    "enforced_af",
                    "monolithic_af",
                    "enf_method",
                    "enf_iters",
                    "enf_wall_us",
                    "enf_fallback",
                    "mono_iters",
                    "mono_wall_us",
                ],
                &rows,
            )
        }
    }
}

/// Output directory for manifests: `$BENCH_OUT_DIR` or the current
/// directory.
pub fn out_dir() -> PathBuf {
    std::env::var_os("BENCH_OUT_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from)
}

/// Current git revision of the working directory, if a repository and
/// the `git` binary are available.
pub fn git_rev() -> Option<String> {
    git_rev_in(std::path::Path::new("."))
}

/// Git revision of `dir` (`git -C dir rev-parse HEAD`): `None` when
/// `git` is missing, `dir` is not inside a repository, or the output is
/// not a revision. The testable core of [`git_rev`].
pub fn git_rev_in(dir: &std::path::Path) -> Option<String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(dir)
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!rev.is_empty()).then_some(rev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_metrics_flag_variants() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_metrics_flag(&args(&["--csv"])), Ok(None));
        assert_eq!(
            parse_metrics_flag(&args(&["--metrics", "json"])),
            Ok(Some(MetricsFormat::Json))
        );
        assert_eq!(
            parse_metrics_flag(&args(&["x", "--metrics", "csv"])),
            Ok(Some(MetricsFormat::Csv))
        );
        assert!(parse_metrics_flag(&args(&["--metrics"])).is_err());
        assert!(parse_metrics_flag(&args(&["--metrics", "xml"])).is_err());
    }

    #[test]
    fn manifest_round_trips() {
        let m = RunManifest {
            experiment: "unit".into(),
            argv: vec!["bench".into()],
            git_rev: None,
            config: serde_json::to_value(&42u64).unwrap(),
            results: serde_json::to_value(&vec![1.0f64, 2.0]).unwrap(),
        };
        let j = m.to_json();
        assert!(j.contains("\"experiment\""));
        let back: RunManifest = serde_json::from_str(&j).unwrap();
        assert_eq!(back.experiment, "unit");
        assert_eq!(back.argv, m.argv);
    }

    #[test]
    fn git_rev_in_repo_is_a_trimmed_hash() {
        // Skip silently when the git binary is absent altogether.
        if std::process::Command::new("git")
            .arg("--version")
            .output()
            .is_err()
        {
            return;
        }
        let rev = git_rev_in(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("manifest dir is inside the workspace repo");
        assert_eq!(rev.len(), 40, "full SHA-1, no trailing newline: {rev:?}");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()), "{rev:?}");
    }

    #[test]
    fn git_rev_outside_a_repo_is_none() {
        let dir = std::env::temp_dir().join(format!("bench-git-rev-none-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(git_rev_in(&dir), None);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn out_dir_defaults_to_cwd() {
        // Do not mutate the env (tests run in parallel); just check the
        // default shape.
        if std::env::var_os("BENCH_OUT_DIR").is_none() {
            assert_eq!(out_dir(), PathBuf::from("."));
        }
    }
}
