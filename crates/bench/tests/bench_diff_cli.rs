//! End-to-end tests for the `bench_diff` binary: exit codes, the
//! failed-gates table, and the `--json-verdict` output.

use bench::DiffVerdict;
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-diff-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_manifest(dir: &std::path::Path, file: &str, results: &str) -> PathBuf {
    let path = dir.join(file);
    let text = format!(
        r#"{{"experiment": "fig3", "argv": [], "git_rev": null,
            "config": null, "results": {results}}}"#
    );
    std::fs::write(&path, text).unwrap();
    path
}

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .unwrap();
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8(out.stdout).unwrap(),
    )
}

#[test]
fn regression_prints_failed_gates_table_and_writes_verdict() {
    let dir = temp_dir("regress");
    let old = write_manifest(
        &dir,
        "old.json",
        r#"{"cells": [{"enforced": 0.50, "monolithic": 0.80}]}"#,
    );
    let new = write_manifest(
        &dir,
        "new.json",
        r#"{"cells": [{"enforced": 0.60, "monolithic": 0.80}]}"#,
    );
    let verdict_path = dir.join("verdict.json");
    let (code, stdout) = run(&[
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--json-verdict",
        verdict_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("FAILED GATES (1)"), "{stdout}");
    assert!(stdout.contains("cells[0].enforced"), "{stdout}");
    // Only the failed gate appears in the failure table (after the
    // summary line that ends the full delta table).
    let failures = stdout.split("FAILED GATES").nth(1).unwrap();
    assert!(!failures.contains("monolithic"), "{stdout}");

    let verdict: DiffVerdict =
        serde_json::from_str(&std::fs::read_to_string(&verdict_path).unwrap()).unwrap();
    assert_eq!(verdict.exit_code, 1);
    assert_eq!(verdict.regressions, 1);
    assert_eq!(verdict.failures.len(), 1);
    assert_eq!(verdict.failures[0].path, "cells[0].enforced");
    assert_eq!(verdict.failures[0].threshold, 0.05);
}

#[test]
fn clean_diff_exits_zero_with_clean_verdict_and_no_failure_table() {
    let dir = temp_dir("clean");
    let old = write_manifest(&dir, "old.json", r#"{"cells": [{"enforced": 0.50}]}"#);
    let new = write_manifest(&dir, "new.json", r#"{"cells": [{"enforced": 0.50}]}"#);
    let verdict_path = dir.join("verdict.json");
    let (code, stdout) = run(&[
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--json-verdict",
        verdict_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(!stdout.contains("FAILED GATES"), "{stdout}");
    let verdict: DiffVerdict =
        serde_json::from_str(&std::fs::read_to_string(&verdict_path).unwrap()).unwrap();
    assert_eq!(verdict.exit_code, 0);
    assert!(verdict.failures.is_empty());
}

#[test]
fn json_verdict_without_a_path_is_a_usage_error() {
    let dir = temp_dir("usage");
    let old = write_manifest(&dir, "old.json", r#"{}"#);
    let new = write_manifest(&dir, "new.json", r#"{}"#);
    let (code, _) = run(&[
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--json-verdict",
    ]);
    assert_eq!(code, 2);
}
