//! Query k-mer index: the lookup table stage 0 probes.

use crate::sequence::Dna;
use std::collections::HashMap;

/// An index from packed k-mer to the query positions where it occurs.
#[derive(Debug, Clone)]
pub struct KmerIndex {
    k: usize,
    map: HashMap<u64, Vec<u32>>,
}

impl KmerIndex {
    /// Index every k-mer of `query`.
    pub fn build(query: &Dna, k: usize) -> Self {
        let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut pos = 0usize;
        while let Some(kmer) = query.kmer_at(pos, k) {
            map.entry(kmer).or_default().push(pos as u32);
            pos += 1;
        }
        KmerIndex { k, map }
    }

    /// The word size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers indexed.
    pub fn distinct_kmers(&self) -> usize {
        self.map.len()
    }

    /// Query positions where `kmer` occurs (empty slice if none).
    pub fn lookup(&self, kmer: u64) -> &[u32] {
        self.map.get(&kmer).map_or(&[], |v| v)
    }

    /// Mean occupancy of nonempty buckets (diagnostic for tuning the
    /// expansion gain of stage 1).
    pub fn mean_bucket_size(&self) -> f64 {
        if self.map.is_empty() {
            return 0.0;
        }
        let total: usize = self.map.values().map(|v| v.len()).sum();
        total as f64 / self.map.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn indexes_all_positions() {
        // Sequence ACGTACGT: k=4 gives 5 k-mers; ACGT occurs at 0 and 4.
        let d = Dna::from_codes(vec![0, 1, 2, 3, 0, 1, 2, 3]);
        let idx = KmerIndex::build(&d, 4);
        let acgt = d.kmer_at(0, 4).unwrap();
        assert_eq!(idx.lookup(acgt), &[0, 4]);
        assert_eq!(idx.k(), 4);
        // 5 windows, ACGT duplicated → 4 distinct.
        assert_eq!(idx.distinct_kmers(), 4);
    }

    #[test]
    fn missing_kmer_gives_empty() {
        let d = Dna::from_codes(vec![0, 0, 0, 0]);
        let idx = KmerIndex::build(&d, 2);
        assert!(idx.lookup(0b0101).is_empty());
    }

    #[test]
    fn bucket_statistics() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dna::random(5_000, &mut rng);
        let idx = KmerIndex::build(&d, 6);
        // 4^6 = 4096 possible k-mers, ~5000 windows: mean bucket a bit
        // over 1.
        let mean = idx.mean_bucket_size();
        assert!((1.0..3.0).contains(&mean), "mean bucket {mean}");
    }

    #[test]
    fn empty_query_index() {
        let d = Dna::from_codes(vec![0, 1]);
        let idx = KmerIndex::build(&d, 4); // no complete window
        assert_eq!(idx.distinct_kmers(), 0);
        assert_eq!(idx.mean_bucket_size(), 0.0);
    }
}
