//! The pipeline stages as SIMT lane programs.
//!
//! The paper measured Table 1's service times on a GTX 2080. We measure
//! ours on the [`simd_device::Machine`] instead: each stage is written
//! as a lane program whose instruction mix mirrors the stage's real
//! work (hashing + table probes for seeding, a data-dependent extension
//! loop, score thresholding, a banded DP), and its *measured* vector
//! cost under the 1/N processor share plays the role of `t_i`.
//!
//! Costs are calibrated to land in the neighbourhood of the paper's
//! Table 1 (287 / 955 / 402 / 2753 cycles under a 1/4 share), but the
//! workspace treats whatever comes out of measurement as ground truth —
//! exactly as the paper treated its hardware measurements.

use serde::{Deserialize, Serialize};
use simd_device::machine::AluFn;
use simd_device::{LaneValue, Machine, Op, Program};

/// The four stage programs.
#[derive(Debug, Clone)]
pub struct StageKernels {
    /// Stage 0: k-mer hash + index probe.
    pub seed: Program,
    /// Stage 1: x-drop extension loop (lane register 0 carries the
    /// extension trip count).
    pub extend: Program,
    /// Stage 2: score reload + threshold test.
    pub filter: Program,
    /// Stage 3: banded DP (lane register 0 carries the row count).
    pub align: Program,
}

/// Build the calibrated stage kernels.
pub fn stage_kernels() -> StageKernels {
    StageKernels {
        seed: seed_kernel(),
        extend: extend_kernel(),
        filter: filter_kernel(),
        align: align_kernel(),
    }
}

/// Stage 0: pack/hash the k-mer (ALU mix), probe the bucket table
/// (two dependent loads), compare.
fn seed_kernel() -> Program {
    Program {
        registers: 6,
        ops: vec![
            // Hash the packed k-mer in r0.
            Op::Alu {
                dst: 1,
                a: 0,
                b: 0,
                f: AluFn::Mul,
                cycles: 4,
            },
            Op::Alu {
                dst: 2,
                a: 1,
                b: 0,
                f: AluFn::Xor,
                cycles: 4,
            },
            Op::Alu {
                dst: 3,
                a: 2,
                b: 1,
                f: AluFn::Add,
                cycles: 4,
            },
            // Bucket head pointer, then first entry.
            Op::Load {
                dst: 4,
                addr: 3,
                cycles: 18,
            },
            Op::Load {
                dst: 5,
                addr: 4,
                cycles: 18,
            },
            // Hit test.
            Op::Alu {
                dst: 5,
                a: 5,
                b: 0,
                f: AluFn::Xor,
                cycles: 4,
            },
            Op::Alu {
                dst: 5,
                a: 5,
                b: 5,
                f: AluFn::Min,
                cycles: 4,
            },
            Op::Alu {
                dst: 5,
                a: 5,
                b: 0,
                f: AluFn::CmpLt,
                cycles: 4,
            },
        ],
    }
}

/// Stage 1: per-diagonal x-drop extension. Lane register 0 holds the
/// trip count (extension length in bases); the loop body models one
/// base comparison + score update + x-drop test.
fn extend_kernel() -> Program {
    Program {
        registers: 6,
        ops: vec![
            Op::SetImm {
                dst: 1,
                value: 1,
                cycles: 2,
            },
            // Load the diagonal's base pointers.
            Op::Load {
                dst: 2,
                addr: 0,
                cycles: 18,
            },
            Op::Load {
                dst: 3,
                addr: 1,
                cycles: 18,
            },
            Op::While {
                cond: 0,
                body: vec![
                    // Fetch-and-compare one base pair, update the score,
                    // test the drop.
                    Op::Alu {
                        dst: 4,
                        a: 2,
                        b: 3,
                        f: AluFn::Xor,
                        cycles: 4,
                    },
                    Op::Alu {
                        dst: 5,
                        a: 5,
                        b: 4,
                        f: AluFn::Add,
                        cycles: 4,
                    },
                    Op::Alu {
                        dst: 4,
                        a: 5,
                        b: 2,
                        f: AluFn::Max,
                        cycles: 3,
                    },
                    Op::Alu {
                        dst: 0,
                        a: 0,
                        b: 1,
                        f: AluFn::Sub,
                        cycles: 3,
                    },
                ],
                // Per-firing extension budget: the Mercator kernel
                // extends in bounded passes, re-queueing unfinished
                // work, so one firing's cost is architecturally capped.
                max_iters: 16,
            },
            // Final score writeback.
            Op::Alu {
                dst: 5,
                a: 5,
                b: 4,
                f: AluFn::Add,
                cycles: 4,
            },
        ],
    }
}

/// Stage 2: reload the HSP record, recompute the score bound, threshold.
fn filter_kernel() -> Program {
    Program {
        registers: 6,
        ops: vec![
            Op::Load {
                dst: 1,
                addr: 0,
                cycles: 20,
            },
            Op::Load {
                dst: 2,
                addr: 1,
                cycles: 20,
            },
            Op::Alu {
                dst: 3,
                a: 1,
                b: 2,
                f: AluFn::Add,
                cycles: 6,
            },
            Op::Alu {
                dst: 3,
                a: 3,
                b: 1,
                f: AluFn::Max,
                cycles: 6,
            },
            Op::Alu {
                dst: 4,
                a: 3,
                b: 2,
                f: AluFn::Mod,
                cycles: 8,
            },
            Op::Alu {
                dst: 4,
                a: 4,
                b: 3,
                f: AluFn::Add,
                cycles: 6,
            },
            Op::Alu {
                dst: 5,
                a: 2,
                b: 4,
                f: AluFn::CmpLt,
                cycles: 6,
            },
            Op::Alu {
                dst: 5,
                a: 5,
                b: 1,
                f: AluFn::And,
                cycles: 6,
            },
            Op::Alu {
                dst: 5,
                a: 5,
                b: 5,
                f: AluFn::Max,
                cycles: 6,
            },
        ],
    }
}

/// Stage 3: banded Smith–Waterman. Lane register 0 holds the DP row
/// count; the body models one banded row (several cell updates).
fn align_kernel() -> Program {
    Program {
        registers: 6,
        ops: vec![
            Op::SetImm {
                dst: 1,
                value: 1,
                cycles: 2,
            },
            Op::Load {
                dst: 2,
                addr: 0,
                cycles: 18,
            },
            Op::While {
                cond: 0,
                body: vec![
                    // One banded row: load the row, three cell updates,
                    // a running max, the loop bookkeeping.
                    Op::Load {
                        dst: 3,
                        addr: 2,
                        cycles: 6,
                    },
                    Op::Alu {
                        dst: 4,
                        a: 3,
                        b: 2,
                        f: AluFn::Add,
                        cycles: 3,
                    },
                    Op::Alu {
                        dst: 4,
                        a: 4,
                        b: 3,
                        f: AluFn::Max,
                        cycles: 3,
                    },
                    Op::Alu {
                        dst: 5,
                        a: 5,
                        b: 4,
                        f: AluFn::Max,
                        cycles: 2,
                    },
                    Op::Alu {
                        dst: 0,
                        a: 0,
                        b: 1,
                        f: AluFn::Sub,
                        cycles: 2,
                    },
                ],
                max_iters: 4096,
            },
            Op::Alu {
                dst: 5,
                a: 5,
                b: 4,
                f: AluFn::Max,
                cycles: 4,
            },
        ],
    }
}

/// Service-time measurement of one kernel over many firings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceMeasurement {
    /// Mean wall-clock service time per firing under the share (cycles).
    pub mean: f64,
    /// Maximum observed.
    pub max: f64,
    /// Minimum observed.
    pub min: f64,
    /// Firings measured.
    pub firings: u64,
}

/// Run `program` once per batch of lane inputs and report the
/// distribution of per-firing service times, scaled by the `shares`
/// processor division (the paper's `t_i` convention).
///
/// # Panics
/// Panics if `batches` is empty.
pub fn measure_service_time(
    machine: &Machine,
    program: &Program,
    batches: &[Vec<Vec<LaneValue>>],
    shares: u32,
) -> ServiceMeasurement {
    assert!(!batches.is_empty(), "need at least one batch to measure");
    let mut mean = 0.0;
    let mut max = f64::NEG_INFINITY;
    let mut min = f64::INFINITY;
    for (i, batch) in batches.iter().enumerate() {
        let (_, stats) = machine.run(program, batch);
        let wall = stats.cycles as f64 * shares as f64;
        mean += (wall - mean) / (i + 1) as f64;
        max = max.max(wall);
        min = min.min(wall);
    }
    ServiceMeasurement {
        mean,
        max,
        min,
        firings: batches.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_kernel_cost_is_lane_invariant() {
        let m = Machine::new(128);
        let k = seed_kernel();
        let (_, one) = m.run(&k, &[vec![12345]]);
        let full: Vec<Vec<LaneValue>> = (0..128).map(|i| vec![i * 7 + 1]).collect();
        let (_, many) = m.run(&k, &full);
        assert_eq!(one.cycles, many.cycles);
        // Raw cost in the neighbourhood of Table 1's t0/4 ≈ 72.
        assert!((50..=100).contains(&(one.cycles as i64)), "{}", one.cycles);
    }

    #[test]
    fn extend_kernel_cost_scales_with_max_trip() {
        let m = Machine::new(128);
        let k = extend_kernel();
        let (_, short) = m.run(&k, &[vec![5]]);
        let (_, long) = m.run(&k, &[vec![40]]);
        assert!(long.cycles > short.cycles);
        // Divergence property: a batch's cost equals its longest lane's.
        let (_, mixed) = m.run(&k, &[vec![5], vec![40], vec![12]]);
        assert_eq!(mixed.cycles, long.cycles);
    }

    #[test]
    fn filter_kernel_cost_fixed() {
        let m = Machine::new(128);
        let k = filter_kernel();
        let (_, a) = m.run(&k, &[vec![1]]);
        let (_, b) = m.run(&k, &[vec![999], vec![5], vec![7]]);
        assert_eq!(a.cycles, b.cycles);
        assert!((60..=140).contains(&(a.cycles as i64)), "{}", a.cycles);
    }

    #[test]
    fn align_kernel_near_table1_scale() {
        let m = Machine::new(128);
        let k = align_kernel();
        // ~40 DP rows is the typical banded window.
        let (_, s) = m.run(&k, &[vec![40]]);
        let wall = s.cycles * 4;
        assert!(
            (1_500..=4_500).contains(&(wall as i64)),
            "align wall cost {wall} far from Table 1's 2753"
        );
    }

    #[test]
    fn measurement_statistics() {
        let m = Machine::new(8);
        let k = extend_kernel();
        let batches: Vec<Vec<Vec<LaneValue>>> =
            vec![vec![vec![10]], vec![vec![20]], vec![vec![30]]];
        let meas = measure_service_time(&m, &k, &batches, 4);
        assert_eq!(meas.firings, 3);
        assert!(meas.min < meas.mean && meas.mean < meas.max);
        // Share scaling: wall = raw × 4.
        let (_, raw) = m.run(&k, &[vec![20]]);
        let unshared = measure_service_time(&m, &k, &[vec![vec![20]]], 1);
        assert_eq!(unshared.mean, raw.cycles as f64);
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn measurement_requires_batches() {
        let m = Machine::new(8);
        measure_service_time(&m, &seed_kernel(), &[], 4);
    }
}
