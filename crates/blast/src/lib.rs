//! # blast — the paper's test application
//!
//! The paper evaluates on a 4-stage streaming pipeline drawn from a
//! Mercator GPU implementation of NCBI BLAST (§6.1), with Table 1 giving
//! each stage's service time and mean gain as measured on a GTX 2080
//! for a human-genome vs. 64-kilobase-query comparison.
//!
//! This crate rebuilds that application end to end on the workspace's
//! simulated substrate:
//!
//! * [`sequence`] — synthetic DNA with planted homologies standing in
//!   for the proprietary genome/query pair;
//! * [`index`] — the query k-mer index that stage 0 probes;
//! * [`stages`] — the four pipeline stages as real computations (seed
//!   lookup → ungapped x-drop extension → score filter → banded
//!   Smith-Waterman), from which empirical *gain* distributions are
//!   measured;
//! * [`kernels`] — the same stages as SIMT lane programs on
//!   [`simd_device::Machine`], from which *service times* are measured
//!   the way the paper measured them on hardware;
//! * [`pipeline`] — assembly: the paper's exact Table 1 constants
//!   ([`pipeline::paper_pipeline`]) and a fully measured variant
//!   ([`pipeline::measure_pipeline`]) that regenerates a Table-1
//!   analogue from the synthetic data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod kernels;
pub mod pipeline;
pub mod sequence;
pub mod stages;

pub use pipeline::{measure_pipeline, paper_pipeline, paper_table1, MeasurementConfig, Table1};

/// Stage-1's architectural output cap (`u` in the paper): one seed hit
/// may expand into at most this many HSP candidates.
pub const EXPANSION_CAP: u32 = 16;
