//! Pipeline assembly: the paper's exact Table 1, and a measured
//! regeneration of it from synthetic data (experiment E1).

use crate::kernels::{measure_service_time, stage_kernels};
use crate::sequence::Dna;
use crate::stages::{BlastContext, BlastParams};
use crate::EXPANSION_CAP;
use dataflow_model::{
    GainModel, ModelError, PipelineSpec, PipelineSpecBuilder, PAPER_VECTOR_WIDTH,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simd_device::{LaneValue, Machine};

/// The paper's Table 1: the BLAST pipeline exactly as measured on a
/// GTX 2080 (v = 128). Stage 1 expands by a censored Poisson with cap
/// `u = 16`; stages 0 and 2 are Bernoulli; the final stage's gain does
/// not influence the design problems (§6.1) and is fixed at 1.
pub fn paper_pipeline() -> PipelineSpec {
    PipelineSpecBuilder::new(PAPER_VECTOR_WIDTH)
        .stage("seed-match", 287.0, GainModel::Bernoulli { p: 0.379 })
        .stage(
            "ungapped-extend",
            955.0,
            GainModel::CensoredPoisson {
                mean: 1.920,
                cap: EXPANSION_CAP,
            },
        )
        .stage("score-filter", 402.0, GainModel::Bernoulli { p: 0.0332 })
        .stage("gapped-align", 2753.0, GainModel::Deterministic { k: 1 })
        .build()
        .expect("paper constants are valid")
}

/// One row of a (paper or measured) Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Stage name.
    pub name: String,
    /// Service time `t_i` (cycles, under the 1/N share).
    pub service_time: f64,
    /// Mean gain `g_i` (`None` for the final stage, matching the paper's
    /// "N/A").
    pub mean_gain: Option<f64>,
}

/// A Table 1 instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows in stage order.
    pub rows: Vec<Table1Row>,
    /// SIMD width the numbers assume.
    pub vector_width: u32,
}

/// The paper's Table 1 as data.
pub fn paper_table1() -> Table1 {
    Table1 {
        rows: vec![
            Table1Row {
                name: "seed-match".into(),
                service_time: 287.0,
                mean_gain: Some(0.379),
            },
            Table1Row {
                name: "ungapped-extend".into(),
                service_time: 955.0,
                mean_gain: Some(1.920),
            },
            Table1Row {
                name: "score-filter".into(),
                service_time: 402.0,
                mean_gain: Some(0.0332),
            },
            Table1Row {
                name: "gapped-align".into(),
                service_time: 2753.0,
                mean_gain: None,
            },
        ],
        vector_width: PAPER_VECTOR_WIDTH,
    }
}

/// Configuration of the synthetic measurement (experiment E1's
/// substitution for the human genome / microbial query).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementConfig {
    /// Genome length (bases).
    pub genome_len: usize,
    /// Query length (bases). The paper used a 64-kilobase query.
    pub query_len: usize,
    /// Number of homologous segments planted into the genome.
    pub homology_segments: usize,
    /// Length of each planted segment.
    pub homology_len: usize,
    /// Point-mutation rate within planted segments.
    pub mutation_rate: f64,
    /// Internal query repeats (fattens index buckets, driving stage-1
    /// expansion).
    pub query_repeats: usize,
    /// Genome positions streamed through the pipeline.
    pub positions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            genome_len: 120_000,
            query_len: 24_000,
            homology_segments: 30,
            homology_len: 400,
            mutation_rate: 0.04,
            query_repeats: 10,
            positions: 30_000,
            seed: 0xB1A57,
        }
    }
}

/// Measure a Table-1 analogue from synthetic data and assemble the
/// corresponding [`PipelineSpec`] (empirical gain models, measured
/// service times).
pub fn measure_pipeline(config: &MeasurementConfig) -> Result<(PipelineSpec, Table1), ModelError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let params = BlastParams::default();

    // Query with an internal repeat family: real genomic queries contain
    // repeat families, which is what makes index buckets (and hence
    // stage-1 expansion) heavy-tailed. One source segment is copied
    // `query_repeats` times with light divergence.
    let mut query = Dna::random(config.query_len, &mut rng);
    let rep_len = 200.min(config.query_len / 8).max(16);
    let family_src = rng.gen_range(0..config.query_len - rep_len);
    for _ in 0..config.query_repeats {
        let dst = rng.gen_range(0..config.query_len - rep_len);
        let tmp = query.clone();
        query.plant(dst, &tmp, family_src, rep_len, 0.01, &mut rng);
    }

    // Genome with planted homologies.
    let mut genome = Dna::random(config.genome_len, &mut rng);
    for _ in 0..config.homology_segments {
        let qfrom = rng.gen_range(0..config.query_len - config.homology_len);
        let gat = rng.gen_range(0..config.genome_len - config.homology_len);
        let q = query.clone();
        genome.plant(
            gat,
            &q,
            qfrom,
            config.homology_len,
            config.mutation_rate,
            &mut rng,
        );
    }

    let ctx = BlastContext::new(genome, query, params);

    // Stream genome positions through the real stages, collecting gain
    // samples and per-item work amounts.
    let mut seed_hits = 0u64;
    let mut expansion_counts = vec![0u64; EXPANSION_CAP as usize + 1];
    let mut filter_pass = 0u64;
    let mut filter_total = 0u64;
    let mut seed_inputs: Vec<Vec<LaneValue>> = Vec::new();
    let mut extend_trips: Vec<Vec<LaneValue>> = Vec::new();
    let mut align_rows: Vec<Vec<LaneValue>> = Vec::new();

    let positions = config
        .positions
        .min(config.genome_len.saturating_sub(params.k));
    for gpos in 0..positions as u32 {
        if let Some(kmer) = ctx.genome().kmer_at(gpos as usize, params.k) {
            seed_inputs.push(vec![kmer as LaneValue]);
        }
        let Some(hit) = ctx.seed_stage(gpos) else {
            continue;
        };
        seed_hits += 1;
        let hsps = ctx.extend_stage_measured(hit);
        expansion_counts[hsps.len().min(EXPANSION_CAP as usize)] += 1;
        for (hsp, touched) in hsps {
            extend_trips.push(vec![touched as LaneValue]);
            filter_total += 1;
            if ctx.filter_stage(hsp).is_some() {
                filter_pass += 1;
                let _ = ctx.align_stage(hsp);
                // DP rows per firing: the banded window is processed in
                // bounded row strips (2×band + k + 16 rows).
                align_rows.push(vec![(2 * params.band + params.k + 16) as LaneValue]);
            }
        }
    }

    // Gains.
    let g0 = seed_hits as f64 / positions.max(1) as f64;
    let expansion_total: u64 = expansion_counts.iter().sum();
    let expansion_pmf: Vec<(u32, f64)> = expansion_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(k, &c)| (k as u32, c as f64 / expansion_total.max(1) as f64))
        .collect();
    let g2 = if filter_total == 0 {
        0.0
    } else {
        filter_pass as f64 / filter_total as f64
    };

    // Service times on the SIMT device, under the 1/4 share.
    let machine = Machine::new(PAPER_VECTOR_WIDTH);
    let kernels = stage_kernels();
    let shares = 4;
    let batch = |inputs: &[Vec<LaneValue>]| -> Vec<Vec<Vec<LaneValue>>> {
        if inputs.is_empty() {
            // No observations (e.g. nothing passed the filter): fall
            // back to a nominal workload so measurement still happens.
            return vec![vec![vec![40]]];
        }
        inputs
            .chunks(PAPER_VECTOR_WIDTH as usize)
            .map(|c| c.to_vec())
            .collect()
    };
    let t0 = measure_service_time(&machine, &kernels.seed, &batch(&seed_inputs), shares);
    let t1 = measure_service_time(&machine, &kernels.extend, &batch(&extend_trips), shares);
    let t2 = measure_service_time(&machine, &kernels.filter, &batch(&extend_trips), shares);
    let t3 = measure_service_time(&machine, &kernels.align, &batch(&align_rows), shares);

    let spec = PipelineSpecBuilder::new(PAPER_VECTOR_WIDTH)
        .stage(
            "seed-match",
            t0.mean.round(),
            GainModel::Bernoulli { p: g0 },
        )
        .stage(
            "ungapped-extend",
            t1.mean.round(),
            GainModel::Empirical {
                pmf: normalize(expansion_pmf),
            },
        )
        .stage(
            "score-filter",
            t2.mean.round(),
            GainModel::Bernoulli { p: g2 },
        )
        .stage(
            "gapped-align",
            t3.mean.round(),
            GainModel::Deterministic { k: 1 },
        )
        .build()?;

    let table = Table1 {
        rows: spec
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| Table1Row {
                name: n.name.clone(),
                service_time: n.service_time,
                mean_gain: (i + 1 < spec.len()).then(|| n.mean_gain()),
            })
            .collect(),
        vector_width: PAPER_VECTOR_WIDTH,
    };
    Ok((spec, table))
}

/// Renormalize a PMF so it sums to exactly 1 (guards accumulated
/// floating-point error before validation).
fn normalize(mut pmf: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    let total: f64 = pmf.iter().map(|(_, p)| p).sum();
    if total > 0.0 {
        for (_, p) in &mut pmf {
            *p /= total;
        }
    } else {
        pmf = vec![(0, 1.0)];
    }
    pmf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pipeline_matches_table1() {
        let p = paper_pipeline();
        assert_eq!(p.len(), 4);
        assert_eq!(p.vector_width(), 128);
        assert_eq!(p.service_times(), vec![287.0, 955.0, 402.0, 2753.0]);
        let g = p.mean_gains();
        assert!((g[0] - 0.379).abs() < 1e-12);
        assert!((g[1] - 1.920).abs() < 1e-3, "censored mean ≈ 1.920");
        assert!((g[2] - 0.0332).abs() < 1e-12);
    }

    #[test]
    fn paper_table1_rows() {
        let t = paper_table1();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[3].mean_gain, None, "final gain is N/A");
        assert_eq!(t.vector_width, 128);
    }

    #[test]
    fn measured_pipeline_is_valid_and_in_the_paper_ballpark() {
        let cfg = MeasurementConfig {
            genome_len: 40_000,
            query_len: 16_000,
            homology_segments: 12,
            homology_len: 300,
            positions: 12_000,
            ..MeasurementConfig::default()
        };
        let (spec, table) = measure_pipeline(&cfg).unwrap();
        assert_eq!(spec.len(), 4);
        let g = spec.mean_gains();
        // Stage 0: seeding probability strictly between 0 and 1, in the
        // broad neighbourhood of the paper's 0.379.
        assert!(g[0] > 0.05 && g[0] < 0.9, "g0 = {}", g[0]);
        // Stage 1: expansion ≥ some growth, bounded by the cap.
        assert!(g[1] > 0.5 && g[1] <= 16.0, "g1 = {}", g[1]);
        // Stage 2: filter is selective.
        assert!(g[2] < 0.5, "g2 = {}", g[2]);
        // Service times positive and ordered plausibly (align dominates).
        let t = spec.service_times();
        assert!(t.iter().all(|&ti| ti > 0.0));
        assert!(t[3] > t[0], "align should cost more than seeding");
        // Table mirrors the spec.
        assert_eq!(table.rows.len(), 4);
        assert!(table.rows[3].mean_gain.is_none());
        for (row, node) in table.rows.iter().zip(spec.nodes()) {
            assert_eq!(row.service_time, node.service_time);
        }
    }

    #[test]
    fn measurement_is_deterministic_in_the_seed() {
        let cfg = MeasurementConfig {
            genome_len: 20_000,
            query_len: 8_000,
            homology_segments: 6,
            positions: 5_000,
            ..MeasurementConfig::default()
        };
        let (a, _) = measure_pipeline(&cfg).unwrap();
        let (b, _) = measure_pipeline(&cfg).unwrap();
        assert_eq!(a.service_times(), b.service_times());
        assert_eq!(a.mean_gains(), b.mean_gains());
    }

    #[test]
    fn normalize_handles_empty_and_skewed() {
        assert_eq!(normalize(vec![]), vec![(0, 1.0)]);
        let n = normalize(vec![(1, 2.0), (2, 2.0)]);
        assert!((n[0].1 - 0.5).abs() < 1e-12);
        let total: f64 = n.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
