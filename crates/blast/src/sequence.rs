//! Synthetic DNA sequences.
//!
//! The paper's measurements used the human genome and a 64-kilobase
//! microbial query — data we substitute with synthetic sequences whose
//! *statistics* drive the same pipeline behaviour: a uniform random
//! background plus planted mutated homologies, so seed matches arise
//! both by chance and from genuine similarity, exactly the mixture that
//! makes BLAST's data flow irregular.

use rand::Rng;

/// A DNA sequence, 2-bit encoded (A=0, C=1, G=2, T=3), one base per
/// byte for simplicity of slicing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dna {
    bases: Vec<u8>,
}

impl Dna {
    /// A uniformly random sequence of `len` bases.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        Dna {
            bases: (0..len).map(|_| rng.gen_range(0..4u8)).collect(),
        }
    }

    /// Build from raw 2-bit codes.
    ///
    /// # Panics
    /// Panics if any code exceeds 3.
    pub fn from_codes(codes: Vec<u8>) -> Self {
        assert!(codes.iter().all(|&b| b < 4), "base codes must be 0..4");
        Dna { bases: codes }
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The base codes.
    pub fn bases(&self) -> &[u8] {
        &self.bases
    }

    /// Base at `pos`.
    pub fn base(&self, pos: usize) -> u8 {
        self.bases[pos]
    }

    /// Pack the `k`-mer starting at `pos` into an integer (2 bits per
    /// base), or `None` if it runs off the end. `k ≤ 31`.
    pub fn kmer_at(&self, pos: usize, k: usize) -> Option<u64> {
        assert!((1..=31).contains(&k), "k must be in 1..=31");
        if pos + k > self.bases.len() {
            return None;
        }
        let mut packed = 0u64;
        for &b in &self.bases[pos..pos + k] {
            packed = (packed << 2) | b as u64;
        }
        Some(packed)
    }

    /// Copy a segment of `other` into `self` at `at`, point-mutating
    /// each base with probability `mutation_rate` — a planted homology.
    ///
    /// # Panics
    /// Panics if the segment does not fit.
    pub fn plant<R: Rng + ?Sized>(
        &mut self,
        at: usize,
        other: &Dna,
        from: usize,
        len: usize,
        mutation_rate: f64,
        rng: &mut R,
    ) {
        assert!(
            at + len <= self.bases.len(),
            "planted segment exceeds target"
        );
        assert!(
            from + len <= other.bases.len(),
            "source segment out of range"
        );
        for i in 0..len {
            let mut b = other.bases[from + i];
            if rng.gen::<f64>() < mutation_rate {
                b = (b + rng.gen_range(1..4u8)) % 4;
            }
            self.bases[at + i] = b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn random_has_right_length_and_alphabet() {
        let d = Dna::random(1000, &mut rng());
        assert_eq!(d.len(), 1000);
        assert!(!d.is_empty());
        assert!(d.bases().iter().all(|&b| b < 4));
        // All four bases appear in 1000 draws with overwhelming odds.
        for target in 0..4u8 {
            assert!(d.bases().contains(&target));
        }
    }

    #[test]
    fn kmer_packing() {
        let d = Dna::from_codes(vec![0, 1, 2, 3]); // ACGT
        assert_eq!(d.kmer_at(0, 4), Some(0b00_01_10_11));
        assert_eq!(d.kmer_at(1, 3), Some(0b01_10_11));
        assert_eq!(d.kmer_at(1, 4), None, "runs off the end");
        assert_eq!(d.base(2), 2);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn kmer_k_range_checked() {
        Dna::from_codes(vec![0]).kmer_at(0, 32);
    }

    #[test]
    fn plant_copies_with_no_mutation() {
        let mut r = rng();
        let src = Dna::random(100, &mut r);
        let mut dst = Dna::random(100, &mut r);
        dst.plant(10, &src, 20, 30, 0.0, &mut r);
        assert_eq!(&dst.bases()[10..40], &src.bases()[20..50]);
    }

    #[test]
    fn plant_mutates_at_rate() {
        let mut r = rng();
        let src = Dna::from_codes(vec![0; 10_000]);
        let mut dst = Dna::from_codes(vec![0; 10_000]);
        dst.plant(0, &src, 0, 10_000, 0.1, &mut r);
        let diffs = dst.bases().iter().filter(|&&b| b != 0).count();
        let rate = diffs as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "mutation rate {rate}");
    }

    #[test]
    #[should_panic(expected = "exceeds target")]
    fn plant_bounds_checked() {
        let mut r = rng();
        let src = Dna::random(10, &mut r);
        let mut dst = Dna::random(10, &mut r);
        dst.plant(5, &src, 0, 10, 0.0, &mut r);
    }

    #[test]
    #[should_panic(expected = "base codes")]
    fn from_codes_validates() {
        Dna::from_codes(vec![4]);
    }
}
