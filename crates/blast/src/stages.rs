//! The four BLAST pipeline stages as real computations.
//!
//! Stage semantics (matching §6.1's description of the Mercator BLAST
//! pipeline):
//!
//! 0. **seed match** — probe the query k-mer index with the k-mer at a
//!    genome position; at most one output per input (gain ≤ 1).
//! 1. **ungapped extension** — extend the seed along each diagonal the
//!    index bucket offers, x-drop style; up to [`crate::EXPANSION_CAP`]
//!    outputs per input (the paper's `u = 16`).
//! 2. **score filter** — keep only HSPs above a reporting threshold;
//!    gain ≪ 1.
//! 3. **gapped alignment** — banded Smith–Waterman around the HSP; one
//!    output per input.

use crate::index::KmerIndex;
use crate::sequence::Dna;
use crate::EXPANSION_CAP;

/// A stage-0 output: a seed match between genome and query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedHit {
    /// Genome position of the seed.
    pub gpos: u32,
    /// Query position of the seed.
    pub qpos: u32,
}

/// A stage-1 output: an ungapped high-scoring segment pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hsp {
    /// Genome position of the seed the HSP grew from.
    pub gpos: u32,
    /// Query position of the seed.
    pub qpos: u32,
    /// Ungapped extension score.
    pub score: i32,
}

/// A stage-3 output: a gapped alignment score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alignment {
    /// Banded Smith–Waterman score.
    pub score: i32,
}

/// Scoring and thresholding parameters for the pipeline stages.
#[derive(Debug, Clone, Copy)]
pub struct BlastParams {
    /// Seed word size.
    pub k: usize,
    /// X-drop cutoff for ungapped extension.
    pub xdrop: i32,
    /// Minimum ungapped score for an extension to become an HSP.
    pub hsp_min_score: i32,
    /// Minimum HSP score to survive the stage-2 filter.
    pub filter_min_score: i32,
    /// Half-width of the banded alignment window.
    pub band: usize,
    /// Match reward.
    pub match_score: i32,
    /// Mismatch penalty (positive number, subtracted).
    pub mismatch_penalty: i32,
    /// Gap penalty (positive number, subtracted).
    pub gap_penalty: i32,
    /// Two-hit seeding window: when `Some(w)`, a genome position only
    /// seeds if a *second* exact k-mer match lies on the same diagonal
    /// within `w` bases upstream — NCBI BLAST's classic heuristic for
    /// suppressing chance single-word hits. `None` = one-hit seeding.
    pub two_hit_window: Option<u32>,
}

impl Default for BlastParams {
    fn default() -> Self {
        BlastParams {
            k: 8,
            xdrop: 12,
            // The seed alone scores k × match = 8, so every hit yields at
            // least one HSP — matching the paper's stage-1 mean gain of
            // 1.92 (≥ 1) for hits.
            hsp_min_score: 8,
            filter_min_score: 26,
            band: 8,
            match_score: 1,
            mismatch_penalty: 2,
            gap_penalty: 3,
            two_hit_window: None,
        }
    }
}

/// Shared state for a genome-vs-query comparison.
#[derive(Debug)]
pub struct BlastContext {
    genome: Dna,
    query: Dna,
    index: KmerIndex,
    params: BlastParams,
}

impl BlastContext {
    /// Build the context, indexing the query.
    pub fn new(genome: Dna, query: Dna, params: BlastParams) -> Self {
        let index = KmerIndex::build(&query, params.k);
        BlastContext {
            genome,
            query,
            index,
            params,
        }
    }

    /// The genome.
    pub fn genome(&self) -> &Dna {
        &self.genome
    }

    /// The query.
    pub fn query(&self) -> &Dna {
        &self.query
    }

    /// The parameters in force.
    pub fn params(&self) -> &BlastParams {
        &self.params
    }

    /// Stage 0: seed lookup at a genome position. Returns the first
    /// index hit (passing the two-hit test if configured), if any — one
    /// lane's worth of downstream work.
    pub fn seed_stage(&self, gpos: u32) -> Option<SeedHit> {
        let kmer = self.genome.kmer_at(gpos as usize, self.params.k)?;
        for &qpos in self.index.lookup(kmer) {
            match self.params.two_hit_window {
                None => return Some(SeedHit { gpos, qpos }),
                Some(w) => {
                    if self.has_prior_diagonal_hit(gpos as usize, qpos as usize, w as usize) {
                        return Some(SeedHit { gpos, qpos });
                    }
                }
            }
        }
        None
    }

    /// Two-hit test: is there an exact k-mer match on the same diagonal
    /// within `window` bases upstream of `(gpos, qpos)`?
    fn has_prior_diagonal_hit(&self, gpos: usize, qpos: usize, window: usize) -> bool {
        let k = self.params.k;
        let back = window.min(gpos).min(qpos);
        for d in k..=back {
            let g = gpos - d;
            let q = qpos - d;
            if self.genome.bases()[g..g + k] == self.query.bases()[q..q + k] {
                return true;
            }
        }
        false
    }

    /// Stage 1: ungapped x-drop extension of the seed along every
    /// diagonal the index bucket offers, capped at
    /// [`EXPANSION_CAP`] outputs.
    pub fn extend_stage(&self, hit: SeedHit) -> Vec<Hsp> {
        self.extend_stage_measured(hit)
            .into_iter()
            .map(|(hsp, _)| hsp)
            .collect()
    }

    /// [`Self::extend_stage`] plus, per HSP, the number of bases the
    /// extension actually touched — the data-dependent work amount that
    /// drives the stage-1 kernel's loop trip count during service-time
    /// measurement.
    pub fn extend_stage_measured(&self, hit: SeedHit) -> Vec<(Hsp, u32)> {
        let kmer = match self.genome.kmer_at(hit.gpos as usize, self.params.k) {
            Some(k) => k,
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        for &qpos in self.index.lookup(kmer) {
            let (score, touched) = self.ungapped_extend(hit.gpos as usize, qpos as usize);
            if score >= self.params.hsp_min_score {
                out.push((
                    Hsp {
                        gpos: hit.gpos,
                        qpos,
                        score,
                    },
                    touched,
                ));
                if out.len() == EXPANSION_CAP as usize {
                    break;
                }
            }
        }
        out
    }

    /// Stage 2: reporting-threshold filter.
    pub fn filter_stage(&self, hsp: Hsp) -> Option<Hsp> {
        (hsp.score >= self.params.filter_min_score).then_some(hsp)
    }

    /// Stage 3: banded Smith–Waterman around the HSP.
    pub fn align_stage(&self, hsp: Hsp) -> Alignment {
        let window = 24usize;
        let g0 = (hsp.gpos as usize).saturating_sub(window);
        let g1 = (hsp.gpos as usize + self.params.k + window).min(self.genome.len());
        let q0 = (hsp.qpos as usize).saturating_sub(window);
        let q1 = (hsp.qpos as usize + self.params.k + window).min(self.query.len());
        let score = banded_smith_waterman(
            &self.genome.bases()[g0..g1],
            &self.query.bases()[q0..q1],
            self.params.band,
            self.params.match_score,
            self.params.mismatch_penalty,
            self.params.gap_penalty,
        );
        Alignment { score }
    }

    /// X-drop ungapped extension from a seed at `(gpos, qpos)`: returns
    /// `(score, bases touched)`.
    fn ungapped_extend(&self, gpos: usize, qpos: usize) -> (i32, u32) {
        let k = self.params.k;
        let g = self.genome.bases();
        let q = self.query.bases();
        // The seed itself matches exactly.
        let seed_score = k as i32 * self.params.match_score;
        let mut touched = k as u32;

        let step = |gi: usize, qi: usize| -> i32 {
            if g[gi] == q[qi] {
                self.params.match_score
            } else {
                -self.params.mismatch_penalty
            }
        };

        // Extend right from the seed's end.
        let mut best_right = 0;
        let mut run = 0;
        let (mut gi, mut qi) = (gpos + k, qpos + k);
        while gi < g.len() && qi < q.len() {
            run += step(gi, qi);
            touched += 1;
            if run > best_right {
                best_right = run;
            }
            if run < best_right - self.params.xdrop {
                break;
            }
            gi += 1;
            qi += 1;
        }

        // Extend left from the seed's start.
        let mut best_left = 0;
        let mut run = 0;
        let (mut gi, mut qi) = (gpos, qpos);
        while gi > 0 && qi > 0 {
            gi -= 1;
            qi -= 1;
            run += step(gi, qi);
            touched += 1;
            if run > best_left {
                best_left = run;
            }
            if run < best_left - self.params.xdrop {
                break;
            }
        }

        (seed_score + best_right + best_left, touched)
    }
}

/// Banded Smith–Waterman local alignment score of `a` vs `b`: cells with
/// `|i − j| > band` are excluded.
pub fn banded_smith_waterman(
    a: &[u8],
    b: &[u8],
    band: usize,
    match_score: i32,
    mismatch_penalty: i32,
    gap_penalty: i32,
) -> i32 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let cols = b.len() + 1;
    let mut prev = vec![0i32; cols];
    let mut cur = vec![0i32; cols];
    let mut best = 0;
    for i in 1..=a.len() {
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(b.len());
        if lo > hi {
            // The band has slid past the end of `b`; no cell of this or
            // any later row is inside it.
            break;
        }
        cur[lo - 1] = 0;
        for j in lo..=hi {
            let sub = if a[i - 1] == b[j - 1] {
                match_score
            } else {
                -mismatch_penalty
            };
            let diag = prev[j - 1] + sub;
            let up = prev[j] - gap_penalty;
            let left = cur[j - 1] - gap_penalty;
            let cell = diag.max(up).max(left).max(0);
            cur[j] = cell;
            if cell > best {
                best = cell;
            }
        }
        if hi < b.len() {
            cur[hi + 1] = 0;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_with_planted() -> BlastContext {
        let mut rng = StdRng::seed_from_u64(42);
        let query = Dna::random(2_000, &mut rng);
        let mut genome = Dna::random(10_000, &mut rng);
        // Plant a clean homology: query[100..400] at genome 5000.
        genome.plant(5_000, &query, 100, 300, 0.02, &mut rng);
        BlastContext::new(genome, query, BlastParams::default())
    }

    #[test]
    fn seed_stage_finds_planted_homology() {
        let ctx = ctx_with_planted();
        // Scan the planted region: the vast majority of positions should
        // seed (k=8 with 2% mutation leaves most 8-mers intact).
        let hits = (5_000..5_250)
            .filter(|&g| ctx.seed_stage(g).is_some())
            .count();
        assert!(hits > 150, "only {hits} of 250 planted positions seeded");
    }

    #[test]
    fn seed_hit_points_back_to_query() {
        let ctx = ctx_with_planted();
        let hit = (5_000..5_100)
            .find_map(|g| ctx.seed_stage(g))
            .expect("planted region must seed");
        // The seed's k-mer must actually match at the reported positions.
        let k = ctx.params().k;
        let gk = ctx.genome().kmer_at(hit.gpos as usize, k).unwrap();
        let qk = ctx.query().kmer_at(hit.qpos as usize, k).unwrap();
        assert_eq!(gk, qk);
    }

    #[test]
    fn extension_scores_homology_higher_than_chance() {
        let ctx = ctx_with_planted();
        let planted_hit = (5_050..5_150)
            .find_map(|g| ctx.seed_stage(g))
            .expect("planted region must seed");
        let hsps = ctx.extend_stage(planted_hit);
        assert!(!hsps.is_empty());
        let best = hsps.iter().map(|h| h.score).max().unwrap();
        assert!(
            best >= ctx.params().filter_min_score,
            "planted extension score {best} below the reporting threshold"
        );
    }

    #[test]
    fn extension_respects_cap() {
        // A degenerate query of all-A makes every bucket enormous.
        let mut rng = StdRng::seed_from_u64(1);
        let query = Dna::from_codes(vec![0; 500]);
        let mut genome = Dna::random(1_000, &mut rng);
        genome.plant(400, &query, 0, 100, 0.0, &mut rng);
        let ctx = BlastContext::new(genome, query, BlastParams::default());
        let hit = ctx.seed_stage(420).expect("all-A region seeds");
        let hsps = ctx.extend_stage(hit);
        assert!(hsps.len() <= EXPANSION_CAP as usize);
        assert_eq!(
            hsps.len(),
            EXPANSION_CAP as usize,
            "degenerate case should saturate"
        );
    }

    #[test]
    fn filter_passes_only_high_scores() {
        let ctx = ctx_with_planted();
        let low = Hsp {
            gpos: 0,
            qpos: 0,
            score: ctx.params().filter_min_score - 1,
        };
        let high = Hsp {
            gpos: 0,
            qpos: 0,
            score: ctx.params().filter_min_score,
        };
        assert!(ctx.filter_stage(low).is_none());
        assert!(ctx.filter_stage(high).is_some());
    }

    #[test]
    fn align_stage_scores_planted_region_well() {
        let ctx = ctx_with_planted();
        let hit = (5_050..5_150)
            .find_map(|g| ctx.seed_stage(g))
            .expect("planted region must seed");
        let hsp = ctx
            .extend_stage(hit)
            .into_iter()
            .max_by_key(|h| h.score)
            .unwrap();
        let aln = ctx.align_stage(hsp);
        // A ~48-base window of 98%-identity sequence should align with a
        // hefty positive score.
        assert!(aln.score > 20, "alignment score {}", aln.score);
    }

    #[test]
    fn smith_waterman_identical_strings() {
        let s = [0u8, 1, 2, 3, 0, 1, 2, 3];
        assert_eq!(banded_smith_waterman(&s, &s, 4, 1, 2, 3), 8);
    }

    #[test]
    fn smith_waterman_disjoint_strings() {
        let a = [0u8; 8];
        let b = [3u8; 8];
        assert_eq!(banded_smith_waterman(&a, &b, 4, 1, 2, 3), 0);
    }

    #[test]
    fn smith_waterman_gap_bridging() {
        // b equals a with one base deleted: score = matches − gap.
        let a = [0u8, 1, 2, 3, 0, 1, 2, 3, 0, 1];
        let b = [0u8, 1, 2, 3, 1, 2, 3, 0, 1];
        let score = banded_smith_waterman(&a, &b, 4, 1, 2, 3);
        assert_eq!(score, 9 - 3);
    }

    #[test]
    fn smith_waterman_empty_inputs() {
        assert_eq!(banded_smith_waterman(&[], &[0], 4, 1, 2, 3), 0);
        assert_eq!(banded_smith_waterman(&[0], &[], 4, 1, 2, 3), 0);
    }

    #[test]
    fn two_hit_suppresses_chance_seeds_but_keeps_homology() {
        let mut rng = StdRng::seed_from_u64(21);
        let query = Dna::random(4_000, &mut rng);
        let mut genome = Dna::random(30_000, &mut rng);
        genome.plant(10_000, &query, 500, 400, 0.02, &mut rng);
        let one_hit = BlastContext::new(genome.clone(), query.clone(), BlastParams::default());
        let two_hit = BlastContext::new(
            genome,
            query,
            BlastParams {
                two_hit_window: Some(40),
                ..BlastParams::default()
            },
        );
        // Background (random) seeding rate: two-hit must be much rarer.
        let count = |ctx: &BlastContext, range: std::ops::Range<u32>| {
            range.filter(|&g| ctx.seed_stage(g).is_some()).count()
        };
        let bg_one = count(&one_hit, 0..8_000);
        let bg_two = count(&two_hit, 0..8_000);
        assert!(bg_one > 0);
        assert!(
            (bg_two as f64) < 0.25 * bg_one as f64,
            "two-hit background {bg_two} vs one-hit {bg_one}"
        );
        // Homologous region: two-hit must retain most seeds.
        let hom_one = count(&one_hit, 10_050..10_350);
        let hom_two = count(&two_hit, 10_050..10_350);
        assert!(
            (hom_two as f64) > 0.5 * hom_one as f64,
            "two-hit homology {hom_two} vs one-hit {hom_one}"
        );
    }

    #[test]
    fn two_hit_respects_window_bound() {
        // A genome that equals the query exactly: every position past k
        // has a prior diagonal hit; position 0 cannot.
        let mut rng = StdRng::seed_from_u64(5);
        let seq = Dna::random(200, &mut rng);
        let ctx = BlastContext::new(
            seq.clone(),
            seq,
            BlastParams {
                two_hit_window: Some(16),
                ..BlastParams::default()
            },
        );
        assert!(
            ctx.seed_stage(0).is_none(),
            "no upstream context at position 0"
        );
        assert!(
            ctx.seed_stage(50).is_some(),
            "identical sequences double-hit everywhere"
        );
    }

    #[test]
    fn random_positions_rarely_pass_filter() {
        // End-to-end gain sanity on pure random data: the stage-2 filter
        // must be selective.
        let mut rng = StdRng::seed_from_u64(9);
        let query = Dna::random(2_000, &mut rng);
        let genome = Dna::random(20_000, &mut rng);
        let ctx = BlastContext::new(genome, query, BlastParams::default());
        let mut survivors = 0u32;
        let mut hsps_total = 0u32;
        for g in 0..10_000u32 {
            if let Some(hit) = ctx.seed_stage(g) {
                for hsp in ctx.extend_stage(hit) {
                    hsps_total += 1;
                    if ctx.filter_stage(hsp).is_some() {
                        survivors += 1;
                    }
                }
            }
        }
        assert!(hsps_total > 0);
        let rate = survivors as f64 / hsps_total as f64;
        assert!(rate < 0.2, "filter passes {rate} of random HSPs");
    }
}
