//! Property-based tests for the BLAST application substrate.

use blast::index::KmerIndex;
use blast::sequence::Dna;
use blast::stages::{banded_smith_waterman, BlastContext, BlastParams};
use blast::EXPANSION_CAP;
use proptest::prelude::*;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Dna> {
    prop::collection::vec(0u8..4, len).prop_map(Dna::from_codes)
}

proptest! {
    #[test]
    fn kmer_encoding_is_injective_on_windows(seq in dna(8..64), k in 2usize..8) {
        // Two windows encode equal iff their bases are equal.
        let n = seq.len();
        for i in 0..n.saturating_sub(k) {
            for j in (i + 1)..n.saturating_sub(k) + 1 {
                let a = seq.kmer_at(i, k);
                let b = seq.kmer_at(j, k);
                if let (Some(a), Some(b)) = (a, b) {
                    let eq_bases = seq.bases()[i..i + k] == seq.bases()[j..j + k];
                    prop_assert_eq!(a == b, eq_bases, "windows {},{} k={}", i, j, k);
                }
            }
        }
    }

    #[test]
    fn index_lookup_positions_really_match(seq in dna(32..256), k in 3usize..8) {
        let idx = KmerIndex::build(&seq, k);
        for pos in 0..seq.len() - k {
            let kmer = seq.kmer_at(pos, k).unwrap();
            let bucket = idx.lookup(kmer);
            prop_assert!(bucket.contains(&(pos as u32)), "own position missing from bucket");
            for &q in bucket {
                prop_assert_eq!(
                    seq.kmer_at(q as usize, k).unwrap(),
                    kmer,
                    "bucket entry {} does not match",
                    q
                );
            }
        }
    }

    #[test]
    fn smith_waterman_self_alignment_is_perfect(a in dna(1..48), band in 2usize..12) {
        let score = banded_smith_waterman(a.bases(), a.bases(), band, 1, 2, 3);
        prop_assert_eq!(score, a.len() as i32);
    }

    #[test]
    fn smith_waterman_score_is_nonnegative_and_bounded(
        a in dna(0..40),
        b in dna(0..40),
        band in 1usize..10,
    ) {
        let score = banded_smith_waterman(a.bases(), b.bases(), band, 1, 2, 3);
        prop_assert!(score >= 0);
        prop_assert!(score <= a.len().min(b.len()) as i32, "score beats perfect match");
    }

    #[test]
    fn smith_waterman_is_symmetric(a in dna(1..32), b in dna(1..32), band in 2usize..10) {
        let ab = banded_smith_waterman(a.bases(), b.bases(), band, 1, 2, 3);
        let ba = banded_smith_waterman(b.bases(), a.bases(), band, 1, 2, 3);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn extension_outputs_respect_cap_and_threshold(seed in 0u64..500) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let query = Dna::random(1_500, &mut rng);
        let mut genome = Dna::random(4_000, &mut rng);
        genome.plant(1_000, &query, 100, 300, 0.05, &mut rng);
        let ctx = BlastContext::new(genome, query, BlastParams::default());
        for g in (0..3_900u32).step_by(37) {
            if let Some(hit) = ctx.seed_stage(g) {
                let hsps = ctx.extend_stage(hit);
                prop_assert!(hsps.len() <= EXPANSION_CAP as usize);
                for h in &hsps {
                    prop_assert!(h.score >= ctx.params().hsp_min_score);
                    // The seed itself guarantees at least k matches.
                    prop_assert!(h.score >= ctx.params().k as i32);
                }
                // Every hit yields at least one HSP (the seed's own
                // diagonal always clears the threshold).
                prop_assert!(!hsps.is_empty());
            }
        }
    }

    #[test]
    fn planting_preserves_sequence_length_and_alphabet(
        mut dst in dna(64..128),
        src in dna(64..128),
        seed in 0u64..100,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let len = 32.min(src.len()).min(dst.len());
        let before = dst.len();
        dst.plant(0, &src, 0, len, 0.3, &mut rng);
        prop_assert_eq!(dst.len(), before);
        prop_assert!(dst.bases().iter().all(|&b| b < 4));
    }
}
