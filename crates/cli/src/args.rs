//! Argument parsing (hand-rolled: the surface is small and a parser
//! dependency would dwarf it).

use bench::MetricsFormat;
use std::fmt;

/// Top-level usage text.
pub const USAGE: &str = "\
rtsdf-cli — real-time irregular SIMD pipeline scheduling

USAGE:
  rtsdf-cli example-pipeline
  rtsdf-cli optimize  --pipeline FILE --tau0 T --deadline D
                      [--b B1,B2,...] [--strategy enforced|monolithic|flexible|all] [--json]
  rtsdf-cli simulate  (--pipeline FILE | --workload NAME) --tau0 T --deadline D
                      [--b B1,B2,...] [--items N] [--seeds K] [--json]
                      [--metrics json|csv]
  rtsdf-cli sweep     (--pipeline FILE | --workload NAME)
                      [--grid RxC] [--csv] [--metrics json|csv]
                      [--live] [--live-interval MS] [--metrics-listen ADDR]
  rtsdf-cli calibrate --pipeline FILE --points T1:D1,T2:D2,...
                      [--seeds K] [--items N]
  rtsdf-cli gantt     --pipeline FILE --tau0 T --deadline D
                      [--b B1,B2,...] [--window CYCLES] [--width COLS]
  rtsdf-cli trace     --pipeline FILE --tau0 T --deadline D
                      [--b B1,B2,...] [--items N] [--seed S]
                      [--strategy enforced|monolithic] [--format chrome|json]
                      [--alpha A] [--out FILE]
  rtsdf-cli stress    (--pipeline FILE | --workload NAME) --tau0 T --deadline D
                      [--b B1,B2,...] [--items N] [--seeds K]
                      [--intensities I1,I2,...] [--target F] [--json]
                      [--metrics json|csv]
                      [--live] [--live-interval MS] [--metrics-listen ADDR]
  rtsdf-cli execute   (--pipeline FILE | --workload NAME) --tau0 T --deadline D
                      [--b B1,B2,...] [--items N] [--seed S] [--duration SECS]
                      [--strategy enforced|monolithic] [--sim-seeds K]
                      [--tolerance F] [--gate] [--json] [--metrics json|csv]

OPTIONS:
  --pipeline FILE   JSON file holding a PipelineSpec (see example-pipeline)
  --workload NAME   built-in synthesized workload instead of a pipeline file;
                    'logalytics' is the log-analytics DAG
                    (parse -> {filter, enrich} -> join -> aggregate);
                    'deepchain:N' is a deterministic N-stage chain (N >= 2)
                    for solver scaling studies
  --tau0 T          inter-arrival time in cycles (floats accepted, e.g. 1e2)
  --deadline D      end-to-end deadline in cycles
  --b LIST          backlog factors, one per stage (default: ceil of each gain)
  --strategy S      which optimizer(s) to run (default: all)
  --items N         stream length per simulation run (default: 10000)
  --seeds K         number of seeds (default: 8)
  --grid RxC        sweep resolution over the paper's (tau0, D) ranges (default: 8x8)
  --points LIST     calibration operating points as tau0:deadline pairs
  --json / --csv    machine-readable output
  --metrics FMT     also write a BENCH_<cmd> run manifest (json) or flat
                    per-cell/per-seed rows (csv) to $BENCH_OUT_DIR or .
  --seed S          RNG seed for a single traced run (default: 0)
  --format FMT      trace output: 'chrome' (Chrome/Perfetto trace-event
                    JSON, the default) or 'json' (metrics + blame report)
  --alpha A         deadline-miss forensics threshold: analyze items with
                    latency > A*deadline (default: 1.0)
  --out FILE        trace output path (default: trace.json)
  --intensities L   perturbation intensities to sweep (default: 0,0.5,1)
  --target F        miss-free-fraction target for the robustness margin
                    (default: 0.95)
  --duration SECS   target wall duration of a real 'execute' run (default: 1.0)
  --sim-seeds K     simulator seeds averaged in the sim-vs-real comparison
                    (default: 4)
  --tolerance F     relative-error tolerance of the sim-vs-real agreement
                    check (default: 0.10)
  --gate            exit nonzero if the run violates item conservation or
                    any agreement check fails
  --live            render an in-place progress line (cells/runs done, ETA,
                    items/s, shed and miss counters) on stderr
  --live-interval MS  progress-line refresh interval in milliseconds
                    (default: 500; implies --live)
  --metrics-listen ADDR  serve Prometheus text at GET /metrics on ADDR
                    (e.g. 127.0.0.1:9184; port 0 picks a free port)
";

/// Built-in synthesized workloads selectable with `--workload`.
/// `deepchain:N` is additionally accepted with any stage count `N ≥ 2`
/// (see [`workload_is_known`]).
pub const WORKLOADS: &[&str] = &["logalytics", "deepchain:N"];

/// Parse the stage count out of a `deepchain:N` workload name.
///
/// Strict: the suffix must be plain ASCII digits. `usize::from_str`
/// alone would also accept a leading `+` (`deepchain:+8`), and sloppy
/// spellings like `deepchain: 8` must fail here rather than resolve to
/// a workload, so reject anything that is not `[0-9]+` before parsing.
/// The count must be at least 2 (a chain needs two stages).
pub fn parse_deepchain_stages(name: &str) -> Option<usize> {
    let suffix = name.strip_prefix("deepchain:")?;
    if suffix.is_empty() || !suffix.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    suffix.parse::<usize>().ok().filter(|&n| n >= 2)
}

/// Whether `name` selects a built-in workload: an exact entry of
/// [`WORKLOADS`], or the parameterized `deepchain:N` form with a stage
/// count of at least 2.
pub fn workload_is_known(name: &str) -> bool {
    if name != "deepchain:N" && WORKLOADS.contains(&name) {
        return true;
    }
    parse_deepchain_stages(name).is_some()
}

/// Live-telemetry options shared by `sweep` and `stress`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveOpts {
    /// Render an in-place progress line on stderr.
    pub live: bool,
    /// Refresh interval of the progress line, in milliseconds.
    pub interval_ms: u64,
    /// Serve Prometheus text at `GET /metrics` on this address.
    pub metrics_listen: Option<String>,
}

impl LiveOpts {
    /// Everything off (the default).
    pub fn off() -> Self {
        LiveOpts {
            live: false,
            interval_ms: 500,
            metrics_listen: None,
        }
    }

    /// True when any live machinery (progress line or `/metrics`
    /// server) is requested, i.e. a registry must be created.
    pub fn enabled(&self) -> bool {
        self.live || self.metrics_listen.is_some()
    }
}

/// Which strategies an `optimize` run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Enforced waits only.
    Enforced,
    /// Monolithic batching only.
    Monolithic,
    /// Flexible-shares extension only.
    Flexible,
    /// Everything.
    All,
}

/// Output format of the `trace` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON, loadable in Perfetto / `chrome://tracing`.
    Chrome,
    /// Structured metrics + blame report JSON.
    Json,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print the BLAST example pipeline JSON.
    ExamplePipeline,
    /// Optimize schedules at one operating point.
    Optimize {
        /// Pipeline JSON path.
        pipeline: String,
        /// Inter-arrival time.
        tau0: f64,
        /// Deadline.
        deadline: f64,
        /// Backlog factors (`None` = optimistic default).
        b: Option<Vec<f64>>,
        /// Strategies to run.
        strategy: Strategy,
        /// Emit JSON.
        json: bool,
    },
    /// Optimize then simulate across seeds.
    Simulate {
        /// Pipeline JSON path (chain mode; absent when a workload is
        /// selected).
        pipeline: Option<String>,
        /// Built-in synthesized workload name (DAG mode).
        workload: Option<String>,
        /// Inter-arrival time.
        tau0: f64,
        /// Deadline.
        deadline: f64,
        /// Backlog factors.
        b: Option<Vec<f64>>,
        /// Items per run.
        items: usize,
        /// Seeds.
        seeds: u64,
        /// Emit JSON.
        json: bool,
        /// Also write a run manifest / metrics file.
        metrics: Option<MetricsFormat>,
    },
    /// Fig-3/4 style grid sweep.
    Sweep {
        /// Pipeline JSON path (chain mode; absent when a workload is
        /// selected).
        pipeline: Option<String>,
        /// Built-in synthesized workload name (DAG mode).
        workload: Option<String>,
        /// Grid shape (τ0 points, D points).
        grid: (usize, usize),
        /// Emit CSV.
        csv: bool,
        /// Also write a run manifest / metrics file.
        metrics: Option<MetricsFormat>,
        /// Live progress / `/metrics` serving.
        live: LiveOpts,
    },
    /// ASCII firing timeline.
    Gantt {
        /// Pipeline JSON path.
        pipeline: String,
        /// Inter-arrival time.
        tau0: f64,
        /// Deadline.
        deadline: f64,
        /// Backlog factors.
        b: Option<Vec<f64>>,
        /// Cycles of execution to draw.
        window: f64,
        /// Output width in columns.
        width: usize,
    },
    /// Single traced run: causal span trace + deadline-miss forensics.
    Trace {
        /// Pipeline JSON path.
        pipeline: String,
        /// Inter-arrival time.
        tau0: f64,
        /// Deadline.
        deadline: f64,
        /// Backlog factors.
        b: Option<Vec<f64>>,
        /// Items in the traced run.
        items: usize,
        /// RNG seed.
        seed: u64,
        /// Which strategy to trace (enforced or monolithic only).
        strategy: Strategy,
        /// Output format.
        format: TraceFormat,
        /// Forensics threshold multiplier on the deadline.
        alpha: f64,
        /// Output path.
        out: String,
    },
    /// Robustness sweep under fault injection.
    Stress {
        /// Pipeline JSON path (chain mode; absent when a workload is
        /// selected).
        pipeline: Option<String>,
        /// Built-in synthesized workload name (DAG mode).
        workload: Option<String>,
        /// Inter-arrival time.
        tau0: f64,
        /// Deadline.
        deadline: f64,
        /// Backlog factors.
        b: Option<Vec<f64>>,
        /// Items per run.
        items: usize,
        /// Seeds per sweep cell.
        seeds: u64,
        /// Perturbation intensities to sweep.
        intensities: Vec<f64>,
        /// Miss-free-fraction target for the robustness margin.
        target: f64,
        /// Emit JSON.
        json: bool,
        /// Also write a run manifest / metrics file.
        metrics: Option<MetricsFormat>,
        /// Live progress / `/metrics` serving.
        live: LiveOpts,
    },
    /// Real threaded execution, cross-validated against the simulator.
    Execute {
        /// Pipeline JSON path (chain mode; absent when a workload is
        /// selected).
        pipeline: Option<String>,
        /// Built-in synthesized workload name (DAG mode).
        workload: Option<String>,
        /// Inter-arrival time.
        tau0: f64,
        /// Deadline.
        deadline: f64,
        /// Backlog factors.
        b: Option<Vec<f64>>,
        /// Stream inputs in the real run.
        items: usize,
        /// RNG seed of the real run.
        seed: u64,
        /// Target wall duration of the run, seconds.
        duration: f64,
        /// Which strategy to execute (enforced or monolithic only).
        strategy: Strategy,
        /// Simulator seeds averaged for the comparison.
        sim_seeds: u64,
        /// Agreement tolerance (relative error).
        tolerance: f64,
        /// Exit nonzero on conservation/agreement failure.
        gate: bool,
        /// Emit JSON.
        json: bool,
        /// Also write a run manifest / metrics file.
        metrics: Option<MetricsFormat>,
    },
    /// §6.2 calibration.
    Calibrate {
        /// Pipeline JSON path.
        pipeline: String,
        /// Operating points.
        points: Vec<(f64, f64)>,
        /// Seeds per point.
        seeds: u64,
        /// Items per run.
        items: usize,
    },
}

/// Parse failure with a human-oriented message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// A tiny `--flag value` scanner over the argument list.
struct Scanner<'a> {
    args: &'a [String],
}

impl<'a> Scanner<'a> {
    fn value_of(&self, flag: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(|s| s.as_str())
    }

    fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    fn require(&self, flag: &str) -> Result<&'a str, ParseError> {
        self.value_of(flag)
            .ok_or_else(|| ParseError(format!("missing required option {flag} VALUE")))
    }

    fn parse_f64(&self, flag: &str) -> Result<f64, ParseError> {
        let raw = self.require(flag)?;
        raw.parse::<f64>()
            .map_err(|_| ParseError(format!("{flag}: '{raw}' is not a number")))
    }

    fn parse_metrics(&self) -> Result<Option<MetricsFormat>, ParseError> {
        bench::parse_metrics_flag(self.args).map_err(ParseError)
    }

    fn parse_live(&self) -> Result<LiveOpts, ParseError> {
        let interval_ms = match self.value_of("--live-interval") {
            None => 500,
            Some(raw) => {
                let ms = parse_usize("--live-interval", raw)? as u64;
                if ms == 0 {
                    return err("--live-interval: must be at least 1 ms");
                }
                ms
            }
        };
        Ok(LiveOpts {
            // An explicit interval implies the progress line.
            live: self.has("--live") || self.value_of("--live-interval").is_some(),
            interval_ms,
            metrics_listen: self.value_of("--metrics-listen").map(str::to_string),
        })
    }

    /// Resolve the mutually exclusive `--pipeline FILE` / `--workload
    /// NAME` pair: exactly one must be present, and a workload name must
    /// be a known built-in.
    fn parse_source(&self) -> Result<(Option<String>, Option<String>), ParseError> {
        let workload = self.value_of("--workload").map(str::to_string);
        if let Some(name) = &workload {
            if !workload_is_known(name) {
                // A bad deepchain suffix gets a targeted message; plain
                // unknown names get the available list.
                if let Some(suffix) = name.strip_prefix("deepchain:") {
                    return err(format!(
                        "--workload: deepchain stage count must be a plain \
                         unsigned integer >= 2, got '{suffix}'"
                    ));
                }
                return err(format!(
                    "--workload: unknown workload '{name}' (available: {})",
                    WORKLOADS.join(", ")
                ));
            }
            if self.has("--pipeline") {
                return err("--pipeline and --workload are mutually exclusive");
            }
            return Ok((None, workload));
        }
        Ok((Some(self.require("--pipeline")?.to_string()), None))
    }

    fn parse_usize_or(&self, flag: &str, default: usize) -> Result<usize, ParseError> {
        match self.value_of(flag) {
            None => Ok(default),
            Some(raw) => parse_usize(flag, raw),
        }
    }

    /// Reject unknown options and a value option immediately followed by
    /// another option instead of its value. Tokens not starting with
    /// `--` (including negative numbers like `-3`) remain valid values.
    fn check_flags(&self, value_flags: &[&str], bool_flags: &[&str]) -> Result<(), ParseError> {
        let mut i = 0;
        while i < self.args.len() {
            let tok = self.args[i].as_str();
            if !tok.starts_with("--") {
                return err(format!("unexpected argument '{tok}'"));
            }
            if value_flags.contains(&tok) {
                match self.args.get(i + 1) {
                    Some(next) if next.starts_with("--") => {
                        return err(format!(
                            "{tok} expects a value, but is followed by option '{next}'"
                        ));
                    }
                    Some(_) => i += 2,
                    None => return err(format!("{tok} expects a value")),
                }
            } else if bool_flags.contains(&tok) {
                i += 1;
            } else {
                return err(format!("unknown option '{tok}'"));
            }
        }
        Ok(())
    }
}

/// Parse a nonnegative integer losslessly. Plain integer spellings go
/// straight through `usize`; float spellings (`2e3`) are accepted only
/// when finite, nonnegative, integral, and at most 2^53 (the largest
/// magnitude at which every `f64` integer is exact) — so `1e30` is an
/// error rather than a silent saturation to `usize::MAX`.
fn parse_usize(flag: &str, raw: &str) -> Result<usize, ParseError> {
    let trimmed = raw.trim();
    if let Ok(v) = trimmed.parse::<usize>() {
        return Ok(v);
    }
    let bad = || ParseError(format!("{flag}: '{raw}' is not a nonnegative integer"));
    let v: f64 = trimmed.parse().map_err(|_| bad())?;
    if !v.is_finite() || v < 0.0 || v.fract() != 0.0 {
        return Err(bad());
    }
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if v > MAX_EXACT {
        return err(format!(
            "{flag}: '{raw}' is too large to represent exactly (max 2^53)"
        ));
    }
    usize::try_from(v as u64).map_err(|_| bad())
}

fn parse_b_list(raw: &str) -> Result<Vec<f64>, ParseError> {
    raw.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<f64>()
                .map_err(|_| ParseError(format!("--b: '{tok}' is not a number")))
        })
        .collect()
}

fn parse_points(raw: &str) -> Result<Vec<(f64, f64)>, ParseError> {
    raw.split(',')
        .map(|pair| {
            let mut it = pair.split(':');
            let t = it.next().unwrap_or("");
            let d = it.next().unwrap_or("");
            if it.next().is_some() {
                return err(format!("--points: '{pair}' has too many ':'"));
            }
            let t: f64 = t
                .trim()
                .parse()
                .map_err(|_| ParseError(format!("--points: bad tau0 in '{pair}'")))?;
            let d: f64 = d
                .trim()
                .parse()
                .map_err(|_| ParseError(format!("--points: bad deadline in '{pair}'")))?;
            Ok((t, d))
        })
        .collect()
}

fn parse_intensities(raw: &str) -> Result<Vec<f64>, ParseError> {
    let levels: Vec<f64> = raw
        .split(',')
        .map(|tok| {
            tok.trim()
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| {
                    ParseError(format!(
                        "--intensities: '{tok}' is not a nonnegative number"
                    ))
                })
        })
        .collect::<Result<_, _>>()?;
    if levels.is_empty() {
        return err("--intensities: need at least one level");
    }
    Ok(levels)
}

fn parse_grid(raw: &str) -> Result<(usize, usize), ParseError> {
    let mut it = raw.split('x');
    let r = it.next().unwrap_or("");
    let c = it.next().unwrap_or("");
    if it.next().is_some() {
        return err(format!("--grid: '{raw}' should look like 8x8"));
    }
    let r: usize = r
        .parse()
        .map_err(|_| ParseError(format!("--grid: bad row count in '{raw}'")))?;
    let c: usize = c
        .parse()
        .map_err(|_| ParseError(format!("--grid: bad column count in '{raw}'")))?;
    if r < 2 || c < 2 {
        return err("--grid: both dimensions must be at least 2");
    }
    Ok((r, c))
}

/// Parse `argv` (program name already stripped).
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = argv.first() else {
        return err("no subcommand given");
    };
    let scan = Scanner { args: &argv[1..] };
    match sub.as_str() {
        "example-pipeline" => {
            scan.check_flags(&[], &[])?;
            Ok(Command::ExamplePipeline)
        }
        "optimize" => {
            scan.check_flags(
                &["--pipeline", "--tau0", "--deadline", "--b", "--strategy"],
                &["--json"],
            )?;
            Ok(Command::Optimize {
                pipeline: scan.require("--pipeline")?.to_string(),
                tau0: scan.parse_f64("--tau0")?,
                deadline: scan.parse_f64("--deadline")?,
                b: scan.value_of("--b").map(parse_b_list).transpose()?,
                strategy: match scan.value_of("--strategy") {
                    None | Some("all") => Strategy::All,
                    Some("enforced") => Strategy::Enforced,
                    Some("monolithic") => Strategy::Monolithic,
                    Some("flexible") => Strategy::Flexible,
                    Some(other) => return err(format!("--strategy: unknown strategy '{other}'")),
                },
                json: scan.has("--json"),
            })
        }
        "simulate" => {
            scan.check_flags(
                &[
                    "--pipeline",
                    "--workload",
                    "--tau0",
                    "--deadline",
                    "--b",
                    "--items",
                    "--seeds",
                    "--metrics",
                ],
                &["--json"],
            )?;
            let (pipeline, workload) = scan.parse_source()?;
            Ok(Command::Simulate {
                pipeline,
                workload,
                tau0: scan.parse_f64("--tau0")?,
                deadline: scan.parse_f64("--deadline")?,
                b: scan.value_of("--b").map(parse_b_list).transpose()?,
                items: scan.parse_usize_or("--items", 10_000)?,
                seeds: scan.parse_usize_or("--seeds", 8)? as u64,
                json: scan.has("--json"),
                metrics: scan.parse_metrics()?,
            })
        }
        "sweep" => {
            scan.check_flags(
                &[
                    "--pipeline",
                    "--workload",
                    "--grid",
                    "--metrics",
                    "--live-interval",
                    "--metrics-listen",
                ],
                &["--csv", "--live"],
            )?;
            let (pipeline, workload) = scan.parse_source()?;
            Ok(Command::Sweep {
                pipeline,
                workload,
                grid: match scan.value_of("--grid") {
                    None => (8, 8),
                    Some(raw) => parse_grid(raw)?,
                },
                csv: scan.has("--csv"),
                metrics: scan.parse_metrics()?,
                live: scan.parse_live()?,
            })
        }
        "gantt" => {
            scan.check_flags(
                &[
                    "--pipeline",
                    "--tau0",
                    "--deadline",
                    "--b",
                    "--window",
                    "--width",
                ],
                &[],
            )?;
            Ok(Command::Gantt {
                pipeline: scan.require("--pipeline")?.to_string(),
                tau0: scan.parse_f64("--tau0")?,
                deadline: scan.parse_f64("--deadline")?,
                b: scan.value_of("--b").map(parse_b_list).transpose()?,
                window: match scan.value_of("--window") {
                    None => 20_000.0,
                    Some(raw) => raw
                        .parse::<f64>()
                        .ok()
                        .filter(|v| *v > 0.0)
                        .ok_or_else(|| {
                            ParseError(format!("--window: '{raw}' is not a positive number"))
                        })?,
                },
                width: scan.parse_usize_or("--width", 100)?,
            })
        }
        "trace" => {
            scan.check_flags(
                &[
                    "--pipeline",
                    "--tau0",
                    "--deadline",
                    "--b",
                    "--items",
                    "--seed",
                    "--strategy",
                    "--format",
                    "--alpha",
                    "--out",
                ],
                &[],
            )?;
            Ok(Command::Trace {
                pipeline: scan.require("--pipeline")?.to_string(),
                tau0: scan.parse_f64("--tau0")?,
                deadline: scan.parse_f64("--deadline")?,
                b: scan.value_of("--b").map(parse_b_list).transpose()?,
                items: scan.parse_usize_or("--items", 10_000)?,
                seed: scan.parse_usize_or("--seed", 0)? as u64,
                strategy: match scan.value_of("--strategy") {
                    None | Some("enforced") => Strategy::Enforced,
                    Some("monolithic") => Strategy::Monolithic,
                    Some(other) => {
                        return err(format!(
                            "--strategy: trace supports 'enforced' or 'monolithic', got '{other}'"
                        ))
                    }
                },
                format: match scan.value_of("--format") {
                    None | Some("chrome") => TraceFormat::Chrome,
                    Some("json") => TraceFormat::Json,
                    Some(other) => {
                        return err(format!(
                            "--format: expected 'chrome' or 'json', got '{other}'"
                        ))
                    }
                },
                alpha: match scan.value_of("--alpha") {
                    None => 1.0,
                    Some(raw) => raw
                        .parse::<f64>()
                        .ok()
                        .filter(|a| a.is_finite() && *a > 0.0)
                        .ok_or_else(|| {
                            ParseError(format!("--alpha: '{raw}' is not a positive number"))
                        })?,
                },
                out: scan.value_of("--out").unwrap_or("trace.json").to_string(),
            })
        }
        "stress" => {
            scan.check_flags(
                &[
                    "--pipeline",
                    "--workload",
                    "--tau0",
                    "--deadline",
                    "--b",
                    "--items",
                    "--seeds",
                    "--intensities",
                    "--target",
                    "--metrics",
                    "--live-interval",
                    "--metrics-listen",
                ],
                &["--json", "--live"],
            )?;
            let (pipeline, workload) = scan.parse_source()?;
            Ok(Command::Stress {
                pipeline,
                workload,
                tau0: scan.parse_f64("--tau0")?,
                deadline: scan.parse_f64("--deadline")?,
                b: scan.value_of("--b").map(parse_b_list).transpose()?,
                items: scan.parse_usize_or("--items", 2_000)?,
                seeds: scan.parse_usize_or("--seeds", 4)? as u64,
                intensities: match scan.value_of("--intensities") {
                    None => vec![0.0, 0.5, 1.0],
                    Some(raw) => parse_intensities(raw)?,
                },
                target: match scan.value_of("--target") {
                    None => 0.95,
                    Some(raw) => raw
                        .parse::<f64>()
                        .ok()
                        .filter(|t| t.is_finite() && *t > 0.0 && *t <= 1.0)
                        .ok_or_else(|| ParseError(format!("--target: '{raw}' is not in (0, 1]")))?,
                },
                json: scan.has("--json"),
                metrics: scan.parse_metrics()?,
                live: scan.parse_live()?,
            })
        }
        "execute" => {
            scan.check_flags(
                &[
                    "--pipeline",
                    "--workload",
                    "--tau0",
                    "--deadline",
                    "--b",
                    "--items",
                    "--seed",
                    "--duration",
                    "--strategy",
                    "--sim-seeds",
                    "--tolerance",
                    "--metrics",
                ],
                &["--gate", "--json"],
            )?;
            let (pipeline, workload) = scan.parse_source()?;
            Ok(Command::Execute {
                pipeline,
                workload,
                tau0: scan.parse_f64("--tau0")?,
                deadline: scan.parse_f64("--deadline")?,
                b: scan.value_of("--b").map(parse_b_list).transpose()?,
                items: scan.parse_usize_or("--items", 2_000)?,
                seed: scan.parse_usize_or("--seed", 0)? as u64,
                duration: match scan.value_of("--duration") {
                    None => 1.0,
                    Some(raw) => raw
                        .parse::<f64>()
                        .ok()
                        .filter(|d| d.is_finite() && *d > 0.0)
                        .ok_or_else(|| {
                            ParseError(format!("--duration: '{raw}' is not a positive number"))
                        })?,
                },
                strategy: match scan.value_of("--strategy") {
                    None | Some("enforced") => Strategy::Enforced,
                    Some("monolithic") => Strategy::Monolithic,
                    Some(other) => {
                        return err(format!(
                            "--strategy: execute supports 'enforced' or 'monolithic', got '{other}'"
                        ))
                    }
                },
                sim_seeds: match scan.parse_usize_or("--sim-seeds", 4)? {
                    0 => return err("--sim-seeds: need at least one simulator seed"),
                    k => k as u64,
                },
                tolerance: match scan.value_of("--tolerance") {
                    None => 0.10,
                    Some(raw) => raw
                        .parse::<f64>()
                        .ok()
                        .filter(|t| t.is_finite() && *t > 0.0)
                        .ok_or_else(|| {
                            ParseError(format!("--tolerance: '{raw}' is not a positive number"))
                        })?,
                },
                gate: scan.has("--gate"),
                json: scan.has("--json"),
                metrics: scan.parse_metrics()?,
            })
        }
        "calibrate" => {
            scan.check_flags(&["--pipeline", "--points", "--seeds", "--items"], &[])?;
            Ok(Command::Calibrate {
                pipeline: scan.require("--pipeline")?.to_string(),
                points: parse_points(scan.require("--points")?)?,
                seeds: scan.parse_usize_or("--seeds", 8)? as u64,
                items: scan.parse_usize_or("--items", 5_000)?,
            })
        }
        other => err(format!("unknown subcommand '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_example_pipeline() {
        assert_eq!(
            parse(&argv("example-pipeline")).unwrap(),
            Command::ExamplePipeline
        );
    }

    #[test]
    fn parses_optimize_with_defaults() {
        let cmd = parse(&argv("optimize --pipeline p.json --tau0 10 --deadline 1e5")).unwrap();
        match cmd {
            Command::Optimize {
                pipeline,
                tau0,
                deadline,
                b,
                strategy,
                json,
            } => {
                assert_eq!(pipeline, "p.json");
                assert_eq!(tau0, 10.0);
                assert_eq!(deadline, 1e5);
                assert_eq!(b, None);
                assert_eq!(strategy, Strategy::All);
                assert!(!json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_optimize_full() {
        let cmd = parse(&argv(
            "optimize --pipeline p.json --tau0 10 --deadline 1e5 --b 1,3,9,6 --strategy enforced --json",
        ))
        .unwrap();
        match cmd {
            Command::Optimize {
                b, strategy, json, ..
            } => {
                assert_eq!(b, Some(vec![1.0, 3.0, 9.0, 6.0]));
                assert_eq!(strategy, Strategy::Enforced);
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_missing_required() {
        let e = parse(&argv("optimize --tau0 10 --deadline 1e5")).unwrap_err();
        assert!(e.to_string().contains("--pipeline"));
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(parse(&argv("optimize --pipeline p --tau0 abc --deadline 1")).is_err());
        assert!(parse(&argv("optimize --pipeline p --tau0 1 --deadline 1 --b 1,x")).is_err());
        assert!(parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1 --items -3"
        ))
        .is_err());
        assert!(parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1 --items 1.5"
        ))
        .is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        // Regression: '--seedz 100' used to be silently ignored, running
        // with the default seed count instead of failing loudly.
        let e = parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1e5 --seedz 100",
        ))
        .unwrap_err();
        assert!(e.to_string().contains("--seedz"), "{e}");
        let e = parse(&argv("optimize --pipeline p --tau0 1 --deadline 1 --jsn")).unwrap_err();
        assert!(e.to_string().contains("--jsn"), "{e}");
        // Stray positional arguments are also rejected.
        assert!(parse(&argv("sweep --pipeline p extra")).is_err());
        assert!(parse(&argv("example-pipeline --json")).is_err());
    }

    #[test]
    fn rejects_flag_as_flag_value() {
        // Regression: '--b --json' used to consume '--json' as the
        // backlog list, producing a confusing number-parse error (or,
        // for string-valued flags, silently wrong behavior).
        let e = parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1e5 --b --json",
        ))
        .unwrap_err();
        assert!(e.to_string().contains("--b"), "{e}");
        assert!(e.to_string().contains("--json"), "{e}");
        let e = parse(&argv("optimize --pipeline --tau0 1 --deadline 1")).unwrap_err();
        assert!(e.to_string().contains("--pipeline"), "{e}");
        // A value flag at the very end is also incomplete.
        assert!(parse(&argv("simulate --pipeline p --tau0 1 --deadline 1 --items")).is_err());
        // Negative numbers are still values, not options: this must keep
        // reaching the number parser (which then rejects -3).
        let e = parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1 --items -3",
        ))
        .unwrap_err();
        assert!(e.to_string().contains("nonnegative integer"), "{e}");
    }

    #[test]
    fn parse_usize_is_lossless() {
        // Regression: '--items 1e30' used to go through `as usize`,
        // saturating to usize::MAX and effectively hanging the run.
        let e = parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1e5 --items 1e30",
        ))
        .unwrap_err();
        assert!(e.to_string().contains("too large"), "{e}");
        assert!(parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1e5 --items 9007199254740993"
        ))
        .is_ok()); // exact via the integer path
                   // Float spellings with exact integer values still work.
        match parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1e5 --items 2e3",
        ))
        .unwrap()
        {
            Command::Simulate { items, .. } => assert_eq!(items, 2_000),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1e5 --items inf"
        ))
        .is_err());
        assert!(parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1e5 --items nan"
        ))
        .is_err());
    }

    #[test]
    fn parses_stress() {
        let cmd = parse(&argv("stress --pipeline p.json --tau0 10 --deadline 1e5")).unwrap();
        match cmd {
            Command::Stress {
                pipeline,
                b,
                items,
                seeds,
                intensities,
                target,
                json,
                metrics,
                ..
            } => {
                assert_eq!(pipeline.as_deref(), Some("p.json"));
                assert_eq!(b, None);
                assert_eq!(items, 2_000);
                assert_eq!(seeds, 4);
                assert_eq!(intensities, vec![0.0, 0.5, 1.0]);
                assert_eq!(target, 0.95);
                assert!(!json);
                assert_eq!(metrics, None);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv(
            "stress --pipeline p.json --tau0 10 --deadline 1e5 --b 1,3,9,6 \
             --items 500 --seeds 2 --intensities 0,1,2 --target 0.9 --json --metrics json",
        ))
        .unwrap();
        match cmd {
            Command::Stress {
                b,
                intensities,
                target,
                json,
                metrics,
                ..
            } => {
                assert_eq!(b, Some(vec![1.0, 3.0, 9.0, 6.0]));
                assert_eq!(intensities, vec![0.0, 1.0, 2.0]);
                assert_eq!(target, 0.9);
                assert!(json);
                assert_eq!(metrics, Some(MetricsFormat::Json));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv(
            "stress --pipeline p --tau0 1 --deadline 1 --intensities 0,x"
        ))
        .is_err());
        assert!(parse(&argv(
            "stress --pipeline p --tau0 1 --deadline 1 --target 2"
        ))
        .is_err());
    }

    #[test]
    fn rejects_unknown_strategy_and_subcommand() {
        assert!(parse(&argv(
            "optimize --pipeline p --tau0 1 --deadline 1 --strategy foo"
        ))
        .is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn parses_sweep_grid() {
        let cmd = parse(&argv("sweep --pipeline p.json --grid 12x6 --csv")).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                pipeline: Some("p.json".into()),
                workload: None,
                grid: (12, 6),
                csv: true,
                metrics: None,
                live: LiveOpts::off(),
            }
        );
        assert!(parse(&argv("sweep --pipeline p --grid 1x6")).is_err());
        assert!(parse(&argv("sweep --pipeline p --grid 4x4x4")).is_err());
        assert!(parse(&argv("sweep --pipeline p --grid huge")).is_err());
    }

    #[test]
    fn parses_workload_selector() {
        // A workload replaces the pipeline file.
        match parse(&argv(
            "simulate --workload logalytics --tau0 40 --deadline 4e5",
        ))
        .unwrap()
        {
            Command::Simulate {
                pipeline, workload, ..
            } => {
                assert_eq!(pipeline, None);
                assert_eq!(workload.as_deref(), Some("logalytics"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("sweep --workload logalytics")).unwrap() {
            Command::Sweep {
                pipeline, workload, ..
            } => {
                assert_eq!(pipeline, None);
                assert_eq!(workload.as_deref(), Some("logalytics"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "stress --workload logalytics --tau0 40 --deadline 4e5",
        ))
        .unwrap()
        {
            Command::Stress {
                pipeline, workload, ..
            } => {
                assert_eq!(pipeline, None);
                assert_eq!(workload.as_deref(), Some("logalytics"));
            }
            other => panic!("{other:?}"),
        }
        // Unknown workload names fail loudly.
        let e = parse(&argv("simulate --workload blursed --tau0 1 --deadline 1")).unwrap_err();
        assert!(e.to_string().contains("logalytics"), "{e}");
        // --pipeline and --workload are mutually exclusive.
        let e = parse(&argv(
            "simulate --pipeline p.json --workload logalytics --tau0 1 --deadline 1",
        ))
        .unwrap_err();
        assert!(e.to_string().contains("mutually exclusive"), "{e}");
        // Neither still demands --pipeline.
        let e = parse(&argv("simulate --tau0 1 --deadline 1")).unwrap_err();
        assert!(e.to_string().contains("--pipeline"), "{e}");
        // Subcommands without workload support reject the flag.
        assert!(parse(&argv(
            "optimize --workload logalytics --tau0 1 --deadline 1"
        ))
        .is_err());
        assert!(parse(&argv("trace --workload logalytics --tau0 1 --deadline 1")).is_err());
    }

    #[test]
    fn parses_deepchain_workload_selector() {
        // The parameterized form carries its stage count through.
        match parse(&argv("sweep --workload deepchain:512")).unwrap() {
            Command::Sweep {
                pipeline, workload, ..
            } => {
                assert_eq!(pipeline, None);
                assert_eq!(workload.as_deref(), Some("deepchain:512"));
            }
            other => panic!("{other:?}"),
        }
        assert!(workload_is_known("deepchain:2"));
        assert!(workload_is_known("deepchain:1000"));
        // The placeholder itself, degenerate sizes, and junk are
        // rejected at parse time.
        for bad in ["deepchain:N", "deepchain:1", "deepchain:", "deepchain:x"] {
            assert!(!workload_is_known(bad), "{bad}");
            assert!(parse(&argv(&format!("sweep --workload {bad}"))).is_err());
        }
    }

    /// Table-driven rejection of sloppy `deepchain:` spellings that
    /// `usize::from_str`'s leniency used to let through (leading `+`)
    /// or that should get a targeted message (whitespace, sign, hex).
    #[test]
    fn rejects_sloppy_deepchain_spellings_with_targeted_errors() {
        let cases: &[(&str, &str)] = &[
            ("deepchain:+8", "deepchain stage count"),
            ("deepchain: 8", "deepchain stage count"),
            ("deepchain:8 ", "deepchain stage count"),
            ("deepchain:-8", "deepchain stage count"),
            ("deepchain:0x8", "deepchain stage count"),
            ("deepchain:8_0", "deepchain stage count"),
            ("deepchain:０８", "deepchain stage count"), // full-width digits
            ("deepchain:1", "deepchain stage count"),
            ("deepchain:", "deepchain stage count"),
            ("logalytic", "unknown workload"),
        ];
        for &(name, needle) in cases {
            assert_eq!(parse_deepchain_stages(name), None, "{name}");
            assert!(!workload_is_known(name), "{name}");
            // Single argv token (argv() would split on the space).
            let args: Vec<String> = ["sweep", "--workload", name]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let msg = parse(&args).unwrap_err().0;
            assert!(msg.contains(needle), "{name}: '{msg}'");
        }
        // Well-formed spellings still resolve.
        assert_eq!(parse_deepchain_stages("deepchain:2"), Some(2));
        assert_eq!(parse_deepchain_stages("deepchain:512"), Some(512));
    }

    #[test]
    fn parses_live_options() {
        // Defaults: everything off.
        match parse(&argv("sweep --pipeline p.json")).unwrap() {
            Command::Sweep { live, .. } => {
                assert_eq!(live, LiveOpts::off());
                assert!(!live.enabled());
            }
            other => panic!("{other:?}"),
        }
        // --live alone.
        match parse(&argv("sweep --pipeline p.json --live")).unwrap() {
            Command::Sweep { live, .. } => {
                assert!(live.live && live.enabled());
                assert_eq!(live.interval_ms, 500);
                assert_eq!(live.metrics_listen, None);
            }
            other => panic!("{other:?}"),
        }
        // An explicit interval implies --live.
        match parse(&argv(
            "stress --pipeline p --tau0 1 --deadline 1e5 --live-interval 100",
        ))
        .unwrap()
        {
            Command::Stress { live, .. } => {
                assert!(live.live);
                assert_eq!(live.interval_ms, 100);
            }
            other => panic!("{other:?}"),
        }
        // --metrics-listen enables the registry without the progress line.
        match parse(&argv(
            "sweep --pipeline p.json --metrics-listen 127.0.0.1:0",
        ))
        .unwrap()
        {
            Command::Sweep { live, .. } => {
                assert!(!live.live && live.enabled());
                assert_eq!(live.metrics_listen.as_deref(), Some("127.0.0.1:0"));
            }
            other => panic!("{other:?}"),
        }
        // Bad intervals are rejected: interval 0 would busy-spin the
        // progress renderer, so it gets the typed validation error —
        // also when combined with an explicit --live, and in float
        // spelling (rejected as a non-integer).
        for bad in [
            "sweep --pipeline p --live-interval 0",
            "sweep --pipeline p --live --live-interval 0",
            "sweep --pipeline p --live --live-interval 0.0",
            "sweep --pipeline p --live-interval x",
        ] {
            assert!(parse(&argv(bad)).is_err(), "{bad}");
        }
        let msg = parse(&argv("sweep --pipeline p --live --live-interval 0"))
            .unwrap_err()
            .0;
        assert!(msg.contains("--live-interval"), "{msg}");
        // Other subcommands do not accept live flags.
        assert!(parse(&argv("simulate --pipeline p --tau0 1 --deadline 1 --live")).is_err());
    }

    #[test]
    fn parses_metrics_flag() {
        let cmd = parse(&argv("sweep --pipeline p.json --metrics json")).unwrap();
        match cmd {
            Command::Sweep { metrics, .. } => assert_eq!(metrics, Some(MetricsFormat::Json)),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv(
            "simulate --pipeline p --tau0 1 --deadline 1e5 --metrics csv",
        ))
        .unwrap();
        match cmd {
            Command::Simulate { metrics, .. } => assert_eq!(metrics, Some(MetricsFormat::Csv)),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("sweep --pipeline p --metrics xml")).is_err());
        assert!(parse(&argv("sweep --pipeline p --metrics")).is_err());
    }

    #[test]
    fn parses_gantt() {
        let cmd = parse(&argv(
            "gantt --pipeline p.json --tau0 10 --deadline 1e5 --window 5000 --width 80",
        ))
        .unwrap();
        match cmd {
            Command::Gantt { window, width, .. } => {
                assert_eq!(window, 5000.0);
                assert_eq!(width, 80);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv(
            "gantt --pipeline p --tau0 1 --deadline 1 --window -5"
        ))
        .is_err());
    }

    #[test]
    fn parses_trace_with_defaults() {
        let cmd = parse(&argv("trace --pipeline p.json --tau0 10 --deadline 1e5")).unwrap();
        match cmd {
            Command::Trace {
                items,
                seed,
                strategy,
                format,
                alpha,
                out,
                ..
            } => {
                assert_eq!(items, 10_000);
                assert_eq!(seed, 0);
                assert_eq!(strategy, Strategy::Enforced);
                assert_eq!(format, TraceFormat::Chrome);
                assert_eq!(alpha, 1.0);
                assert_eq!(out, "trace.json");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_trace_full() {
        let cmd = parse(&argv(
            "trace --pipeline p.json --tau0 10 --deadline 1e5 --items 500 --seed 7 \
             --strategy monolithic --format json --alpha 0.8 --out t.json",
        ))
        .unwrap();
        match cmd {
            Command::Trace {
                items,
                seed,
                strategy,
                format,
                alpha,
                out,
                ..
            } => {
                assert_eq!(items, 500);
                assert_eq!(seed, 7);
                assert_eq!(strategy, Strategy::Monolithic);
                assert_eq!(format, TraceFormat::Json);
                assert_eq!(alpha, 0.8);
                assert_eq!(out, "t.json");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_trace_options() {
        assert!(parse(&argv(
            "trace --pipeline p --tau0 1 --deadline 1 --format xml"
        ))
        .is_err());
        assert!(parse(&argv(
            "trace --pipeline p --tau0 1 --deadline 1 --strategy flexible"
        ))
        .is_err());
        assert!(parse(&argv("trace --pipeline p --tau0 1 --deadline 1 --alpha -2")).is_err());
    }

    #[test]
    fn parses_execute() {
        // Defaults.
        match parse(&argv(
            "execute --workload logalytics --tau0 40 --deadline 4e5",
        ))
        .unwrap()
        {
            Command::Execute {
                pipeline,
                workload,
                items,
                seed,
                duration,
                strategy,
                sim_seeds,
                tolerance,
                gate,
                json,
                metrics,
                ..
            } => {
                assert_eq!(pipeline, None);
                assert_eq!(workload.as_deref(), Some("logalytics"));
                assert_eq!(items, 2_000);
                assert_eq!(seed, 0);
                assert_eq!(duration, 1.0);
                assert_eq!(strategy, Strategy::Enforced);
                assert_eq!(sim_seeds, 4);
                assert_eq!(tolerance, 0.10);
                assert!(!gate && !json);
                assert_eq!(metrics, None);
            }
            other => panic!("{other:?}"),
        }
        // Full spelling.
        match parse(&argv(
            "execute --pipeline p.json --tau0 20 --deadline 2e5 --b 1,3,9,6 \
             --items 500 --seed 7 --duration 0.5 --strategy monolithic \
             --sim-seeds 8 --tolerance 0.2 --gate --json --metrics json",
        ))
        .unwrap()
        {
            Command::Execute {
                b,
                duration,
                strategy,
                sim_seeds,
                tolerance,
                gate,
                json,
                metrics,
                ..
            } => {
                assert_eq!(b, Some(vec![1.0, 3.0, 9.0, 6.0]));
                assert_eq!(duration, 0.5);
                assert_eq!(strategy, Strategy::Monolithic);
                assert_eq!(sim_seeds, 8);
                assert_eq!(tolerance, 0.2);
                assert!(gate && json);
                assert_eq!(metrics, Some(MetricsFormat::Json));
            }
            other => panic!("{other:?}"),
        }
        // Bad spellings fail loudly.
        for bad in [
            "execute --pipeline p --tau0 1 --deadline 1 --duration 0",
            "execute --pipeline p --tau0 1 --deadline 1 --duration -1",
            "execute --pipeline p --tau0 1 --deadline 1 --strategy flexible",
            "execute --pipeline p --tau0 1 --deadline 1 --sim-seeds 0",
            "execute --pipeline p --tau0 1 --deadline 1 --tolerance nope",
            "execute --pipeline p --tau0 1 --deadline 1 --live",
        ] {
            assert!(parse(&argv(bad)).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_calibrate_points() {
        let cmd = parse(&argv(
            "calibrate --pipeline p.json --points 10:1e5,30:1.5e5",
        ))
        .unwrap();
        match cmd {
            Command::Calibrate {
                points,
                seeds,
                items,
                ..
            } => {
                assert_eq!(points, vec![(10.0, 1e5), (30.0, 1.5e5)]);
                assert_eq!(seeds, 8);
                assert_eq!(items, 5_000);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("calibrate --pipeline p --points 10")).is_err());
        assert!(parse(&argv("calibrate --pipeline p --points 10:2:3")).is_err());
    }
}
