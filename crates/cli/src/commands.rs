//! Command execution: load the pipeline, call into `rtsdf`, format the
//! results.

use crate::args::{Command, Strategy, TraceFormat};
use crate::live::{render_stress, render_sweep, LiveSession};
use bench::{MetricsFormat, RunManifest};
use obs_trace::{chrome_trace_string, render_blame, ForensicsConfig, SpanSink, TraceConfig};
use rtsdf::core::comparison::{
    sweep_parallel_live, sweep_topology_parallel_live, SweepConfig, SweepOptions, SweepProgress,
};
use rtsdf::core::{
    worker_threads, AnySchedule, EnforcedDagProblem, FlexibleSharesProblem, MonolithicDagProblem,
};
use rtsdf::exec::{sim_vs_real, ExecConfig};
use rtsdf::model::Topology;
use rtsdf::prelude::*;
use rtsdf::sim::calibration::{calibrate_enforced, CalibrationConfig};
use rtsdf::sim::{
    robustness_report_live, robustness_report_topology_live, run_seeds_enforced_topology,
    SimLiveMetrics,
};
use std::fmt;
use std::io::Write;

/// Execution failure (I/O, parsing, or scheduling).
#[derive(Debug)]
pub enum CommandError {
    /// Could not read or parse the pipeline file.
    Pipeline(String),
    /// Invalid operating parameters.
    Params(String),
    /// Output write failed.
    Io(std::io::Error),
    /// A `--gate` check failed (conservation or sim-vs-real agreement).
    Gate(String),
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::Pipeline(m) => write!(f, "pipeline: {m}"),
            CommandError::Params(m) => write!(f, "parameters: {m}"),
            CommandError::Io(e) => write!(f, "io: {e}"),
            CommandError::Gate(m) => write!(f, "gate: {m}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

fn load_pipeline(path: &str) -> Result<PipelineSpec, CommandError> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| CommandError::Pipeline(format!("cannot read '{path}': {e}")))?;
    serde_json::from_str(&raw)
        .map_err(|e| CommandError::Pipeline(format!("cannot parse '{path}': {e}")))
}

/// The dataflow a command operates on: a chain [`PipelineSpec`] loaded
/// from `--pipeline`, or a DAG [`Topology`] synthesized by a built-in
/// `--workload`.
enum Dataflow {
    /// Linear chain from a pipeline JSON file.
    Chain(PipelineSpec),
    /// DAG from a built-in workload.
    Dag(Topology),
}

/// Seed for built-in workload synthesis. Fixed so `--workload` runs are
/// reproducible: the measured gains (and therefore schedules, metrics,
/// and bench manifests) are identical across invocations and machines.
const WORKLOAD_SEED: u64 = 7;

/// Resolve the mutually exclusive pipeline/workload pair into a loaded
/// dataflow plus a display name for reports and manifests.
fn load_dataflow(
    pipeline: &Option<String>,
    workload: &Option<String>,
) -> Result<(Dataflow, String), CommandError> {
    match (pipeline, workload) {
        (Some(path), None) => Ok((Dataflow::Chain(load_pipeline(path)?), path.clone())),
        (None, Some(name)) => match name.as_str() {
            "logalytics" => {
                let config = rtsdf::apps::logalytics::LogalyticsConfig::default();
                let topology = rtsdf::apps::logalytics::synthesize(&config, WORKLOAD_SEED)
                    .map_err(|e| CommandError::Pipeline(format!("workload '{name}': {e}")))?;
                Ok((Dataflow::Dag(topology), name.clone()))
            }
            // Strict digits-only suffix parsing shared with the arg
            // scanner, so `deepchain:+8` / `deepchain: 8` cannot sneak
            // past via `usize::from_str`'s leniency.
            other => match crate::args::parse_deepchain_stages(other) {
                Some(stages) => {
                    let spec = rtsdf::apps::deepchain::deep_chain(stages)
                        .map_err(|e| CommandError::Pipeline(format!("workload '{name}': {e}")))?;
                    Ok((Dataflow::Chain(spec), name.clone()))
                }
                None => Err(CommandError::Pipeline(format!(
                    "unknown workload '{other}'"
                ))),
            },
        },
        _ => Err(CommandError::Pipeline(
            "exactly one of --pipeline or --workload is required".into(),
        )),
    }
}

fn params(tau0: f64, deadline: f64) -> Result<RtParams, CommandError> {
    RtParams::new(tau0, deadline).map_err(|e| CommandError::Params(e.to_string()))
}

fn backlog(pipeline: &PipelineSpec, b: Option<Vec<f64>>) -> Result<Vec<f64>, CommandError> {
    match b {
        None => Ok(EnforcedWaitsProblem::optimistic_backlog(pipeline)),
        Some(b) if b.len() == pipeline.len() => Ok(b),
        Some(b) => Err(CommandError::Params(format!(
            "--b has {} entries but the pipeline has {} stages",
            b.len(),
            pipeline.len()
        ))),
    }
}

fn topology_backlog(topology: &Topology, b: Option<Vec<f64>>) -> Result<Vec<f64>, CommandError> {
    match b {
        None => Ok(EnforcedDagProblem::optimistic_backlog(topology)),
        Some(b) if b.len() == topology.len() => Ok(b),
        Some(b) => Err(CommandError::Params(format!(
            "--b has {} entries but the workload has {} nodes",
            b.len(),
            topology.len()
        ))),
    }
}

/// Run a parsed command, writing human- or machine-readable output.
pub fn execute(cmd: Command, out: &mut dyn Write) -> Result<(), CommandError> {
    match cmd {
        Command::ExamplePipeline => {
            let p = rtsdf::blast::paper_pipeline();
            writeln!(
                out,
                "{}",
                serde_json::to_string_pretty(&p).expect("spec serializes")
            )?;
            Ok(())
        }
        Command::Optimize {
            pipeline,
            tau0,
            deadline,
            b,
            strategy,
            json,
        } => {
            let p = load_pipeline(&pipeline)?;
            let params = params(tau0, deadline)?;
            let b = backlog(&p, b)?;
            let mut report = serde_json::Map::new();

            if matches!(strategy, Strategy::Enforced | Strategy::All) {
                match EnforcedWaitsProblem::new(&p, params, b.clone())
                    .solve(SolveMethod::WaterFilling)
                {
                    Ok(s) => {
                        if !json {
                            writeln!(
                                out,
                                "enforced waits: active fraction {:.4}",
                                s.active_fraction
                            )?;
                            writeln!(out, "  waits: {:?}", round_vec(&s.waits))?;
                        }
                        report.insert("enforced".into(), serde_json::to_value(&s).unwrap());
                    }
                    Err(e) => {
                        if !json {
                            writeln!(out, "enforced waits: {e}")?;
                        }
                        report.insert("enforced_error".into(), e.to_string().into());
                    }
                }
            }
            if matches!(strategy, Strategy::Monolithic | Strategy::All) {
                match MonolithicProblem::new(&p, params, 1.0, 1.0).solve_fast() {
                    Ok(s) => {
                        if !json {
                            writeln!(
                                out,
                                "monolithic: M = {}, active fraction {:.4}",
                                s.block_size, s.active_fraction
                            )?;
                        }
                        report.insert("monolithic".into(), serde_json::to_value(&s).unwrap());
                    }
                    Err(e) => {
                        if !json {
                            writeln!(out, "monolithic: {e}")?;
                        }
                        report.insert("monolithic_error".into(), e.to_string().into());
                    }
                }
            }
            if matches!(strategy, Strategy::Flexible | Strategy::All) {
                match FlexibleSharesProblem::new(&p, params, b).solve() {
                    Ok(s) => {
                        if !json {
                            writeln!(
                                out,
                                "flexible shares: utilization {:.4}, shares {:?}",
                                s.utilization,
                                round_vec(&s.shares)
                            )?;
                        }
                        report.insert("flexible".into(), serde_json::to_value(&s).unwrap());
                    }
                    Err(e) => {
                        if !json {
                            writeln!(out, "flexible shares: {e}")?;
                        }
                        report.insert("flexible_error".into(), e.to_string().into());
                    }
                }
            }
            if json {
                writeln!(out, "{}", serde_json::Value::Object(report))?;
            }
            Ok(())
        }
        Command::Simulate {
            pipeline,
            workload,
            tau0,
            deadline,
            b,
            items,
            seeds,
            json,
            metrics,
        } => {
            let (flow, source) = load_dataflow(&pipeline, &workload)?;
            let params = params(tau0, deadline)?;
            let cfg = SimConfig::quick(tau0, 0, items);
            // The manifest name keys the CI baseline: chain runs gate
            // against BENCH_simulate.json, workload (DAG) runs against
            // BENCH_dag.json.
            let (experiment, source_key) = match flow {
                Dataflow::Chain(_) => ("simulate", "pipeline"),
                Dataflow::Dag(_) => ("dag", "workload"),
            };
            let (b, sched, report) = match &flow {
                Dataflow::Chain(p) => {
                    let b = backlog(p, b)?;
                    let sched = EnforcedWaitsProblem::new(p, params, b.clone())
                        .solve(SolveMethod::WaterFilling)
                        .map_err(|e| CommandError::Params(e.to_string()))?;
                    let report = run_seeds_enforced(p, &sched, deadline, &cfg, seeds);
                    (b, sched, report)
                }
                Dataflow::Dag(t) => {
                    let b = topology_backlog(t, b)?;
                    let sched = EnforcedDagProblem::new(t, params, b.clone())
                        .solve()
                        .map_err(|e| CommandError::Params(e.to_string()))?;
                    let report = run_seeds_enforced_topology(t, &sched, deadline, &cfg, seeds);
                    (b, sched, report)
                }
            };
            if let Some(format) = metrics {
                let path = match format {
                    MetricsFormat::Json => {
                        let mut config = serde_json::json!({
                            "tau0": tau0,
                            "deadline": deadline,
                            "b": b,
                            "items": items,
                            "seeds": seeds,
                        });
                        if let serde_json::Value::Object(m) = &mut config {
                            m.insert(
                                source_key.to_string(),
                                serde_json::Value::String(source.clone()),
                            );
                        }
                        RunManifest::new(
                            experiment,
                            config,
                            serde_json::json!({
                                "schedule": sched,
                                "runs": report,
                            }),
                        )
                        .write()?
                    }
                    MetricsFormat::Csv => {
                        let rows: Vec<Vec<String>> = report
                            .runs
                            .iter()
                            .enumerate()
                            .map(|(i, r)| {
                                vec![
                                    i.to_string(),
                                    format!("{:.6}", r.active_fraction),
                                    r.deadline_misses.to_string(),
                                    r.items_arrived.to_string(),
                                    r.items_completed.to_string(),
                                    r.items_dropped.to_string(),
                                ]
                            })
                            .collect();
                        bench::manifest::write_metrics_csv(
                            experiment,
                            &[
                                "seed",
                                "active_fraction",
                                "deadline_misses",
                                "items_arrived",
                                "items_completed",
                                "items_dropped",
                            ],
                            &rows,
                        )?
                    }
                };
                eprintln!("wrote {}", path.display());
            }
            if json {
                writeln!(
                    out,
                    "{}",
                    serde_json::json!({
                        "predicted_active_fraction": sched.active_fraction,
                        "mean_measured_active_fraction": report.mean_active_fraction(),
                        "miss_free_fraction": report.miss_free_fraction(),
                        "worst_miss_rate": report.worst_miss_rate(),
                        "max_backlog_vectors": report.max_backlog_vectors(),
                    })
                )?;
            } else {
                writeln!(out, "simulated {} seeds x {} items", seeds, items)?;
                writeln!(
                    out,
                    "  active fraction: predicted {:.4}, measured {:.4}",
                    sched.active_fraction,
                    report.mean_active_fraction()
                )?;
                writeln!(
                    out,
                    "  miss-free seeds: {:.0}%  worst miss rate: {:.4}%",
                    100.0 * report.miss_free_fraction(),
                    100.0 * report.worst_miss_rate()
                )?;
                writeln!(
                    out,
                    "  max backlog (vectors): {:?}",
                    round_vec(&report.max_backlog_vectors())
                )?;
            }
            Ok(())
        }
        Command::Sweep {
            pipeline,
            workload,
            grid,
            csv,
            metrics,
            live,
        } => {
            let (flow, _source) = load_dataflow(&pipeline, &workload)?;
            let (tau0s, ds) = RtParams::paper_grid(grid.0, grid.1);
            let (experiment, enforced_b) = match &flow {
                Dataflow::Chain(p) => ("sweep", EnforcedWaitsProblem::optimistic_backlog(p)),
                Dataflow::Dag(t) => ("sweep_dag", EnforcedDagProblem::optimistic_backlog(t)),
            };
            let config = SweepConfig {
                enforced_b,
                monolithic_b: 1.0,
                monolithic_s: 1.0,
            };
            let progress = live.enabled().then(|| SweepProgress::new(worker_threads()));
            let session = progress
                .as_ref()
                .map(|pr| LiveSession::start(&live, pr.registry(), render_sweep))
                .transpose()
                .map_err(CommandError::Params)?;
            // Bit-identical to the sequential sweep (property-tested), so
            // the CSV/manifest output is unchanged — just faster. Live
            // telemetry publishes on the side of each cell's solve.
            let r = match &flow {
                Dataflow::Chain(p) => sweep_parallel_live(
                    p,
                    &tau0s,
                    &ds,
                    &config,
                    &SweepOptions::default(),
                    progress.as_ref(),
                ),
                Dataflow::Dag(t) => {
                    sweep_topology_parallel_live(t, &tau0s, &ds, &config, progress.as_ref())
                }
            }
            .map_err(|e| CommandError::Params(e.to_string()))?;
            let snap = progress.as_ref().map(|pr| pr.registry().snapshot());
            if let Some(s) = session {
                s.finish();
            }
            if let Some(format) = metrics {
                let path = bench::manifest::emit_sweep_metrics_live(
                    experiment,
                    &r,
                    &config,
                    format,
                    snap.as_ref(),
                )?;
                eprintln!("wrote {}", path.display());
            }
            if csv {
                writeln!(out, "tau0,deadline,enforced_af,monolithic_af,difference")?;
                for c in &r.cells {
                    writeln!(
                        out,
                        "{},{},{},{},{}",
                        c.tau0,
                        c.deadline,
                        c.enforced.map_or(String::from("-"), |v| v.to_string()),
                        c.monolithic.map_or(String::from("-"), |v| v.to_string()),
                        c.difference().map_or(String::from("-"), |v| v.to_string()),
                    )?;
                }
            } else {
                writeln!(
                    out,
                    "swept {}x{} grid: enforced wins {:.0}% of comparable cells; max advantage {:+.3}",
                    grid.0,
                    grid.1,
                    100.0 * r.enforced_win_fraction(),
                    r.max_enforced_advantage().unwrap_or(0.0),
                )?;
            }
            Ok(())
        }
        Command::Gantt {
            pipeline,
            tau0,
            deadline,
            b,
            window,
            width,
        } => {
            let p = load_pipeline(&pipeline)?;
            let params = params(tau0, deadline)?;
            let b = backlog(&p, b)?;
            let sched = EnforcedWaitsProblem::new(&p, params, b)
                .solve(SolveMethod::WaterFilling)
                .map_err(|e| CommandError::Params(e.to_string()))?;
            let cfg = SimConfig::quick(tau0, 0, 2_000);
            let tl = rtsdf::sim::timeline::record_timeline(&p, &sched, deadline, &cfg, window);
            writeln!(
                out,
                "firing timeline ('#' = busy, '.' = waiting; active fraction {:.3})",
                sched.active_fraction
            )?;
            write!(
                out,
                "{}",
                rtsdf::sim::timeline::render_ascii(&tl, width.max(10))
            )?;
            Ok(())
        }
        Command::Trace {
            pipeline,
            tau0,
            deadline,
            b,
            items,
            seed,
            strategy,
            format,
            alpha,
            out: out_path,
        } => {
            let p = load_pipeline(&pipeline)?;
            let params = params(tau0, deadline)?;
            let cfg = SimConfig::quick(tau0, seed, items);
            let forensics = ForensicsConfig {
                alpha,
                ..ForensicsConfig::default()
            };
            let (metrics, log) = match strategy {
                Strategy::Monolithic => {
                    let sched = MonolithicProblem::new(&p, params, 1.0, 1.0)
                        .solve_fast()
                        .map_err(|e| CommandError::Params(e.to_string()))?;
                    simulate_monolithic_traced(
                        &p,
                        &sched,
                        deadline,
                        &cfg,
                        TraceConfig::default(),
                        &forensics,
                    )
                }
                _ => {
                    let b = backlog(&p, b)?;
                    let mut solver_sink = SpanSink::with_defaults();
                    let sched = EnforcedWaitsProblem::new(&p, params, b)
                        .solve_with_fallback_traced(&mut solver_sink, 0)
                        .map_err(|e| CommandError::Params(e.to_string()))?;
                    let (m, mut log) = simulate_enforced_traced(
                        &p,
                        &sched,
                        deadline,
                        &cfg,
                        TraceConfig::default(),
                        &forensics,
                    );
                    log.merge(solver_sink.finish());
                    (m, log)
                }
            };
            let payload = match format {
                TraceFormat::Chrome => chrome_trace_string(&log),
                TraceFormat::Json => {
                    let stats = serde_json::json!({
                        "spans": log.spans.len() as u64,
                        "instants": log.instants.len() as u64,
                        "visits": log.visits.len() as u64,
                        "fates": log.fates.len() as u64,
                        "dropped_spans": log.dropped_spans,
                        "dropped_visits": log.dropped_visits,
                    });
                    serde_json::to_string_pretty(&serde_json::json!({
                        "metrics": metrics,
                        "trace": stats,
                    }))
                    .expect("trace report serializes")
                }
            };
            std::fs::write(&out_path, payload)?;
            writeln!(
                out,
                "traced {items} items (seed {seed}): {} spans, {} visits -> {out_path}",
                log.spans.len(),
                log.visits.len(),
            )?;
            if let Some(blame) = &metrics.blame {
                write!(out, "{}", render_blame(blame))?;
            }
            Ok(())
        }
        Command::Stress {
            pipeline,
            workload,
            tau0,
            deadline,
            b,
            items,
            seeds,
            intensities,
            target,
            json,
            metrics,
            live,
        } => {
            let (flow, source) = load_dataflow(&pipeline, &workload)?;
            let params = params(tau0, deadline)?;
            let (experiment, source_key, stages) = match &flow {
                Dataflow::Chain(p) => ("stress", "pipeline", p.len()),
                Dataflow::Dag(t) => ("stress_dag", "workload", t.len()),
            };
            let (b, enforced, mono) = match &flow {
                Dataflow::Chain(p) => {
                    let b = backlog(p, b)?;
                    let enforced = EnforcedWaitsProblem::new(p, params, b.clone())
                        .solve(SolveMethod::WaterFilling)
                        .map_err(|e| CommandError::Params(e.to_string()))?;
                    let mono = MonolithicProblem::new(p, params, 1.0, 1.0)
                        .solve_fast()
                        .map_err(|e| CommandError::Params(e.to_string()))?;
                    (b, enforced, mono)
                }
                Dataflow::Dag(t) => {
                    let b = topology_backlog(t, b)?;
                    let enforced = EnforcedDagProblem::new(t, params, b.clone())
                        .solve()
                        .map_err(|e| CommandError::Params(e.to_string()))?;
                    let mono = MonolithicDagProblem::new(t, params, 1.0, 1.0)
                        .solve_fast()
                        .map_err(|e| CommandError::Params(e.to_string()))?;
                    (b, enforced, mono)
                }
            };
            let cfg = SimConfig::quick(tau0, 0, items);
            let live_metrics = live
                .enabled()
                .then(|| SimLiveMetrics::new(stages, worker_threads()));
            let session = live_metrics
                .as_ref()
                .map(|m| LiveSession::start(&live, m.registry(), render_stress))
                .transpose()
                .map_err(CommandError::Params)?;
            let report = match &flow {
                Dataflow::Chain(p) => robustness_report_live(
                    p,
                    &enforced,
                    &mono,
                    deadline,
                    &cfg,
                    seeds,
                    &Perturbation::standard(1.0),
                    &intensities,
                    target,
                    live_metrics.as_ref(),
                ),
                Dataflow::Dag(t) => robustness_report_topology_live(
                    t,
                    &enforced,
                    &mono,
                    deadline,
                    &cfg,
                    seeds,
                    &Perturbation::standard(1.0),
                    &intensities,
                    target,
                    live_metrics.as_ref(),
                ),
            };
            let snap = live_metrics.as_ref().map(|m| m.registry().snapshot());
            if let Some(s) = session {
                s.finish();
            }
            if let Some(format) = metrics {
                let path = match format {
                    MetricsFormat::Json => {
                        let mut results = serde_json::to_value(&report).expect("report serializes");
                        if let (Some(snap), serde_json::Value::Object(m)) = (&snap, &mut results) {
                            m.insert(
                                "live_metrics".into(),
                                serde_json::to_value(snap).expect("snapshot serializes"),
                            );
                        }
                        let mut config = serde_json::json!({
                            "tau0": tau0,
                            "deadline": deadline,
                            "b": b,
                            "items": items,
                            "seeds": seeds,
                            "intensities": intensities,
                            "target": target,
                        });
                        if let serde_json::Value::Object(m) = &mut config {
                            m.insert(
                                source_key.to_string(),
                                serde_json::Value::String(source.clone()),
                            );
                        }
                        RunManifest::new(experiment, config, results).write()?
                    }
                    MetricsFormat::Csv => {
                        let cell = |name: &str,
                                    pt: &rtsdf::sim::robustness::RobustnessPoint,
                                    s: &rtsdf::sim::robustness::StressSummary| {
                            vec![
                                format!("{:.4}", pt.intensity),
                                name.to_string(),
                                format!("{:.6}", s.miss_free_fraction),
                                format!("{:.6}", s.worst_miss_rate),
                                format!("{:.6}", s.worst_admitted_miss_rate),
                                s.total_shed.to_string(),
                                s.total_misses.to_string(),
                                s.total_dropped.to_string(),
                                s.total_resolves.to_string(),
                                s.any_truncated.to_string(),
                            ]
                        };
                        let rows: Vec<Vec<String>> = report
                            .points
                            .iter()
                            .flat_map(|pt| {
                                vec![
                                    cell("enforced_mitigated", pt, &pt.enforced_mitigated),
                                    cell("enforced_unmitigated", pt, &pt.enforced_unmitigated),
                                    cell("monolithic", pt, &pt.monolithic),
                                ]
                            })
                            .collect();
                        bench::manifest::write_metrics_csv(
                            experiment,
                            &[
                                "intensity",
                                "strategy",
                                "miss_free_fraction",
                                "worst_miss_rate",
                                "worst_admitted_miss_rate",
                                "total_shed",
                                "total_misses",
                                "total_dropped",
                                "total_resolves",
                                "any_truncated",
                            ],
                            &rows,
                        )?
                    }
                };
                eprintln!("wrote {}", path.display());
            }
            if json {
                writeln!(
                    out,
                    "{}",
                    serde_json::to_string(&report).expect("report serializes")
                )?;
            } else {
                let margin = |m: Option<f64>| m.map_or(String::from("none"), |v| format!("{v}"));
                writeln!(
                    out,
                    "stressed {} intensities x {} seeds x {} items (target miss-free {:.0}%)",
                    report.points.len(),
                    seeds,
                    items,
                    100.0 * target
                )?;
                for pt in &report.points {
                    writeln!(
                        out,
                        "  intensity {:.2}: mitigated miss-free {:.0}% (shed {}, resolves {}), \
                         unmitigated {:.0}%, monolithic {:.0}%",
                        pt.intensity,
                        100.0 * pt.enforced_mitigated.miss_free_fraction,
                        pt.enforced_mitigated.total_shed,
                        pt.enforced_mitigated.total_resolves,
                        100.0 * pt.enforced_unmitigated.miss_free_fraction,
                        100.0 * pt.monolithic.miss_free_fraction,
                    )?;
                }
                writeln!(
                    out,
                    "  margins: enforced+mitigation {}, enforced alone {}, monolithic {}",
                    margin(report.enforced_margin),
                    margin(report.unmitigated_margin),
                    margin(report.monolithic_margin),
                )?;
            }
            Ok(())
        }
        Command::Execute {
            pipeline,
            workload,
            tau0,
            deadline,
            b,
            items,
            seed,
            duration,
            strategy,
            sim_seeds,
            tolerance,
            gate,
            json,
            metrics,
        } => {
            let (flow, source) = load_dataflow(&pipeline, &workload)?;
            let params = params(tau0, deadline)?;
            let (topology, b) = match flow {
                Dataflow::Chain(p) => {
                    let b = backlog(&p, b)?;
                    (Topology::chain(&p), b)
                }
                Dataflow::Dag(t) => {
                    let b = topology_backlog(&t, b)?;
                    (t, b)
                }
            };
            // DAG problems delegate to the chain solvers on linear
            // topologies, so one code path covers both sources.
            let schedule: AnySchedule = match strategy {
                Strategy::Monolithic => MonolithicDagProblem::new(&topology, params, 1.0, 1.0)
                    .solve_fast()
                    .map_err(|e| CommandError::Params(e.to_string()))?
                    .into(),
                _ => EnforcedDagProblem::new(&topology, params, b.clone())
                    .solve()
                    .map_err(|e| CommandError::Params(e.to_string()))?
                    .into(),
            };
            let mut config = ExecConfig::new(items, seed, tau0, deadline);
            config.target_duration_secs = duration;
            // Simulator seeds disjoint from the real run's seed so the
            // agreement check is a genuine cross-validation, not a
            // same-stream replay.
            let seeds: Vec<u64> = (1..=sim_seeds).collect();
            let report = sim_vs_real(&topology, &schedule, &config, &seeds, tolerance)
                .map_err(|e| CommandError::Params(e.to_string()))?;
            if let Some(format) = metrics {
                let path = match format {
                    MetricsFormat::Json => {
                        let mut config_json = serde_json::json!({
                            "tau0": tau0,
                            "deadline": deadline,
                            "b": b,
                            "items": items,
                            "seed": seed,
                            "duration": duration,
                            "strategy": report.strategy,
                            "sim_seeds": sim_seeds,
                            "tolerance": tolerance,
                        });
                        if let serde_json::Value::Object(m) = &mut config_json {
                            let key = if pipeline.is_some() {
                                "pipeline"
                            } else {
                                "workload"
                            };
                            m.insert(key.into(), serde_json::Value::String(source.clone()));
                        }
                        RunManifest::new(
                            "exec",
                            config_json,
                            serde_json::to_value(&report).expect("report serializes"),
                        )
                        .write()?
                    }
                    MetricsFormat::Csv => {
                        let rows: Vec<Vec<String>> = report
                            .quantities
                            .iter()
                            .map(|q| {
                                vec![
                                    q.quantity.clone(),
                                    format!("{:.6}", q.sim),
                                    format!("{:.6}", q.real),
                                    format!("{:.6}", q.error),
                                    q.within.to_string(),
                                ]
                            })
                            .collect();
                        bench::manifest::write_metrics_csv(
                            "exec",
                            &["quantity", "sim", "real", "error", "within"],
                            &rows,
                        )?
                    }
                };
                eprintln!("wrote {}", path.display());
            }
            if json {
                writeln!(
                    out,
                    "{}",
                    serde_json::to_string(&report).expect("report serializes")
                )?;
            } else {
                writeln!(
                    out,
                    "executed {} items on '{}' ({} strategy) across {} threads",
                    items,
                    source,
                    report.strategy,
                    topology.len(),
                )?;
                writeln!(
                    out,
                    "  real: active fraction {:.4}, miss rate {:.4}, horizon {:.0} cycles",
                    report.exec.active_fraction,
                    report.exec.miss_rate(),
                    report.exec.horizon_cycles,
                )?;
                for q in &report.quantities {
                    writeln!(
                        out,
                        "  {:>16}: sim {:.4}  real {:.4}  error {:.2}% {}",
                        q.quantity,
                        q.sim,
                        q.real,
                        100.0 * q.error,
                        if q.within { "(ok)" } else { "(DISAGREE)" },
                    )?;
                }
                let q = |o: Option<f64>| o.map_or_else(|| String::from("-"), |v| format!("{v:.0}"));
                for s in &report.sojourn {
                    writeln!(
                        out,
                        "  sojourn {:>10}: sim p50/p90 {}/{}  real {}/{} cycles",
                        s.stage,
                        q(s.sim_p50),
                        q(s.sim_p90),
                        q(s.real_p50),
                        q(s.real_p90),
                    )?;
                }
                writeln!(
                    out,
                    "  agreement: {} of {} quantities within {:.0}% ({})",
                    report.quantities.len() as u64 - report.agreement_failures,
                    report.quantities.len(),
                    100.0 * tolerance,
                    if report.passes() { "PASS" } else { "FAIL" },
                )?;
            }
            if gate && !report.passes() {
                return Err(CommandError::Gate(format!(
                    "sim-vs-real agreement failed: {} conservation violation(s), \
                     {} quantity disagreement(s) at tolerance {:.0}%",
                    report.conservation_violations,
                    report.agreement_failures,
                    100.0 * tolerance,
                )));
            }
            Ok(())
        }
        Command::Calibrate {
            pipeline,
            points,
            seeds,
            items,
        } => {
            let p = load_pipeline(&pipeline)?;
            let grid: Result<Vec<RtParams>, _> = points
                .iter()
                .map(|&(t, d)| RtParams::new(t, d).map_err(|e| CommandError::Params(e.to_string())))
                .collect();
            let config = CalibrationConfig {
                seeds_per_point: seeds,
                stream_length: items,
                ..CalibrationConfig::quick(grid?)
            };
            let result = calibrate_enforced(&p, &config);
            for (i, round) in result.rounds.iter().enumerate() {
                writeln!(
                    out,
                    "round {i}: b = {:?}, worst miss-free {:.2}",
                    round.b, round.worst_miss_free
                )?;
            }
            writeln!(
                out,
                "calibrated b = {:?} (converged: {})",
                result.b, result.converged
            )?;
            Ok(())
        }
    }
}

fn round_vec(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
