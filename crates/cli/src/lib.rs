//! # rtsdf-cli — scheduling irregular SIMD pipelines from the shell
//!
//! A thin command-line front end over the `rtsdf` facade, so a pipeline
//! described in a JSON file can be scheduled, simulated, swept, and
//! calibrated without writing Rust:
//!
//! ```text
//! rtsdf-cli example-pipeline > blast.json
//! rtsdf-cli optimize  --pipeline blast.json --tau0 10 --deadline 1e5 --b 1,3,9,6
//! rtsdf-cli simulate  --pipeline blast.json --tau0 10 --deadline 1e5 --items 50000 --seeds 10
//! rtsdf-cli sweep     --pipeline blast.json --grid 8x8 --csv
//! rtsdf-cli calibrate --pipeline blast.json --points 10:1e5,30:1.5e5
//! rtsdf-cli stress    --pipeline blast.json --tau0 10 --deadline 1e5 --b 1,3,9,6 --intensities 0,0.5,1
//! ```
//!
//! The pipeline file is the `serde_json` encoding of
//! [`rtsdf::model::PipelineSpec`]; `example-pipeline` emits the paper's
//! BLAST pipeline as a starting point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod live;

pub use args::{parse, Command, ParseError};

/// Entry point shared by the binary and tests: parse `argv` (without
/// the program name) and run the command, writing to `out`.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), String> {
    match args::parse(argv) {
        Ok(cmd) => commands::execute(cmd, out).map_err(|e| e.to_string()),
        Err(e) => Err(format!("{e}\n\n{}", args::USAGE)),
    }
}
