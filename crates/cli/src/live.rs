//! Live progress output for long-running commands: an in-place
//! terminal progress line (`--live`) and a `/metrics` HTTP endpoint
//! (`--metrics-listen`), both fed from the same lock-free registry the
//! sweep scheduler / simulator workers publish into.
//!
//! The progress line goes to **stderr** so piped stdout (CSV, JSON)
//! stays machine-clean. Each repaint clears the line with `\r\x1b[2K`
//! before redrawing; the final state is left on screen with a newline
//! when the session finishes.

use crate::args::LiveOpts;
use rtsdf::metrics::{MetricsServer, MetricsSnapshot, Registry};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One live-output session: an optional `/metrics` server plus an
/// optional stderr painter thread, both over the same registry.
pub struct LiveSession {
    server: Option<MetricsServer>,
    painter: Option<Painter>,
}

struct Painter {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl LiveSession {
    /// Start the session described by `opts`: bind the `/metrics`
    /// server when `--metrics-listen` was given (announcing the bound
    /// address on stderr), and spawn the progress-line painter when
    /// `--live` was given. `render` turns a registry snapshot plus the
    /// elapsed wall-clock time into one progress line.
    pub fn start(
        opts: &LiveOpts,
        registry: Arc<Registry>,
        render: impl Fn(&MetricsSnapshot, Duration) -> String + Send + 'static,
    ) -> Result<LiveSession, String> {
        // The arg scanner already rejects `--live-interval 0`, but
        // `LiveOpts` is constructible in code too; a zero interval
        // would turn the painter loop into a busy spin on stderr.
        if opts.live && opts.interval_ms == 0 {
            return Err("--live-interval: must be at least 1 ms".to_string());
        }
        let server = match &opts.metrics_listen {
            Some(addr) => {
                let server = MetricsServer::start(addr.as_str(), Arc::clone(&registry))
                    .map_err(|e| format!("--metrics-listen {addr}: {e}"))?;
                eprintln!("serving /metrics on http://{}", server.addr());
                Some(server)
            }
            None => None,
        };
        let painter = opts.live.then(|| {
            let stop = Arc::new(AtomicBool::new(false));
            let thread_stop = Arc::clone(&stop);
            let interval = Duration::from_millis(opts.interval_ms);
            let handle = std::thread::spawn(move || {
                let started = Instant::now();
                let paint = |terminal: bool| {
                    let line = render(&registry.snapshot(), started.elapsed());
                    let mut err = std::io::stderr().lock();
                    let end = if terminal { "\n" } else { "" };
                    let _ = write!(err, "\r\x1b[2K{line}{end}");
                    let _ = err.flush();
                };
                while !thread_stop.load(Ordering::Acquire) {
                    paint(false);
                    std::thread::sleep(interval);
                }
                // Leave the final state on screen.
                paint(true);
            });
            Painter { stop, handle }
        });
        Ok(LiveSession { server, painter })
    }

    /// Stop the painter (after one final repaint) and shut the server
    /// down. Idempotent through `Drop` as well, but calling it
    /// explicitly sequences the final line before any summary output.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for LiveSession {
    fn drop(&mut self) {
        if let Some(p) = self.painter.take() {
            p.stop.store(true, Ordering::Release);
            let _ = p.handle.join();
        }
        if let Some(mut s) = self.server.take() {
            s.shutdown();
        }
    }
}

/// Progress line for `sweep --live`:
/// `sweep 42/256 cells (16%) | 12.3 cells/s | 57 steals | ETA 17s`.
pub fn render_sweep(snap: &MetricsSnapshot, elapsed: Duration) -> String {
    let done = snap.total("rtsdf_sweep_cells_completed") as u64;
    let total = snap.total("rtsdf_sweep_cells_total") as u64;
    let steals = snap.total("rtsdf_sweep_steals") as u64;
    let rate = rate_per_sec(done, elapsed);
    format!(
        "sweep {done}/{total} cells ({}%) | {rate:.1} cells/s | {steals} steals | ETA {}",
        percent(done, total),
        eta(done, total, elapsed),
    )
}

/// Progress line for `stress --live`:
/// `stress 9/36 runs (25%) | 18234 items/s | 5121 completed, 40 shed, 2 dropped | ETA 41s`.
pub fn render_stress(snap: &MetricsSnapshot, elapsed: Duration) -> String {
    let done = snap.total("rtsdf_sim_runs_completed") as u64;
    let total = snap.total("rtsdf_sim_runs_total") as u64;
    let completed = snap.total("rtsdf_sim_items_completed") as u64;
    let shed = snap.total("rtsdf_sim_items_shed") as u64;
    let dropped = snap.total("rtsdf_sim_items_dropped") as u64;
    let items_per_sec = snap.total("rtsdf_sim_items_per_sec");
    format!(
        "stress {done}/{total} runs ({}%) | {items_per_sec:.0} items/s | \
         {completed} completed, {shed} shed, {dropped} dropped | ETA {}",
        percent(done, total),
        eta(done, total, elapsed),
    )
}

fn percent(done: u64, total: u64) -> u64 {
    (100 * done).checked_div(total).unwrap_or(0)
}

fn rate_per_sec(done: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        done as f64 / secs
    } else {
        0.0
    }
}

/// Remaining-time estimate from linear extrapolation of the completion
/// rate so far; `-` until there is something to extrapolate from.
fn eta(done: u64, total: u64, elapsed: Duration) -> String {
    if done == 0 || total == 0 || done >= total {
        return "-".into();
    }
    let rate = rate_per_sec(done, elapsed);
    if rate <= 0.0 {
        return "-".into();
    }
    let secs = (total - done) as f64 / rate;
    if secs >= 60.0 {
        format!("{}m{:02}s", (secs / 60.0) as u64, (secs % 60.0) as u64)
    } else {
        format!("{}s", secs.ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::LiveOpts;
    use rtsdf::metrics::Registry;

    fn registry_with(cells_done: u64, cells_total: f64) -> Arc<Registry> {
        let mut r = Registry::new(1);
        let done = r.counter("rtsdf_sweep_cells_completed", "done");
        let total = r.gauge("rtsdf_sweep_cells_total", "total");
        r.inc(done, 0, cells_done);
        r.gauge_set(total, 0, cells_total);
        Arc::new(r)
    }

    #[test]
    fn sweep_line_shows_progress_and_eta() {
        let snap = registry_with(64, 256.0).snapshot();
        let line = render_sweep(&snap, Duration::from_secs(8));
        assert!(line.contains("64/256 cells (25%)"), "{line}");
        assert!(line.contains("8.0 cells/s"), "{line}");
        assert!(line.contains("ETA 24s"), "{line}");
    }

    #[test]
    fn eta_handles_empty_and_finished_grids() {
        assert_eq!(eta(0, 10, Duration::from_secs(1)), "-");
        assert_eq!(eta(10, 10, Duration::from_secs(1)), "-");
        assert_eq!(eta(5, 0, Duration::from_secs(1)), "-");
        assert_eq!(eta(1, 121, Duration::from_secs(1)), "2m00s");
    }

    #[test]
    fn stress_line_reads_sim_counters() {
        let mut r = Registry::new(1);
        let runs = r.counter("rtsdf_sim_runs_completed", "runs");
        let total = r.gauge("rtsdf_sim_runs_total", "total");
        let completed = r.counter("rtsdf_sim_items_completed", "items");
        let shed = r.counter("rtsdf_sim_items_shed", "shed");
        r.inc(runs, 0, 3);
        r.gauge_set(total, 0, 12.0);
        r.inc(completed, 0, 4_000);
        r.inc(shed, 0, 17);
        let line = render_stress(&r.snapshot(), Duration::from_secs(2));
        assert!(line.contains("3/12 runs (25%)"), "{line}");
        assert!(
            line.contains("4000 completed, 17 shed, 0 dropped"),
            "{line}"
        );
    }

    #[test]
    fn session_with_painter_and_server_starts_and_finishes() {
        let opts = LiveOpts {
            live: true,
            interval_ms: 5,
            metrics_listen: Some("127.0.0.1:0".into()),
        };
        let registry = registry_with(3, 9.0);
        let session = LiveSession::start(&opts, registry, render_sweep).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        session.finish();
    }

    /// A zero interval (reachable via a hand-built `LiveOpts`) must be
    /// refused before the painter thread spawns — it would busy-spin.
    #[test]
    fn session_rejects_zero_interval() {
        let opts = LiveOpts {
            live: true,
            interval_ms: 0,
            metrics_listen: None,
        };
        let err = LiveSession::start(&opts, registry_with(0, 0.0), render_sweep)
            .err()
            .expect("zero interval must fail");
        assert!(err.contains("--live-interval"), "{err}");
    }

    #[test]
    fn session_rejects_unbindable_address() {
        let opts = LiveOpts {
            live: false,
            interval_ms: 500,
            metrics_listen: Some("definitely-not-an-address".into()),
        };
        let err = LiveSession::start(&opts, registry_with(0, 0.0), render_sweep)
            .err()
            .expect("bad address must fail");
        assert!(err.contains("--metrics-listen"), "{err}");
    }
}
