//! The `rtsdf-cli` binary: see `rtsdf_cli::args::USAGE`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(msg) = rtsdf_cli::run(&argv, &mut stdout) {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}
