//! End-to-end CLI tests: run the commands through `rtsdf_cli::run` with
//! a real pipeline file and inspect the output.

use rtsdf_cli::run;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn run_to_string(cmd: &str) -> Result<String, String> {
    let mut out = Vec::new();
    run(&argv(cmd), &mut out)?;
    Ok(String::from_utf8(out).expect("utf8 output"))
}

/// Write the example pipeline to a temp file and return its path.
fn pipeline_file() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rtsdf-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("blast.json");
    let json = run_to_string("example-pipeline").unwrap();
    std::fs::write(&path, json).unwrap();
    path
}

#[test]
fn example_pipeline_roundtrips() {
    let json = run_to_string("example-pipeline").unwrap();
    let spec: rtsdf::model::PipelineSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec.len(), 4);
    assert_eq!(spec.vector_width(), 128);
}

#[test]
fn optimize_all_strategies() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "optimize --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("enforced waits: active fraction"), "{out}");
    assert!(out.contains("monolithic: M ="), "{out}");
    assert!(out.contains("flexible shares: utilization"), "{out}");
}

#[test]
fn optimize_json_output_parses() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "optimize --pipeline {} --tau0 10 --deadline 1e5 --json",
        path.display()
    ))
    .unwrap();
    let v: serde_json::Value = serde_json::from_str(&out).unwrap();
    assert!(v.get("enforced").is_some(), "{v}");
    let af = v["enforced"]["active_fraction"].as_f64().unwrap();
    assert!(af > 0.0 && af < 1.0);
}

#[test]
fn optimize_reports_infeasibility_gracefully() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "optimize --pipeline {} --tau0 10 --deadline 100 --strategy enforced",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("infeasible"), "{out}");
}

#[test]
fn simulate_prints_metrics() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "simulate --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6 --items 1000 --seeds 2",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("miss-free seeds"), "{out}");
    assert!(out.contains("active fraction: predicted"), "{out}");
}

#[test]
fn sweep_csv_has_expected_columns() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "sweep --pipeline {} --grid 3x3 --csv",
        path.display()
    ))
    .unwrap();
    let mut lines = out.lines();
    assert_eq!(
        lines.next().unwrap(),
        "tau0,deadline,enforced_af,monolithic_af,difference"
    );
    assert_eq!(lines.count(), 9, "3x3 grid rows");
}

#[test]
fn calibrate_reports_rounds() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "calibrate --pipeline {} --points 10:1e5 --seeds 2 --items 1000",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("round 0"), "{out}");
    assert!(out.contains("calibrated b ="), "{out}");
}

#[test]
fn gantt_draws_one_row_per_node() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "gantt --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6 --window 20000 --width 60",
        path.display()
    ))
    .unwrap();
    let rows: Vec<&str> = out.lines().filter(|l| l.starts_with("node ")).collect();
    assert_eq!(rows.len(), 4, "{out}");
    assert!(rows.iter().all(|r| r.contains('#')), "{out}");
}

#[test]
fn optimize_flexible_strategy_only() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "optimize --pipeline {} --tau0 10 --deadline 2e4 --b 1,3,9,6 --strategy flexible",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("flexible shares: utilization"), "{out}");
    assert!(!out.contains("monolithic"), "{out}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let err =
        run_to_string("optimize --pipeline /no/such/file.json --tau0 1 --deadline 1").unwrap_err();
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn bad_b_length_is_a_clean_error() {
    let path = pipeline_file();
    let err = run_to_string(&format!(
        "optimize --pipeline {} --tau0 10 --deadline 1e5 --b 1,2",
        path.display()
    ))
    .unwrap_err();
    assert!(err.contains("stages"), "{err}");
}

#[test]
fn unknown_subcommand_shows_usage() {
    let err = run_to_string("bogus").unwrap_err();
    assert!(err.contains("USAGE"), "{err}");
}
