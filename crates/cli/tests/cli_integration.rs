//! End-to-end CLI tests: run the commands through `rtsdf_cli::run` with
//! a real pipeline file and inspect the output.

use rtsdf_cli::run;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn run_to_string(cmd: &str) -> Result<String, String> {
    let mut out = Vec::new();
    run(&argv(cmd), &mut out)?;
    Ok(String::from_utf8(out).expect("utf8 output"))
}

/// Write the example pipeline to a temp file and return its path.
fn pipeline_file() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rtsdf-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("blast.json");
    let json = run_to_string("example-pipeline").unwrap();
    std::fs::write(&path, json).unwrap();
    path
}

#[test]
fn example_pipeline_roundtrips() {
    let json = run_to_string("example-pipeline").unwrap();
    let spec: rtsdf::model::PipelineSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec.len(), 4);
    assert_eq!(spec.vector_width(), 128);
}

#[test]
fn optimize_all_strategies() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "optimize --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("enforced waits: active fraction"), "{out}");
    assert!(out.contains("monolithic: M ="), "{out}");
    assert!(out.contains("flexible shares: utilization"), "{out}");
}

#[test]
fn optimize_json_output_parses() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "optimize --pipeline {} --tau0 10 --deadline 1e5 --json",
        path.display()
    ))
    .unwrap();
    let v: serde_json::Value = serde_json::from_str(&out).unwrap();
    assert!(v.get("enforced").is_some(), "{v}");
    let af = v["enforced"]["active_fraction"].as_f64().unwrap();
    assert!(af > 0.0 && af < 1.0);
}

#[test]
fn optimize_reports_infeasibility_gracefully() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "optimize --pipeline {} --tau0 10 --deadline 100 --strategy enforced",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("infeasible"), "{out}");
}

#[test]
fn simulate_prints_metrics() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "simulate --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6 --items 1000 --seeds 2",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("miss-free seeds"), "{out}");
    assert!(out.contains("active fraction: predicted"), "{out}");
}

#[test]
fn simulate_deepchain_workload_runs_as_a_chain() {
    let out = run_to_string(
        "simulate --workload deepchain:32 --tau0 5 --deadline 1e7 --items 500 --seeds 1",
    )
    .unwrap();
    assert!(out.contains("miss-free seeds"), "{out}");
    assert!(out.contains("active fraction: predicted"), "{out}");
}

#[test]
fn sweep_csv_has_expected_columns() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "sweep --pipeline {} --grid 3x3 --csv",
        path.display()
    ))
    .unwrap();
    let mut lines = out.lines();
    assert_eq!(
        lines.next().unwrap(),
        "tau0,deadline,enforced_af,monolithic_af,difference"
    );
    assert_eq!(lines.count(), 9, "3x3 grid rows");
}

#[test]
fn calibrate_reports_rounds() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "calibrate --pipeline {} --points 10:1e5 --seeds 2 --items 1000",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("round 0"), "{out}");
    assert!(out.contains("calibrated b ="), "{out}");
}

#[test]
fn gantt_draws_one_row_per_node() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "gantt --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6 --window 20000 --width 60",
        path.display()
    ))
    .unwrap();
    let rows: Vec<&str> = out.lines().filter(|l| l.starts_with("node ")).collect();
    assert_eq!(rows.len(), 4, "{out}");
    assert!(rows.iter().all(|r| r.contains('#')), "{out}");
}

#[test]
fn optimize_flexible_strategy_only() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "optimize --pipeline {} --tau0 10 --deadline 2e4 --b 1,3,9,6 --strategy flexible",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("flexible shares: utilization"), "{out}");
    assert!(!out.contains("monolithic"), "{out}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let err =
        run_to_string("optimize --pipeline /no/such/file.json --tau0 1 --deadline 1").unwrap_err();
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn bad_b_length_is_a_clean_error() {
    let path = pipeline_file();
    let err = run_to_string(&format!(
        "optimize --pipeline {} --tau0 10 --deadline 1e5 --b 1,2",
        path.display()
    ))
    .unwrap_err();
    assert!(err.contains("stages"), "{err}");
}

#[test]
fn unknown_subcommand_shows_usage() {
    let err = run_to_string("bogus").unwrap_err();
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn trace_writes_perfetto_loadable_chrome_json() {
    let path = pipeline_file();
    let out_path = path.with_file_name("trace_chrome.json");
    let out = run_to_string(&format!(
        "trace --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6 --items 400 --out {}",
        path.display(),
        out_path.display()
    ))
    .unwrap();
    assert!(out.contains("traced 400 items"), "{out}");
    let text = std::fs::read_to_string(&out_path).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    // Chrome trace-event essentials: metadata naming plus complete
    // events with microsecond timestamps on every record.
    let mut phases = std::collections::HashSet::new();
    for e in events {
        let ph = e["ph"].as_str().expect("ph field");
        phases.insert(ph.to_string());
        if ph == "X" {
            assert!(e["ts"].as_f64().is_some(), "{e}");
            assert!(e["dur"].as_f64().is_some(), "{e}");
            assert!(e["pid"].as_u64().is_some(), "{e}");
        }
    }
    assert!(phases.contains("M"), "thread metadata present: {phases:?}");
    assert!(phases.contains("X"), "span events present: {phases:?}");
    // Both the simulator tracks and the solver track made it into one
    // file (pid 1 = stages, pid 2 = items, pid 3 = solver).
    let pids: std::collections::HashSet<u64> =
        events.iter().filter_map(|e| e["pid"].as_u64()).collect();
    assert!(
        pids.contains(&1) && pids.contains(&2) && pids.contains(&3),
        "{pids:?}"
    );
}

#[test]
fn trace_json_format_reports_blame_for_missed_deadlines() {
    let path = pipeline_file();
    let out_path = path.with_file_name("trace_report.json");
    // alpha = 0.05 puts the forensics threshold (5e3 cycles) far below
    // the pipeline's minimum latency, so every completion is analyzed
    // and the blame report must account for all overrun.
    let out = run_to_string(&format!(
        "trace --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6 --items 400 \
         --alpha 0.05 --format json --out {}",
        path.display(),
        out_path.display()
    ))
    .unwrap();
    assert!(out.contains("deadline-miss forensics"), "{out}");
    let text = std::fs::read_to_string(&out_path).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    let blame = &v["metrics"]["blame"];
    assert!(blame["analyzed_items"].as_u64().unwrap() > 0, "{blame}");
    let stages = blame["stages"].as_array().unwrap();
    let total: f64 = stages
        .iter()
        .map(|s| {
            s["enforced_wait"].as_f64().unwrap()
                + s["queue_wait"].as_f64().unwrap()
                + s["service"].as_f64().unwrap()
        })
        .sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "blame fractions sum to 1: {total}"
    );
    assert!(v["trace"]["visits"].as_u64().unwrap() > 0);
}

#[test]
fn stress_is_deterministic_and_degrades_gracefully() {
    let path = pipeline_file();
    let cmd = format!(
        "stress --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6 \
         --items 600 --seeds 2 --intensities 0,1.5 --json",
        path.display()
    );
    let out1 = run_to_string(&cmd).unwrap();
    let out2 = run_to_string(&cmd).unwrap();
    assert_eq!(out1, out2, "same seeds must reproduce bit-identically");

    let v: serde_json::Value = serde_json::from_str(&out1).unwrap();
    let points = v["points"].as_array().unwrap();
    assert_eq!(points.len(), 2);

    // Unperturbed at the paper's calibrated factors: miss-free, no
    // mitigation activity.
    let base = &points[0]["enforced_mitigated"];
    assert_eq!(base["miss_free_fraction"].as_f64().unwrap(), 1.0);
    assert_eq!(base["total_shed"].as_u64().unwrap(), 0);
    assert_eq!(base["total_resolves"].as_u64().unwrap(), 0);

    // Degradation is monotone: shed + misses can only grow with
    // intensity, and under heavy faults shedding keeps the miss rate
    // over *admitted* items at or below the unmitigated miss rate.
    let hot = &points[1];
    let mitigated = &hot["enforced_mitigated"];
    let unmitigated = &hot["enforced_unmitigated"];
    let pressure = |c: &serde_json::Value| {
        c["total_shed"].as_u64().unwrap() + c["total_misses"].as_u64().unwrap()
    };
    assert!(pressure(mitigated) >= pressure(&points[0]["enforced_mitigated"]));
    assert!(
        mitigated["worst_admitted_miss_rate"].as_f64().unwrap()
            <= unmitigated["worst_miss_rate"].as_f64().unwrap() + 1e-12,
        "{hot}"
    );
    // Margins are reported for every strategy (possibly null).
    assert!(v.get("enforced_margin").is_some());
    assert!(v.get("monolithic_margin").is_some());
}

#[test]
fn stress_human_output_reports_margins() {
    let path = pipeline_file();
    let out = run_to_string(&format!(
        "stress --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6 \
         --items 400 --seeds 2 --intensities 0",
        path.display()
    ))
    .unwrap();
    assert!(out.contains("stressed 1 intensities"), "{out}");
    assert!(out.contains("margins:"), "{out}");
}

#[test]
fn unknown_and_malformed_flags_are_clean_errors() {
    // Regression: these used to be silently ignored or mis-consumed.
    let err =
        run_to_string("simulate --pipeline p --tau0 1 --deadline 1e5 --seedz 100").unwrap_err();
    assert!(err.contains("--seedz"), "{err}");
    let err =
        run_to_string("simulate --pipeline p --tau0 1 --deadline 1e5 --b --json").unwrap_err();
    assert!(err.contains("--b") && err.contains("--json"), "{err}");
    let err =
        run_to_string("simulate --pipeline p --tau0 1 --deadline 1e5 --items 1e30").unwrap_err();
    assert!(err.contains("too large"), "{err}");
}

#[test]
fn trace_monolithic_strategy_works() {
    let path = pipeline_file();
    let out_path = path.with_file_name("trace_mono.json");
    let out = run_to_string(&format!(
        "trace --pipeline {} --tau0 50 --deadline 1e5 --items 300 --strategy monolithic --out {}",
        path.display(),
        out_path.display()
    ))
    .unwrap();
    assert!(out.contains("traced 300 items"), "{out}");
    let text = std::fs::read_to_string(&out_path).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert!(!v["traceEvents"].as_array().unwrap().is_empty());
}

#[test]
fn sweep_live_output_is_bit_identical_to_plain() {
    let path = pipeline_file();
    let plain = run_to_string(&format!(
        "sweep --pipeline {} --grid 4x4 --csv",
        path.display()
    ))
    .unwrap();
    // --live-interval implies --live; 127.0.0.1:0 binds an ephemeral
    // port so parallel test runs never collide.
    let live = run_to_string(&format!(
        "sweep --pipeline {} --grid 4x4 --csv --live-interval 10 --metrics-listen 127.0.0.1:0",
        path.display()
    ))
    .unwrap();
    assert_eq!(plain, live, "live telemetry must not change results");
}

#[test]
fn sweep_manifest_embeds_live_metrics_snapshot() {
    // Manifest output lands in $BENCH_OUT_DIR, so run the real binary
    // in a subprocess rather than mutating this process's environment.
    let pipeline = pipeline_file();
    let dir = std::env::temp_dir().join(format!("rtsdf-cli-live-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_rtsdf-cli"))
        .args([
            "sweep",
            "--pipeline",
            pipeline.to_str().unwrap(),
            "--grid",
            "4x4",
            "--metrics",
            "json",
            "--live-interval",
            "20",
            "--metrics-listen",
            "127.0.0.1:0",
        ])
        .env("BENCH_OUT_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .unwrap();
    assert!(status.success());
    let text = std::fs::read_to_string(dir.join("BENCH_sweep.json")).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    let families = v["results"]["live_metrics"]["families"]
        .as_array()
        .expect("manifest embeds the final registry snapshot");
    let total = |name: &str| -> f64 {
        families
            .iter()
            .find(|f| f["name"].as_str() == Some(name))
            .map(|f| {
                f["samples"]
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|s| s["value"].as_f64().unwrap())
                    .sum()
            })
            .unwrap_or(0.0)
    };
    // Every cell of the 4x4 grid was claimed and completed, and the
    // snapshot agrees with the manifest's own cell list.
    assert_eq!(total("rtsdf_sweep_cells_completed"), 16.0, "{text}");
    assert_eq!(total("rtsdf_sweep_cells_claimed"), 16.0, "{text}");
    assert_eq!(v["results"]["cells"].as_array().unwrap().len(), 16);
    assert!(total("rtsdf_sweep_steals") >= 1.0);
}

#[test]
fn stress_live_output_is_bit_identical_to_plain() {
    let path = pipeline_file();
    let cmd = |extra: &str| {
        run_to_string(&format!(
            "stress --pipeline {} --tau0 10 --deadline 1e5 --b 1,3,9,6 \
             --items 400 --seeds 2 --intensities 0,1 --json{extra}",
            path.display()
        ))
        .unwrap()
    };
    let plain = cmd("");
    let live = cmd(" --live --live-interval 10");
    assert_eq!(plain, live, "live telemetry must not change results");
}
