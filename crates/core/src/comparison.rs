//! Strategy comparison over the `(τ0, D)` operating space.
//!
//! Regenerates the data behind the paper's Figures 3 and 4: the two
//! strategies' optimized active fractions on a grid of inter-arrival
//! times and deadlines, and their difference (monolithic − enforced,
//! positive where enforced waits win).

use crate::dag::{EnforcedDagProblem, MonolithicDagProblem};
use crate::enforced::{EnforcedWaitsProblem, WarmStart};
use crate::monolithic::MonolithicProblem;
use crate::schedule::ScheduleError;
use crate::telemetry::SolveTelemetry;
use crate::threads::worker_threads;
use dataflow_model::{PipelineSpec, RtParams, Topology};
use metrics::{CounterHandle, GaugeHandle, Registry};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Grid coordinates of the cell whose schedule seeded a warm-started
/// cell (`row` indexes `tau0s`, `col` indexes `deadlines`). Recording
/// the edge makes warm sweeps auditable: the seeding choice is a pure
/// function of already-solved neighbors, so replaying the recorded
/// edges reproduces the sweep bit-identically regardless of which
/// worker solved which cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedEdge {
    /// τ0 axis index of the seeding cell.
    pub row: u64,
    /// Deadline axis index of the seeding cell.
    pub col: u64,
}

/// One grid cell's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Inter-arrival time.
    pub tau0: f64,
    /// Deadline.
    pub deadline: f64,
    /// Enforced-waits optimized active fraction (`None` if infeasible).
    pub enforced: Option<f64>,
    /// Monolithic optimized active fraction (`None` if infeasible).
    pub monolithic: Option<f64>,
    /// Telemetry of the enforced-waits solve (when it succeeded).
    pub enforced_telemetry: Option<SolveTelemetry>,
    /// Telemetry of the monolithic solve (when it succeeded).
    pub monolithic_telemetry: Option<SolveTelemetry>,
    /// Which cell seeded this one's enforced solve, when the sweep ran
    /// warm (`None` for cold solves and anchors). Skipped when absent so
    /// cold-sweep output stays byte-identical to earlier versions.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub warm_seed: Option<SeedEdge>,
}

impl CellResult {
    /// Figure-4 value: monolithic − enforced, when both are feasible.
    /// Positive means enforced waits achieve lower utilization.
    pub fn difference(&self) -> Option<f64> {
        match (self.monolithic, self.enforced) {
            (Some(m), Some(e)) => Some(m - e),
            _ => None,
        }
    }
}

/// Results of a full grid sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// τ0 axis values.
    pub tau0s: Vec<f64>,
    /// Deadline axis values.
    pub deadlines: Vec<f64>,
    /// Row-major cells (`tau0` major, `deadline` minor).
    pub cells: Vec<CellResult>,
}

impl SweepResult {
    /// Cell at axis indices `(i_tau0, j_deadline)`.
    pub fn cell(&self, i: usize, j: usize) -> &CellResult {
        &self.cells[i * self.deadlines.len() + j]
    }

    /// Fraction of cells (with both strategies feasible) where enforced
    /// waits strictly beat monolithic.
    pub fn enforced_win_fraction(&self) -> f64 {
        let comparable: Vec<f64> = self.cells.iter().filter_map(|c| c.difference()).collect();
        if comparable.is_empty() {
            return 0.0;
        }
        comparable.iter().filter(|&&d| d > 0.0).count() as f64 / comparable.len() as f64
    }

    /// Largest difference in enforced waits' favour (Fig. 4's peak).
    pub fn max_enforced_advantage(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter_map(|c| c.difference())
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.max(d))))
    }

    /// Largest difference in the monolithic strategy's favour.
    pub fn max_monolithic_advantage(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter_map(|c| c.difference())
            .fold(None, |acc, d| Some(acc.map_or(-d, |a: f64| a.max(-d))))
    }
}

/// Parameters of a sweep: backlog factors for enforced waits, `(b, S)`
/// for monolithic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Enforced-waits backlog factors (length = pipeline stages).
    pub enforced_b: Vec<f64>,
    /// Monolithic queue multiplier.
    pub monolithic_b: f64,
    /// Monolithic worst-case scale.
    pub monolithic_s: f64,
}

impl SweepConfig {
    /// The configuration the paper's §6.2 calibration arrived at for the
    /// BLAST pipeline: `b = [1, 3, 9, 6]`, monolithic `b = 1, S = 1`.
    pub fn paper_blast() -> Self {
        SweepConfig {
            enforced_b: vec![1.0, 3.0, 9.0, 6.0],
            monolithic_b: 1.0,
            monolithic_s: 1.0,
        }
    }
}

/// Options controlling how a sweep runs. The default (`warm_start:
/// false`) reproduces the original cold-solve-per-cell behaviour
/// exactly.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Seed each cell's enforced-waits solve from its row's anchor — the
    /// largest-deadline cell of the same τ0, solved cold first. The
    /// anchor choice is deterministic, so the sequential and parallel
    /// warm sweeps stay bit-identical to each other; warm cells converge
    /// to the cold schedules within solver tolerance but spend fewer
    /// iterations.
    pub warm_start: bool,
    /// Seed each cell from its *best-converged already-solved neighbor*
    /// instead of the row anchor: the grid is swept in anti-diagonal
    /// waves from the single cold anchor at `(row 0, largest deadline)`,
    /// and every other cell picks whichever of its two wave-`w−1`
    /// predecessors — `(i−1, j)` or `(i, j+1)` — converged in fewer
    /// iterations. Each seed is one grid step away (vs up to `cols−1`
    /// for row chaining), so the hints are closer and the sweep spends
    /// fewer total iterations. Supersedes `warm_start` when both are
    /// set. The parent choice depends only on the completed previous
    /// wave, never on scheduling order, so parallel graph sweeps stay
    /// bit-identical to sequential ones.
    #[serde(default)]
    pub warm_graph: bool,
}

impl SweepOptions {
    /// Options with row-anchor warm-starting enabled.
    pub fn warm() -> Self {
        SweepOptions {
            warm_start: true,
            warm_graph: false,
        }
    }

    /// Options with cross-cell warm-start graph seeding enabled.
    pub fn warm_graph() -> Self {
        SweepOptions {
            warm_start: true,
            warm_graph: true,
        }
    }
}

/// Optimize both strategies at one operating point.
pub fn compare_at(pipeline: &PipelineSpec, params: RtParams, config: &SweepConfig) -> CellResult {
    compare_at_full(pipeline, params, config, None).0
}

/// [`compare_at`] that also returns the enforced schedule's periods as a
/// warm-start hint for neighboring cells (when the cell was enforced
/// feasible).
fn compare_at_full(
    pipeline: &PipelineSpec,
    params: RtParams,
    config: &SweepConfig,
    warm: Option<&WarmStart>,
) -> (CellResult, Option<WarmStart>) {
    let prob = EnforcedWaitsProblem::new(pipeline, params, config.enforced_b.clone());
    let enforced = match warm {
        Some(hint) => prob.solve_with_fallback_warm(hint).ok(),
        None => prob.solve_with_fallback().ok(),
    };
    let hint = enforced.as_ref().map(WarmStart::from_schedule);
    let monolithic =
        MonolithicProblem::new(pipeline, params, config.monolithic_b, config.monolithic_s)
            .solve_fast()
            .ok();
    let cell = CellResult {
        tau0: params.tau0,
        deadline: params.deadline,
        enforced: enforced.as_ref().map(|s| s.active_fraction),
        monolithic: monolithic.as_ref().map(|s| s.active_fraction),
        enforced_telemetry: enforced.and_then(|s| s.telemetry),
        monolithic_telemetry: monolithic.and_then(|s| s.telemetry),
        warm_seed: None,
    };
    (cell, hint)
}

/// Validate every `(τ0, D)` grid point up front so a malformed grid is
/// reported as an error instead of crashing mid-sweep.
fn validate_grid(tau0s: &[f64], deadlines: &[f64]) -> Result<(), ScheduleError> {
    for &tau0 in tau0s {
        for &d in deadlines {
            RtParams::new(tau0, d)
                .map_err(|e| ScheduleError::InvalidParams(format!("(τ0={tau0}, D={d}): {e}")))?;
        }
    }
    Ok(())
}

/// Sweep both strategies over the cartesian grid `tau0s × deadlines`.
///
/// Returns [`ScheduleError::InvalidParams`] if any grid value is
/// non-positive or non-finite; infeasible cells are *not* errors (they
/// come back as `None` entries).
pub fn sweep(
    pipeline: &PipelineSpec,
    tau0s: &[f64],
    deadlines: &[f64],
    config: &SweepConfig,
) -> Result<SweepResult, ScheduleError> {
    sweep_with(pipeline, tau0s, deadlines, config, &SweepOptions::default())
}

/// [`sweep`] with explicit [`SweepOptions`]. With `warm_start` each row
/// solves its anchor (largest-deadline) cell cold and seeds every other
/// cell of the row from the anchor's enforced schedule.
pub fn sweep_with(
    pipeline: &PipelineSpec,
    tau0s: &[f64],
    deadlines: &[f64],
    config: &SweepConfig,
    opts: &SweepOptions,
) -> Result<SweepResult, ScheduleError> {
    validate_grid(tau0s, deadlines)?;
    let cols = deadlines.len();
    if opts.warm_graph {
        return Ok(SweepResult {
            tau0s: tau0s.to_vec(),
            deadlines: deadlines.to_vec(),
            cells: sweep_graph_cells(pipeline, tau0s, deadlines, config, 1, None),
        });
    }
    let mut cells = Vec::with_capacity(tau0s.len() * cols);
    if !opts.warm_start {
        for &tau0 in tau0s {
            for &d in deadlines {
                let params = RtParams::new(tau0, d).expect("grid validated above");
                cells.push(compare_at(pipeline, params, config));
            }
        }
    } else if cols > 0 {
        for (i, &tau0) in tau0s.iter().enumerate() {
            let anchor_params =
                RtParams::new(tau0, deadlines[cols - 1]).expect("grid validated above");
            let (anchor_cell, hint) = compare_at_full(pipeline, anchor_params, config, None);
            for &d in &deadlines[..cols - 1] {
                let params = RtParams::new(tau0, d).expect("grid validated above");
                let mut cell = compare_at_full(pipeline, params, config, hint.as_ref()).0;
                if hint.is_some() {
                    cell.warm_seed = Some(SeedEdge {
                        row: i as u64,
                        col: (cols - 1) as u64,
                    });
                }
                cells.push(cell);
            }
            cells.push(anchor_cell);
        }
    }
    Ok(SweepResult {
        tau0s: tau0s.to_vec(),
        deadlines: deadlines.to_vec(),
        cells,
    })
}

/// Live telemetry for the work-stealing sweep scheduler: a sharded
/// [`Registry`] that workers update as they claim and finish cells.
/// Attach one via [`sweep_parallel_live`]; scrape it with
/// `metrics::MetricsServer` or poll [`SweepProgress::completed`] for a
/// progress line. Publishing is pure counting on the side of each
/// cell's solve, so instrumented sweeps stay bit-identical to plain
/// ones.
#[derive(Debug)]
pub struct SweepProgress {
    registry: Arc<Registry>,
    cells_total: GaugeHandle,
    cells_completed: CounterHandle,
    cells_claimed: CounterHandle,
    steals: CounterHandle,
    busy_fraction: GaugeHandle,
}

impl SweepProgress {
    /// Progress tracker sharded over `workers` threads (use
    /// [`worker_threads`]).
    pub fn new(workers: usize) -> Self {
        let mut r = Registry::new(workers);
        let cells_total = r.gauge("rtsdf_sweep_cells_total", "total cells in the sweep grid");
        let cells_completed = r.counter("rtsdf_sweep_cells_completed", "cells finished so far");
        let cells_claimed = r.counter_full(
            "rtsdf_sweep_cells_claimed",
            "cells claimed from the shared cursor, per worker",
            &[],
            true,
        );
        let steals = r.counter_full(
            "rtsdf_sweep_steals",
            "cursor claims (steals) performed, per worker",
            &[],
            true,
        );
        let busy_fraction = r.gauge_full(
            "rtsdf_sweep_worker_busy_fraction",
            "fraction of wall-clock time spent solving cells, per worker",
            &[],
            true,
        );
        SweepProgress {
            registry: Arc::new(r),
            cells_total,
            cells_completed,
            cells_claimed,
            steals,
            busy_fraction,
        }
    }

    /// The underlying registry, for serving `/metrics` or snapshots.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Record the grid size (idempotent; called by the sweep entry).
    pub fn set_total(&self, total: usize) {
        self.registry.gauge_set(self.cells_total, 0, total as f64);
    }

    /// Total cells, as last recorded by [`set_total`](Self::set_total).
    pub fn total(&self) -> u64 {
        self.registry.gauge_value(self.cells_total) as u64
    }

    /// Cells finished so far, summed across workers.
    pub fn completed(&self) -> u64 {
        self.registry.counter_value(self.cells_completed)
    }

    fn on_claim(&self, worker: usize, cells: u64) {
        self.registry.inc(self.steals, worker, 1);
        self.registry.inc(self.cells_claimed, worker, cells);
    }

    fn on_cell_done(&self, worker: usize, busy: Duration, elapsed: Duration) {
        self.registry.inc(self.cells_completed, worker, 1);
        let wall = elapsed.as_secs_f64();
        if wall > 0.0 {
            self.registry
                .gauge_set(self.busy_fraction, worker, busy.as_secs_f64() / wall);
        }
    }
}

/// Run `f` over `0..total` with `threads` workers pulling indices from a
/// shared atomic cursor (cell-level work stealing). Results come back in
/// index order. Unlike static chunking, a worker that drains its cheap
/// items immediately steals from the expensive tail, so imbalanced
/// workloads no longer serialize behind one thread.
///
/// With `live` attached, each claim and cell completion is published
/// into the progress registry; the uninstrumented path stays
/// allocation- and timing-free — each hook is one untaken branch on the
/// `Option`.
fn work_steal_live<T: Send>(
    total: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
    live: Option<&SweepProgress>,
) -> Vec<T> {
    let threads = threads.min(total.max(1));
    let cursor = AtomicUsize::new(0);
    // Each cursor bump claims a run of `chunk` indices instead of one:
    // on large grids (64×64 = 4096 cells) this divides the contended
    // read-modify-write traffic by the chunk factor, while ~8 claims
    // per worker still leaves enough grains to balance an expensive
    // tail across the pool.
    let chunk = (total / (threads * 8)).max(1);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move || {
                // Workers buffer (index, result) pairs locally; the crate
                // forbids unsafe code, so disjoint slot writes are merged
                // single-threaded after the join instead.
                let mut local = Vec::new();
                let started = Instant::now();
                let mut busy = Duration::ZERO;
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let stop = (start + chunk).min(total);
                    if let Some(p) = live {
                        p.on_claim(worker, (stop - start) as u64);
                    }
                    for idx in start..stop {
                        if let Some(p) = live {
                            let cell_start = Instant::now();
                            local.push((idx, f(idx)));
                            busy += cell_start.elapsed();
                            p.on_cell_done(worker, busy, started.elapsed());
                        } else {
                            local.push((idx, f(idx)));
                        }
                    }
                }
                local
            }));
        }
        for handle in handles {
            for (idx, value) in handle.join().expect("sweep worker panicked") {
                slots[idx] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("cursor covered every index"))
        .collect()
}

/// [`sweep`], parallelized with a cell-level work-stealing scheduler
/// (shared atomic cursor over the flattened grid, scoped threads).
/// Produces bit-identical results to [`sweep`] — cells are independent
/// and each cell's solve does not depend on scheduling order. The
/// worker count honors `RTSDF_THREADS` (see [`crate::threads`]).
pub fn sweep_parallel(
    pipeline: &PipelineSpec,
    tau0s: &[f64],
    deadlines: &[f64],
    config: &SweepConfig,
) -> Result<SweepResult, ScheduleError> {
    sweep_parallel_with(pipeline, tau0s, deadlines, config, &SweepOptions::default())
}

/// [`sweep_parallel`] with explicit [`SweepOptions`]. The warm variant
/// runs two work-stealing phases — row anchors first, then all remaining
/// cells seeded from their row's anchor — and stays bit-identical to
/// [`sweep_with`] under the same options, because each cell's input
/// (operating point + anchor hint) is independent of scheduling order.
pub fn sweep_parallel_with(
    pipeline: &PipelineSpec,
    tau0s: &[f64],
    deadlines: &[f64],
    config: &SweepConfig,
    opts: &SweepOptions,
) -> Result<SweepResult, ScheduleError> {
    sweep_parallel_live(pipeline, tau0s, deadlines, config, opts, None)
}

/// [`sweep_parallel_with`] plus optional live telemetry: when
/// `progress` is attached, workers publish per-cell claim, steal,
/// completion, and busy-fraction metrics into its registry as the sweep
/// runs. Results remain bit-identical to the uninstrumented sweep —
/// publishing happens outside each cell's solve.
pub fn sweep_parallel_live(
    pipeline: &PipelineSpec,
    tau0s: &[f64],
    deadlines: &[f64],
    config: &SweepConfig,
    opts: &SweepOptions,
    progress: Option<&SweepProgress>,
) -> Result<SweepResult, ScheduleError> {
    validate_grid(tau0s, deadlines)?;
    let rows = tau0s.len();
    let cols = deadlines.len();
    let total = rows * cols;
    let threads = worker_threads();
    let result = |cells| SweepResult {
        tau0s: tau0s.to_vec(),
        deadlines: deadlines.to_vec(),
        cells,
    };
    if total == 0 {
        return Ok(result(Vec::new()));
    }
    if let Some(p) = progress {
        p.set_total(total);
    }
    if opts.warm_graph {
        return Ok(result(sweep_graph_cells(
            pipeline, tau0s, deadlines, config, threads, progress,
        )));
    }
    if !opts.warm_start {
        let cells = work_steal_live(
            total,
            threads,
            |idx| {
                let (i, j) = (idx / cols, idx % cols);
                let params = RtParams::new(tau0s[i], deadlines[j]).expect("grid validated above");
                compare_at(pipeline, params, config)
            },
            progress,
        );
        return Ok(result(cells));
    }
    // Phase 1: one cold anchor per row (the largest deadline).
    let anchors = work_steal_live(
        rows,
        threads,
        |i| {
            let params =
                RtParams::new(tau0s[i], deadlines[cols - 1]).expect("grid validated above");
            compare_at_full(pipeline, params, config, None)
        },
        progress,
    );
    // Phase 2: every remaining cell, warmed from its row's anchor.
    let rest = work_steal_live(
        rows * (cols - 1),
        threads,
        |idx| {
            let (i, j) = (idx / (cols - 1), idx % (cols - 1));
            let params = RtParams::new(tau0s[i], deadlines[j]).expect("grid validated above");
            let hint = anchors[i].1.as_ref();
            let mut cell = compare_at_full(pipeline, params, config, hint).0;
            if hint.is_some() {
                cell.warm_seed = Some(SeedEdge {
                    row: i as u64,
                    col: (cols - 1) as u64,
                });
            }
            cell
        },
        progress,
    );
    let mut cells = Vec::with_capacity(total);
    let mut rest = rest.into_iter();
    for (anchor_cell, _) in anchors {
        for _ in 0..cols - 1 {
            cells.push(rest.next().expect("phase-2 covered every cell"));
        }
        cells.push(anchor_cell);
    }
    Ok(result(cells))
}

/// Pick the warm-start parent of grid cell `(i, j)` from its two
/// anti-diagonal predecessors — `(i−1, j)` (previous τ0 row, same
/// deadline) and `(i, j+1)` (same row, next larger deadline): whichever
/// enforced solve *converged best* (fewest total iterations), breaking
/// ties toward the same-row neighbor whose operating point differs only
/// in deadline. Predecessors whose enforced solve failed are skipped;
/// `None` means solve cold. Both predecessors live on wave
/// `i + (cols−1−j) − 1`, so by the time a wave starts every candidate
/// parent is final — the choice is a pure function of grid contents,
/// never of scheduling order.
fn graph_parent(i: usize, j: usize, cols: usize, iters: &[Option<u64>]) -> Option<(usize, usize)> {
    let converged = |cand: Option<(usize, usize)>| {
        cand.and_then(|(pi, pj)| iters[pi * cols + pj].map(|n| (n, (pi, pj))))
    };
    let right = converged((j + 1 < cols).then(|| (i, j + 1)));
    let up = converged((i > 0).then(|| (i - 1, j)));
    match (right, up) {
        (Some((rn, rc)), Some((un, uc))) => Some(if un < rn { uc } else { rc }),
        (Some((_, c)), None) | (None, Some((_, c))) => Some(c),
        (None, None) => None,
    }
}

/// Sweep the grid as a cross-cell warm-start *graph*: anti-diagonal
/// waves expand from a single cold anchor at `(row 0, largest
/// deadline)` — the most-slack operating point — and every later cell
/// is seeded from its best-converged neighbor via [`graph_parent`].
/// Cells within a wave are independent (their parents are all in the
/// completed previous wave), so each wave runs under the work-stealing
/// scheduler with a barrier between waves; results are bit-identical
/// for any `threads`, and the chosen seed edge is recorded on each
/// [`CellResult`] for audit.
fn sweep_graph_cells(
    pipeline: &PipelineSpec,
    tau0s: &[f64],
    deadlines: &[f64],
    config: &SweepConfig,
    threads: usize,
    progress: Option<&SweepProgress>,
) -> Vec<CellResult> {
    let rows = tau0s.len();
    let cols = deadlines.len();
    if rows == 0 || cols == 0 {
        return Vec::new();
    }
    let total = rows * cols;
    let mut cells: Vec<Option<CellResult>> = vec![None; total];
    let mut hints: Vec<Option<WarmStart>> = Vec::with_capacity(total);
    hints.resize_with(total, || None);
    let mut iters: Vec<Option<u64>> = vec![None; total];
    for wave in 0..rows + cols - 1 {
        // Cells with i + (cols−1−j) == wave, in ascending-row order.
        let wave_cells: Vec<(usize, usize)> = (0..rows)
            .filter_map(|i| {
                let off = wave.checked_sub(i)?;
                (off < cols).then(|| (i, cols - 1 - off))
            })
            .collect();
        let solved = work_steal_live(
            wave_cells.len(),
            threads,
            |k| {
                let (i, j) = wave_cells[k];
                let params = RtParams::new(tau0s[i], deadlines[j]).expect("grid validated above");
                let parent = graph_parent(i, j, cols, &iters);
                let hint = parent.and_then(|(pi, pj)| hints[pi * cols + pj].as_ref());
                let (mut cell, hint_out) = compare_at_full(pipeline, params, config, hint);
                if hint.is_some() {
                    cell.warm_seed = parent.map(|(pi, pj)| SeedEdge {
                        row: pi as u64,
                        col: pj as u64,
                    });
                }
                (cell, hint_out)
            },
            progress,
        );
        for (&(i, j), (cell, hint)) in wave_cells.iter().zip(solved) {
            let idx = i * cols + j;
            iters[idx] = cell.enforced_telemetry.as_ref().map(|t| t.iterations);
            cells[idx] = Some(cell);
            hints[idx] = hint;
        }
    }
    cells
        .into_iter()
        .map(|c| c.expect("waves covered every cell"))
        .collect()
}

/// Optimize both strategies at one operating point on a DAG topology.
/// Chain topologies delegate to the chain solvers inside
/// [`EnforcedDagProblem`] and [`MonolithicDagProblem`], so sweeping a
/// [`Topology::chain`] is bit-identical to [`compare_at`] under cold
/// solves.
pub fn compare_at_topology(
    topology: &Topology,
    params: RtParams,
    config: &SweepConfig,
) -> CellResult {
    let enforced = EnforcedDagProblem::new(topology, params, config.enforced_b.clone())
        .solve()
        .ok();
    let monolithic =
        MonolithicDagProblem::new(topology, params, config.monolithic_b, config.monolithic_s)
            .solve_fast()
            .ok();
    CellResult {
        tau0: params.tau0,
        deadline: params.deadline,
        enforced: enforced.as_ref().map(|s| s.active_fraction),
        monolithic: monolithic.as_ref().map(|s| s.active_fraction),
        enforced_telemetry: enforced.and_then(|s| s.telemetry),
        monolithic_telemetry: monolithic.and_then(|s| s.telemetry),
        warm_seed: None,
    }
}

/// [`sweep_parallel_live`] generalized to DAG topologies: both
/// strategies' DAG design problems solved cold at every grid cell, with
/// the same work-stealing scheduler and optional live telemetry.
pub fn sweep_topology_parallel_live(
    topology: &Topology,
    tau0s: &[f64],
    deadlines: &[f64],
    config: &SweepConfig,
    progress: Option<&SweepProgress>,
) -> Result<SweepResult, ScheduleError> {
    validate_grid(tau0s, deadlines)?;
    let cols = deadlines.len();
    let total = tau0s.len() * cols;
    if let Some(p) = progress {
        p.set_total(total);
    }
    let cells = work_steal_live(
        total,
        worker_threads(),
        |idx| {
            let (i, j) = (idx / cols, idx % cols);
            let params = RtParams::new(tau0s[i], deadlines[j]).expect("grid validated above");
            compare_at_topology(topology, params, config)
        },
        progress,
    );
    Ok(SweepResult {
        tau0s: tau0s.to_vec(),
        deadlines: deadlines.to_vec(),
        cells,
    })
}

/// The previous static scheduler: τ0 rows divided into contiguous
/// chunks, one scoped thread per chunk. Kept as the comparison baseline
/// for the `sweep_hot_path` bench — imbalanced grids serialize their
/// expensive rows behind single threads here, which is exactly what
/// [`sweep_parallel`]'s work stealing fixes.
pub fn sweep_parallel_chunked(
    pipeline: &PipelineSpec,
    tau0s: &[f64],
    deadlines: &[f64],
    config: &SweepConfig,
) -> Result<SweepResult, ScheduleError> {
    validate_grid(tau0s, deadlines)?;
    let threads = worker_threads();
    let mut rows: Vec<Option<Vec<CellResult>>> = vec![None; tau0s.len()];
    std::thread::scope(|scope| {
        let chunk = tau0s.len().div_ceil(threads).max(1);
        for (tau0_chunk, row_chunk) in tau0s.chunks(chunk).zip(rows.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (&tau0, slot) in tau0_chunk.iter().zip(row_chunk.iter_mut()) {
                    let row: Vec<CellResult> = deadlines
                        .iter()
                        .map(|&d| {
                            let params = RtParams::new(tau0, d).expect("grid validated above");
                            compare_at(pipeline, params, config)
                        })
                        .collect();
                    *slot = Some(row);
                }
            });
        }
    });
    Ok(SweepResult {
        tau0s: tau0s.to_vec(),
        deadlines: deadlines.to_vec(),
        cells: rows
            .into_iter()
            .flat_map(|r| r.expect("all rows computed"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_covers_grid() {
        let p = blast();
        let tau0s = [5.0, 20.0, 80.0];
        let ds = [5e4, 1.5e5, 3e5];
        let r = sweep(&p, &tau0s, &ds, &SweepConfig::paper_blast()).unwrap();
        assert_eq!(r.cells.len(), 9);
        assert_eq!(r.cell(1, 2).tau0, 20.0);
        assert_eq!(r.cell(1, 2).deadline, 3e5);
    }

    #[test]
    fn fast_arrivals_large_slack_favour_enforced() {
        // Paper Fig. 4: the fastest arrivals that both strategies can
        // sustain, plus lots of deadline slack, is enforced-waits
        // territory by a wide margin. (The monolithic stability limit
        // for this pipeline is τ0 ≈ Σ G_i·t_i / v ≈ 7.9 cycles.)
        let p = blast();
        let params = RtParams::new(10.0, 3.5e5).unwrap();
        let cell = compare_at(&p, params, &SweepConfig::paper_blast());
        let diff = cell.difference().expect("both feasible");
        assert!(
            diff > 0.4,
            "expected strong enforced advantage, got {diff} ({cell:?})"
        );
    }

    #[test]
    fn below_monolithic_stability_limit_only_enforced_is_feasible() {
        // For τ0 below ~7.9 the monolithic strategy cannot keep up at
        // any block size, while enforced waits still schedules down to
        // τ0 ≈ 2.83 (the head-stability limit x̂_0/v).
        let p = blast();
        let params = RtParams::new(4.0, 3.5e5).unwrap();
        let cell = compare_at(&p, params, &SweepConfig::paper_blast());
        assert!(
            cell.enforced.is_some() && cell.monolithic.is_none(),
            "{cell:?}"
        );
    }

    #[test]
    fn slow_arrivals_tight_deadline_favour_monolithic() {
        // Paper Fig. 4: slow arrivals + minimal slack is monolithic
        // territory (here by more than 0.4 in absolute active fraction:
        // enforced is squeezed against its minimal periods while the
        // monolithic block still amortizes ~180 items per block).
        let p = blast();
        let params = RtParams::new(100.0, 2.4e4).unwrap();
        let cell = compare_at(&p, params, &SweepConfig::paper_blast());
        let diff = cell.difference().expect("both feasible");
        assert!(
            diff < -0.4,
            "expected monolithic win, got {diff} ({cell:?})"
        );
    }

    #[test]
    fn win_region_statistics() {
        let p = blast();
        let (tau0s, ds) = RtParams::paper_grid(10, 10);
        let r = sweep(&p, &tau0s, &ds, &SweepConfig::paper_blast()).unwrap();
        // Enforced waits should win over a large portion of the grid
        // (paper §6.3; measured ≈ 0.84 on this grid).
        let win = r.enforced_win_fraction();
        assert!(win > 0.6, "enforced win fraction {win}");
        // And its best-case advantage should be at least 0.4 in absolute
        // terms (paper §6.3; measured ≈ 0.455 on this grid).
        let adv = r.max_enforced_advantage().unwrap();
        assert!(adv >= 0.4, "max advantage {adv}");
        // The monolithic strategy must also have a win region.
        let mono = r.max_monolithic_advantage().unwrap();
        assert!(mono > 0.05, "max monolithic advantage {mono}");
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let p = blast();
        let (tau0s, ds) = RtParams::paper_grid(5, 5);
        let cfg = SweepConfig::paper_blast();
        let seq = sweep(&p, &tau0s, &ds, &cfg).unwrap();
        let par = sweep_parallel(&p, &tau0s, &ds, &cfg).unwrap();
        assert_eq!(seq.cells.len(), par.cells.len());
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(a.tau0, b.tau0);
            assert_eq!(a.deadline, b.deadline);
            assert_eq!(a.enforced, b.enforced);
            assert_eq!(a.monolithic, b.monolithic);
        }
    }

    #[test]
    fn live_sweep_is_bit_identical_and_counts_every_cell() {
        let p = blast();
        let (tau0s, ds) = RtParams::paper_grid(4, 4);
        let cfg = SweepConfig::paper_blast();
        for opts in [
            SweepOptions::default(),
            SweepOptions::warm(),
            SweepOptions::warm_graph(),
        ] {
            let plain = sweep_parallel_with(&p, &tau0s, &ds, &cfg, &opts).unwrap();
            let progress = SweepProgress::new(worker_threads());
            let live = sweep_parallel_live(&p, &tau0s, &ds, &cfg, &opts, Some(&progress)).unwrap();
            for (a, b) in plain.cells.iter().zip(&live.cells) {
                assert_eq!((a.tau0, a.deadline), (b.tau0, b.deadline));
                assert_eq!(a.enforced, b.enforced);
                assert_eq!(a.monolithic, b.monolithic);
            }
            // Every cell is claimed exactly once and completed exactly once.
            assert_eq!(progress.total(), 16);
            assert_eq!(progress.completed(), 16);
            let snap = progress.registry().snapshot();
            assert_eq!(snap.total("rtsdf_sweep_cells_claimed"), 16.0);
            assert!(snap.total("rtsdf_sweep_steals") >= 1.0);
            let busy = snap.family("rtsdf_sweep_worker_busy_fraction").unwrap();
            for sample in &busy.samples {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&sample.value),
                    "busy fraction {} out of range",
                    sample.value
                );
            }
        }
    }

    #[test]
    fn parallel_sweep_bit_identical_on_degenerate_shapes() {
        let p = blast();
        let cfg = SweepConfig::paper_blast();
        let shapes: [(&[f64], &[f64]); 4] = [
            (&[], &[]),
            (&[], &[5e4, 1e5]),
            (&[10.0], &[5e4, 1e5, 2e5]),         // 1×N
            (&[5.0, 10.0, 40.0, 100.0], &[1e5]), // N×1
        ];
        for (tau0s, ds) in shapes {
            let seq = sweep(&p, tau0s, ds, &cfg).unwrap();
            let par = sweep_parallel(&p, tau0s, ds, &cfg).unwrap();
            assert_eq!(seq.cells.len(), par.cells.len());
            for (a, b) in seq.cells.iter().zip(&par.cells) {
                assert_eq!((a.tau0, a.deadline), (b.tau0, b.deadline));
                assert_eq!(a.enforced, b.enforced);
                assert_eq!(a.monolithic, b.monolithic);
            }
        }
    }

    #[test]
    fn chunked_scheduler_matches_work_stealing() {
        let p = blast();
        let (tau0s, ds) = RtParams::paper_grid(4, 4);
        let cfg = SweepConfig::paper_blast();
        let ws = sweep_parallel(&p, &tau0s, &ds, &cfg).unwrap();
        let chunked = sweep_parallel_chunked(&p, &tau0s, &ds, &cfg).unwrap();
        for (a, b) in ws.cells.iter().zip(&chunked.cells) {
            assert_eq!(a.enforced, b.enforced);
            assert_eq!(a.monolithic, b.monolithic);
        }
    }

    #[test]
    fn warm_sweep_parallel_bit_identical_to_warm_sequential() {
        let p = blast();
        let (tau0s, ds) = RtParams::paper_grid(5, 5);
        let cfg = SweepConfig::paper_blast();
        let opts = SweepOptions::warm();
        let seq = sweep_with(&p, &tau0s, &ds, &cfg, &opts).unwrap();
        let par = sweep_parallel_with(&p, &tau0s, &ds, &cfg, &opts).unwrap();
        assert_eq!(seq.cells.len(), par.cells.len());
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!((a.tau0, a.deadline), (b.tau0, b.deadline));
            assert_eq!(a.enforced, b.enforced);
            assert_eq!(a.monolithic, b.monolithic);
        }
    }

    #[test]
    fn warm_sweep_matches_cold_within_tolerance_and_saves_iterations() {
        let p = blast();
        let (tau0s, ds) = RtParams::paper_grid(5, 5);
        let cfg = SweepConfig::paper_blast();
        let cold = sweep(&p, &tau0s, &ds, &cfg).unwrap();
        let warm = sweep_with(&p, &tau0s, &ds, &cfg, &SweepOptions::warm()).unwrap();
        let mut cold_iters = 0u64;
        let mut warm_iters = 0u64;
        for (a, b) in cold.cells.iter().zip(&warm.cells) {
            assert_eq!(a.enforced.is_some(), b.enforced.is_some(), "{a:?} vs {b:?}");
            if let (Some(c), Some(w)) = (a.enforced, b.enforced) {
                assert!((c - w).abs() < 1e-5, "cold {c} vs warm {w}");
            }
            // Monolithic solves are untouched by warm-starting.
            assert_eq!(a.monolithic, b.monolithic);
            if let (Some(ct), Some(wt)) = (&a.enforced_telemetry, &b.enforced_telemetry) {
                cold_iters += ct.iterations;
                warm_iters += wt.iterations;
            }
        }
        assert!(
            warm_iters < cold_iters,
            "warm sweep iterations {warm_iters} should beat cold {cold_iters}"
        );
        // Anchors (last column) run cold; other feasible cells are warm.
        let cols = ds.len();
        for (k, cell) in warm.cells.iter().enumerate() {
            if let Some(t) = &cell.enforced_telemetry {
                let is_anchor = k % cols == cols - 1;
                assert_eq!(t.warm_start, !is_anchor, "cell {k}: {t:?}");
            }
        }
    }

    #[test]
    fn graph_sweep_parallel_bit_identical_to_sequential() {
        let p = blast();
        let (tau0s, ds) = RtParams::paper_grid(5, 5);
        let cfg = SweepConfig::paper_blast();
        let opts = SweepOptions::warm_graph();
        let seq = sweep_with(&p, &tau0s, &ds, &cfg, &opts).unwrap();
        let par = sweep_parallel_with(&p, &tau0s, &ds, &cfg, &opts).unwrap();
        assert_eq!(seq.cells.len(), par.cells.len());
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!((a.tau0, a.deadline), (b.tau0, b.deadline));
            assert_eq!(a.enforced, b.enforced);
            assert_eq!(a.monolithic, b.monolithic);
            assert_eq!(a.warm_seed, b.warm_seed, "seed edges must be deterministic");
        }
    }

    #[test]
    fn graph_sweep_matches_cold_within_tolerance_and_records_seed_edges() {
        let p = blast();
        let (tau0s, ds) = RtParams::paper_grid(5, 5);
        let cfg = SweepConfig::paper_blast();
        let cold = sweep(&p, &tau0s, &ds, &cfg).unwrap();
        let graph = sweep_with(&p, &tau0s, &ds, &cfg, &SweepOptions::warm_graph()).unwrap();
        let cols = ds.len();
        for (k, (a, b)) in cold.cells.iter().zip(&graph.cells).enumerate() {
            let (i, j) = (k / cols, k % cols);
            assert_eq!(a.enforced.is_some(), b.enforced.is_some(), "{a:?} vs {b:?}");
            if let (Some(c), Some(w)) = (a.enforced, b.enforced) {
                assert!((c - w).abs() < 1e-5, "cell {k}: cold {c} vs graph {w}");
            }
            assert_eq!(a.monolithic, b.monolithic);
            // The single anchor (row 0, largest deadline) runs cold;
            // every recorded seed edge points to an adjacent
            // predecessor from the previous anti-diagonal wave.
            if (i, j) == (0, cols - 1) {
                assert!(b.warm_seed.is_none(), "anchor must run cold: {b:?}");
            }
            if let Some(edge) = b.warm_seed {
                let (pi, pj) = (edge.row as usize, edge.col as usize);
                assert!(
                    (pi == i && pj == j + 1) || (pi + 1 == i && pj == j),
                    "cell ({i},{j}) seeded from non-neighbor ({pi},{pj})"
                );
            }
            if let Some(t) = &b.enforced_telemetry {
                assert_eq!(t.warm_start, b.warm_seed.is_some(), "cell {k}: {t:?}");
            }
        }
    }

    #[test]
    fn graph_warm_start_beats_row_chaining_on_fig3_grid() {
        // The acceptance criterion for cross-cell seeding: on the
        // fig3-style grid, nearest-neighbor graph seeds (one grid step
        // away, single cold anchor) must spend fewer total enforced
        // interior iterations than row-anchor chaining (hints up to
        // cols−1 steps away, one cold anchor per row).
        let p = blast();
        let (tau0s, ds) = RtParams::paper_grid(8, 8);
        let cfg = SweepConfig::paper_blast();
        let row = sweep_with(&p, &tau0s, &ds, &cfg, &SweepOptions::warm()).unwrap();
        let graph = sweep_with(&p, &tau0s, &ds, &cfg, &SweepOptions::warm_graph()).unwrap();
        let iters = |r: &SweepResult| {
            r.cells
                .iter()
                .filter_map(|c| c.enforced_telemetry.as_ref())
                .map(|t| t.iterations)
                .sum::<u64>()
        };
        let (row_iters, graph_iters) = (iters(&row), iters(&graph));
        assert!(
            graph_iters < row_iters,
            "graph sweep iterations {graph_iters} should beat row chaining {row_iters}"
        );
    }

    #[test]
    fn difference_requires_both_feasible() {
        let c = CellResult {
            tau0: 1.0,
            deadline: 1.0,
            enforced: Some(0.5),
            monolithic: None,
            enforced_telemetry: None,
            monolithic_telemetry: None,
            warm_seed: None,
        };
        assert!(c.difference().is_none());
    }

    #[test]
    fn malformed_grid_is_an_error_not_a_panic() {
        let p = blast();
        let cfg = SweepConfig::paper_blast();
        for bad in [
            sweep(&p, &[10.0, 0.0], &[1e5], &cfg),
            sweep(&p, &[10.0], &[-3.0], &cfg),
            sweep_parallel(&p, &[f64::NAN], &[1e5], &cfg),
        ] {
            match bad {
                Err(ScheduleError::InvalidParams(_)) => {}
                other => panic!("expected InvalidParams, got {other:?}"),
            }
        }
    }

    #[test]
    fn feasible_cells_carry_solver_telemetry() {
        let p = blast();
        let params = RtParams::new(10.0, 3.5e5).unwrap();
        let cell = compare_at(&p, params, &SweepConfig::paper_blast());
        let et = cell.enforced_telemetry.expect("enforced telemetry");
        assert!(et.iterations > 0, "{et:?}");
        assert!(et.wall_micros >= 0.0);
        let mt = cell.monolithic_telemetry.expect("monolithic telemetry");
        assert!(mt.iterations > 0, "{mt:?}");
        assert_eq!(mt.method, "unimodal");
    }

    #[test]
    fn infeasible_cells_recorded_as_none() {
        let p = blast();
        // τ0 = 1 is infeasible for monolithic (stability) — the paper's
        // fastest arrival rate is near the feasibility edge.
        let params = RtParams::new(1.0, 3.5e5).unwrap();
        let cell = compare_at(&p, params, &SweepConfig::paper_blast());
        assert!(cell.monolithic.is_none());
    }

    #[test]
    fn topology_sweep_on_chain_matches_chain_sweep() {
        let p = blast();
        let t = Topology::chain(&p);
        let cfg = SweepConfig::paper_blast();
        let (tau0s, ds) = RtParams::paper_grid(3, 3);
        let chain = sweep(&p, &tau0s, &ds, &cfg).unwrap();
        let dag = sweep_topology_parallel_live(&t, &tau0s, &ds, &cfg, None).unwrap();
        assert_eq!(chain.cells.len(), dag.cells.len());
        for (c, d) in chain.cells.iter().zip(&dag.cells) {
            assert_eq!(c.enforced, d.enforced, "tau0={} D={}", c.tau0, c.deadline);
            assert_eq!(c.monolithic, d.monolithic);
        }
    }
}
