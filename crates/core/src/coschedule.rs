//! Co-scheduling several real-time pipelines on one SIMD device.
//!
//! The paper motivates minimizing a pipeline's active fraction with
//! system-level sharing: "A lower active fraction implies that the
//! application yields more of its available processor time, which
//! could be used, e.g., to support other applications running on the
//! same system" (§2.3), and its related work (TimeGraph, GPUSync) is
//! exactly about dividing a GPU among competing tasks. This module
//! operationalizes that: given several pipelines with their own arrival
//! rates and deadlines, decide whether they *all* fit on one device and
//! produce their schedules.
//!
//! The composition rule falls out of the flexible-shares analysis
//! ([`crate::flexible`]): each pipeline's schedule needs processor
//! utilization `u_j = Σ_i c_i/x_i`, shares are fungible, so the set is
//! admissible iff `Σ_j u_j ≤ 1` where each `u_j` is that pipeline's
//! *minimum* utilization at its operating point. Because each pipeline's
//! minimum is computed independently, admission is a simple sum test —
//! the schedulability analogue of utilization-based admission control in
//! classic real-time systems.

use crate::flexible::{FlexibleSchedule, FlexibleSharesProblem};
use crate::schedule::ScheduleError;
use dataflow_model::{PipelineSpec, RtParams};
use serde::{Deserialize, Serialize};

/// One pipeline's co-scheduling request.
#[derive(Debug, Clone)]
pub struct Workload<'a> {
    /// The pipeline.
    pub pipeline: &'a PipelineSpec,
    /// Its operating point.
    pub params: RtParams,
    /// Its backlog factors.
    pub b: Vec<f64>,
}

/// The outcome for one admitted workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmittedWorkload {
    /// Index into the request list.
    pub index: usize,
    /// The flexible-share schedule to run it with.
    pub schedule: FlexibleSchedule,
}

/// A co-scheduling decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoSchedule {
    /// Per-workload schedules, in request order.
    pub workloads: Vec<AdmittedWorkload>,
    /// Total device utilization `Σ_j u_j` (≤ 1 iff admitted).
    pub total_utilization: f64,
    /// Spare capacity `1 − total_utilization`.
    pub spare: f64,
}

/// Why a workload set was rejected.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AdmissionError {
    /// An individual workload cannot be scheduled even alone.
    WorkloadInfeasible {
        /// Which workload.
        index: usize,
        /// Its scheduling error.
        reason: String,
    },
    /// All workloads are individually feasible but together need more
    /// than the whole device.
    Overcommitted {
        /// The total minimum utilization required.
        required: f64,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::WorkloadInfeasible { index, reason } => {
                write!(f, "workload {index} infeasible: {reason}")
            }
            AdmissionError::Overcommitted { required } => {
                write!(f, "set overcommitted: needs {required:.3} of the device")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Admit a set of workloads onto one device, or explain why not.
///
/// Each workload gets its minimum-utilization flexible-share schedule;
/// the set is admitted iff the utilizations sum to at most 1.
pub fn admit(workloads: &[Workload<'_>]) -> Result<CoSchedule, AdmissionError> {
    let mut admitted = Vec::with_capacity(workloads.len());
    let mut total = 0.0;
    for (index, w) in workloads.iter().enumerate() {
        let schedule = FlexibleSharesProblem::new(w.pipeline, w.params, w.b.clone())
            .solve()
            .map_err(|e: ScheduleError| AdmissionError::WorkloadInfeasible {
                index,
                reason: e.to_string(),
            })?;
        total += schedule.utilization;
        admitted.push(AdmittedWorkload { index, schedule });
    }
    if total > 1.0 + 1e-9 {
        return Err(AdmissionError::Overcommitted { required: total });
    }
    Ok(CoSchedule {
        workloads: admitted,
        total_utilization: total,
        spare: (1.0 - total).max(0.0),
    })
}

/// Admission control: the largest number of identical replicas of
/// `workload` that fit on one device.
pub fn max_replicas(workload: &Workload<'_>) -> Result<usize, AdmissionError> {
    let single = FlexibleSharesProblem::new(workload.pipeline, workload.params, workload.b.clone())
        .solve()
        .map_err(|e| AdmissionError::WorkloadInfeasible {
            index: 0,
            reason: e.to_string(),
        })?;
    if single.utilization <= 0.0 {
        return Ok(usize::MAX);
    }
    Ok((1.0 / single.utilization).floor() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    fn workload(p: &PipelineSpec, tau0: f64, d: f64) -> Workload<'_> {
        Workload {
            pipeline: p,
            params: RtParams::new(tau0, d).unwrap(),
            b: vec![1.0, 3.0, 9.0, 6.0],
        }
    }

    #[test]
    fn two_relaxed_pipelines_fit() {
        let p = blast();
        let ws = [workload(&p, 30.0, 2e5), workload(&p, 50.0, 3e5)];
        let cs = admit(&ws).unwrap();
        assert_eq!(cs.workloads.len(), 2);
        assert!(cs.total_utilization <= 1.0);
        assert!(cs.spare >= 0.0);
        // Utilizations add.
        let sum: f64 = cs.workloads.iter().map(|w| w.schedule.utilization).sum();
        assert!((sum - cs.total_utilization).abs() < 1e-12);
    }

    #[test]
    fn overcommitment_is_detected() {
        let p = blast();
        // Each of these needs a large chunk of the device.
        let ws = [workload(&p, 10.0, 2.5e4), workload(&p, 10.0, 2.5e4)];
        match admit(&ws) {
            Err(AdmissionError::Overcommitted { required }) => {
                assert!(required > 1.0, "{required}");
            }
            other => panic!("expected overcommit, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_workload_is_identified_by_index() {
        let p = blast();
        let ws = [workload(&p, 30.0, 2e5), workload(&p, 10.0, 1000.0)];
        match admit(&ws) {
            Err(AdmissionError::WorkloadInfeasible { index, .. }) => assert_eq!(index, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn replica_count_matches_manual_admission() {
        let p = blast();
        let w = workload(&p, 30.0, 2e5);
        let n = max_replicas(&w).unwrap();
        assert!(n >= 1, "at least one replica must fit");
        // n replicas fit...
        let ws: Vec<Workload<'_>> = (0..n).map(|_| w.clone()).collect();
        assert!(admit(&ws).is_ok(), "{n} replicas should fit");
        // ...but n+1 do not.
        let ws: Vec<Workload<'_>> = (0..n + 1).map(|_| w.clone()).collect();
        assert!(matches!(
            admit(&ws),
            Err(AdmissionError::Overcommitted { .. })
        ));
    }

    #[test]
    fn lower_active_fraction_admits_more_replicas() {
        // The paper's §2.3 motivation made concrete: a longer deadline
        // lowers utilization, which admits more co-resident replicas.
        let p = blast();
        let tight = max_replicas(&workload(&p, 30.0, 3e4)).unwrap();
        let loose = max_replicas(&workload(&p, 30.0, 3e5)).unwrap();
        assert!(
            loose > tight,
            "deadline slack should buy co-residency: tight {tight}, loose {loose}"
        );
    }

    #[test]
    fn error_display() {
        let e = AdmissionError::Overcommitted { required: 1.5 };
        assert!(e.to_string().contains("overcommitted"));
        let e = AdmissionError::WorkloadInfeasible {
            index: 3,
            reason: "x".into(),
        };
        assert!(e.to_string().contains("workload 3"));
    }
}
