//! Enforced-waits design on DAG topologies.
//!
//! Generalizes [`crate::feasibility`] and [`crate::enforced`] from the
//! paper's linear chain to a [`Topology`]. The working coordinates are
//! the scaled periods `z_i = G_i·x_i`, where `G_i` is node `i`'s mean
//! inflow per stream input ([`Topology::total_gains`]): per-edge
//! stability becomes the order constraint `z_dst ≤ z_src` along every
//! edge, the head bound becomes `z_source ≤ v·τ0`, and the objective
//! stays separable, `(1/N) Σ a_i/z_i` with `a_i = t_i·G_i`.
//!
//! On a chain the edge order constraints reduce exactly to the paper's
//! `g_{i-1}·x_i ≤ x_{i-1}`, and every entry point below detects chains
//! ([`Topology::as_chain`]) and delegates to the chain implementations,
//! so chain topologies reproduce [`EnforcedWaitsProblem`] bit-for-bit —
//! the KKT coupling structure stays sparse either way (couplings follow
//! edges, not positions). At a fan-in the per-edge form is *sufficient*
//! but conservative: it requires the consumer to keep up with each
//! producer's scaled rate individually, which implies (and slightly
//! over-provisions) the aggregate-rate requirement `x_i ≤ v·τ0/G_i`.

use crate::enforced::{
    ActiveFractionObjective, EnforcedWaitsProblem, SolveMethod, WaitSchedule, WarmStart,
};
use crate::feasibility::{check_enforced_feasibility, minimal_periods, FeasibilityError};
use crate::kkt::{active_fraction_gradient, kkt_report, KktReport};
use crate::monolithic::{MonolithicProblem, MonolithicSchedule};
use crate::policy;
use crate::schedule::ScheduleError;
use crate::telemetry::{timed, SolveTelemetry};
use dataflow_model::analysis::{
    topology_enforced_active_fraction, topology_monolithic_active_fraction,
    topology_monolithic_block_time, topology_monolithic_latency_bound, topology_monolithic_stable,
};
use dataflow_model::{RtParams, Topology};
use solver::convex::{find_interior_point_detailed, minimize, SolverOptions};
use solver::integer::{minimize_scan, minimize_unimodal};
use solver::linear::ConstraintSet;

/// The componentwise-minimal feasible firing periods on a DAG: a
/// reverse-topological sweep raising each producer's period floor so
/// every out-edge order constraint `G_dst·x_dst ≤ G_src·x_src` holds at
/// the floor. Every feasible period vector dominates this one. Chains
/// delegate to [`minimal_periods`].
pub fn topology_minimal_periods(topology: &Topology) -> Vec<f64> {
    if let Some(chain) = topology.as_chain() {
        return minimal_periods(&chain);
    }
    let g = topology.total_gains();
    let mut x = topology.service_times();
    for &i in topology.topo_order().iter().rev() {
        for &e in topology.out_edges(i) {
            let dst = topology.edge(e).dst;
            if g[i] > 0.0 && g[dst] > 0.0 {
                x[i] = x[i].max(g[dst] / g[i] * x[dst]);
            }
        }
    }
    x
}

/// Check whether the enforced-waits problem on a DAG has any feasible
/// point for this operating point and node-indexed backlog factors `b`.
/// Chains delegate to [`check_enforced_feasibility`].
pub fn check_topology_feasibility(
    topology: &Topology,
    params: &RtParams,
    b: &[f64],
) -> Result<(), FeasibilityError> {
    if let Some(chain) = topology.as_chain() {
        return check_enforced_feasibility(&chain, params, b);
    }
    if b.len() != topology.len() {
        return Err(FeasibilityError::BadBacklogFactors {
            reason: format!("expected {} factors, got {}", topology.len(), b.len()),
        });
    }
    if let Some(bad) = b.iter().find(|&&bi| bi <= 0.0 || !bi.is_finite()) {
        return Err(FeasibilityError::BadBacklogFactors {
            reason: format!("factor {bad} is not strictly positive and finite"),
        });
    }
    let xmin = topology_minimal_periods(topology);
    let source = topology.source();
    let max_head = topology.vector_width() as f64 * params.tau0;
    if xmin[source] > max_head {
        return Err(FeasibilityError::ArrivalRateTooHigh {
            min_head_period: xmin[source],
            max_head_period: max_head,
        });
    }
    let min_deadline: f64 = xmin.iter().zip(b).map(|(&x, &bi)| bi * x).sum();
    if min_deadline > params.deadline {
        return Err(FeasibilityError::DeadlineTooTight {
            min_deadline,
            deadline: params.deadline,
        });
    }
    Ok(())
}

/// The Fig.-1 design problem on a DAG topology.
#[derive(Debug, Clone)]
pub struct EnforcedDagProblem<'a> {
    topology: &'a Topology,
    params: RtParams,
    b: Vec<f64>,
}

impl<'a> EnforcedDagProblem<'a> {
    /// Construct the problem. `b` must hold one strictly positive
    /// backlog factor per node.
    pub fn new(topology: &'a Topology, params: RtParams, b: Vec<f64>) -> Self {
        EnforcedDagProblem {
            topology,
            params,
            b,
        }
    }

    /// Optimistic starting backlog factors: `b_i = max(1, ⌈Σ_e g_e·w_e⌉)`
    /// over node `i`'s out-edges. On a chain this is exactly the paper's
    /// `⌈g_i⌉` clamped to 1 ([`EnforcedWaitsProblem::optimistic_backlog`]).
    pub fn optimistic_backlog(topology: &Topology) -> Vec<f64> {
        (0..topology.len())
            .map(|i| {
                let out: f64 = topology
                    .out_edges(i)
                    .iter()
                    .map(|&e| topology.edge(e).mean_flow())
                    .sum();
                out.ceil().max(1.0)
            })
            .collect()
    }

    /// The topology being scheduled.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The operating point.
    pub fn params(&self) -> &RtParams {
        &self.params
    }

    /// The backlog factors.
    pub fn backlog_factors(&self) -> &[f64] {
        &self.b
    }

    /// Solve for the optimal waits. Chains delegate to
    /// [`EnforcedWaitsProblem::solve_with_fallback`] (bit-exact); general
    /// DAGs run a λ-bisection over the scaled-period water-filling
    /// relaxation with an order-respecting projection (see module docs).
    pub fn solve(&self) -> Result<WaitSchedule, ScheduleError> {
        self.solve_inner(None)
    }

    /// [`EnforcedDagProblem::solve`] seeded from a nearby solution's
    /// periods: the deadline-price bracket opens around the KKT estimate
    /// at the warm point instead of sweeping from zero.
    pub fn solve_warm(&self, warm: &WarmStart) -> Result<WaitSchedule, ScheduleError> {
        self.solve_inner(Some(warm))
    }

    fn solve_inner(&self, warm: Option<&WarmStart>) -> Result<WaitSchedule, ScheduleError> {
        if let Some(chain) = self.topology.as_chain() {
            let problem = EnforcedWaitsProblem::new(&chain, self.params, self.b.clone());
            return match warm {
                None => problem.solve_with_fallback(),
                Some(w) => problem.solve_with_fallback_warm(w),
            };
        }
        check_topology_feasibility(self.topology, &self.params, &self.b)?;
        let warm = warm.filter(|w| w.periods.len() == self.topology.len());
        let (result, micros) = timed(|| self.solve_dag_waterfilling(warm));
        let (periods, mut telemetry) = result?;
        telemetry.wall_micros = micros;
        let t = self.topology.service_times();
        let waits: Vec<f64> = periods
            .iter()
            .zip(&t)
            .map(|(&x, &ti)| (x - ti).max(0.0))
            .collect();
        let active_fraction = topology_enforced_active_fraction(self.topology, &periods);
        let latency_bound = periods.iter().zip(&self.b).map(|(&x, &bi)| bi * x).sum();
        Ok(WaitSchedule {
            waits,
            periods,
            active_fraction,
            backlog_factors: self.b.clone(),
            latency_bound,
            method: SolveMethod::WaterFilling,
            telemetry: Some(telemetry),
        })
    }

    /// Build the design program's linear inequality constraints over the
    /// period variables `x` (node-index order): the head bound
    /// `G_src·x_src ≤ v·τ0`, one order constraint
    /// `G_dst·x_dst − G_src·x_src ≤ 0` per edge, the deadline budget
    /// `Σ b_i·x_i ≤ D`, and the service-time lower bounds.
    pub fn constraint_set(&self) -> ConstraintSet {
        let topo = self.topology;
        let n = topo.len();
        let g = topo.total_gains();
        let t = topo.service_times();
        let v_tau0 = topo.vector_width() as f64 * self.params.tau0;
        let mut cs = ConstraintSet::new(n);
        let src = topo.source();
        let mut head = vec![0.0; n];
        head[src] = g[src];
        cs.push(head, v_tau0, "head rate: G_src*x_src <= v*tau0");
        for e in topo.edges() {
            let mut coeffs = vec![0.0; n];
            coeffs[e.dst] = g[e.dst];
            coeffs[e.src] = -g[e.src];
            cs.push(coeffs, 0.0, format!("edge {}->{} stability", e.src, e.dst));
        }
        cs.push(self.b.clone(), self.params.deadline, "deadline");
        for (i, &ti) in t.iter().enumerate() {
            cs.push_lower_bound(i, ti, format!("x{i} >= t{i}"));
        }
        cs
    }

    /// Bandwidth of the KKT system in node-index order: every edge
    /// constraint couples `x_src` and `x_dst`, so the profile width is
    /// the largest index distance an edge spans. Returns `None` — dense
    /// Newton steps — when the reordered profile is wide (an edge spans
    /// more than a quarter of the nodes), where the banded factorization
    /// stops paying for itself.
    pub fn kkt_bandwidth(&self) -> Option<usize> {
        let n = self.topology.len();
        let mut bw = 1usize;
        for e in self.topology.edges() {
            bw = bw.max(e.src.abs_diff(e.dst));
        }
        // Below paper-adjacent sizes the dense path runs regardless (the
        // solver's own size gate), so report any valid profile; at depth
        // a band covering more than a quarter of the nodes is wide.
        if (n < 16 && bw + 1 < n) || bw * 4 <= n {
            Some(bw)
        } else {
            None
        }
    }

    /// Solve with the general interior-point method over
    /// [`EnforcedDagProblem::constraint_set`]. Unlike
    /// [`EnforcedDagProblem::solve`] (the projected water-filling
    /// heuristic, exact on chains but conservative at fan-ins), this
    /// optimizes the DAG program directly; Newton steps run banded when
    /// [`EnforcedDagProblem::kkt_bandwidth`] reports a narrow profile.
    /// Chains delegate to the chain interior point.
    pub fn solve_interior_point(&self) -> Result<WaitSchedule, ScheduleError> {
        self.solve_interior_point_with(&SolverOptions::default())
    }

    /// [`EnforcedDagProblem::solve_interior_point`] with explicit solver
    /// options (tests force the banded path at small n, or the dense
    /// path at depth, via `banded_min_dim`).
    pub fn solve_interior_point_with(
        &self,
        opts: &SolverOptions,
    ) -> Result<WaitSchedule, ScheduleError> {
        if let Some(chain) = self.topology.as_chain() {
            let problem = EnforcedWaitsProblem::new(&chain, self.params, self.b.clone());
            return problem.solve(SolveMethod::InteriorPoint);
        }
        check_topology_feasibility(self.topology, &self.params, &self.b)?;
        let (result, micros) = timed(|| self.solve_ip_inner(opts));
        let (periods, mut telemetry) = result?;
        telemetry.wall_micros = micros;
        let t = self.topology.service_times();
        let mut periods = periods;
        for (x, &ti) in periods.iter_mut().zip(&t) {
            if *x < ti {
                *x = ti;
            }
        }
        let waits: Vec<f64> = periods.iter().zip(&t).map(|(&x, &ti)| x - ti).collect();
        let active_fraction = topology_enforced_active_fraction(self.topology, &periods);
        let latency_bound = periods.iter().zip(&self.b).map(|(&x, &bi)| bi * x).sum();
        Ok(WaitSchedule {
            waits,
            periods,
            active_fraction,
            backlog_factors: self.b.clone(),
            latency_bound,
            method: SolveMethod::InteriorPoint,
            telemetry: Some(telemetry),
        })
    }

    fn solve_ip_inner(
        &self,
        opts: &SolverOptions,
    ) -> Result<(Vec<f64>, SolveTelemetry), ScheduleError> {
        let g = self.topology.total_gains();
        if let Some(i) = (0..self.topology.len()).find(|&i| g[i] <= 0.0 || !g[i].is_finite()) {
            return Err(ScheduleError::Solver(format!(
                "node {i} has non-positive mean inflow; the DAG program is degenerate"
            )));
        }
        let cs = self.constraint_set();
        let x0 = topology_minimal_periods(self.topology);
        let radius = (self.params.deadline
            + self.topology.vector_width() as f64 * self.params.tau0)
            .max(1.0)
            * 4.0;
        let (interior, phase1_newtons) = find_interior_point_detailed(&cs, &x0, radius, opts)
            .map_err(|e| ScheduleError::Solver(format!("phase-1: {e}")))?;
        let sol = minimize(&self.ip_objective(), &cs, &interior, opts)
            .map_err(|e| ScheduleError::Solver(e.to_string()))?;
        let mut telemetry = SolveTelemetry::new("interior-point");
        telemetry.iterations = (phase1_newtons + sol.newton_iters) as u64;
        telemetry.residual = sol.gap;
        telemetry.barrier_mu = sol.barrier_ts.clone();
        telemetry.residual_series = sol
            .barrier_ts
            .iter()
            .map(|&t| cs.len().max(1) as f64 / t)
            .collect();
        telemetry.phase1_iterations = Some(phase1_newtons as u64);
        telemetry.record_factorization(sol.banded_bandwidth);
        telemetry.newton_solve_micros = sol.newton_solve_micros;
        Ok((sol.x, telemetry))
    }

    fn ip_objective(&self) -> ActiveFractionObjective {
        let n = self.topology.len();
        ActiveFractionObjective {
            t_over_n: self
                .topology
                .service_times()
                .iter()
                .map(|ti| ti / n as f64)
                .collect(),
            bandwidth: self.kkt_bandwidth(),
        }
    }

    /// λ-bisection on the deadline price. For a fixed λ the separable
    /// relaxation has the closed form `z_i = √(a_i/(λ·c_i))`; clamping
    /// to `[lo, cap]` and projecting onto the edge order constraints
    /// (forward sweep against a reverse-swept floor) yields a candidate
    /// whose deadline usage is monotone nonincreasing in λ, so bisection
    /// on `Σ c_i·z_i = D` converges.
    fn solve_dag_waterfilling(
        &self,
        warm: Option<&WarmStart>,
    ) -> Result<(Vec<f64>, SolveTelemetry), ScheduleError> {
        let topo = self.topology;
        let n = topo.len();
        let t = topo.service_times();
        let g = topo.total_gains();
        if let Some(i) = (0..n).find(|&i| g[i] <= 0.0 || !g[i].is_finite()) {
            return Err(ScheduleError::Solver(format!(
                "node {i} has non-positive mean inflow; the DAG water-filling \
                 solver requires strictly positive total gains"
            )));
        }
        let cap = topo.vector_width() as f64 * self.params.tau0;
        let a: Vec<f64> = (0..n).map(|i| t[i] * g[i] / n as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| self.b[i] / g[i]).collect();
        let lo: Vec<f64> = (0..n).map(|i| t[i] * g[i]).collect();

        // Floors that already respect the order constraints: z may never
        // drop below its own lo nor below any descendant's floor.
        let mut floor = lo.clone();
        for &i in topo.topo_order().iter().rev() {
            for &e in topo.out_edges(i) {
                let dst = topo.edge(e).dst;
                floor[i] = floor[i].max(floor[dst]);
            }
        }

        let mut telemetry = SolveTelemetry::new("dag-water-filling");
        telemetry.warm_start = warm.is_some();

        let project = |lambda: f64, z: &mut Vec<f64>| {
            z.clear();
            z.resize(n, 0.0);
            for &i in topo.topo_order() {
                let candidate = if lambda <= 0.0 {
                    cap
                } else {
                    (a[i] / (lambda * c[i])).sqrt().min(cap)
                };
                let parent_cap = topo
                    .in_edges(i)
                    .iter()
                    .map(|&e| z[topo.edge(e).src])
                    .fold(f64::INFINITY, f64::min);
                z[i] = candidate.min(parent_cap).max(floor[i]);
            }
        };
        let usage = |z: &[f64]| -> f64 { z.iter().zip(&c).map(|(&zi, &ci)| ci * zi).sum() };

        let mut z = Vec::with_capacity(n);
        project(0.0, &mut z);
        let mut steps = 1u64;
        if usage(&z) > self.params.deadline {
            // Bracket the deadline price. A warm hint seeds the bracket
            // at the KKT stationarity estimate λ̂ = a_i/(c_i·z_i²)
            // evaluated at the clamped warm point; otherwise grow from
            // a tiny price until the deadline budget is satisfied.
            let mut lambda_lo = 0.0;
            let mut lambda_hi = warm
                .map(|w| {
                    let mut est = f64::MIN_POSITIVE;
                    for i in 0..n {
                        let zi = (g[i] * w.periods[i]).clamp(floor[i], cap);
                        est = est.max(a[i] / (c[i] * zi * zi));
                    }
                    est
                })
                .unwrap_or(1e-12)
                .max(1e-300);
            loop {
                project(lambda_hi, &mut z);
                steps += 1;
                if usage(&z) <= self.params.deadline {
                    break;
                }
                lambda_lo = lambda_hi;
                lambda_hi *= 10.0;
                if !lambda_hi.is_finite() {
                    return Err(ScheduleError::Solver(
                        "DAG water-filling failed to bracket the deadline price".into(),
                    ));
                }
            }
            for _ in 0..200 {
                let mid = 0.5 * (lambda_lo + lambda_hi);
                project(mid, &mut z);
                steps += 1;
                let u = usage(&z);
                telemetry.residual_series.push(self.params.deadline - u);
                if u > self.params.deadline {
                    lambda_lo = mid;
                } else {
                    lambda_hi = mid;
                }
            }
            // Land on the feasible side of the final bracket.
            project(lambda_hi, &mut z);
        }
        telemetry.iterations = steps;
        telemetry.residual = self.params.deadline - usage(&z);
        let periods: Vec<f64> = (0..n).map(|i| z[i] / g[i]).collect();
        Ok((periods, telemetry))
    }
}

/// The Fig.-2 block-size program on a DAG topology.
///
/// The monolithic runtime is topology-agnostic at the design level: a
/// block of `M` inputs costs `T̄(M) = Σ_i ⌈M·G_i/v⌉·t_i` on the single
/// shared device whether the `G_i` come from a chain's cumulative gain
/// product or a DAG's per-edge flow propagation
/// ([`Topology::total_gains`]). Chains delegate to [`MonolithicProblem`]
/// (bit-exact).
#[derive(Debug, Clone)]
pub struct MonolithicDagProblem<'a> {
    topology: &'a Topology,
    params: RtParams,
    b: f64,
    s: f64,
}

impl<'a> MonolithicDagProblem<'a> {
    /// Construct with queue multiplier `b ≥ 1` and worst-case scale
    /// `s ≥ 1`.
    ///
    /// # Panics
    /// Panics on non-finite or sub-unit parameters.
    pub fn new(topology: &'a Topology, params: RtParams, b: f64, s: f64) -> Self {
        assert!(b.is_finite() && b >= 1.0, "queue multiplier b must be >= 1");
        assert!(s.is_finite() && s >= 1.0, "worst-case scale S must be >= 1");
        MonolithicDagProblem {
            topology,
            params,
            b,
            s,
        }
    }

    /// The operating point.
    pub fn params(&self) -> &RtParams {
        &self.params
    }

    /// Largest block size the deadline could possibly allow:
    /// `b·M·τ0 ≤ D`.
    pub fn max_block_size(&self) -> u64 {
        let m = self.params.deadline / (self.b * self.params.tau0);
        if m < 1.0 {
            0
        } else if m >= u64::MAX as f64 {
            u64::MAX
        } else {
            m.floor() as u64
        }
    }

    /// Objective at block size `m`, or `None` if `m` is infeasible.
    pub fn objective(&self, m: u64) -> Option<f64> {
        if m == 0 {
            return None;
        }
        if !topology_monolithic_stable(self.topology, &self.params, m) {
            return None;
        }
        let bound =
            topology_monolithic_latency_bound(self.topology, &self.params, m, self.b, self.s);
        if bound > self.params.deadline {
            return None;
        }
        Some(topology_monolithic_active_fraction(
            self.topology,
            &self.params,
            m,
        ))
    }

    /// Solve exactly by exhaustive scan over `M ∈ [1, max_block_size]`.
    /// Chains delegate to [`MonolithicProblem::solve`].
    pub fn solve(&self) -> Result<MonolithicSchedule, ScheduleError> {
        if let Some(chain) = self.topology.as_chain() {
            return MonolithicProblem::new(&chain, self.params, self.b, self.s).solve();
        }
        let hi = self.max_block_size();
        let evals = std::cell::Cell::new(0u64);
        let (best, micros) = timed(|| {
            minimize_scan(1, hi, |m| {
                evals.set(evals.get() + 1);
                self.objective(m)
            })
        });
        let best = best.ok_or_else(|| {
            ScheduleError::Solver(format!(
                "no feasible block size in [1, {hi}] (deadline {:.0}, tau0 {:.1})",
                self.params.deadline, self.params.tau0
            ))
        })?;
        Ok(self.schedule_at_observed(best.arg, "scan", evals.get(), micros))
    }

    /// Solve with the accelerated unimodal search; same ripple-aware
    /// neighborhood sweep as the chain version, with the longest
    /// ceiling period `v / G_min` taken over the DAG's node totals.
    /// Chains delegate to [`MonolithicProblem::solve_fast`].
    pub fn solve_fast(&self) -> Result<MonolithicSchedule, ScheduleError> {
        if let Some(chain) = self.topology.as_chain() {
            return MonolithicProblem::new(&chain, self.params, self.b, self.s).solve_fast();
        }
        let hi = self.max_block_size();
        let g_min_positive = self
            .topology
            .total_gains()
            .into_iter()
            .filter(|&g| g > 0.0)
            .fold(f64::INFINITY, f64::min);
        let ripple = if g_min_positive.is_finite() {
            (self.topology.vector_width() as f64 / g_min_positive).ceil() as u64
        } else {
            self.topology.vector_width() as u64
        };
        let slop = ripple
            .saturating_mul(2)
            .max(4 * self.topology.vector_width() as u64)
            .max(64);
        let evals = std::cell::Cell::new(0u64);
        let (best, micros) = timed(|| {
            minimize_unimodal(1, hi, slop, |m| {
                evals.set(evals.get() + 1);
                self.objective(m)
            })
        });
        let best = best
            .ok_or_else(|| ScheduleError::Solver(format!("no feasible block size in [1, {hi}]")))?;
        Ok(self.schedule_at_observed(best.arg, "unimodal", evals.get(), micros))
    }

    fn schedule_at_observed(
        &self,
        m: u64,
        method: &str,
        evaluations: u64,
        wall_micros: f64,
    ) -> MonolithicSchedule {
        let mut telemetry = SolveTelemetry::new(method);
        telemetry.iterations = evaluations;
        telemetry.wall_micros = wall_micros;
        MonolithicSchedule {
            block_size: m,
            block_time: topology_monolithic_block_time(self.topology, m),
            active_fraction: topology_monolithic_active_fraction(self.topology, &self.params, m),
            latency_bound: topology_monolithic_latency_bound(
                self.topology,
                &self.params,
                m,
                self.b,
                self.s,
            ),
            b: self.b,
            s: self.s,
            telemetry: Some(telemetry),
        }
    }
}

/// Check the KKT conditions for `periods` on the DAG design program —
/// [`crate::kkt::verify_kkt`] generalized to
/// [`EnforcedDagProblem::constraint_set`]. Large active sets route
/// through the same banded-bordered multiplier solve as the chain
/// certificate.
pub fn verify_kkt_dag(
    problem: &EnforcedDagProblem<'_>,
    periods: &[f64],
    active_tol: f64,
) -> KktReport {
    let n = problem.topology().len();
    assert_eq!(periods.len(), n, "period vector length mismatch");
    let cs = problem.constraint_set();
    let grad = active_fraction_gradient(&problem.topology().service_times(), periods);
    kkt_report(&cs, &grad, periods, active_tol)
}

/// Raise backlog factors to observed ceilings and re-solve the waits on
/// a DAG — the [`policy::escalate_schedule`] repair step generalized.
/// Chains delegate to the chain policy (bit-exact); general DAGs re-run
/// [`EnforcedDagProblem::solve_warm`] at the raised factors.
///
/// # Panics
/// Panics if the slice lengths disagree with the topology.
pub fn escalate_schedule_topology(
    topology: &Topology,
    params: RtParams,
    current_periods: &[f64],
    design_b: &[f64],
    observed_vectors: &[f64],
) -> Result<WaitSchedule, ScheduleError> {
    let n = topology.len();
    assert_eq!(current_periods.len(), n, "period vector length mismatch");
    assert_eq!(design_b.len(), n, "design factor length mismatch");
    assert_eq!(observed_vectors.len(), n, "observed vector length mismatch");
    if let Some(chain) = topology.as_chain() {
        return policy::escalate_schedule(
            &chain,
            params,
            current_periods,
            design_b,
            observed_vectors,
        );
    }
    let b: Vec<f64> = design_b
        .iter()
        .zip(observed_vectors)
        .map(|(&bi, &obs)| bi.max(obs.ceil()).max(1.0))
        .collect();
    let warm = WarmStart {
        periods: current_periods.to_vec(),
    };
    EnforcedDagProblem::new(topology, params, b).solve_warm(&warm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpec, PipelineSpecBuilder, TopologyBuilder};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    fn diamond() -> Topology {
        TopologyBuilder::new(128)
            .node("parse", 120.0)
            .node("filter", 60.0)
            .node("enrich", 200.0)
            .node("join", 90.0)
            .node("aggregate", 400.0)
            .edge(0, 1, GainModel::Deterministic { k: 1 }, 0.7)
            .edge(0, 2, GainModel::Deterministic { k: 1 }, 0.3)
            .edge(1, 3, GainModel::Bernoulli { p: 0.6 }, 1.0)
            .edge(2, 3, GainModel::CensoredPoisson { mean: 1.8, cap: 8 }, 1.0)
            .edge(3, 4, GainModel::Bernoulli { p: 0.25 }, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn chain_solve_is_bit_identical_to_enforced_waits_problem() {
        let p = blast();
        let t = Topology::chain(&p);
        let params = RtParams::new(10.0, 1e5).unwrap();
        let b = vec![1.0, 3.0, 9.0, 6.0];
        let chain = EnforcedWaitsProblem::new(&p, params, b.clone())
            .solve_with_fallback()
            .unwrap();
        let dag = EnforcedDagProblem::new(&t, params, b).solve().unwrap();
        assert_eq!(dag.periods, chain.periods);
        assert_eq!(dag.waits, chain.waits);
        assert_eq!(dag.active_fraction, chain.active_fraction);
        assert_eq!(dag.latency_bound, chain.latency_bound);
    }

    #[test]
    fn chain_feasibility_and_minimal_periods_delegate() {
        let p = blast();
        let t = Topology::chain(&p);
        let params = RtParams::new(10.0, 2e5).unwrap();
        assert_eq!(topology_minimal_periods(&t), minimal_periods(&p));
        assert!(check_topology_feasibility(&t, &params, &[1.0, 3.0, 9.0, 6.0]).is_ok());
        let tight = RtParams::new(2.0, 1e9).unwrap();
        assert!(matches!(
            check_topology_feasibility(&t, &tight, &[1.0; 4]),
            Err(FeasibilityError::ArrivalRateTooHigh { .. })
        ));
    }

    #[test]
    fn optimistic_backlog_matches_chain_rule() {
        let p = blast();
        let t = Topology::chain(&p);
        assert_eq!(
            EnforcedDagProblem::optimistic_backlog(&t),
            EnforcedWaitsProblem::optimistic_backlog(&p)
        );
    }

    #[test]
    fn dag_solve_satisfies_all_constraints() {
        let t = diamond();
        let params = RtParams::new(10.0, 2e4).unwrap();
        let b = EnforcedDagProblem::optimistic_backlog(&t);
        let s = EnforcedDagProblem::new(&t, params, b.clone())
            .solve()
            .unwrap();
        let g = t.total_gains();
        let cap = 128.0 * 10.0;
        // Periods at least the service times; source within the head bound.
        for (i, node) in t.nodes().iter().enumerate() {
            assert!(
                s.periods[i] >= node.service_time - 1e-9,
                "x[{i}] below service time"
            );
        }
        assert!(g[t.source()] * s.periods[t.source()] <= cap + 1e-6);
        // Per-edge order constraints in z-space.
        for e in t.edges() {
            assert!(
                g[e.dst] * s.periods[e.dst] <= g[e.src] * s.periods[e.src] + 1e-6,
                "edge {} -> {} unstable",
                e.src,
                e.dst
            );
        }
        // Deadline bound respected.
        assert!(s.latency_bound <= params.deadline + 1e-6);
        assert!(s.active_fraction > 0.0 && s.active_fraction <= 1.0 + 1e-9);
    }

    #[test]
    fn dag_slack_deadline_hits_stability_caps() {
        let t = diamond();
        // Huge deadline: λ = 0 path, every node at its z-cap (or floor).
        let params = RtParams::new(10.0, 1e9).unwrap();
        let b = EnforcedDagProblem::optimistic_backlog(&t);
        let s = EnforcedDagProblem::new(&t, params, b).solve().unwrap();
        let g = t.total_gains();
        let cap = 128.0 * 10.0;
        assert!((g[t.source()] * s.periods[t.source()] - cap).abs() < 1e-6);
        // Tighter deadline costs activity.
        let tight = RtParams::new(10.0, 1.5e4).unwrap();
        let b2 = EnforcedDagProblem::optimistic_backlog(&t);
        let s2 = EnforcedDagProblem::new(&t, tight, b2).solve().unwrap();
        assert!(s2.active_fraction >= s.active_fraction - 1e-12);
        assert!(s2.latency_bound <= tight.deadline + 1e-6);
    }

    #[test]
    fn dag_warm_solve_matches_cold() {
        let t = diamond();
        let params = RtParams::new(10.0, 2e4).unwrap();
        let b = EnforcedDagProblem::optimistic_backlog(&t);
        let cold = EnforcedDagProblem::new(&t, params, b.clone())
            .solve()
            .unwrap();
        let warm = EnforcedDagProblem::new(&t, params, b)
            .solve_warm(&WarmStart {
                periods: cold.periods.clone(),
            })
            .unwrap();
        for (w, c) in warm.periods.iter().zip(&cold.periods) {
            assert!((w - c).abs() / c < 1e-6, "warm {w} vs cold {c}");
        }
        assert!(warm.telemetry.unwrap().warm_start);
    }

    #[test]
    fn dag_infeasible_deadline_reports_error() {
        let t = diamond();
        let params = RtParams::new(10.0, 100.0).unwrap();
        let b = EnforcedDagProblem::optimistic_backlog(&t);
        assert!(matches!(
            EnforcedDagProblem::new(&t, params, b).solve(),
            Err(ScheduleError::Infeasible(
                FeasibilityError::DeadlineTooTight { .. }
            ))
        ));
    }

    #[test]
    fn escalation_on_chain_delegates_to_policy() {
        let p = blast();
        let t = Topology::chain(&p);
        let params = RtParams::new(10.0, 1e5).unwrap();
        let design_b = vec![1.0, 3.0, 9.0, 6.0];
        let base = EnforcedWaitsProblem::new(&p, params, design_b.clone())
            .solve_with_fallback()
            .unwrap();
        let observed = vec![1.0, 4.3, 2.0, 1.0];
        let via_chain =
            policy::escalate_schedule(&p, params, &base.periods, &design_b, &observed).unwrap();
        let via_dag =
            escalate_schedule_topology(&t, params, &base.periods, &design_b, &observed).unwrap();
        assert_eq!(via_dag.periods, via_chain.periods);
        assert_eq!(via_dag.backlog_factors, via_chain.backlog_factors);
    }

    #[test]
    fn escalation_on_dag_raises_factors() {
        let t = diamond();
        let params = RtParams::new(10.0, 2e4).unwrap();
        let design_b = EnforcedDagProblem::optimistic_backlog(&t);
        let base = EnforcedDagProblem::new(&t, params, design_b.clone())
            .solve()
            .unwrap();
        let mut observed = vec![0.0; t.len()];
        observed[3] = design_b[3] + 2.4;
        let escalated =
            escalate_schedule_topology(&t, params, &base.periods, &design_b, &observed).unwrap();
        assert_eq!(escalated.backlog_factors[3], (design_b[3] + 2.4).ceil());
        assert!(escalated.latency_bound <= params.deadline + 1e-6);
        assert!(escalated.active_fraction >= base.active_fraction - 1e-9);
    }

    /// A chain of diamond blocks: every edge spans at most 2 node
    /// indices, so the KKT profile is banded with bandwidth 2 at any
    /// depth.
    fn diamond_ladder(blocks: usize) -> Topology {
        let mut b = TopologyBuilder::new(128);
        let n = 3 * blocks + 1;
        for i in 0..n {
            b = b.node(format!("n{i}"), 100.0 + i as f64);
        }
        for d in 0..blocks {
            let a = 3 * d;
            b = b
                .edge(a, a + 1, GainModel::Deterministic { k: 1 }, 0.5)
                .edge(a, a + 2, GainModel::Deterministic { k: 1 }, 0.5)
                .edge(a + 1, a + 3, GainModel::Deterministic { k: 1 }, 1.0)
                .edge(a + 2, a + 3, GainModel::Deterministic { k: 1 }, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn diamond_ip_banded_matches_dense_and_both_certify() {
        let t = diamond();
        let params = RtParams::new(10.0, 2e4).unwrap();
        let b = EnforcedDagProblem::optimistic_backlog(&t);
        let prob = EnforcedDagProblem::new(&t, params, b);
        // n=5 is below the default gate: this runs dense.
        let dense = prob.solve_interior_point().unwrap();
        assert_eq!(
            dense.telemetry.as_ref().unwrap().factorization.as_deref(),
            Some("dense")
        );
        // Force the banded path (edges span ≤ 2 indices → bandwidth 2).
        let opts = SolverOptions {
            banded_min_dim: 0,
            ..SolverOptions::default()
        };
        let banded = prob.solve_interior_point_with(&opts).unwrap();
        let tel = banded.telemetry.as_ref().unwrap();
        assert_eq!(tel.factorization.as_deref(), Some("banded"));
        assert_eq!(tel.bandwidth, Some(2));
        for (bp, dp) in banded.periods.iter().zip(&dense.periods) {
            assert!(
                (bp - dp).abs() / dp < 1e-5,
                "banded {:?} vs dense {:?}",
                banded.periods,
                dense.periods
            );
        }
        for s in [&dense, &banded] {
            let report = verify_kkt_dag(&prob, &s.periods, 1e-5);
            assert!(report.is_optimal(1e-3), "{report:?}");
            assert!(prob.constraint_set().is_feasible(&s.periods, 1e-6 * 2e4));
        }
        // The projected water-filling heuristic is feasible but
        // conservative; the direct optimum can only be at least as good.
        let wf = prob.solve().unwrap();
        assert!(banded.active_fraction <= wf.active_fraction + 1e-6);
    }

    #[test]
    fn deep_diamond_ladder_engages_banded_by_default_and_certifies() {
        let t = diamond_ladder(16); // 49 nodes
        let b = EnforcedDagProblem::optimistic_backlog(&t);
        let xmin = topology_minimal_periods(&t);
        let min_d: f64 = xmin.iter().zip(&b).map(|(&x, &bi)| bi * x).sum();
        let params = RtParams::new(5.0, min_d * 1.5).unwrap();
        let prob = EnforcedDagProblem::new(&t, params, b);
        assert_eq!(prob.kkt_bandwidth(), Some(2));
        let banded = prob.solve_interior_point().unwrap();
        let tel = banded.telemetry.as_ref().unwrap();
        assert_eq!(tel.factorization.as_deref(), Some("banded"));
        assert_eq!(tel.bandwidth, Some(2));
        // Dense reference at the same depth (gate pushed out of reach).
        let opts = SolverOptions {
            banded_min_dim: usize::MAX,
            ..SolverOptions::default()
        };
        let dense = prob.solve_interior_point_with(&opts).unwrap();
        assert_eq!(
            dense.telemetry.as_ref().unwrap().factorization.as_deref(),
            Some("dense")
        );
        for (bp, dp) in banded.periods.iter().zip(&dense.periods) {
            assert!((bp - dp).abs() / dp < 1e-5, "banded diverged from dense");
        }
        for s in [&banded, &dense] {
            let report = verify_kkt_dag(&prob, &s.periods, 1e-5);
            assert!(report.is_optimal(1e-3), "{report:?}");
        }
    }

    #[test]
    fn wide_profile_dag_falls_back_to_dense() {
        // A deep chain with one long skip edge: the profile spans almost
        // the whole index range, so the banded path must decline even
        // though n ≥ 32.
        let n = 36;
        let mut b = TopologyBuilder::new(128);
        for i in 0..n {
            b = b.node(format!("n{i}"), 100.0);
        }
        b = b.edge(0, 1, GainModel::Deterministic { k: 1 }, 0.9);
        b = b.edge(0, n - 1, GainModel::Deterministic { k: 1 }, 0.1);
        for i in 1..n - 1 {
            b = b.edge(i, i + 1, GainModel::Deterministic { k: 1 }, 1.0);
        }
        let t = b.build().unwrap();
        let bf = EnforcedDagProblem::optimistic_backlog(&t);
        let xmin = topology_minimal_periods(&t);
        let min_d: f64 = xmin.iter().zip(&bf).map(|(&x, &bi)| bi * x).sum();
        let params = RtParams::new(5.0, min_d * 1.5).unwrap();
        let prob = EnforcedDagProblem::new(&t, params, bf);
        assert_eq!(prob.kkt_bandwidth(), None, "skip edge spans n-1 indices");
        let s = prob.solve_interior_point().unwrap();
        let tel = s.telemetry.as_ref().unwrap();
        assert_eq!(tel.factorization.as_deref(), Some("dense"));
        assert_eq!(tel.bandwidth, None);
        let report = verify_kkt_dag(&prob, &s.periods, 1e-5);
        assert!(report.is_optimal(1e-3), "{report:?}");
    }

    #[test]
    fn monolithic_chain_solve_is_bit_identical() {
        let p = blast();
        let t = Topology::chain(&p);
        let params = RtParams::new(50.0, 2e5).unwrap();
        let chain = MonolithicProblem::new(&p, params, 1.0, 1.0)
            .solve()
            .unwrap();
        let dag = MonolithicDagProblem::new(&t, params, 1.0, 1.0)
            .solve()
            .unwrap();
        assert_eq!(dag.block_size, chain.block_size);
        assert_eq!(dag.block_time, chain.block_time);
        assert_eq!(dag.active_fraction, chain.active_fraction);
        assert_eq!(dag.latency_bound, chain.latency_bound);
    }

    #[test]
    fn monolithic_dag_fast_matches_exact_scan() {
        let t = diamond();
        for (tau0, d) in [(10.0, 2e4), (30.0, 1e5), (50.0, 3.5e5)] {
            let params = RtParams::new(tau0, d).unwrap();
            let prob = MonolithicDagProblem::new(&t, params, 1.0, 1.0);
            match (prob.solve(), prob.solve_fast()) {
                (Ok(exact), Ok(fast)) => assert!(
                    (exact.active_fraction - fast.active_fraction).abs() < 1e-9,
                    "tau0={tau0} D={d}: exact M={} vs fast M={}",
                    exact.block_size,
                    fast.block_size
                ),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("feasibility disagreement at tau0={tau0} D={d}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn monolithic_dag_respects_constraints() {
        let t = diamond();
        let params = RtParams::new(10.0, 2e4).unwrap();
        let s = MonolithicDagProblem::new(&t, params, 1.0, 1.0)
            .solve_fast()
            .unwrap();
        assert!(s.block_size >= 1);
        assert!(s.active_fraction > 0.0 && s.active_fraction <= 1.0);
        assert!(s.latency_bound <= params.deadline);
        assert!(s.block_time <= s.block_size as f64 * params.tau0);
    }

    #[test]
    fn monolithic_dag_infeasible_when_deadline_tiny() {
        let t = diamond();
        let params = RtParams::new(10.0, 200.0).unwrap();
        assert!(MonolithicDagProblem::new(&t, params, 1.0, 1.0)
            .solve()
            .is_err());
    }
}
