//! The enforced-waits strategy (paper §4).
//!
//! Each node `n_i` is given a fixed wait `w_i`: after every firing it
//! sleeps exactly `w_i` cycles before firing again, so its firing period
//! is `x_i = t_i + w_i`. The waits solve the convex program of the
//! paper's Figure 1 (restated in terms of periods `x`):
//!
//! ```text
//! min (1/N) Σ t_i/x_i
//! s.t. x_0 ≤ v·τ0                     (head keeps up with arrivals)
//!      g_{i-1}·x_i ≤ x_{i-1}          (each edge is stable)
//!      Σ b_i·x_i ≤ D                  (deadline with backlog factors)
//!      x_i ≥ t_i                      (waits are nonnegative)
//! ```
//!
//! Two independent solution methods are provided and cross-checked in
//! tests:
//!
//! * [`SolveMethod::InteriorPoint`] — the general log-barrier Newton
//!   method from the `solver` crate, applied directly.
//! * [`SolveMethod::WaterFilling`] — an exact specialized method: the
//!   substitution `z_i = G_i·x_i` turns the edge constraints into a
//!   monotonicity requirement (`z` nonincreasing) and the head bound
//!   into `z_i ≤ v·τ0`, leaving a separable convex objective. For a
//!   fixed deadline price λ the inner problem is solved exactly by
//!   pool-adjacent-violators; an outer bisection finds the λ that
//!   exhausts (or slackens) the deadline budget.

use crate::feasibility::{check_enforced_feasibility, minimal_periods};
use crate::schedule::ScheduleError;
use crate::telemetry::{timed, SolveTelemetry};
use dataflow_model::analysis::enforced_active_fraction;
use dataflow_model::{PipelineSpec, RtParams};
use obs_trace::{SpanSink, Track};
use serde::{Deserialize, Serialize};
use solver::convex::{
    find_interior_point_detailed, minimize, minimize_warm, ConvexProblem, SolverOptions,
};
use solver::linalg::{BandedMat, Mat};
use solver::linear::ConstraintSet;

/// Which algorithm solves the Fig.-1 program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveMethod {
    /// General log-barrier interior-point Newton method.
    InteriorPoint,
    /// Exact specialized water-filling (λ-bisection + PAV).
    WaterFilling,
}

/// A warm-start hint: the periods of a nearby instance's solution (the
/// previous calibration round, or an adjacent sweep cell), used to seed
/// the solve instead of starting cold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStart {
    /// Firing periods `x_i` of the nearby solution.
    pub periods: Vec<f64>,
}

impl WarmStart {
    /// Warm-start hint from an already-solved schedule.
    pub fn from_schedule(schedule: &WaitSchedule) -> Self {
        WarmStart {
            periods: schedule.periods.clone(),
        }
    }
}

/// An optimized enforced-waits schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WaitSchedule {
    /// Per-node waits `w_i ≥ 0` (cycles).
    pub waits: Vec<f64>,
    /// Per-node firing periods `x_i = t_i + w_i` (cycles).
    pub periods: Vec<f64>,
    /// Predicted active fraction `(1/N) Σ t_i/x_i`.
    pub active_fraction: f64,
    /// Backlog factors `b_i` the schedule was designed for.
    pub backlog_factors: Vec<f64>,
    /// Worst-case latency bound `Σ b_i·x_i` at this schedule.
    pub latency_bound: f64,
    /// Method that produced the schedule.
    pub method: SolveMethod,
    /// How the solve went (iterations, residual, wall time, …).
    pub telemetry: Option<SolveTelemetry>,
}

/// The Fig.-1 design problem: a pipeline, an operating point, and
/// backlog factors capturing worst-case queue growth.
#[derive(Debug, Clone)]
pub struct EnforcedWaitsProblem<'a> {
    pipeline: &'a PipelineSpec,
    params: RtParams,
    b: Vec<f64>,
}

impl<'a> EnforcedWaitsProblem<'a> {
    /// Construct the problem. `b` must have one strictly positive factor
    /// per pipeline stage (the paper's `b_i`; `⌈g_i⌉` is the optimistic
    /// starting choice, calibrated upward empirically in §6.2).
    pub fn new(pipeline: &'a PipelineSpec, params: RtParams, b: Vec<f64>) -> Self {
        EnforcedWaitsProblem {
            pipeline,
            params,
            b,
        }
    }

    /// The paper's optimistic starting backlog factors `b_i = ⌈g_i⌉`
    /// (clamped up to 1 so factors stay positive for filter stages).
    pub fn optimistic_backlog(pipeline: &PipelineSpec) -> Vec<f64> {
        pipeline
            .mean_gains()
            .iter()
            .map(|g| g.ceil().max(1.0))
            .collect()
    }

    /// The pipeline being scheduled.
    pub fn pipeline(&self) -> &PipelineSpec {
        self.pipeline
    }

    /// The operating point.
    pub fn params(&self) -> &RtParams {
        &self.params
    }

    /// The backlog factors.
    pub fn backlog_factors(&self) -> &[f64] {
        &self.b
    }

    /// Build the Fig.-1 constraint set over the period variables `x`.
    pub fn constraint_set(&self) -> ConstraintSet {
        let n = self.pipeline.len();
        let t = self.pipeline.service_times();
        let g = self.pipeline.mean_gains();
        let v_tau0 = self.pipeline.vector_width() as f64 * self.params.tau0;
        let mut cs = ConstraintSet::new(n);
        cs.push_upper_bound(0, v_tau0, "head rate: x0 <= v*tau0");
        for i in 1..n {
            if g[i - 1] > 0.0 {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = g[i - 1];
                coeffs[i - 1] = -1.0;
                cs.push(coeffs, 0.0, format!("edge {}->{} stability", i - 1, i));
            }
        }
        cs.push(self.b.clone(), self.params.deadline, "deadline");
        for (i, &ti) in t.iter().enumerate() {
            cs.push_lower_bound(i, ti, format!("x{i} >= t{i}"));
        }
        cs
    }

    /// Solve for the optimal waits with the chosen method.
    pub fn solve(&self, method: SolveMethod) -> Result<WaitSchedule, ScheduleError> {
        self.solve_inner(method, None, None, 0)
    }

    /// [`EnforcedWaitsProblem::solve`] seeded from a nearby solution.
    ///
    /// Warm-started solves converge to the same schedule as cold starts
    /// (within solver tolerance) but spend fewer iterations: the
    /// interior-point method skips its loose early centering steps (or
    /// runs phase-1 from the warm point instead of from scratch), and
    /// water-filling brackets the deadline price around a KKT estimate
    /// taken at the warm point instead of sweeping from λ = 10⁻³⁰.
    /// The returned telemetry has `warm_start = true` so the effect is
    /// visible in manifests.
    pub fn solve_warm(
        &self,
        method: SolveMethod,
        warm: &WarmStart,
    ) -> Result<WaitSchedule, ScheduleError> {
        self.solve_inner(method, Some(warm), None, 0)
    }

    /// [`EnforcedWaitsProblem::solve`] with solver span tracing: emits
    /// an enclosing solve span on [`Track::solver`]`(attempt)` (wall
    /// microseconds as the time axis), with one child span per
    /// water-filling bisection step or interior-point barrier centering
    /// step.
    pub fn solve_traced(
        &self,
        method: SolveMethod,
        sink: &mut SpanSink,
        attempt: u64,
    ) -> Result<WaitSchedule, ScheduleError> {
        self.solve_inner(method, None, Some(sink), attempt)
    }

    fn solve_inner(
        &self,
        method: SolveMethod,
        warm: Option<&WarmStart>,
        mut spans: Option<&mut SpanSink>,
        attempt: u64,
    ) -> Result<WaitSchedule, ScheduleError> {
        check_enforced_feasibility(self.pipeline, &self.params, &self.b)?;
        // A hint with the wrong arity came from a different pipeline;
        // ignore it rather than index out of bounds.
        let warm = warm.filter(|w| w.periods.len() == self.pipeline.len());
        if let Some(sink) = spans.as_deref_mut() {
            let name = match method {
                SolveMethod::InteriorPoint => "solve interior-point",
                SolveMethod::WaterFilling => "solve water-filling",
            };
            sink.enter(Track::solver(attempt), name, "solver", 0.0);
        }
        let (result, micros) = timed(|| match (method, warm) {
            (SolveMethod::InteriorPoint, None) => {
                self.solve_interior_point(spans.as_deref_mut(), attempt)
            }
            (SolveMethod::InteriorPoint, Some(w)) => {
                self.solve_interior_point_warm(&w.periods, spans.as_deref_mut(), attempt)
            }
            (SolveMethod::WaterFilling, None) => {
                self.solve_waterfilling(spans.as_deref_mut(), attempt)
            }
            (SolveMethod::WaterFilling, Some(w)) => {
                self.solve_waterfilling_warm(&w.periods, spans.as_deref_mut(), attempt)
            }
        });
        if let Some(sink) = spans {
            sink.exit(micros);
        }
        let (periods, mut telemetry) = result?;
        telemetry.wall_micros = micros;
        let mut schedule = self.schedule_from_periods(periods, method);
        schedule.telemetry = Some(telemetry);
        Ok(schedule)
    }

    /// Solve with water-filling, falling back to the interior-point
    /// method when the specialized solver declines the instance (e.g.
    /// pipelines with zero-mean-gain stages). The returned schedule's
    /// telemetry records whether the fallback was taken.
    pub fn solve_with_fallback(&self) -> Result<WaitSchedule, ScheduleError> {
        self.solve_with_fallback_inner(None, None, 0)
    }

    /// [`EnforcedWaitsProblem::solve_with_fallback`] seeded from a
    /// nearby solution (see [`EnforcedWaitsProblem::solve_warm`]). The
    /// hint seeds both the water-filling attempt and, if taken, the
    /// interior-point fallback.
    pub fn solve_with_fallback_warm(
        &self,
        warm: &WarmStart,
    ) -> Result<WaitSchedule, ScheduleError> {
        self.solve_with_fallback_inner(Some(warm), None, 0)
    }

    /// [`EnforcedWaitsProblem::solve_with_fallback`] with solver span
    /// tracing. The water-filling attempt lands on
    /// [`Track::solver`]`(attempt)`; if it declines the instance a
    /// `kkt-fallback` instant is emitted there and the interior-point
    /// retry lands on `attempt + 1`.
    pub fn solve_with_fallback_traced(
        &self,
        sink: &mut SpanSink,
        attempt: u64,
    ) -> Result<WaitSchedule, ScheduleError> {
        self.solve_with_fallback_inner(None, Some(sink), attempt)
    }

    fn solve_with_fallback_inner(
        &self,
        warm: Option<&WarmStart>,
        mut spans: Option<&mut SpanSink>,
        attempt: u64,
    ) -> Result<WaitSchedule, ScheduleError> {
        match self.solve_inner(
            SolveMethod::WaterFilling,
            warm,
            spans.as_deref_mut(),
            attempt,
        ) {
            Ok(s) => Ok(s),
            Err(ScheduleError::Infeasible(e)) => Err(ScheduleError::Infeasible(e)),
            Err(_) => {
                if let Some(sink) = spans.as_deref_mut() {
                    sink.instant(Track::solver(attempt), "kkt-fallback", 0.0);
                }
                let mut s =
                    self.solve_inner(SolveMethod::InteriorPoint, warm, spans, attempt + 1)?;
                if let Some(t) = s.telemetry.as_mut() {
                    t.fallback = true;
                }
                Ok(s)
            }
        }
    }

    fn schedule_from_periods(&self, mut periods: Vec<f64>, method: SolveMethod) -> WaitSchedule {
        let t = self.pipeline.service_times();
        // Numerical solutions can sit a hair below t_i; clamp so waits
        // are exactly nonnegative.
        for (x, &ti) in periods.iter_mut().zip(&t) {
            if *x < ti {
                *x = ti;
            }
        }
        let waits: Vec<f64> = periods.iter().zip(&t).map(|(&x, &ti)| x - ti).collect();
        let active_fraction = enforced_active_fraction(self.pipeline, &periods);
        let latency_bound = periods.iter().zip(&self.b).map(|(&x, &bi)| bi * x).sum();
        WaitSchedule {
            waits,
            periods,
            active_fraction,
            backlog_factors: self.b.clone(),
            latency_bound,
            method,
            telemetry: None,
        }
    }

    fn solve_interior_point(
        &self,
        mut spans: Option<&mut SpanSink>,
        attempt: u64,
    ) -> Result<(Vec<f64>, SolveTelemetry), ScheduleError> {
        let t0 = std::time::Instant::now();
        let elapsed_us = |t0: &std::time::Instant| t0.elapsed().as_secs_f64() * 1e6;
        let cs = self.constraint_set();
        let opts = SolverOptions::default();
        // Start from the minimal periods, nudged to the interior by the
        // solver's phase-1.
        let x0 = minimal_periods(self.pipeline);
        let radius = (self.params.deadline
            + self.pipeline.vector_width() as f64 * self.params.tau0)
            .max(1.0)
            * 4.0;
        let (interior, phase1_newtons) = match self.analytic_interior_seed(&cs) {
            Some(seed) => (seed, 0),
            None => find_interior_point_detailed(&cs, &x0, radius, &opts)
                .map_err(|e| ScheduleError::Solver(format!("phase-1: {e}")))?,
        };
        let phase1_done = elapsed_us(&t0);
        if let Some(sink) = spans.as_deref_mut() {
            sink.span(
                Track::solver(attempt),
                "phase-1",
                "solver",
                0.0,
                phase1_done,
            );
        }
        let sol = minimize(&self.objective(), &cs, &interior, &opts)
            .map_err(|e| ScheduleError::Solver(e.to_string()))?;
        if let Some(sink) = spans {
            // One child span per barrier centering step, laid out
            // back-to-back from the end of phase-1 using the solver's
            // per-step wall timings.
            let mut at = phase1_done;
            for (i, &dur) in sol.barrier_wall_micros.iter().enumerate() {
                sink.span_detail(
                    Track::solver(attempt),
                    "centering",
                    "solver",
                    format!(
                        "t={:.3e} newtons={}",
                        sol.barrier_ts[i], sol.barrier_newtons[i]
                    ),
                    at,
                    at + dur,
                );
                sink.counter(
                    Track::solver(attempt),
                    "residual",
                    at + dur,
                    cs.len().max(1) as f64 / sol.barrier_ts[i],
                );
                sink.counter(
                    Track::solver(attempt),
                    "barrier-mu",
                    at + dur,
                    sol.barrier_ts[i],
                );
                at += dur;
            }
        }
        let mut telemetry = SolveTelemetry::new("interior-point");
        telemetry.iterations = (phase1_newtons + sol.newton_iters) as u64;
        telemetry.residual = sol.gap;
        telemetry.barrier_mu = sol.barrier_ts.clone();
        // Duality-gap bound m/t at each barrier stage: the certified
        // distance to optimal as centering progressed.
        telemetry.residual_series = sol
            .barrier_ts
            .iter()
            .map(|&t| cs.len().max(1) as f64 / t)
            .collect();
        telemetry.phase1_iterations = Some(phase1_newtons as u64);
        telemetry.record_factorization(sol.banded_bandwidth);
        telemetry.newton_solve_micros = sol.newton_solve_micros;
        Ok((sol.x, telemetry))
    }

    fn solve_interior_point_warm(
        &self,
        warm: &[f64],
        spans: Option<&mut SpanSink>,
        attempt: u64,
    ) -> Result<(Vec<f64>, SolveTelemetry), ScheduleError> {
        let cs = self.constraint_set();
        let opts = SolverOptions::default();
        let radius = (self.params.deadline
            + self.pipeline.vector_width() as f64 * self.params.tau0)
            .max(1.0)
            * 4.0;
        // Optimal schedules sit on constraint boundaries (clamped
        // x_i = t_i, tight deadlines), so a raw hint is almost never
        // strictly feasible and would force a phase-1 restore. Nudge it
        // into the interior first; fall back to the raw hint (and the
        // solver's phase-1) when the nudge cannot find room.
        let seed = self.interiorized_warm(warm);
        let seed_ref: &[f64] = seed.as_deref().unwrap_or(warm);
        let ws = minimize_warm(&self.objective(), &cs, seed_ref, radius, &opts)
            .map_err(|e| ScheduleError::Solver(e.to_string()))?;
        if let Some(sink) = spans {
            let track = Track::solver(attempt);
            sink.instant(
                track,
                if ws.warm_feasible {
                    "warm-start"
                } else {
                    "warm-restore"
                },
                0.0,
            );
            let mut at = 0.0;
            for (i, &dur) in ws.solution.barrier_wall_micros.iter().enumerate() {
                sink.span_detail(
                    track,
                    "centering",
                    "solver",
                    format!(
                        "t={:.3e} newtons={}",
                        ws.solution.barrier_ts[i], ws.solution.barrier_newtons[i]
                    ),
                    at,
                    at + dur,
                );
                sink.counter(
                    track,
                    "residual",
                    at + dur,
                    cs.len().max(1) as f64 / ws.solution.barrier_ts[i],
                );
                sink.counter(track, "barrier-mu", at + dur, ws.solution.barrier_ts[i]);
                at += dur;
            }
        }
        let mut telemetry = SolveTelemetry::new("interior-point");
        telemetry.iterations = (ws.phase1_newtons + ws.solution.newton_iters) as u64;
        telemetry.residual = ws.solution.gap;
        telemetry.barrier_mu = ws.solution.barrier_ts.clone();
        telemetry.residual_series = ws
            .solution
            .barrier_ts
            .iter()
            .map(|&t| cs.len().max(1) as f64 / t)
            .collect();
        telemetry.warm_start = true;
        telemetry.phase1_iterations = Some(ws.phase1_newtons as u64);
        telemetry.record_factorization(ws.solution.banded_bandwidth);
        telemetry.newton_solve_micros = ws.solution.newton_solve_micros;
        Ok((ws.solution.x, telemetry))
    }

    /// Push a warm hint strictly inside the Fig.-1 feasible region, in
    /// the water-filling substitution space `z_i = G_i·x_i` where the
    /// constraints reduce to box bounds (`lo_i ≤ z_i`, `z_0 ≤ cap`),
    /// monotonicity (`z` nonincreasing), and the deadline budget.
    /// Returns `None` when there is no room (razor-thin feasible set or
    /// zero-gain stages); callers then let phase-1 handle the raw hint.
    fn interiorized_warm(&self, warm: &[f64]) -> Option<Vec<f64>> {
        const EPS: f64 = 1e-6;
        let g_total = self.pipeline.total_gains();
        if g_total.iter().any(|&g| g <= 0.0) {
            return None;
        }
        let n = self.pipeline.len();
        let t = self.pipeline.service_times();
        let cap = self.pipeline.vector_width() as f64 * self.params.tau0;
        let lo: Vec<f64> = (0..n).map(|i| t[i] * g_total[i]).collect();
        let c: Vec<f64> = (0..n).map(|i| self.b[i] / g_total[i]).collect();

        let mut z: Vec<f64> = (0..n)
            .map(|i| (g_total[i] * warm[i]).max(lo[i] * (1.0 + EPS)))
            .collect();
        z[0] = z[0].min(cap * (1.0 - EPS));

        // Restore strict deadline slack by shrinking toward the lower
        // bounds if the hint exhausted (or overshot) the budget.
        let budget = |z: &[f64]| -> f64 { z.iter().zip(&c).map(|(&zi, &ci)| zi * ci).sum() };
        let target = self.params.deadline * (1.0 - EPS);
        let b_now = budget(&z);
        if b_now >= target {
            let b_lo: f64 = lo.iter().zip(&c).map(|(&li, &ci)| li * ci).sum();
            if b_lo >= target {
                return None;
            }
            let s = (target - b_lo) / (b_now - b_lo);
            for (zi, &li) in z.iter_mut().zip(&lo) {
                *zi = li + s * (*zi - li);
            }
        }
        // Strict monotonicity (edge stability), squeezing downward only
        // so the budget cannot regrow.
        for i in 1..n {
            z[i] = z[i].min(z[i - 1] * (1.0 - 1e-9));
        }
        // The squeeze may have collided with a lower bound; if so the
        // region is too thin to nudge into.
        for i in 0..n {
            if z[i] < lo[i] * (1.0 + EPS / 2.0) {
                return None;
            }
        }
        Some(z.iter().zip(&g_total).map(|(&zi, &gi)| zi / gi).collect())
    }

    fn objective(&self) -> ActiveFractionObjective {
        ActiveFractionObjective {
            t_over_n: self
                .pipeline
                .service_times()
                .iter()
                .map(|ti| ti / self.pipeline.len() as f64)
                .collect(),
            // Chain adjacency: each edge constraint couples x_{i-1} and
            // x_i, so the KKT system is tridiagonal (plus the dense
            // deadline row the solver folds in by low-rank correction).
            bandwidth: Some(1),
        }
    }

    /// Analytic strictly-interior starting point for deep pipelines.
    ///
    /// Phase-1 solves a dense augmented Newton system — O(n³) per step —
    /// which at hundreds of stages dwarfs the banded centering it
    /// precedes. The minimal periods pushed into the interior by the
    /// same nudge the warm path uses are strictly feasible whenever the
    /// feasible set has any width, so deep solves can skip phase-1
    /// entirely. Paper-scale problems (n < 32, where the dense path
    /// runs anyway) keep the phase-1 route and its exact telemetry.
    fn analytic_interior_seed(&self, cs: &ConstraintSet) -> Option<Vec<f64>> {
        if self.pipeline.len() < 32 {
            return None;
        }
        let seed = self.interiorized_warm(&minimal_periods(self.pipeline))?;
        cs.constraints()
            .iter()
            .all(|c| c.slack(&seed) > 0.0)
            .then_some(seed)
    }

    fn solve_waterfilling(
        &self,
        mut spans: Option<&mut SpanSink>,
        attempt: u64,
    ) -> Result<(Vec<f64>, SolveTelemetry), ScheduleError> {
        let g_total = self.pipeline.total_gains();
        if g_total.iter().any(|&g| g <= 0.0) {
            return Err(ScheduleError::Solver(
                "water-filling requires strictly positive mean gains; use InteriorPoint".into(),
            ));
        }
        let n = self.pipeline.len();
        let t = self.pipeline.service_times();
        let cap = self.pipeline.vector_width() as f64 * self.params.tau0;
        // z_i = G_i·x_i. Objective coefficient a_i (from t_i/(N·x_i) =
        // a_i/z_i), budget coefficient c_i (from b_i·x_i = c_i·z_i).
        let a: Vec<f64> = (0..n).map(|i| t[i] * g_total[i] / n as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| self.b[i] / g_total[i]).collect();
        let lo: Vec<f64> = (0..n).map(|i| t[i] * g_total[i]).collect();
        debug_assert!(
            lo.iter().all(|&l| l <= cap * (1.0 + 1e-9)),
            "feasibility precheck should guarantee lo <= cap"
        );

        let budget_of = |z: &[f64]| -> f64 { z.iter().zip(&c).map(|(&zi, &ci)| zi * ci).sum() };

        let mut telemetry = SolveTelemetry::new("water-filling");
        let t0 = std::time::Instant::now();
        let elapsed_us = |t0: &std::time::Instant| t0.elapsed().as_secs_f64() * 1e6;
        let track = Track::solver(attempt);

        // λ = 0: everything at the cap. If the deadline is slack there,
        // the stability bounds are the binding constraints and we are
        // done (maximal waits everywhere).
        let z_cap = vec![cap; n];
        if budget_of(&z_cap) <= self.params.deadline {
            telemetry.iterations = 1; // one budget evaluation decided it
            telemetry.residual = self.params.deadline - budget_of(&z_cap);
            telemetry.residual_series.push(telemetry.residual);
            if let Some(sink) = spans.as_deref_mut() {
                sink.span_detail(
                    track,
                    "cap-check",
                    "solver",
                    "deadline slack at λ=0",
                    0.0,
                    elapsed_us(&t0),
                );
            }
            return Ok((
                z_cap.iter().zip(&g_total).map(|(&z, &gt)| z / gt).collect(),
                telemetry,
            ));
        }

        // Otherwise bisect the deadline price λ. The budget used by the
        // inner solution is continuous and nonincreasing in λ.
        let inner = |lambda: f64| pav_nonincreasing(&a, &c, &lo, cap, lambda);
        let mut lam_lo = 1e-30;
        let mut lam_hi = 1.0;
        loop {
            let started = if spans.is_some() {
                elapsed_us(&t0)
            } else {
                0.0
            };
            let bud = budget_of(&inner(lam_hi));
            let over = bud > self.params.deadline;
            if let Some(sink) = spans.as_deref_mut() {
                sink.span_detail(
                    track,
                    "bracket",
                    "solver",
                    format!("lambda={lam_hi:.4e} over={over}"),
                    started,
                    elapsed_us(&t0),
                );
            }
            if !over {
                break;
            }
            telemetry.iterations += 1;
            telemetry
                .residual_series
                .push((self.params.deadline - bud).abs());
            lam_hi *= 10.0;
            if lam_hi > 1e30 {
                return Err(ScheduleError::Solver(
                    "water-filling bisection failed to bracket the deadline price".into(),
                ));
            }
        }
        for _ in 0..200 {
            telemetry.iterations += 1;
            let mid = (lam_lo * lam_hi).sqrt(); // geometric: λ spans decades
            let started = if spans.is_some() {
                elapsed_us(&t0)
            } else {
                0.0
            };
            let bud = budget_of(&inner(mid));
            let over = bud > self.params.deadline;
            telemetry
                .residual_series
                .push((self.params.deadline - bud).abs());
            if let Some(sink) = spans.as_deref_mut() {
                sink.span_detail(
                    track,
                    "bisection",
                    "solver",
                    format!("lambda={mid:.4e} over={over}"),
                    started,
                    elapsed_us(&t0),
                );
                sink.counter(
                    track,
                    "residual",
                    elapsed_us(&t0),
                    (self.params.deadline - bud).abs(),
                );
            }
            if over {
                lam_lo = mid;
            } else {
                lam_hi = mid;
            }
        }
        let z = inner(lam_hi);
        telemetry.residual = (self.params.deadline - budget_of(&z)).abs();
        Ok((
            z.iter().zip(&g_total).map(|(&z, &gt)| z / gt).collect(),
            telemetry,
        ))
    }

    /// Warm water-filling: instead of sweeping the deadline price λ up
    /// from 10⁻³⁰, bracket it around the KKT stationarity estimate
    /// `λ̂_i = a_i / (c_i·ẑ_i²)` taken at the warm point's `ẑ`, then
    /// bisect with an early exit once the bracket collapses. Converges
    /// to the same λ as the cold solve (the budget is monotone in λ)
    /// in far fewer inner evaluations when the hint is close.
    fn solve_waterfilling_warm(
        &self,
        warm: &[f64],
        mut spans: Option<&mut SpanSink>,
        attempt: u64,
    ) -> Result<(Vec<f64>, SolveTelemetry), ScheduleError> {
        let g_total = self.pipeline.total_gains();
        if g_total.iter().any(|&g| g <= 0.0) {
            return Err(ScheduleError::Solver(
                "water-filling requires strictly positive mean gains; use InteriorPoint".into(),
            ));
        }
        let n = self.pipeline.len();
        let t = self.pipeline.service_times();
        let cap = self.pipeline.vector_width() as f64 * self.params.tau0;
        let a: Vec<f64> = (0..n).map(|i| t[i] * g_total[i] / n as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| self.b[i] / g_total[i]).collect();
        let lo: Vec<f64> = (0..n).map(|i| t[i] * g_total[i]).collect();

        let budget_of = |z: &[f64]| -> f64 { z.iter().zip(&c).map(|(&zi, &ci)| zi * ci).sum() };

        let mut telemetry = SolveTelemetry::new("water-filling");
        telemetry.warm_start = true;
        let t0 = std::time::Instant::now();
        let elapsed_us = |t0: &std::time::Instant| t0.elapsed().as_secs_f64() * 1e6;
        let track = Track::solver(attempt);

        // λ = 0 cap check, exactly as in the cold solve.
        let z_cap = vec![cap; n];
        if budget_of(&z_cap) <= self.params.deadline {
            telemetry.iterations = 1;
            telemetry.residual = self.params.deadline - budget_of(&z_cap);
            telemetry.residual_series.push(telemetry.residual);
            if let Some(sink) = spans.as_deref_mut() {
                sink.span_detail(
                    track,
                    "cap-check",
                    "solver",
                    "deadline slack at λ=0",
                    0.0,
                    elapsed_us(&t0),
                );
            }
            return Ok((
                z_cap.iter().zip(&g_total).map(|(&z, &gt)| z / gt).collect(),
                telemetry,
            ));
        }

        // Stationarity of a_i/z_i + λ·c_i·z_i gives λ = a_i/(c_i·z_i²);
        // the optimal λ lies within the range of these estimates over
        // the warm ẑ (modulo pooled/clamped coordinates, absorbed by the
        // 16× guard band).
        let mut lam_min = f64::INFINITY;
        let mut lam_max = 0.0_f64;
        for i in 0..n {
            let z = (g_total[i] * warm[i]).clamp(lo[i], cap);
            let est = a[i] / (c[i] * z * z);
            if est.is_finite() && est > 0.0 {
                lam_min = lam_min.min(est);
                lam_max = lam_max.max(est);
            }
        }
        let (mut lam_lo, mut lam_hi) = if lam_max > 0.0 && lam_min.is_finite() {
            ((lam_min / 16.0).max(1e-30), (lam_max * 16.0).min(1e30))
        } else {
            (1e-30, 1.0)
        };

        let inner = |lambda: f64| pav_nonincreasing(&a, &c, &lo, cap, lambda);
        // Restore the bracket invariant the bisection needs: over-budget
        // at lam_lo, under-budget at lam_hi.
        loop {
            let started = if spans.is_some() {
                elapsed_us(&t0)
            } else {
                0.0
            };
            let bud = budget_of(&inner(lam_hi));
            let over = bud > self.params.deadline;
            if let Some(sink) = spans.as_deref_mut() {
                sink.span_detail(
                    track,
                    "bracket",
                    "solver",
                    format!("lambda={lam_hi:.4e} over={over}"),
                    started,
                    elapsed_us(&t0),
                );
            }
            if !over {
                break;
            }
            telemetry.iterations += 1;
            telemetry
                .residual_series
                .push((self.params.deadline - bud).abs());
            lam_hi *= 10.0;
            if lam_hi > 1e30 {
                return Err(ScheduleError::Solver(
                    "water-filling bisection failed to bracket the deadline price".into(),
                ));
            }
        }
        while lam_lo > 1e-30 {
            telemetry.iterations += 1;
            let started = if spans.is_some() {
                elapsed_us(&t0)
            } else {
                0.0
            };
            let bud = budget_of(&inner(lam_lo));
            let over = bud > self.params.deadline;
            telemetry
                .residual_series
                .push((self.params.deadline - bud).abs());
            if let Some(sink) = spans.as_deref_mut() {
                sink.span_detail(
                    track,
                    "bracket",
                    "solver",
                    format!("lambda={lam_lo:.4e} over={over}"),
                    started,
                    elapsed_us(&t0),
                );
            }
            if over {
                break;
            }
            lam_lo = (lam_lo / 10.0).max(1e-30);
        }
        for _ in 0..200 {
            // Early exit: once the bracket has collapsed to machine
            // precision further bisection cannot move λ.
            if lam_hi / lam_lo < 1.0 + 1e-13 {
                break;
            }
            telemetry.iterations += 1;
            let mid = (lam_lo * lam_hi).sqrt();
            let started = if spans.is_some() {
                elapsed_us(&t0)
            } else {
                0.0
            };
            let bud = budget_of(&inner(mid));
            let over = bud > self.params.deadline;
            telemetry
                .residual_series
                .push((self.params.deadline - bud).abs());
            if let Some(sink) = spans.as_deref_mut() {
                sink.span_detail(
                    track,
                    "bisection",
                    "solver",
                    format!("lambda={mid:.4e} over={over}"),
                    started,
                    elapsed_us(&t0),
                );
                sink.counter(
                    track,
                    "residual",
                    elapsed_us(&t0),
                    (self.params.deadline - bud).abs(),
                );
            }
            if over {
                lam_lo = mid;
            } else {
                lam_hi = mid;
            }
        }
        let z = inner(lam_hi);
        telemetry.residual = (self.params.deadline - budget_of(&z)).abs();
        Ok((
            z.iter().zip(&g_total).map(|(&z, &gt)| z / gt).collect(),
            telemetry,
        ))
    }
}

/// The active-fraction objective `(1/N) Σ t_i/x_i` for the
/// interior-point solver (Fig.-1 chains and, via
/// [`crate::dag::EnforcedDagProblem`], DAG node sets). The Hessian is
/// diagonal, so the declared `bandwidth` comes entirely from the
/// constraint adjacency profile the owner computed: `Some(1)` for
/// chains (each edge couples adjacent periods), the topo-order span for
/// DAGs, `None` to force the dense Newton path.
pub(crate) struct ActiveFractionObjective {
    pub(crate) t_over_n: Vec<f64>,
    pub(crate) bandwidth: Option<usize>,
}

impl ConvexProblem for ActiveFractionObjective {
    fn dim(&self) -> usize {
        self.t_over_n.len()
    }
    fn value(&self, x: &[f64]) -> f64 {
        x.iter().zip(&self.t_over_n).map(|(&xi, &ai)| ai / xi).sum()
    }
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        for i in 0..x.len() {
            grad[i] = -self.t_over_n[i] / (x[i] * x[i]);
        }
    }
    fn hessian(&self, x: &[f64], h: &mut Mat) {
        for i in 0..x.len() {
            h[(i, i)] = 2.0 * self.t_over_n[i] / (x[i] * x[i] * x[i]);
        }
    }
    fn bandwidth(&self) -> Option<usize> {
        self.bandwidth
    }
    fn hessian_banded(&self, x: &[f64], h: &mut BandedMat) {
        for (i, xi) in x.iter().enumerate() {
            *h.at_mut(i, i) = 2.0 * self.t_over_n[i] / (xi * xi * xi);
        }
    }
}

/// Exact minimizer of `Σ_i a_i/z_i + λ·c_i·z_i` subject to
/// `z_0 ≥ z_1 ≥ … ≥ z_{n-1}`, `lo_i ≤ z_i ≤ cap`, via
/// pool-adjacent-violators. Each pooled block takes the value
/// `clamp(√(Σa / (λ·Σc)), max lo over block, cap)`.
fn pav_nonincreasing(a: &[f64], c: &[f64], lo: &[f64], cap: f64, lambda: f64) -> Vec<f64> {
    #[derive(Clone, Copy)]
    struct Block {
        a_sum: f64,
        c_sum: f64,
        lo_max: f64,
        len: usize,
        value: f64,
    }
    fn block_value(a_sum: f64, c_sum: f64, lo_max: f64, cap: f64, lambda: f64) -> f64 {
        (a_sum / (lambda * c_sum)).sqrt().clamp(lo_max, cap)
    }

    let n = a.len();
    let mut stack: Vec<Block> = Vec::with_capacity(n);
    for i in 0..n {
        let mut blk = Block {
            a_sum: a[i],
            c_sum: c[i],
            lo_max: lo[i],
            len: 1,
            value: block_value(a[i], c[i], lo[i], cap, lambda),
        };
        // Nonincreasing order: the previous block's value must be >= the
        // new block's. Pool while violated.
        while let Some(prev) = stack.last() {
            if prev.value >= blk.value {
                break;
            }
            let prev = stack.pop().expect("just peeked");
            blk.a_sum += prev.a_sum;
            blk.c_sum += prev.c_sum;
            blk.lo_max = blk.lo_max.max(prev.lo_max);
            blk.len += prev.len;
            blk.value = block_value(blk.a_sum, blk.c_sum, blk.lo_max, cap, lambda);
        }
        stack.push(blk);
    }
    let mut z = Vec::with_capacity(n);
    for blk in stack {
        for _ in 0..blk.len {
            z.push(blk.value);
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    const PAPER_B: [f64; 4] = [1.0, 3.0, 9.0, 6.0];

    fn solve_both(
        pipeline: &PipelineSpec,
        tau0: f64,
        d: f64,
        b: &[f64],
    ) -> (WaitSchedule, WaitSchedule) {
        let params = RtParams::new(tau0, d).unwrap();
        let prob = EnforcedWaitsProblem::new(pipeline, params, b.to_vec());
        let ip = prob.solve(SolveMethod::InteriorPoint).unwrap();
        let wf = prob.solve(SolveMethod::WaterFilling).unwrap();
        (ip, wf)
    }

    #[test]
    fn methods_agree_on_blast_tight_deadline() {
        let p = blast();
        let (ip, wf) = solve_both(&p, 10.0, 5e4, &PAPER_B);
        assert!(
            (ip.active_fraction - wf.active_fraction).abs() < 1e-5,
            "IP {} vs WF {}",
            ip.active_fraction,
            wf.active_fraction
        );
        for (a, b) in ip.periods.iter().zip(&wf.periods) {
            assert!(
                (a - b).abs() / b < 1e-3,
                "{:?} vs {:?}",
                ip.periods,
                wf.periods
            );
        }
    }

    #[test]
    fn methods_agree_on_blast_loose_deadline() {
        let p = blast();
        let (ip, wf) = solve_both(&p, 10.0, 3.5e5, &PAPER_B);
        assert!(
            (ip.active_fraction - wf.active_fraction).abs() < 1e-5,
            "IP {} vs WF {}",
            ip.active_fraction,
            wf.active_fraction
        );
    }

    #[test]
    fn solutions_are_feasible() {
        let p = blast();
        for (tau0, d) in [(1.0, 2e4), (3.0, 5e4), (10.0, 1e5), (100.0, 3.5e5)] {
            let params = RtParams::new(tau0, d).unwrap();
            let prob = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec());
            if let Ok(s) = prob.solve(SolveMethod::WaterFilling) {
                let cs = prob.constraint_set();
                assert!(
                    cs.is_feasible(&s.periods, 1e-6 * d),
                    "WF infeasible at tau0={tau0} D={d}: {:?}",
                    s.periods
                );
                assert!(s.waits.iter().all(|&w| w >= 0.0));
                assert!(s.latency_bound <= d * (1.0 + 1e-9));
            }
            if let Ok(s) = prob.solve(SolveMethod::InteriorPoint) {
                let cs = prob.constraint_set();
                assert!(
                    cs.is_feasible(&s.periods, 1e-6 * d),
                    "IP infeasible at tau0={tau0} D={d}: {:?}",
                    s.periods
                );
            }
        }
    }

    #[test]
    fn larger_deadline_means_lower_active_fraction() {
        let p = blast();
        let mut prev = f64::INFINITY;
        for d in [2.5e4, 5e4, 1e5, 2e5, 3.5e5] {
            let params = RtParams::new(5.0, d).unwrap();
            let prob = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec());
            let s = prob.solve(SolveMethod::WaterFilling).unwrap();
            assert!(
                s.active_fraction <= prev + 1e-12,
                "active fraction should be nonincreasing in D"
            );
            prev = s.active_fraction;
        }
    }

    #[test]
    fn active_fraction_insensitive_to_tau0_when_deadline_binds() {
        // Paper §6.3: enforced-waits is insensitive to τ0 except at the
        // smallest values (where stability binds).
        let p = blast();
        let d = 1e5;
        let af = |tau0: f64| {
            let params = RtParams::new(tau0, d).unwrap();
            EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
                .solve(SolveMethod::WaterFilling)
                .unwrap()
                .active_fraction
        };
        let a50 = af(50.0);
        let a100 = af(100.0);
        assert!(
            (a50 - a100).abs() / a50 < 0.01,
            "large tau0 should not matter: {a50} vs {a100}"
        );
    }

    #[test]
    fn unbounded_deadline_hits_stability_caps() {
        let p = blast();
        let tau0 = 10.0;
        let params = RtParams::new(tau0, 1e12).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec());
        let s = prob.solve(SolveMethod::WaterFilling).unwrap();
        // All periods at stability bounds: x_i = v·τ0/G_i.
        let g = p.total_gains();
        for (i, &gi) in g.iter().enumerate() {
            let cap = 128.0 * tau0 / gi;
            assert!(
                (s.periods[i] - cap).abs() / cap < 1e-9,
                "period {i}: {} vs cap {cap}",
                s.periods[i]
            );
        }
        // And the active fraction equals the analytic limit.
        let limit = dataflow_model::analysis::enforced_limit_active_fraction(&p, prob.params());
        assert!((s.active_fraction - limit).abs() < 1e-9);
    }

    #[test]
    fn infeasible_deadline_reported() {
        let p = blast();
        let params = RtParams::new(10.0, 1000.0).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec());
        assert!(matches!(
            prob.solve(SolveMethod::WaterFilling),
            Err(ScheduleError::Infeasible(_))
        ));
        assert!(matches!(
            prob.solve(SolveMethod::InteriorPoint),
            Err(ScheduleError::Infeasible(_))
        ));
    }

    #[test]
    fn optimistic_backlog_factors() {
        let p = blast();
        let b = EnforcedWaitsProblem::optimistic_backlog(&p);
        assert_eq!(b, vec![1.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn methods_agree_on_random_pipelines() {
        // A light-weight deterministic fuzz over pipeline shapes.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..30 {
            let n = 2 + (next() * 5.0) as usize;
            let mut builder = PipelineSpecBuilder::new(64);
            for i in 0..n {
                let t = 10.0 + next() * 1000.0;
                let gain = 0.05 + next() * 3.0;
                builder = builder.stage(
                    format!("n{i}"),
                    t,
                    GainModel::Empirical {
                        pmf: {
                            // two-point distribution with the target mean
                            let k = gain.ceil().max(1.0) as u32;
                            let p_hi = gain / k as f64;
                            vec![(0, 1.0 - p_hi), (k, p_hi)]
                        },
                    },
                );
            }
            let p = builder.build().unwrap();
            let b: Vec<f64> = p.mean_gains().iter().map(|g| g.ceil().max(1.0)).collect();
            let tau0 = 5.0 + next() * 50.0;
            let xmin = minimal_periods(&p);
            if xmin[0] > 64.0 * tau0 {
                continue; // unstable operating point; skip
            }
            let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
            let d = min_d * (1.2 + next() * 4.0);
            let params = RtParams::new(tau0, d).unwrap();
            let prob = EnforcedWaitsProblem::new(&p, params, b);
            let ip = prob.solve(SolveMethod::InteriorPoint);
            let wf = prob.solve(SolveMethod::WaterFilling);
            match (ip, wf) {
                (Ok(ip), Ok(wf)) => {
                    assert!(
                        (ip.active_fraction - wf.active_fraction).abs()
                            < 1e-4 * wf.active_fraction.max(1e-6),
                        "trial {trial}: IP {} vs WF {} (n={n}, tau0={tau0:.1}, D={d:.0})",
                        ip.active_fraction,
                        wf.active_fraction
                    );
                }
                (ip, wf) => panic!("trial {trial}: solver disagreement: {ip:?} vs {wf:?}"),
            }
        }
    }

    #[test]
    fn traced_solves_emit_solver_spans() {
        let p = blast();
        let params = RtParams::new(10.0, 5e4).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec());
        let mut sink = SpanSink::with_defaults();
        let wf = prob
            .solve_traced(SolveMethod::WaterFilling, &mut sink, 0)
            .unwrap();
        let ip = prob
            .solve_traced(SolveMethod::InteriorPoint, &mut sink, 1)
            .unwrap();
        // Traced solves produce the same schedules as plain ones.
        let plain = prob.solve(SolveMethod::WaterFilling).unwrap();
        assert_eq!(wf.periods, plain.periods);

        let log = sink.finish();
        let count = |attempt: u64, name: &str| {
            log.spans
                .iter()
                .filter(|s| s.track == Track::solver(attempt) && s.name == name)
                .count() as u64
        };
        // Enclosing solve spans at depth 0, one per attempt.
        assert_eq!(count(0, "solve water-filling"), 1);
        assert_eq!(count(1, "solve interior-point"), 1);
        for s in &log.spans {
            if s.name.starts_with("solve ") {
                assert_eq!(s.depth, 0);
                assert!(s.dur > 0.0, "solve span has wall time");
            } else {
                assert_eq!(s.depth, 1, "child spans nest inside the solve");
            }
        }
        // Water-filling: every λ evaluation leaves a span. The bracket
        // loop emits one more span than it counts iterations (the final,
        // passing check), so spans == iterations + 1.
        let wf_tel = wf.telemetry.expect("telemetry");
        assert_eq!(
            count(0, "bisection") + count(0, "bracket"),
            wf_tel.iterations + 1
        );
        // Interior point: one centering span per barrier step, plus the
        // phase-1 span.
        let ip_tel = ip.telemetry.expect("telemetry");
        assert_eq!(count(1, "centering"), ip_tel.barrier_mu.len() as u64);
        assert_eq!(count(1, "phase-1"), 1);
    }

    #[test]
    fn fallback_traced_emits_instant_and_retries_on_next_track() {
        // A filter stage with zero mean gain: water-filling declines,
        // the interior-point fallback must answer.
        let p = PipelineSpecBuilder::new(128)
            .stage("kill", 100.0, GainModel::Deterministic { k: 0 })
            .stage("dead", 50.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap();
        let params = RtParams::new(10.0, 1e6).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, vec![1.0, 1.0]);
        let mut sink = SpanSink::with_defaults();
        let s = prob
            .solve_with_fallback_traced(&mut sink, 0)
            .expect("fallback solves");
        assert!(s.telemetry.as_ref().unwrap().fallback);
        let log = sink.finish();
        assert!(log
            .instants
            .iter()
            .any(|i| i.track == Track::solver(0) && i.name == "kkt-fallback"));
        assert!(log
            .spans
            .iter()
            .any(|s| s.track == Track::solver(1) && s.name == "solve interior-point"));
    }

    #[test]
    fn warm_start_converges_to_cold_schedule_both_methods() {
        let p = blast();
        // Warm each cell from its neighbor's schedule (smaller deadline).
        let deadlines = [3e4, 5e4, 1e5, 2e5, 3.5e5];
        for w in deadlines.windows(2) {
            let (d_prev, d) = (w[0], w[1]);
            let prev = EnforcedWaitsProblem::new(
                &p,
                RtParams::new(10.0, d_prev).unwrap(),
                PAPER_B.to_vec(),
            )
            .solve(SolveMethod::WaterFilling)
            .unwrap();
            let hint = WarmStart::from_schedule(&prev);
            let prob =
                EnforcedWaitsProblem::new(&p, RtParams::new(10.0, d).unwrap(), PAPER_B.to_vec());
            for method in [SolveMethod::WaterFilling, SolveMethod::InteriorPoint] {
                let cold = prob.solve(method).unwrap();
                let warm = prob.solve_warm(method, &hint).unwrap();
                assert!(warm.telemetry.as_ref().unwrap().warm_start);
                assert!(
                    (warm.active_fraction - cold.active_fraction).abs() < 1e-5,
                    "{method:?} at D={d}: warm {} vs cold {}",
                    warm.active_fraction,
                    cold.active_fraction
                );
                for (a, b) in warm.periods.iter().zip(&cold.periods) {
                    assert!(
                        (a - b).abs() / b < 1e-3,
                        "{method:?} at D={d}: {:?} vs {:?}",
                        warm.periods,
                        cold.periods
                    );
                }
            }
        }
    }

    #[test]
    fn warm_start_uses_fewer_iterations_on_blast() {
        // Acceptance criterion: mean interior-point iterations with
        // warm-start enabled < disabled on the Table-1 BLAST pipeline.
        // The same must hold for water-filling's λ-search.
        let p = blast();
        let deadlines = [3e4, 5e4, 8e4, 1.2e5, 2e5, 3.5e5];
        let mut prev: Option<WaitSchedule> = None;
        let mut cold_ip = 0u64;
        let mut warm_ip = 0u64;
        let mut cold_wf = 0u64;
        let mut warm_wf = 0u64;
        let mut warmed = 0u32;
        for &d in &deadlines {
            let prob =
                EnforcedWaitsProblem::new(&p, RtParams::new(10.0, d).unwrap(), PAPER_B.to_vec());
            let ip_cold = prob.solve(SolveMethod::InteriorPoint).unwrap();
            let wf_cold = prob.solve(SolveMethod::WaterFilling).unwrap();
            if let Some(prev) = &prev {
                let hint = WarmStart::from_schedule(prev);
                let ip_warm = prob.solve_warm(SolveMethod::InteriorPoint, &hint).unwrap();
                let wf_warm = prob.solve_warm(SolveMethod::WaterFilling, &hint).unwrap();
                cold_ip += ip_cold.telemetry.as_ref().unwrap().iterations;
                warm_ip += ip_warm.telemetry.as_ref().unwrap().iterations;
                cold_wf += wf_cold.telemetry.as_ref().unwrap().iterations;
                warm_wf += wf_warm.telemetry.as_ref().unwrap().iterations;
                warmed += 1;
            }
            prev = Some(wf_cold);
        }
        assert!(warmed > 0);
        assert!(
            warm_ip < cold_ip,
            "mean warm IP iterations {} should beat cold {}",
            warm_ip as f64 / warmed as f64,
            cold_ip as f64 / warmed as f64
        );
        assert!(
            warm_wf < cold_wf,
            "mean warm WF iterations {} should beat cold {}",
            warm_wf as f64 / warmed as f64,
            cold_wf as f64 / warmed as f64
        );
    }

    #[test]
    fn mismatched_warm_hint_is_ignored_not_fatal() {
        let p = blast();
        let prob =
            EnforcedWaitsProblem::new(&p, RtParams::new(10.0, 5e4).unwrap(), PAPER_B.to_vec());
        let hint = WarmStart {
            periods: vec![100.0, 200.0], // wrong arity for a 4-stage pipeline
        };
        let s = prob.solve_warm(SolveMethod::WaterFilling, &hint).unwrap();
        let cold = prob.solve(SolveMethod::WaterFilling).unwrap();
        assert_eq!(s.periods, cold.periods);
        // The hint was dropped, so the solve ran cold.
        assert!(!s.telemetry.as_ref().unwrap().warm_start);
    }

    #[test]
    fn warm_fallback_still_answers_on_zero_gain_pipelines() {
        let p = PipelineSpecBuilder::new(128)
            .stage("kill", 100.0, GainModel::Deterministic { k: 0 })
            .stage("dead", 50.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap();
        let params = RtParams::new(10.0, 1e6).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, vec![1.0, 1.0]);
        let cold = prob.solve_with_fallback().unwrap();
        let warm = prob
            .solve_with_fallback_warm(&WarmStart::from_schedule(&cold))
            .unwrap();
        let t = warm.telemetry.as_ref().unwrap();
        assert!(t.fallback && t.warm_start);
        assert!((warm.active_fraction - cold.active_fraction).abs() < 1e-5);
    }

    fn deep_chain(n: usize) -> PipelineSpec {
        let mut builder = PipelineSpecBuilder::new(128);
        for i in 0..n {
            builder = builder.stage(
                format!("s{i}"),
                100.0 + i as f64,
                GainModel::Bernoulli { p: 0.9 },
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn deep_chain_ip_uses_banded_factorization_and_matches_water_filling() {
        let p = deep_chain(64);
        let b = EnforcedWaitsProblem::optimistic_backlog(&p);
        let min_d: f64 = minimal_periods(&p)
            .iter()
            .zip(&b)
            .map(|(x, bi)| x * bi)
            .sum();
        let params = RtParams::new(5.0, min_d * 2.0).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, b);
        let ip = prob.solve(SolveMethod::InteriorPoint).unwrap();
        let wf = prob.solve(SolveMethod::WaterFilling).unwrap();
        let tel = ip.telemetry.as_ref().unwrap();
        assert_eq!(tel.factorization.as_deref(), Some("banded"));
        assert_eq!(tel.bandwidth, Some(1));
        // The analytic interior seed replaces phase-1 at depth.
        assert_eq!(tel.phase1_iterations, Some(0));
        assert!(
            (ip.active_fraction - wf.active_fraction).abs() < 1e-5,
            "IP {} vs WF {}",
            ip.active_fraction,
            wf.active_fraction
        );
        for (a, b) in ip.periods.iter().zip(&wf.periods) {
            assert!((a - b).abs() / b < 1e-3, "banded IP diverged from WF");
        }
        assert!(prob.constraint_set().is_feasible(&ip.periods, 1e-6 * min_d));
    }

    #[test]
    fn deep_chain_warm_ip_stays_banded_and_converges() {
        let p = deep_chain(48);
        let b = EnforcedWaitsProblem::optimistic_backlog(&p);
        let min_d: f64 = minimal_periods(&p)
            .iter()
            .zip(&b)
            .map(|(x, bi)| x * bi)
            .sum();
        let prob =
            EnforcedWaitsProblem::new(&p, RtParams::new(5.0, min_d * 2.0).unwrap(), b.clone());
        let cold = prob.solve(SolveMethod::InteriorPoint).unwrap();
        let near = EnforcedWaitsProblem::new(&p, RtParams::new(5.0, min_d * 2.1).unwrap(), b);
        let warm = near
            .solve_warm(SolveMethod::InteriorPoint, &WarmStart::from_schedule(&cold))
            .unwrap();
        let cold_near = near.solve(SolveMethod::InteriorPoint).unwrap();
        let tel = warm.telemetry.as_ref().unwrap();
        assert!(tel.warm_start);
        assert_eq!(tel.factorization.as_deref(), Some("banded"));
        assert!((warm.active_fraction - cold_near.active_fraction).abs() < 1e-5);
    }

    #[test]
    fn paper_scale_ip_keeps_dense_factorization() {
        let p = blast();
        let prob =
            EnforcedWaitsProblem::new(&p, RtParams::new(10.0, 5e4).unwrap(), PAPER_B.to_vec());
        let s = prob.solve(SolveMethod::InteriorPoint).unwrap();
        let tel = s.telemetry.as_ref().unwrap();
        assert_eq!(tel.factorization.as_deref(), Some("dense"));
        assert_eq!(tel.bandwidth, None);
        // Water-filling telemetry does not claim a factorization at all.
        let wf = prob.solve(SolveMethod::WaterFilling).unwrap();
        assert_eq!(wf.telemetry.as_ref().unwrap().factorization, None);
    }

    #[test]
    fn pav_respects_monotonicity_and_bounds() {
        let a = [5.0, 1.0, 3.0, 0.5];
        let c = [1.0, 2.0, 0.5, 1.0];
        let lo = [0.1, 0.2, 0.4, 0.3];
        let cap = 100.0;
        for lambda in [1e-4, 1e-2, 1.0, 100.0] {
            let z = pav_nonincreasing(&a, &c, &lo, cap, lambda);
            for w in z.windows(2) {
                assert!(w[0] >= w[1] - 1e-12, "not nonincreasing: {z:?}");
            }
            for (zi, &loi) in z.iter().zip(&lo) {
                assert!(
                    *zi >= loi - 1e-12 && *zi <= cap + 1e-12,
                    "out of box: {z:?}"
                );
            }
        }
    }

    #[test]
    fn pav_matches_bruteforce_on_small_instance() {
        // 3 variables, grid brute force.
        let a = [2.0, 0.3, 1.0];
        let c = [1.0, 1.0, 1.0];
        let lo = [0.5, 0.5, 0.5];
        let cap = 5.0;
        let lambda = 0.7;
        let obj = |z: &[f64]| -> f64 {
            z.iter()
                .zip(&a)
                .zip(&c)
                .map(|((&zi, &ai), &ci)| ai / zi + lambda * ci * zi)
                .sum()
        };
        let z = pav_nonincreasing(&a, &c, &lo, cap, lambda);
        let steps = 80;
        let mut best = f64::INFINITY;
        for i0 in 0..=steps {
            let z0 = lo[0] + (cap - lo[0]) * i0 as f64 / steps as f64;
            for i1 in 0..=steps {
                let z1 = lo[1] + (cap - lo[1]) * i1 as f64 / steps as f64;
                if z1 > z0 {
                    continue;
                }
                for i2 in 0..=steps {
                    let z2 = lo[2] + (cap - lo[2]) * i2 as f64 / steps as f64;
                    if z2 > z1 {
                        continue;
                    }
                    best = best.min(obj(&[z0, z1, z2]));
                }
            }
        }
        assert!(
            obj(&z) <= best + 1e-3,
            "PAV {} worse than brute force {best}",
            obj(&z)
        );
    }
}
