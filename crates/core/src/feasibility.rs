//! Schedulability analysis for the enforced-waits strategy.
//!
//! Before optimizing, we decide whether *any* choice of waits satisfies
//! the constraints of the paper's Figure 1. The analysis rests on the
//! **minimal period vector**: the componentwise-smallest firing periods
//! compatible with the per-edge stability constraints and `x_i ≥ t_i`.
//!
//! The edge constraint `x_i · g_{i-1} ≤ x_{i-1}` reads "upstream must
//! fire at least `g_{i-1}` times as often as downstream"; it *raises*
//! the floor of upstream periods when a downstream stage is slow. The
//! minimal periods therefore come from a backward recursion
//!
//! ```text
//! x̂_{N-1} = t_{N-1},     x̂_i = max(t_i, g_i · x̂_{i+1})
//! ```
//!
//! Feasibility then requires (a) `x̂_0 ≤ v·τ0` (the head can keep up with
//! arrivals even at its minimal period) and (b) `Σ b_i·x̂_i ≤ D` (the
//! deadline is loose enough at the all-minimal point, which minimizes
//! the weighted period sum because every other feasible point dominates
//! it componentwise).

use dataflow_model::{PipelineSpec, RtParams};
use std::fmt;

/// Why no enforced-waits schedule exists for an operating point.
#[derive(Debug, Clone, PartialEq)]
pub enum FeasibilityError {
    /// Even firing at its minimal period, the head node cannot keep up
    /// with the arrival rate: `x̂_0 > v·τ0`.
    ArrivalRateTooHigh {
        /// Minimal achievable head period.
        min_head_period: f64,
        /// Largest admissible head period `v·τ0`.
        max_head_period: f64,
    },
    /// The deadline is below the smallest achievable latency bound.
    DeadlineTooTight {
        /// `Σ b_i·x̂_i`, the smallest achievable bound.
        min_deadline: f64,
        /// The requested deadline.
        deadline: f64,
    },
    /// Backlog factor vector has the wrong length or non-positive
    /// entries.
    BadBacklogFactors {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for FeasibilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeasibilityError::ArrivalRateTooHigh {
                min_head_period,
                max_head_period,
            } => write!(
                f,
                "arrival rate too high: head period must be >= {min_head_period:.3} but stability \
                 requires <= v*tau0 = {max_head_period:.3}"
            ),
            FeasibilityError::DeadlineTooTight {
                min_deadline,
                deadline,
            } => write!(
                f,
                "deadline {deadline:.3} below minimum achievable latency bound {min_deadline:.3}"
            ),
            FeasibilityError::BadBacklogFactors { reason } => {
                write!(f, "bad backlog factors: {reason}")
            }
        }
    }
}

impl std::error::Error for FeasibilityError {}

/// The componentwise-minimal feasible firing periods `x̂` (see module
/// docs). Every feasible period vector dominates this one.
pub fn minimal_periods(pipeline: &PipelineSpec) -> Vec<f64> {
    let t = pipeline.service_times();
    let g = pipeline.mean_gains();
    let n = t.len();
    let mut x = t.clone();
    for i in (0..n.saturating_sub(1)).rev() {
        // Edge i → i+1 requires x_i >= g_i * x_{i+1}.
        x[i] = x[i].max(g[i] * x[i + 1]);
    }
    x
}

/// Check whether the enforced-waits problem (paper Fig. 1) has any
/// feasible point for this pipeline, operating point, and backlog
/// factors `b`.
pub fn check_enforced_feasibility(
    pipeline: &PipelineSpec,
    params: &RtParams,
    b: &[f64],
) -> Result<(), FeasibilityError> {
    if b.len() != pipeline.len() {
        return Err(FeasibilityError::BadBacklogFactors {
            reason: format!("expected {} factors, got {}", pipeline.len(), b.len()),
        });
    }
    if let Some(bad) = b.iter().find(|&&bi| bi <= 0.0 || !bi.is_finite()) {
        return Err(FeasibilityError::BadBacklogFactors {
            reason: format!("factor {bad} is not strictly positive and finite"),
        });
    }

    let xmin = minimal_periods(pipeline);
    let max_head = pipeline.vector_width() as f64 * params.tau0;
    if xmin[0] > max_head {
        return Err(FeasibilityError::ArrivalRateTooHigh {
            min_head_period: xmin[0],
            max_head_period: max_head,
        });
    }
    let min_deadline: f64 = xmin.iter().zip(b).map(|(&x, &bi)| bi * x).sum();
    if min_deadline > params.deadline {
        return Err(FeasibilityError::DeadlineTooTight {
            min_deadline,
            deadline: params.deadline,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn minimal_periods_backward_recursion() {
        let p = blast();
        let x = minimal_periods(&p);
        // Stage 3: its own service time.
        assert_eq!(x[3], 2753.0);
        // Stage 2: max(402, 0.0332·2753 ≈ 91.4) = 402.
        assert_eq!(x[2], 402.0);
        // Stage 1: max(955, g1·402). g1 is the censored-Poisson mean ≈ 1.92,
        // so g1·402 ≈ 772 < 955.
        assert_eq!(x[1], 955.0);
        // Stage 0: max(287, 0.379·955 ≈ 362) = 362: the edge constraint
        // raises the head's floor above its own service time.
        assert!((x[0] - 0.379 * 955.0).abs() < 1e-9, "{}", x[0]);
    }

    #[test]
    fn minimal_periods_expansion_raises_upstream() {
        // A strongly expanding stage forces its *upstream* to fire faster
        // relative to downstream, i.e. raises downstream requirements on
        // the upstream period floor.
        let p = PipelineSpecBuilder::new(32)
            .stage("a", 10.0, GainModel::Deterministic { k: 8 })
            .stage("b", 50.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap();
        let x = minimal_periods(&p);
        assert_eq!(x[1], 50.0);
        assert_eq!(x[0], 400.0); // 8 × 50 > 10
    }

    #[test]
    fn feasible_blast_point_passes() {
        let p = blast();
        let params = RtParams::new(10.0, 2e5).unwrap();
        assert!(check_enforced_feasibility(&p, &params, &[1.0, 3.0, 9.0, 6.0]).is_ok());
    }

    #[test]
    fn tight_deadline_rejected_with_bound() {
        let p = blast();
        let b = [1.0, 3.0, 9.0, 6.0];
        let xmin = minimal_periods(&p);
        let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
        let params = RtParams::new(10.0, min_d - 1.0).unwrap();
        match check_enforced_feasibility(&p, &params, &b) {
            Err(FeasibilityError::DeadlineTooTight { min_deadline, .. }) => {
                assert!((min_deadline - min_d).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Just above the bound: feasible.
        let params = RtParams::new(10.0, min_d + 1.0).unwrap();
        assert!(check_enforced_feasibility(&p, &params, &b).is_ok());
    }

    #[test]
    fn arrival_rate_limit() {
        let p = blast();
        // x̂_0 ≈ 362; need v·τ0 ≥ 362 → τ0 ≥ 2.83. τ0 = 2 should fail.
        let params = RtParams::new(2.0, 1e9).unwrap();
        assert!(matches!(
            check_enforced_feasibility(&p, &params, &[1.0; 4]),
            Err(FeasibilityError::ArrivalRateTooHigh { .. })
        ));
        let params = RtParams::new(3.0, 1e9).unwrap();
        assert!(check_enforced_feasibility(&p, &params, &[1.0; 4]).is_ok());
    }

    #[test]
    fn backlog_factor_validation() {
        let p = blast();
        let params = RtParams::new(10.0, 1e6).unwrap();
        assert!(matches!(
            check_enforced_feasibility(&p, &params, &[1.0, 1.0]),
            Err(FeasibilityError::BadBacklogFactors { .. })
        ));
        assert!(matches!(
            check_enforced_feasibility(&p, &params, &[1.0, 0.0, 1.0, 1.0]),
            Err(FeasibilityError::BadBacklogFactors { .. })
        ));
        assert!(matches!(
            check_enforced_feasibility(&p, &params, &[1.0, f64::NAN, 1.0, 1.0]),
            Err(FeasibilityError::BadBacklogFactors { .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = FeasibilityError::ArrivalRateTooHigh {
            min_head_period: 362.0,
            max_head_period: 256.0,
        };
        assert!(e.to_string().contains("arrival rate"));
        let e = FeasibilityError::DeadlineTooTight {
            min_deadline: 100.0,
            deadline: 50.0,
        };
        assert!(e.to_string().contains("deadline"));
    }
}
