//! Extension: enforced waits with *flexible* processor shares.
//!
//! The paper's implementation model (§2.2) fixes each node's processor
//! share at `1/N`; its conclusion (§7) asks about "more coarse-grained
//! division of processor time between pipeline stages". This module
//! implements the natural generalization: give node `i` a share
//! `φ_i > 0` with `Σ φ_i ≤ 1`, so a firing that needs `c_i` raw device
//! cycles takes `c_i / φ_i` wall-clock cycles under its share.
//!
//! Two observations make the joint `(φ, x)` design problem collapse
//! back to the Fig.-1 machinery:
//!
//! 1. **Utilization is share-independent.** The fraction of total
//!    processor time consumed is `Σ φ_i · (c_i/φ_i) / x_i = Σ c_i/x_i`,
//!    no matter how shares are assigned.
//! 2. **Shares only affect feasibility**, through `x_i ≥ c_i/φ_i`.
//!    Given any period vector `x`, the cheapest shares satisfying it
//!    are `φ_i = c_i/x_i`, which fit the processor iff
//!    `Σ c_i/x_i ≤ 1` — i.e. iff the *utilization itself* is at most 1.
//!
//! So the optimal flexible-share design solves the Fig.-1 program with
//! the per-node floors `x_i ≥ t_i` **removed** (only positivity
//! remains), and is feasible exactly when its optimal value is ≤ 1.
//! Equal shares are a special case, so the flexible optimum is never
//! worse — and is strictly better whenever some equal-share floor
//! `x_i ≥ N·c_i` binds, i.e. at tight deadlines with skewed service
//! times (BLAST's alignment stage is 10× its seeding stage).

use crate::enforced::{EnforcedWaitsProblem, SolveMethod};
use crate::feasibility::FeasibilityError;
use crate::schedule::ScheduleError;
use dataflow_model::{GainModel, PipelineSpec, PipelineSpecBuilder, RtParams};
use serde::{Deserialize, Serialize};

/// A flexible-share schedule: periods, the shares realizing them, and
/// the processor utilization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlexibleSchedule {
    /// Firing periods `x_i` (cycles).
    pub periods: Vec<f64>,
    /// Processor shares `φ_i = c_i / x_i` (sum ≤ 1).
    pub shares: Vec<f64>,
    /// Wall-clock service times under the chosen shares,
    /// `t_i = c_i/φ_i = x_i` — every node is busy for exactly its whole
    /// period, waiting zero: flexible shares convert waiting into a
    /// smaller share instead.
    pub service_times: Vec<f64>,
    /// Processor utilization `Σ c_i/x_i` (≤ 1 for a valid schedule).
    pub utilization: f64,
    /// Worst-case latency bound `Σ b_i·x_i`.
    pub latency_bound: f64,
}

/// The flexible-shares design problem.
#[derive(Debug, Clone)]
pub struct FlexibleSharesProblem<'a> {
    pipeline: &'a PipelineSpec,
    params: RtParams,
    b: Vec<f64>,
}

impl<'a> FlexibleSharesProblem<'a> {
    /// Construct from a pipeline whose service times are the paper's
    /// equal-share `t_i` (so raw device cycles are `c_i = t_i / N`).
    pub fn new(pipeline: &'a PipelineSpec, params: RtParams, b: Vec<f64>) -> Self {
        FlexibleSharesProblem {
            pipeline,
            params,
            b,
        }
    }

    /// Raw per-firing device cycles `c_i = t_i / N`.
    pub fn raw_cycles(&self) -> Vec<f64> {
        let n = self.pipeline.len() as f64;
        self.pipeline
            .service_times()
            .iter()
            .map(|t| t / n)
            .collect()
    }

    /// Solve the flexible-share program.
    ///
    /// Internally this builds a *relaxed pipeline* whose service times
    /// are a tiny ε (removing the per-node floors) and reuses the
    /// Fig.-1 water-filling solver; the resulting minimal utilization
    /// decides feasibility.
    pub fn solve(&self) -> Result<FlexibleSchedule, ScheduleError> {
        let c = self.raw_cycles();
        let n = self.pipeline.len();
        if self.b.len() != n || self.b.iter().any(|&bi| bi <= 0.0 || bi.is_nan()) {
            return Err(ScheduleError::Infeasible(
                FeasibilityError::BadBacklogFactors {
                    reason: "need one strictly positive factor per stage".into(),
                },
            ));
        }

        // Relaxed pipeline: floors shrunk to ε of the raw cost, gains
        // unchanged. The Fig.-1 solver then optimizes the same objective
        // shape (Σ (t_i/N)/x_i with t_i = N·ε·c_i ∝ c_i) over the same
        // chain/head/deadline constraints.
        let eps = 1e-6;
        let mut builder = PipelineSpecBuilder::new(self.pipeline.vector_width());
        for (node, &ci) in self.pipeline.nodes().iter().zip(&c) {
            builder = builder.stage(
                node.name.clone(),
                (ci * eps).max(f64::MIN_POSITIVE),
                node.gain.clone(),
            );
        }
        let relaxed = builder
            .build()
            .map_err(|e| ScheduleError::Solver(format!("relaxed pipeline: {e}")))?;

        let sched = EnforcedWaitsProblem::new(&relaxed, self.params, self.b.clone())
            .solve(SolveMethod::WaterFilling)?;

        // Evaluate the *true* utilization at the optimized periods.
        let utilization: f64 = c.iter().zip(&sched.periods).map(|(&ci, &xi)| ci / xi).sum();
        if utilization > 1.0 + 1e-9 {
            return Err(ScheduleError::Infeasible(
                FeasibilityError::DeadlineTooTight {
                    min_deadline: self.params.deadline * utilization,
                    deadline: self.params.deadline,
                },
            ));
        }
        let shares: Vec<f64> = c
            .iter()
            .zip(&sched.periods)
            .map(|(&ci, &xi)| ci / xi)
            .collect();
        let latency_bound = sched
            .periods
            .iter()
            .zip(&self.b)
            .map(|(&x, &bi)| bi * x)
            .sum();
        Ok(FlexibleSchedule {
            service_times: sched.periods.clone(),
            shares,
            utilization,
            latency_bound,
            periods: sched.periods,
        })
    }

    /// The equal-share (paper) baseline at the same operating point, for
    /// comparison.
    pub fn equal_share_baseline(&self) -> Result<f64, ScheduleError> {
        EnforcedWaitsProblem::new(self.pipeline, self.params, self.b.clone())
            .solve(SolveMethod::WaterFilling)
            .map(|s| s.active_fraction)
    }
}

/// Convenience: the pipeline with gains preserved but service times
/// replaced, used by tests and experiments.
pub fn with_service_times(p: &PipelineSpec, times: &[f64]) -> PipelineSpec {
    assert_eq!(times.len(), p.len());
    let mut b = PipelineSpecBuilder::new(p.vector_width());
    for (node, &t) in p.nodes().iter().zip(times) {
        b = b.stage(node.name.clone(), t, node.gain.clone());
    }
    b.build().expect("times validated by caller")
}

/// A convenience constructor used in docs/tests: a pipeline with the
/// given service times and all-deterministic unit gains.
pub fn uniform_pipeline(times: &[f64], v: u32) -> PipelineSpec {
    let mut b = PipelineSpecBuilder::new(v);
    for (i, &t) in times.iter().enumerate() {
        b = b.stage(format!("s{i}"), t, GainModel::Deterministic { k: 1 });
    }
    b.build().expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    const PAPER_B: [f64; 4] = [1.0, 3.0, 9.0, 6.0];

    #[test]
    fn shares_sum_to_at_most_one_and_realize_periods() {
        let p = blast();
        let params = RtParams::new(10.0, 5e4).unwrap();
        let prob = FlexibleSharesProblem::new(&p, params, PAPER_B.to_vec());
        let s = prob.solve().unwrap();
        assert!(s.shares.iter().sum::<f64>() <= 1.0 + 1e-9);
        assert!(s.shares.iter().all(|&f| f > 0.0));
        let c = prob.raw_cycles();
        for ((ci, xi), fi) in c.iter().zip(&s.periods).zip(&s.shares) {
            // x_i = c_i / φ_i exactly (service time fills the period).
            assert!((xi - ci / fi).abs() < 1e-6 * xi, "{xi} vs {}", ci / fi);
        }
        assert!(s.latency_bound <= params.deadline * (1.0 + 1e-9));
    }

    #[test]
    fn flexible_never_worse_than_equal_shares() {
        let p = blast();
        for (tau0, d) in [(5.0, 3e4), (10.0, 5e4), (10.0, 1e5), (30.0, 2e5)] {
            let params = RtParams::new(tau0, d).unwrap();
            let prob = FlexibleSharesProblem::new(&p, params, PAPER_B.to_vec());
            let flexible = prob.solve().unwrap().utilization;
            let equal = prob.equal_share_baseline().unwrap();
            assert!(
                flexible <= equal + 1e-6,
                "tau0={tau0} D={d}: flexible {flexible} vs equal {equal}"
            );
        }
    }

    #[test]
    fn flexible_strictly_better_at_tight_deadlines() {
        // At a deadline near the equal-share minimum (~2.34e4 with the
        // paper's b), the equal-share floors bind hard; flexible shares
        // dodge them.
        let p = blast();
        let params = RtParams::new(10.0, 2.5e4).unwrap();
        let prob = FlexibleSharesProblem::new(&p, params, PAPER_B.to_vec());
        let flexible = prob.solve().unwrap().utilization;
        let equal = prob.equal_share_baseline().unwrap();
        assert!(
            flexible < equal * 0.9,
            "expected a clear win at a tight deadline: {flexible} vs {equal}"
        );
    }

    #[test]
    fn flexible_schedules_below_equal_share_min_deadline() {
        // Equal shares are infeasible below Σ b_i·x̂_i ≈ 2.34e4. The
        // flexible minimum is (Σ √(c_i·b_i))² ≈ 1.68e4 (water-filling
        // with the utilization-1 budget), so D = 1.8e4 separates the
        // two regimes.
        let p = blast();
        let params = RtParams::new(10.0, 1.8e4).unwrap();
        let prob = FlexibleSharesProblem::new(&p, params, PAPER_B.to_vec());
        assert!(
            prob.equal_share_baseline().is_err(),
            "equal shares should be infeasible"
        );
        let s = prob.solve().unwrap();
        assert!(s.utilization <= 1.0 + 1e-9, "{}", s.utilization);
    }

    #[test]
    fn overload_is_reported_infeasible() {
        // Deadline so tight that even utilization 1 cannot meet it:
        // Σ b_i x_i ≤ D forces Σ c_i/x_i > 1.
        let p = blast();
        let params = RtParams::new(10.0, 1500.0).unwrap();
        let prob = FlexibleSharesProblem::new(&p, params, PAPER_B.to_vec());
        assert!(matches!(prob.solve(), Err(ScheduleError::Infeasible(_))));
    }

    #[test]
    fn shares_skew_toward_expensive_stages() {
        let p = blast();
        let params = RtParams::new(10.0, 3e4).unwrap();
        let s = FlexibleSharesProblem::new(&p, params, PAPER_B.to_vec())
            .solve()
            .unwrap();
        // The alignment stage (c = 688 raw cycles) should claim more of
        // the processor than the seeding stage (c = 72).
        assert!(
            s.shares[3] > s.shares[0],
            "shares should follow cost: {:?}",
            s.shares
        );
    }

    #[test]
    fn helpers_build_pipelines() {
        let p = uniform_pipeline(&[10.0, 20.0], 8);
        assert_eq!(p.len(), 2);
        let q = with_service_times(&p, &[5.0, 7.0]);
        assert_eq!(q.service_times(), vec![5.0, 7.0]);
        assert_eq!(q.vector_width(), 8);
    }
}
