//! Schedulability frontiers: the boundary of the feasible (τ0, D)
//! region for each strategy.
//!
//! The paper observes (§6.1) that deadlines below 2×10⁴ cycles admit no
//! feasible realization by either strategy, and its Figure 3 surfaces
//! have visible infeasible regions at fast arrivals. This module
//! computes those boundaries *analytically*:
//!
//! * **Enforced waits** is feasible iff `τ0 ≥ x̂_0/v` (head stability at
//!   the minimal periods) and `D ≥ Σ b_i·x̂_i` — both closed forms.
//! * **Monolithic** is feasible iff some block size `M` satisfies both
//!   Fig.-2 constraints; the smallest workable deadline at a given τ0
//!   is `min_M { b·M·τ0 + S·T̄(M) : T̄(M) ≤ M·τ0 }`, found by scanning
//!   `M` over the stability region (the expression eventually grows
//!   linearly in `M`, so the scan can stop once it has risen past the
//!   incumbent for a stretch).

use crate::feasibility::minimal_periods;
use dataflow_model::analysis::{monolithic_block_time, monolithic_latency_bound};
use dataflow_model::{PipelineSpec, RtParams};
use serde::{Deserialize, Serialize};

/// Smallest inter-arrival time the enforced-waits strategy can sustain
/// (any deadline): `x̂_0 / v`.
pub fn enforced_min_tau0(pipeline: &PipelineSpec) -> f64 {
    minimal_periods(pipeline)[0] / pipeline.vector_width() as f64
}

/// Smallest deadline the enforced-waits strategy can meet at `tau0`
/// with factors `b`, or `None` if the arrival rate itself is
/// unsustainable.
pub fn enforced_min_deadline(pipeline: &PipelineSpec, b: &[f64], tau0: f64) -> Option<f64> {
    assert_eq!(b.len(), pipeline.len());
    if tau0 < enforced_min_tau0(pipeline) {
        return None;
    }
    let xmin = minimal_periods(pipeline);
    Some(xmin.iter().zip(b).map(|(&x, &bi)| bi * x).sum())
}

/// Asymptotic monolithic arrival-rate limit: `Σ G_i·t_i / v` (the
/// per-item processing cost at perfect vector packing). Finite block
/// sizes are slightly worse due to ceilings.
pub fn monolithic_min_tau0_asymptote(pipeline: &PipelineSpec) -> f64 {
    let v = pipeline.vector_width() as f64;
    pipeline
        .nodes()
        .iter()
        .zip(pipeline.total_gains())
        .map(|(n, g)| n.service_time * g)
        .sum::<f64>()
        / v
}

/// Smallest deadline the monolithic strategy can meet at `tau0` with
/// knobs `(b, s)`, or `None` if no block size is stable. `m_cap` bounds
/// the scan (blocks beyond it only increase the accumulation term).
pub fn monolithic_min_deadline(
    pipeline: &PipelineSpec,
    b: f64,
    s: f64,
    tau0: f64,
    m_cap: u64,
) -> Option<f64> {
    let params = RtParams::new(tau0, f64::MAX / 4.0).expect("placeholder deadline");
    let mut best: Option<f64> = None;
    let mut rising_streak = 0u32;
    for m in 1..=m_cap {
        if monolithic_block_time(pipeline, m) > m as f64 * tau0 {
            continue; // unstable at this block size
        }
        let bound = monolithic_latency_bound(pipeline, &params, m, b, s);
        match best {
            Some(cur) if bound >= cur => {
                rising_streak += 1;
                // The bound is eventually increasing in M (the b·M·τ0
                // term dominates); a long rising streak past the
                // incumbent means the minimum is behind us.
                if rising_streak > 4 * pipeline.vector_width() {
                    break;
                }
            }
            _ => {
                rising_streak = 0;
                best = Some(best.map_or(bound, |cur: f64| cur.min(bound)));
            }
        }
    }
    best
}

/// A frontier sample: at inter-arrival `tau0`, the minimum feasible
/// deadline of each strategy (`None` = unsustainable arrival rate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Inter-arrival time.
    pub tau0: f64,
    /// Enforced-waits minimum deadline.
    pub enforced: Option<f64>,
    /// Monolithic minimum deadline.
    pub monolithic: Option<f64>,
}

/// Sample both frontiers over the given τ0 values.
pub fn frontier(
    pipeline: &PipelineSpec,
    enforced_b: &[f64],
    mono_b: f64,
    mono_s: f64,
    tau0s: &[f64],
) -> Vec<FrontierPoint> {
    tau0s
        .iter()
        .map(|&tau0| FrontierPoint {
            tau0,
            enforced: enforced_min_deadline(pipeline, enforced_b, tau0),
            monolithic: monolithic_min_deadline(pipeline, mono_b, mono_s, tau0, 100_000),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforced::{EnforcedWaitsProblem, SolveMethod};
    use crate::monolithic::MonolithicProblem;
    use dataflow_model::GainModel;
    use dataflow_model::PipelineSpecBuilder;

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    const PAPER_B: [f64; 4] = [1.0, 3.0, 9.0, 6.0];

    #[test]
    fn enforced_min_tau0_matches_head_stability() {
        let p = blast();
        let t = enforced_min_tau0(&p);
        assert!((t - 0.379 * 955.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn enforced_frontier_is_exact() {
        // Exactly at the frontier: feasible; a hair below: not.
        let p = blast();
        let tau0 = 10.0;
        let d_min = enforced_min_deadline(&p, &PAPER_B, tau0).unwrap();
        let solve = |d: f64| {
            EnforcedWaitsProblem::new(&p, RtParams::new(tau0, d).unwrap(), PAPER_B.to_vec())
                .solve(SolveMethod::WaterFilling)
        };
        assert!(solve(d_min + 1.0).is_ok());
        assert!(solve(d_min - 1.0).is_err());
        // The paper reports no feasible realizations below 2e4; our
        // analytic frontier with the paper's b sits at ≈ 2.34e4.
        assert!(d_min > 2.0e4 && d_min < 2.7e4, "{d_min}");
    }

    #[test]
    fn enforced_frontier_none_at_unsustainable_rate() {
        let p = blast();
        assert!(enforced_min_deadline(&p, &PAPER_B, 2.0).is_none());
    }

    #[test]
    fn monolithic_frontier_brackets_the_solver() {
        let p = blast();
        for tau0 in [10.0, 30.0, 100.0] {
            let d_min = monolithic_min_deadline(&p, 1.0, 1.0, tau0, 100_000).unwrap();
            let solve = |d: f64| {
                MonolithicProblem::new(&p, RtParams::new(tau0, d).unwrap(), 1.0, 1.0).solve()
            };
            assert!(solve(d_min * 1.001).is_ok(), "tau0={tau0}, d={d_min}");
            assert!(solve(d_min * 0.98).is_err(), "tau0={tau0}, d={d_min}");
        }
    }

    #[test]
    fn monolithic_min_tau0_asymptote_value() {
        let p = blast();
        let a = monolithic_min_tau0_asymptote(&p);
        assert!((a - 7.9).abs() < 0.1, "{a}");
        // No stable block size below the asymptote.
        assert!(monolithic_min_deadline(&p, 1.0, 1.0, a * 0.95, 50_000).is_none());
    }

    #[test]
    fn frontier_sampling_shape() {
        let p = blast();
        let pts = frontier(&p, &PAPER_B, 1.0, 1.0, &[1.0, 5.0, 10.0, 50.0]);
        assert_eq!(pts.len(), 4);
        // τ0 = 1: both unsustainable.
        assert!(pts[0].enforced.is_none() && pts[0].monolithic.is_none());
        // τ0 = 5: enforced only.
        assert!(pts[1].enforced.is_some() && pts[1].monolithic.is_none());
        // τ0 = 10 and 50: both.
        assert!(pts[2].enforced.is_some() && pts[2].monolithic.is_some());
        // The enforced min deadline is τ0-independent once sustainable.
        assert_eq!(pts[1].enforced, pts[3].enforced);
    }
}
