//! KKT optimality certification for enforced-waits schedules.
//!
//! The Fig.-1 program is convex, so the KKT conditions are necessary and
//! sufficient for global optimality. Given a candidate period vector we
//! identify the active constraints, solve a small least-squares system
//! for the Lagrange multipliers, and report:
//!
//! * **stationarity residual** — `‖∇f + Σ μ_j a_j‖ / ‖∇f‖` over active
//!   constraints;
//! * **dual feasibility** — the most negative multiplier found;
//! * **primal feasibility** — the worst constraint violation.
//!
//! This is an *independent certificate*: it validates a solution no
//! matter which solver produced it, which is how the interior-point and
//! water-filling methods vouch for each other beyond merely agreeing.

use crate::enforced::EnforcedWaitsProblem;
use serde::{Deserialize, Serialize};
use solver::linalg::{norm2, Mat};

/// Outcome of a KKT check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KktReport {
    /// Relative stationarity residual (≈0 at an optimum).
    pub stationarity_residual: f64,
    /// Most negative Lagrange multiplier (≥ −tol at an optimum).
    pub min_multiplier: f64,
    /// Worst primal violation (≤ tol at a feasible point).
    pub max_violation: f64,
    /// Labels of the active constraints.
    pub active: Vec<String>,
}

impl KktReport {
    /// True if the report certifies (approximate) optimality at the
    /// given tolerance.
    pub fn is_optimal(&self, tol: f64) -> bool {
        self.stationarity_residual <= tol
            && self.min_multiplier >= -tol
            && self.max_violation <= tol
    }
}

/// Check the KKT conditions for `periods` on `problem`.
///
/// `active_tol` decides which constraints count as active, *relative* to
/// each constraint's scale (measured as `|rhs| + ‖a‖·‖x‖`).
pub fn verify_kkt(
    problem: &EnforcedWaitsProblem<'_>,
    periods: &[f64],
    active_tol: f64,
) -> KktReport {
    let n = problem.pipeline().len();
    assert_eq!(periods.len(), n, "period vector length mismatch");
    let cs = problem.constraint_set();

    // Gradient of (1/N) Σ t_i/x_i.
    let t = problem.pipeline().service_times();
    let grad: Vec<f64> = (0..n)
        .map(|i| -t[i] / (n as f64 * periods[i] * periods[i]))
        .collect();
    let grad_norm = norm2(&grad).max(1e-30);

    let x_norm = norm2(periods).max(1.0);
    let mut active: Vec<&solver::linear::Constraint> = Vec::new();
    let mut max_violation = 0.0_f64;
    for c in cs.constraints() {
        let scale = c.rhs.abs() + norm2(&c.coeffs) * x_norm;
        let slack = c.slack(periods);
        max_violation = max_violation.max(-slack / scale.max(1.0));
        if slack <= active_tol * scale.max(1.0) {
            active.push(c);
        }
    }

    if active.is_empty() {
        // Interior point with nonzero gradient: not stationary.
        return KktReport {
            stationarity_residual: 1.0,
            min_multiplier: 0.0,
            max_violation,
            active: vec![],
        };
    }

    // Least squares for μ ≥ 0:  A_actᵀ μ ≈ −∇f, where rows of A_act are
    // the active constraint normals. Solve the normal equations
    // (A Aᵀ + ridge) μ = −A ∇f.
    let k = active.len();
    let mut gram = Mat::zeros(k, k);
    let mut rhs = vec![0.0; k];
    for (i, ci) in active.iter().enumerate() {
        for (j, cj) in active.iter().enumerate() {
            gram[(i, j)] = solver::linalg::dot(&ci.coeffs, &cj.coeffs);
        }
        rhs[i] = -solver::linalg::dot(&ci.coeffs, &grad);
    }
    gram.add_diagonal(1e-10 * (1.0 + grad_norm));
    let mu = match gram.cholesky() {
        Some(chol) => chol.solve(&rhs),
        None => vec![0.0; k],
    };

    // Residual of stationarity: ∇f + Σ μ_j a_j.
    let mut resid = grad.clone();
    for (j, c) in active.iter().enumerate() {
        solver::linalg::axpy(mu[j], &c.coeffs, &mut resid);
    }
    KktReport {
        stationarity_residual: norm2(&resid) / grad_norm,
        min_multiplier: mu.iter().copied().fold(f64::INFINITY, f64::min),
        max_violation,
        active: active.iter().map(|c| c.label.clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforced::SolveMethod;
    use dataflow_model::{GainModel, PipelineSpec, PipelineSpecBuilder, RtParams};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn optimal_solutions_pass_kkt() {
        let p = blast();
        for (tau0, d) in [(5.0, 5e4), (10.0, 1e5), (50.0, 3.5e5)] {
            let params = RtParams::new(tau0, d).unwrap();
            let prob = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0]);
            for method in [SolveMethod::InteriorPoint, SolveMethod::WaterFilling] {
                let s = prob.solve(method).unwrap();
                let report = verify_kkt(&prob, &s.periods, 1e-5);
                assert!(
                    report.is_optimal(1e-3),
                    "{method:?} at tau0={tau0} D={d}: {report:?}"
                );
            }
        }
    }

    #[test]
    fn suboptimal_point_fails_kkt() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0]);
        // A strictly interior, clearly non-optimal point: minimal periods
        // scaled up slightly (deadline far from tight).
        let x: Vec<f64> = crate::feasibility::minimal_periods(&p)
            .iter()
            .map(|v| v * 1.5)
            .collect();
        let report = verify_kkt(&prob, &x, 1e-6);
        assert!(!report.is_optimal(1e-3), "{report:?}");
    }

    #[test]
    fn deadline_constraint_is_active_when_binding() {
        let p = blast();
        let params = RtParams::new(10.0, 5e4).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0]);
        let s = prob.solve(SolveMethod::WaterFilling).unwrap();
        let report = verify_kkt(&prob, &s.periods, 1e-5);
        assert!(
            report.active.iter().any(|l| l == "deadline"),
            "deadline should bind at D=5e4: {:?}",
            report.active
        );
    }

    #[test]
    fn infeasible_point_reports_violation() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0]);
        // Way past the deadline.
        let x = vec![1e5, 1e5, 1e5, 1e5];
        let report = verify_kkt(&prob, &x, 1e-6);
        assert!(report.max_violation > 0.0);
        assert!(!report.is_optimal(1e-3));
    }
}
