//! KKT optimality certification for enforced-waits schedules.
//!
//! The Fig.-1 program is convex, so the KKT conditions are necessary and
//! sufficient for global optimality. Given a candidate period vector we
//! identify the active constraints, solve a small least-squares system
//! for the Lagrange multipliers, and report:
//!
//! * **stationarity residual** — `‖∇f + Σ μ_j a_j‖ / ‖∇f‖` over active
//!   constraints;
//! * **dual feasibility** — the most negative multiplier found;
//! * **primal feasibility** — the worst constraint violation.
//!
//! This is an *independent certificate*: it validates a solution no
//! matter which solver produced it, which is how the interior-point and
//! water-filling methods vouch for each other beyond merely agreeing.

use crate::enforced::EnforcedWaitsProblem;
use serde::{Deserialize, Serialize};
use solver::linalg::{dot, norm2, BandedMat, Mat};
use solver::linear::{Constraint, ConstraintSet};

/// Outcome of a KKT check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KktReport {
    /// Relative stationarity residual (≈0 at an optimum).
    pub stationarity_residual: f64,
    /// Most negative Lagrange multiplier (≥ −tol at an optimum).
    pub min_multiplier: f64,
    /// Worst primal violation (≤ tol at a feasible point).
    pub max_violation: f64,
    /// Labels of the active constraints.
    pub active: Vec<String>,
}

impl KktReport {
    /// True if the report certifies (approximate) optimality at the
    /// given tolerance.
    pub fn is_optimal(&self, tol: f64) -> bool {
        self.stationarity_residual <= tol
            && self.min_multiplier >= -tol
            && self.max_violation <= tol
    }
}

/// Check the KKT conditions for `periods` on `problem`.
///
/// `active_tol` decides which constraints count as active, *relative* to
/// each constraint's scale (measured as `|rhs| + ‖a‖·‖x‖`).
pub fn verify_kkt(
    problem: &EnforcedWaitsProblem<'_>,
    periods: &[f64],
    active_tol: f64,
) -> KktReport {
    let n = problem.pipeline().len();
    assert_eq!(periods.len(), n, "period vector length mismatch");
    let cs = problem.constraint_set();
    let grad = active_fraction_gradient(&problem.pipeline().service_times(), periods);
    kkt_report(&cs, &grad, periods, active_tol)
}

/// Gradient of the shared objective `(1/N) Σ t_i/x_i`.
pub(crate) fn active_fraction_gradient(t: &[f64], periods: &[f64]) -> Vec<f64> {
    let n = t.len();
    (0..n)
        .map(|i| -t[i] / (n as f64 * periods[i] * periods[i]))
        .collect()
}

/// Check the KKT conditions for any convex program of the shape this
/// crate produces: a smooth objective gradient over a linear inequality
/// [`ConstraintSet`]. This is the solver-independent core behind
/// [`verify_kkt`] (chains) and [`crate::dag::verify_kkt_dag`] (DAGs).
pub fn kkt_report(cs: &ConstraintSet, grad: &[f64], periods: &[f64], active_tol: f64) -> KktReport {
    let grad_norm = norm2(grad).max(1e-30);

    let x_norm = norm2(periods).max(1.0);
    let mut active: Vec<&Constraint> = Vec::new();
    let mut max_violation = 0.0_f64;
    for c in cs.constraints() {
        let scale = c.rhs.abs() + norm2(&c.coeffs) * x_norm;
        let slack = c.slack(periods);
        max_violation = max_violation.max(-slack / scale.max(1.0));
        if slack <= active_tol * scale.max(1.0) {
            active.push(c);
        }
    }

    if active.is_empty() {
        // Interior point with nonzero gradient: not stationary.
        return KktReport {
            stationarity_residual: 1.0,
            min_multiplier: 0.0,
            max_violation,
            active: vec![],
        };
    }

    // Least squares for μ ≥ 0:  A_actᵀ μ ≈ −∇f, where rows of A_act are
    // the active constraint normals. Solve the normal equations
    // (A Aᵀ + ridge) μ = −A ∇f.
    let k = active.len();
    let ridge = 1e-10 * (1.0 + grad_norm);
    let mu = if k < BANDED_ACTIVE_MIN {
        solve_multipliers_dense(&active, grad, ridge)
    } else {
        // Deep problems: the dense normal equations are O(k²·n) to
        // assemble and O(k³) to factor, which would make certification
        // the bottleneck the banded solver just removed. Exploit the
        // same structure instead; fall back to dense when the active
        // profile is genuinely wide.
        solve_multipliers_banded(&active, grad, ridge)
            .unwrap_or_else(|| solve_multipliers_dense(&active, grad, ridge))
    };

    // Residual of stationarity: ∇f + Σ μ_j a_j.
    let mut resid = grad.to_vec();
    for (j, c) in active.iter().enumerate() {
        solver::linalg::axpy(mu[j], &c.coeffs, &mut resid);
    }
    KktReport {
        stationarity_residual: norm2(&resid) / grad_norm,
        min_multiplier: mu.iter().copied().fold(f64::INFINITY, f64::min),
        max_violation,
        active: active.iter().map(|c| c.label.clone()).collect(),
    }
}

/// Below this many active constraints the dense normal equations run
/// unchanged — paper-scale certificates stay bit-identical to earlier
/// releases, and dense is faster anyway at tiny k.
const BANDED_ACTIVE_MIN: usize = 32;

fn solve_multipliers_dense(active: &[&Constraint], grad: &[f64], ridge: f64) -> Vec<f64> {
    let k = active.len();
    let mut gram = Mat::zeros(k, k);
    let mut rhs = vec![0.0; k];
    for (i, ci) in active.iter().enumerate() {
        for (j, cj) in active.iter().enumerate() {
            gram[(i, j)] = dot(&ci.coeffs, &cj.coeffs);
        }
        rhs[i] = -dot(&ci.coeffs, grad);
    }
    gram.add_diagonal(ridge);
    match gram.cholesky() {
        Some(chol) => chol.solve(&rhs),
        None => vec![0.0; k],
    }
}

/// First and last nonzero coefficient of a constraint row.
fn support_span(coeffs: &[f64]) -> (usize, usize) {
    let lo = coeffs.iter().position(|&c| c != 0.0).unwrap_or(0);
    let hi = coeffs.iter().rposition(|&c| c != 0.0).unwrap_or(0);
    (lo, hi)
}

/// Dot product of two rows restricted to the intersection of their
/// support spans (equal to the full dot product; skipped terms are 0).
fn span_dot(a: &Constraint, sa: (usize, usize), b: &Constraint, sb: (usize, usize)) -> f64 {
    let lo = sa.0.max(sb.0);
    let hi = sa.1.min(sb.1);
    if lo > hi {
        return 0.0;
    }
    let mut acc = 0.0;
    for j in lo..=hi {
        acc += a.coeffs[j] * b.coeffs[j];
    }
    acc
}

/// Normal-equation solve exploiting the active set's banded-bordered
/// structure: narrow rows (span ≤ n/4) sorted by span start give a
/// banded gram block, the few wide rows (the deadline) form a border
/// eliminated by its Schur complement. Returns `None` when the profile
/// is wide (too many wide rows, or overlapping spans fill the band), in
/// which case the caller uses the dense path.
fn solve_multipliers_banded(active: &[&Constraint], grad: &[f64], ridge: f64) -> Option<Vec<f64>> {
    let n = grad.len();
    let k = active.len();
    let spans: Vec<(usize, usize)> = active.iter().map(|c| support_span(&c.coeffs)).collect();
    let mut narrow: Vec<usize> = Vec::with_capacity(k);
    let mut wide: Vec<usize> = Vec::new();
    let mut wmax = 0usize;
    for (i, &(lo, hi)) in spans.iter().enumerate() {
        if (hi - lo) * 4 > n {
            wide.push(i);
        } else {
            wmax = wmax.max(hi - lo);
            narrow.push(i);
        }
    }
    if wide.len() * 4 > k || narrow.len() < 2 {
        return None;
    }
    // Sort narrow rows by span start (stable tie-break on the original
    // index keeps the permutation deterministic).
    narrow.sort_by_key(|&i| (spans[i].0, spans[i].1, i));
    let m = narrow.len();

    // Gram bandwidth bound: rows whose span starts differ by more than
    // the widest narrow span cannot overlap, so in sorted order entry
    // (i, j) with lo_i − lo_j > wmax is zero. Two-pointer over the
    // sorted starts gives the profile width.
    let mut bgram = 0usize;
    let mut j = 0usize;
    for i in 0..m {
        let lo_i = spans[narrow[i]].0;
        while spans[narrow[j]].0 + wmax < lo_i {
            j += 1;
        }
        bgram = bgram.max(i - j);
    }
    if bgram + 1 >= m {
        return None;
    }

    let mut gram = BandedMat::zeros(m, bgram.max(1));
    let mut rhs_n = vec![0.0; m];
    for (si, &ai) in narrow.iter().enumerate() {
        let ca = active[ai];
        let sa = spans[ai];
        let first = si.saturating_sub(bgram.max(1));
        for (sj, &aj) in narrow.iter().enumerate().take(si + 1).skip(first) {
            *gram.at_mut(si, sj) = span_dot(ca, sa, active[aj], spans[aj]);
        }
        let mut acc = 0.0;
        for (cj, gj) in ca.coeffs[sa.0..=sa.1].iter().zip(&grad[sa.0..=sa.1]) {
            acc += cj * gj;
        }
        rhs_n[si] = -acc;
    }
    gram.add_diagonal(ridge);
    if !gram.cholesky_in_place() {
        return None;
    }

    // Border columns B_nw and the wide block B_ww (+ridge).
    let w = wide.len();
    let mut u0 = rhs_n;
    gram.solve_into(&mut u0);
    let mut us: Vec<Vec<f64>> = Vec::with_capacity(w);
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(w);
    for &wi in &wide {
        let cw = active[wi];
        let sw = spans[wi];
        let col: Vec<f64> = narrow
            .iter()
            .map(|&ni| span_dot(active[ni], spans[ni], cw, sw))
            .collect();
        let mut u = col.clone();
        gram.solve_into(&mut u);
        cols.push(col);
        us.push(u);
    }
    if w > 0 {
        let mut schur = Mat::zeros(w, w);
        let mut rhs_w = vec![0.0; w];
        for (p, &wp) in wide.iter().enumerate() {
            let cp = active[wp];
            let sp = spans[wp];
            for (q, &wq) in wide.iter().enumerate() {
                schur[(p, q)] = span_dot(cp, sp, active[wq], spans[wq]) - dot(&cols[p], &us[q]);
            }
            schur[(p, p)] += ridge;
            rhs_w[p] = -dot(&cp.coeffs, grad) - dot(&cols[p], &u0);
        }
        let chol = schur.cholesky()?;
        let mu_w = chol.solve(&rhs_w);
        for (q, u) in us.iter().enumerate() {
            solver::linalg::axpy(-mu_w[q], u, &mut u0);
        }
        let mut mu = vec![0.0; k];
        for (si, &ni) in narrow.iter().enumerate() {
            mu[ni] = u0[si];
        }
        for (q, &wi) in wide.iter().enumerate() {
            mu[wi] = mu_w[q];
        }
        Some(mu)
    } else {
        let mut mu = vec![0.0; k];
        for (si, &ni) in narrow.iter().enumerate() {
            mu[ni] = u0[si];
        }
        Some(mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforced::SolveMethod;
    use dataflow_model::{GainModel, PipelineSpec, PipelineSpecBuilder, RtParams};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn optimal_solutions_pass_kkt() {
        let p = blast();
        for (tau0, d) in [(5.0, 5e4), (10.0, 1e5), (50.0, 3.5e5)] {
            let params = RtParams::new(tau0, d).unwrap();
            let prob = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0]);
            for method in [SolveMethod::InteriorPoint, SolveMethod::WaterFilling] {
                let s = prob.solve(method).unwrap();
                let report = verify_kkt(&prob, &s.periods, 1e-5);
                assert!(
                    report.is_optimal(1e-3),
                    "{method:?} at tau0={tau0} D={d}: {report:?}"
                );
            }
        }
    }

    #[test]
    fn suboptimal_point_fails_kkt() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0]);
        // A strictly interior, clearly non-optimal point: minimal periods
        // scaled up slightly (deadline far from tight).
        let x: Vec<f64> = crate::feasibility::minimal_periods(&p)
            .iter()
            .map(|v| v * 1.5)
            .collect();
        let report = verify_kkt(&prob, &x, 1e-6);
        assert!(!report.is_optimal(1e-3), "{report:?}");
    }

    #[test]
    fn deadline_constraint_is_active_when_binding() {
        let p = blast();
        let params = RtParams::new(10.0, 5e4).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0]);
        let s = prob.solve(SolveMethod::WaterFilling).unwrap();
        let report = verify_kkt(&prob, &s.periods, 1e-5);
        assert!(
            report.active.iter().any(|l| l == "deadline"),
            "deadline should bind at D=5e4: {:?}",
            report.active
        );
    }

    #[test]
    fn deep_chain_certificates_route_through_banded_multipliers() {
        // At 128 stages the active set (lower bounds + edges + deadline)
        // is far past BANDED_ACTIVE_MIN, so this exercises the
        // banded-bordered multiplier solve end to end.
        let mut builder = PipelineSpecBuilder::new(128);
        for i in 0..128 {
            builder = builder.stage(
                format!("s{i}"),
                100.0 + i as f64,
                GainModel::Bernoulli { p: 0.9 },
            );
        }
        let p = builder.build().unwrap();
        let b = EnforcedWaitsProblem::optimistic_backlog(&p);
        let min_d: f64 = crate::feasibility::minimal_periods(&p)
            .iter()
            .zip(&b)
            .map(|(x, bi)| x * bi)
            .sum();
        // A nearly minimal deadline pins most periods to their lower
        // bounds, producing a large active set.
        let prob = EnforcedWaitsProblem::new(&p, RtParams::new(5.0, min_d * 1.02).unwrap(), b);
        for method in [SolveMethod::InteriorPoint, SolveMethod::WaterFilling] {
            let s = prob.solve(method).unwrap();
            let report = verify_kkt(&prob, &s.periods, 1e-5);
            assert!(
                report.active.len() >= BANDED_ACTIVE_MIN,
                "test should hit the banded path, active={}",
                report.active.len()
            );
            assert!(report.is_optimal(1e-3), "{method:?}: {report:?}");
        }
    }

    #[test]
    fn random_deep_chains_banded_ip_matches_wf_and_both_certify() {
        // Property test over random chains: the banded interior point
        // agrees with exact water-filling, and the KKT certificate
        // (itself routed through the banded multiplier solve) passes
        // for both.
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..5 {
            let n = 40 + (next() * 50.0) as usize;
            let mut builder = PipelineSpecBuilder::new(128);
            for i in 0..n {
                builder = builder.stage(
                    format!("n{i}"),
                    50.0 + next() * 500.0,
                    GainModel::Bernoulli {
                        p: 0.4 + next() * 0.6,
                    },
                );
            }
            let p = builder.build().unwrap();
            let b = EnforcedWaitsProblem::optimistic_backlog(&p);
            let xmin = crate::feasibility::minimal_periods(&p);
            let tau0 = 20.0 + next() * 50.0;
            if xmin[0] > 128.0 * tau0 {
                continue;
            }
            let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
            let d = min_d * (1.3 + next() * 3.0);
            let prob = EnforcedWaitsProblem::new(&p, RtParams::new(tau0, d).unwrap(), b);
            let ip = prob.solve(SolveMethod::InteriorPoint).unwrap();
            let wf = prob.solve(SolveMethod::WaterFilling).unwrap();
            assert_eq!(
                ip.telemetry.as_ref().unwrap().factorization.as_deref(),
                Some("banded"),
                "trial {trial}"
            );
            assert!(
                (ip.active_fraction - wf.active_fraction).abs()
                    < 1e-4 * wf.active_fraction.max(1e-6),
                "trial {trial} (n={n}): IP {} vs WF {}",
                ip.active_fraction,
                wf.active_fraction
            );
            for (a, bper) in ip.periods.iter().zip(&wf.periods) {
                assert!((a - bper).abs() / bper < 1e-3, "trial {trial} diverged");
            }
            for s in [&ip, &wf] {
                let report = verify_kkt(&prob, &s.periods, 1e-5);
                assert!(report.is_optimal(1e-3), "trial {trial}: {report:?}");
            }
        }
    }

    #[test]
    fn infeasible_point_reports_violation() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let prob = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0]);
        // Way past the deadline.
        let x = vec![1e5, 1e5, 1e5, 1e5];
        let report = verify_kkt(&prob, &x, 1e-6);
        assert!(report.max_violation > 0.0);
        assert!(!report.is_optimal(1e-3));
    }
}
