//! # rtsdf-core — real-time scheduling strategies for irregular SIMD pipelines
//!
//! This crate implements the central contribution of *Enabling Real-Time
//! Irregular Data-Flow Pipelines on SIMD Devices* (Plano & Buhler,
//! SRMPDS '21): choosing schedules that minimize a streaming pipeline's
//! **active fraction** subject to throughput stability and a per-item
//! end-to-end deadline.
//!
//! Two strategies are provided:
//!
//! * [`enforced`] — **enforced waits** (paper §4): each node `n_i` waits
//!   a fixed `w_i` after every firing, so its firing period is
//!   `x_i = t_i + w_i`. The optimal waits solve the convex program of the
//!   paper's Figure 1. Two independent solution methods are implemented —
//!   a log-barrier interior-point method and an exact water-filling
//!   method (λ-bisection over a pool-adjacent-violators inner solve) —
//!   and a KKT verifier ([`kkt`]) certifies optimality of either.
//! * [`monolithic`] — **monolithic batching** (paper §5): accumulate
//!   blocks of `M` inputs and run the whole pipeline per block. The
//!   optimal `M` solves the one-dimensional integer program of the
//!   paper's Figure 2, by exhaustive scan (exact) or accelerated
//!   unimodal search.
//!
//! [`comparison`] sweeps both strategies over an `(τ0, D)` grid to
//! regenerate the paper's Figures 3 and 4, and [`feasibility`] provides
//! the shared schedulability analysis (which operating points admit any
//! schedule at all).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod coschedule;
pub mod dag;
pub mod enforced;
pub mod feasibility;
pub mod flexible;
pub mod frontier;
pub mod kkt;
pub mod monolithic;
pub mod policy;
pub mod schedule;
pub mod telemetry;
pub mod threads;

pub use dag::{
    check_topology_feasibility, escalate_schedule_topology, topology_minimal_periods,
    verify_kkt_dag, EnforcedDagProblem, MonolithicDagProblem,
};
pub use enforced::{EnforcedWaitsProblem, SolveMethod, WaitSchedule, WarmStart};
pub use feasibility::{check_enforced_feasibility, minimal_periods, FeasibilityError};
pub use flexible::{FlexibleSchedule, FlexibleSharesProblem};
pub use monolithic::{MonolithicProblem, MonolithicSchedule};
pub use policy::{escalate_schedule, needs_escalation};
pub use schedule::{AnySchedule, ScheduleError};
pub use telemetry::SolveTelemetry;
pub use threads::worker_threads;
