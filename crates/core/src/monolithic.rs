//! The monolithic batching strategy (paper §5).
//!
//! The pipeline is treated as a single throughput-oriented unit with no
//! ability to insert waits between nodes. Items accumulate into blocks
//! of `M`; each block is pushed through the entire pipeline at once. The
//! block size solves the integer program of the paper's Figure 2:
//!
//! ```text
//! min  ρ0·T̄(M)/M
//! s.t. T̄(M) ≤ M/ρ0                    (block finishes before next fills)
//!      b·M/ρ0 + S·T̄(M) ≤ D            (worst-case response ≤ deadline)
//! where T̄(M) = Σ_i ⌈M·G_i/v⌉·t_i
//! ```
//!
//! `b` is the monolithic queue multiplier (a newly arrived item may find
//! `b − 1` full blocks ahead of it) and `S ≥ 1` scales average block
//! time to worst case. The paper found `b = 1, S = 1` to be miss-free in
//! simulation because large blocks average away stochastic gain
//! fluctuations (§6.2); both parameters stay available here for
//! sensitivity studies.

use crate::schedule::ScheduleError;
use crate::telemetry::{timed, SolveTelemetry};
use dataflow_model::analysis::{
    monolithic_active_fraction, monolithic_block_time, monolithic_latency_bound, monolithic_stable,
};
use dataflow_model::{PipelineSpec, RtParams};
use serde::{Deserialize, Serialize};
use solver::integer::{minimize_scan, minimize_unimodal};

/// An optimized monolithic schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonolithicSchedule {
    /// Optimal block size `M`.
    pub block_size: u64,
    /// Average time to process one block, `T̄(M)`.
    pub block_time: f64,
    /// Predicted active fraction `ρ0·T̄(M)/M`.
    pub active_fraction: f64,
    /// Worst-case response bound `b·M·τ0 + S·T̄(M)` at this `M`.
    pub latency_bound: f64,
    /// Queue multiplier used.
    pub b: f64,
    /// Worst-case scale used.
    pub s: f64,
    /// How the solve went (objective evaluations, wall time, …).
    pub telemetry: Option<SolveTelemetry>,
}

/// The Fig.-2 design problem.
#[derive(Debug, Clone)]
pub struct MonolithicProblem<'a> {
    pipeline: &'a PipelineSpec,
    params: RtParams,
    b: f64,
    s: f64,
}

impl<'a> MonolithicProblem<'a> {
    /// Construct with queue multiplier `b ≥ 1` and worst-case scale
    /// `s ≥ 1`.
    ///
    /// # Panics
    /// Panics on non-finite or sub-unit parameters.
    pub fn new(pipeline: &'a PipelineSpec, params: RtParams, b: f64, s: f64) -> Self {
        assert!(b.is_finite() && b >= 1.0, "queue multiplier b must be >= 1");
        assert!(s.is_finite() && s >= 1.0, "worst-case scale S must be >= 1");
        MonolithicProblem {
            pipeline,
            params,
            b,
            s,
        }
    }

    /// The operating point.
    pub fn params(&self) -> &RtParams {
        &self.params
    }

    /// Largest block size the deadline could possibly allow:
    /// `b·M·τ0 ≤ D` (the processing term only tightens this).
    pub fn max_block_size(&self) -> u64 {
        let m = self.params.deadline / (self.b * self.params.tau0);
        if m < 1.0 {
            0
        } else if m >= u64::MAX as f64 {
            u64::MAX
        } else {
            m.floor() as u64
        }
    }

    /// Objective at block size `m`, or `None` if `m` is infeasible.
    pub fn objective(&self, m: u64) -> Option<f64> {
        if m == 0 {
            return None;
        }
        if !monolithic_stable(self.pipeline, &self.params, m) {
            return None;
        }
        let bound = monolithic_latency_bound(self.pipeline, &self.params, m, self.b, self.s);
        if bound > self.params.deadline {
            return None;
        }
        Some(monolithic_active_fraction(self.pipeline, &self.params, m))
    }

    /// Solve exactly by exhaustive scan over `M ∈ [1, max_block_size]`.
    pub fn solve(&self) -> Result<MonolithicSchedule, ScheduleError> {
        let hi = self.max_block_size();
        let evals = std::cell::Cell::new(0u64);
        let (best, micros) = timed(|| {
            minimize_scan(1, hi, |m| {
                evals.set(evals.get() + 1);
                self.objective(m)
            })
        });
        let best = best.ok_or_else(|| {
            ScheduleError::Solver(format!(
                "no feasible block size in [1, {hi}] (deadline {:.0}, tau0 {:.1})",
                self.params.deadline, self.params.tau0
            ))
        })?;
        Ok(self.schedule_at_observed(best.arg, "scan", evals.get(), micros))
    }

    /// Solve with the accelerated unimodal search. The objective's
    /// large-scale shape is unimodal (decaying `1/M` plus a linear
    /// deadline cutoff) with ceiling-induced ripple whose longest period
    /// is `v / G_min` (the most attenuated stage crosses a vector
    /// boundary least often), so the neighborhood sweep must span a few
    /// such periods to recover exactness; the test suite cross-checks
    /// against [`Self::solve`].
    pub fn solve_fast(&self) -> Result<MonolithicSchedule, ScheduleError> {
        let hi = self.max_block_size();
        let g_min_positive = self
            .pipeline
            .total_gains()
            .into_iter()
            .filter(|&g| g > 0.0)
            .fold(f64::INFINITY, f64::min);
        let ripple = if g_min_positive.is_finite() {
            (self.pipeline.vector_width() as f64 / g_min_positive).ceil() as u64
        } else {
            self.pipeline.vector_width() as u64
        };
        let slop = ripple
            .saturating_mul(2)
            .max(4 * self.pipeline.vector_width() as u64)
            .max(64);
        let evals = std::cell::Cell::new(0u64);
        let (best, micros) = timed(|| {
            minimize_unimodal(1, hi, slop, |m| {
                evals.set(evals.get() + 1);
                self.objective(m)
            })
        });
        let best = best
            .ok_or_else(|| ScheduleError::Solver(format!("no feasible block size in [1, {hi}]")))?;
        Ok(self.schedule_at_observed(best.arg, "unimodal", evals.get(), micros))
    }

    /// Solve with branch-and-bound (the miniature BONMIN): the true
    /// objective is bounded below on `[a, b]` by replacing each ceiling
    /// with `max(M·G_i/v, 1)` and evaluating the resulting decreasing
    /// function at `b`:
    ///
    /// ```text
    /// ρ0·T̄(M)/M ≥ ρ0·Σ_i max(G_i/v, [G_i>0]/M)·t_i ≥ lb(b)
    /// ```
    ///
    /// Exact like [`Self::solve`]; cross-checked against it in tests.
    pub fn solve_bnb(&self) -> Result<MonolithicSchedule, ScheduleError> {
        let hi = self.max_block_size();
        let rho0 = 1.0 / self.params.tau0;
        let v = self.pipeline.vector_width() as f64;
        let totals = self.pipeline.total_gains();
        let per_stage: Vec<(f64, f64)> = self
            .pipeline
            .nodes()
            .iter()
            .zip(&totals)
            .map(|(n, &g)| {
                (
                    g / v * n.service_time,
                    if g > 0.0 { n.service_time } else { 0.0 },
                )
            })
            .collect();
        let lower_bound = |_a: u64, b: u64| -> f64 {
            rho0 * per_stage
                .iter()
                .map(|&(slope, fixed)| slope.max(fixed / b as f64))
                .sum::<f64>()
        };
        let evals = std::cell::Cell::new(0u64);
        let ((best, _stats), micros) = timed(|| {
            solver::bnb::minimize_bnb(
                1,
                hi,
                |m| {
                    evals.set(evals.get() + 1);
                    self.objective(m)
                },
                lower_bound,
            )
        });
        let best = best
            .ok_or_else(|| ScheduleError::Solver(format!("no feasible block size in [1, {hi}]")))?;
        Ok(self.schedule_at_observed(best.arg, "bnb", evals.get(), micros))
    }

    fn schedule_at(&self, m: u64) -> MonolithicSchedule {
        MonolithicSchedule {
            block_size: m,
            block_time: monolithic_block_time(self.pipeline, m),
            active_fraction: monolithic_active_fraction(self.pipeline, &self.params, m),
            latency_bound: monolithic_latency_bound(self.pipeline, &self.params, m, self.b, self.s),
            b: self.b,
            s: self.s,
            telemetry: None,
        }
    }

    fn schedule_at_observed(
        &self,
        m: u64,
        method: &str,
        evaluations: u64,
        wall_micros: f64,
    ) -> MonolithicSchedule {
        let mut schedule = self.schedule_at(m);
        let mut telemetry = SolveTelemetry::new(method);
        telemetry.iterations = evaluations;
        telemetry.wall_micros = wall_micros;
        schedule.telemetry = Some(telemetry);
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn solves_blast_at_moderate_point() {
        let p = blast();
        let params = RtParams::new(50.0, 2e5).unwrap();
        let prob = MonolithicProblem::new(&p, params, 1.0, 1.0);
        let s = prob.solve().unwrap();
        assert!(s.block_size >= 1);
        assert!(s.active_fraction > 0.0 && s.active_fraction <= 1.0);
        assert!(s.latency_bound <= 2e5);
        // Stability must hold at the chosen M.
        assert!(s.block_time <= s.block_size as f64 * 50.0);
    }

    #[test]
    fn fast_solver_matches_exact_scan() {
        let p = blast();
        for (tau0, d) in [(10.0, 1e5), (30.0, 2e5), (50.0, 3.5e5), (100.0, 5e4)] {
            let params = RtParams::new(tau0, d).unwrap();
            let prob = MonolithicProblem::new(&p, params, 1.0, 1.0);
            match (prob.solve(), prob.solve_fast()) {
                (Ok(exact), Ok(fast)) => {
                    assert!(
                        (exact.active_fraction - fast.active_fraction).abs() < 1e-9,
                        "tau0={tau0} D={d}: exact M={} af={} vs fast M={} af={}",
                        exact.block_size,
                        exact.active_fraction,
                        fast.block_size,
                        fast.active_fraction
                    );
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("feasibility disagreement at tau0={tau0} D={d}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn bnb_matches_exact_scan() {
        let p = blast();
        for (tau0, d) in [
            (10.0, 1e5),
            (30.0, 2e5),
            (50.0, 3.5e5),
            (100.0, 5e4),
            (1.0, 1e5),
        ] {
            let params = RtParams::new(tau0, d).unwrap();
            let prob = MonolithicProblem::new(&p, params, 1.0, 1.0);
            match (prob.solve(), prob.solve_bnb()) {
                (Ok(exact), Ok(bnb)) => assert!(
                    (exact.active_fraction - bnb.active_fraction).abs() < 1e-12,
                    "tau0={tau0} D={d}: scan M={} af={} vs bnb M={} af={}",
                    exact.block_size,
                    exact.active_fraction,
                    bnb.block_size,
                    bnb.active_fraction
                ),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("feasibility disagreement at tau0={tau0} D={d}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn active_fraction_scales_inversely_with_tau0() {
        // Paper §6.3: monolithic active fraction ~ 1/τ0.
        let p = blast();
        let d = 3.5e5;
        let af = |tau0: f64| {
            MonolithicProblem::new(&p, RtParams::new(tau0, d).unwrap(), 1.0, 1.0)
                .solve()
                .unwrap()
                .active_fraction
        };
        let a25 = af(25.0);
        let a50 = af(50.0);
        let a100 = af(100.0);
        assert!(a25 > a50 && a50 > a100);
        // Roughly inverse scaling once M is large.
        assert!((a50 / a100 - 2.0).abs() < 0.3, "a50/a100 = {}", a50 / a100);
    }

    #[test]
    fn insensitive_to_deadline_once_large() {
        // Paper §6.3: monolithic active fraction tends to a constant in D.
        let p = blast();
        let tau0 = 50.0;
        let af = |d: f64| {
            MonolithicProblem::new(&p, RtParams::new(tau0, d).unwrap(), 1.0, 1.0)
                .solve()
                .unwrap()
                .active_fraction
        };
        let a2 = af(2e5);
        let a35 = af(3.5e5);
        assert!(
            (a2 - a35).abs() / a35 < 0.12,
            "large-D insensitivity: {a2} vs {a35}"
        );
    }

    #[test]
    fn infeasible_when_arrivals_too_fast() {
        // τ0 = 1: one item per cycle; T̄(M)/M ≥ 4397/128 ≈ 34 ≫ 1.
        let p = blast();
        let params = RtParams::new(1.0, 3.5e5).unwrap();
        let prob = MonolithicProblem::new(&p, params, 1.0, 1.0);
        assert!(prob.solve().is_err());
    }

    #[test]
    fn infeasible_when_deadline_tiny() {
        let p = blast();
        let params = RtParams::new(50.0, 1000.0).unwrap();
        let prob = MonolithicProblem::new(&p, params, 1.0, 1.0);
        assert!(prob.solve().is_err());
    }

    #[test]
    fn higher_b_or_s_never_improves() {
        let p = blast();
        let params = RtParams::new(50.0, 1e5).unwrap();
        let base = MonolithicProblem::new(&p, params, 1.0, 1.0)
            .solve()
            .unwrap();
        let b2 = MonolithicProblem::new(&p, params, 2.0, 1.0)
            .solve()
            .unwrap();
        let s2 = MonolithicProblem::new(&p, params, 1.0, 2.0)
            .solve()
            .unwrap();
        assert!(b2.active_fraction >= base.active_fraction - 1e-12);
        assert!(s2.active_fraction >= base.active_fraction - 1e-12);
    }

    #[test]
    fn max_block_size_formula() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let prob = MonolithicProblem::new(&p, params, 2.0, 1.0);
        assert_eq!(prob.max_block_size(), 5000);
    }

    #[test]
    fn objective_rejects_zero_and_infeasible() {
        let p = blast();
        let params = RtParams::new(50.0, 1e5).unwrap();
        let prob = MonolithicProblem::new(&p, params, 1.0, 1.0);
        assert!(prob.objective(0).is_none());
        // Stability: M=1 takes 4397 cycles but only 50 accumulate → None.
        assert!(prob.objective(1).is_none());
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn rejects_sub_unit_b() {
        let p = blast();
        let params = RtParams::new(50.0, 1e5).unwrap();
        MonolithicProblem::new(&p, params, 0.5, 1.0);
    }
}
