//! Online escalation policy: re-solving the waits when reality departs
//! from the calibrated backlog assumption.
//!
//! The Fig.-1 program designs waits against worst-case backlog factors
//! `b_i`. When a running system observes queue high-water marks above
//! the design assumption (model drift, device preemption, bursts), the
//! schedule's deadline bound `Σ b_i·x_i ≤ D` no longer covers reality.
//! [`escalate_schedule`] is the runtime's repair step: raise the
//! factors to the observed ceilings and re-solve the waits, seeding the
//! solver from the current schedule via the [`WarmStart`] path so the
//! repair is cheap enough to run online.

use crate::enforced::{EnforcedWaitsProblem, WaitSchedule, WarmStart};
use crate::schedule::ScheduleError;
use dataflow_model::{PipelineSpec, RtParams};

/// Raise backlog factors to observed ceilings and re-solve the waits.
///
/// `design_b` is the factor vector the current schedule was built for;
/// `observed_vectors` is the per-node empirical backlog high-water mark
/// in vectors. The new factors are `max(design_b_i, ⌈observed_i⌉)`.
/// The solve is warm-started from `current_periods` (the schedule being
/// repaired), falling back to the interior-point method if the
/// water-filling solver declines the instance.
///
/// Returns the re-solved schedule (its `backlog_factors` carry the
/// escalated `b`), or the scheduling error if no feasible schedule
/// exists at the raised factors — in which case the caller should keep
/// its current schedule and degrade by other means (e.g. shedding).
///
/// # Panics
/// Panics if the slice lengths disagree with the pipeline.
pub fn escalate_schedule(
    pipeline: &PipelineSpec,
    params: RtParams,
    current_periods: &[f64],
    design_b: &[f64],
    observed_vectors: &[f64],
) -> Result<WaitSchedule, ScheduleError> {
    let n = pipeline.len();
    assert_eq!(current_periods.len(), n, "period vector length mismatch");
    assert_eq!(design_b.len(), n, "design factor length mismatch");
    assert_eq!(observed_vectors.len(), n, "observed vector length mismatch");
    let b: Vec<f64> = design_b
        .iter()
        .zip(observed_vectors)
        .map(|(&bi, &obs)| bi.max(obs.ceil()).max(1.0))
        .collect();
    let warm = WarmStart {
        periods: current_periods.to_vec(),
    };
    EnforcedWaitsProblem::new(pipeline, params, b).solve_with_fallback_warm(&warm)
}

/// True if any observed backlog exceeds its design factor by more than
/// `headroom` vectors — the trigger condition for [`escalate_schedule`].
pub fn needs_escalation(design_b: &[f64], observed_vectors: &[f64], headroom: f64) -> bool {
    design_b
        .iter()
        .zip(observed_vectors)
        .any(|(&bi, &obs)| obs > bi + headroom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforced::SolveMethod;
    use dataflow_model::{GainModel, PipelineSpecBuilder};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn trigger_condition() {
        assert!(!needs_escalation(&[1.0, 3.0], &[1.0, 3.0], 0.0));
        assert!(needs_escalation(&[1.0, 3.0], &[1.0, 3.5], 0.0));
        assert!(!needs_escalation(&[1.0, 3.0], &[1.0, 3.5], 1.0));
    }

    #[test]
    fn escalation_raises_factors_and_tightens_latency_bound() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let design_b = vec![1.0, 3.0, 9.0, 6.0];
        let base = EnforcedWaitsProblem::new(&p, params, design_b.clone())
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        // Stage 1 observed at 4.3 vectors against a design of 3.
        let observed = vec![1.0, 4.3, 2.0, 1.0];
        let escalated = escalate_schedule(&p, params, &base.periods, &design_b, &observed).unwrap();
        assert_eq!(escalated.backlog_factors, vec![1.0, 5.0, 9.0, 6.0]);
        // More conservative factors can only push the schedule toward
        // shorter periods (more activity) to keep the deadline.
        assert!(escalated.active_fraction >= base.active_fraction - 1e-9);
        assert!(escalated.latency_bound <= params.deadline + 1e-6);
        // Warm start was actually used.
        assert!(escalated.telemetry.expect("telemetry").warm_start);
    }

    #[test]
    fn escalation_matches_cold_solve_at_raised_factors() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let design_b = vec![1.0, 3.0, 9.0, 6.0];
        let base = EnforcedWaitsProblem::new(&p, params, design_b.clone())
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let observed = vec![2.6, 3.0, 9.0, 7.9];
        let warm = escalate_schedule(&p, params, &base.periods, &design_b, &observed).unwrap();
        let cold = EnforcedWaitsProblem::new(&p, params, vec![3.0, 3.0, 9.0, 8.0])
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        for (w, c) in warm.periods.iter().zip(&cold.periods) {
            assert!((w - c).abs() / c < 1e-6, "warm {w} vs cold {c}");
        }
    }

    #[test]
    fn infeasible_escalation_reports_error() {
        let p = blast();
        // Deadline so tight that raised factors cannot fit.
        let params = RtParams::new(10.0, 8_000.0).unwrap();
        let design_b = vec![1.0, 1.0, 1.0, 1.0];
        let periods = crate::feasibility::minimal_periods(&p);
        let observed = vec![40.0, 40.0, 40.0, 40.0];
        assert!(escalate_schedule(&p, params, &periods, &design_b, &observed).is_err());
    }
}
