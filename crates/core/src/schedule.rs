//! Shared error type for schedule construction, and the strategy-tagged
//! schedule handoff execution backends consume.

use crate::enforced::WaitSchedule;
use crate::feasibility::FeasibilityError;
use crate::monolithic::MonolithicSchedule;
use std::fmt;

/// A solved schedule of either strategy, as handed to an execution
/// backend (simulator or real executor). Both backends accept both
/// strategies, so the handoff carries the strategy tag with the payload
/// instead of forcing every backend API to split into per-strategy
/// entry points.
#[derive(Debug, Clone)]
pub enum AnySchedule {
    /// Enforced waits: per-node firing periods `x_i = t_i + w_i`.
    Enforced(WaitSchedule),
    /// Monolithic batching: whole-stream blocks of `M` items.
    Monolithic(MonolithicSchedule),
}

impl AnySchedule {
    /// Stable strategy name for reports and manifests.
    pub fn strategy(&self) -> &'static str {
        match self {
            AnySchedule::Enforced(_) => "enforced",
            AnySchedule::Monolithic(_) => "monolithic",
        }
    }

    /// The optimizer's predicted active fraction.
    pub fn predicted_active_fraction(&self) -> f64 {
        match self {
            AnySchedule::Enforced(s) => s.active_fraction,
            AnySchedule::Monolithic(s) => s.active_fraction,
        }
    }

    /// The optimizer's worst-case response bound (cycles).
    pub fn latency_bound(&self) -> f64 {
        match self {
            AnySchedule::Enforced(s) => s.latency_bound,
            AnySchedule::Monolithic(s) => s.latency_bound,
        }
    }
}

impl From<WaitSchedule> for AnySchedule {
    fn from(s: WaitSchedule) -> Self {
        AnySchedule::Enforced(s)
    }
}

impl From<MonolithicSchedule> for AnySchedule {
    fn from(s: MonolithicSchedule) -> Self {
        AnySchedule::Monolithic(s)
    }
}

/// Why a strategy failed to produce a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The operating point admits no schedule (analysis-level reason).
    Infeasible(FeasibilityError),
    /// The numerical solver failed (should not happen on feasible,
    /// well-scaled inputs; surfaced rather than hidden).
    Solver(String),
    /// A caller-supplied operating point was malformed (non-positive or
    /// non-finite `τ0`/`D`) before any scheduling was attempted.
    InvalidParams(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Infeasible(e) => write!(f, "infeasible: {e}"),
            ScheduleError::Solver(msg) => write!(f, "solver failure: {msg}"),
            ScheduleError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<FeasibilityError> for ScheduleError {
    fn from(e: FeasibilityError) -> Self {
        ScheduleError::Infeasible(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let fe = FeasibilityError::DeadlineTooTight {
            min_deadline: 100.0,
            deadline: 50.0,
        };
        let se: ScheduleError = fe.clone().into();
        assert!(se.to_string().contains("infeasible"));
        assert_eq!(se, ScheduleError::Infeasible(fe));
        let s = ScheduleError::Solver("x".into());
        assert!(s.to_string().contains("solver failure"));
    }
}
