//! Shared error type for schedule construction.

use crate::feasibility::FeasibilityError;
use std::fmt;

/// Why a strategy failed to produce a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The operating point admits no schedule (analysis-level reason).
    Infeasible(FeasibilityError),
    /// The numerical solver failed (should not happen on feasible,
    /// well-scaled inputs; surfaced rather than hidden).
    Solver(String),
    /// A caller-supplied operating point was malformed (non-positive or
    /// non-finite `τ0`/`D`) before any scheduling was attempted.
    InvalidParams(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Infeasible(e) => write!(f, "infeasible: {e}"),
            ScheduleError::Solver(msg) => write!(f, "solver failure: {msg}"),
            ScheduleError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<FeasibilityError> for ScheduleError {
    fn from(e: FeasibilityError) -> Self {
        ScheduleError::Infeasible(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let fe = FeasibilityError::DeadlineTooTight {
            min_deadline: 100.0,
            deadline: 50.0,
        };
        let se: ScheduleError = fe.clone().into();
        assert!(se.to_string().contains("infeasible"));
        assert_eq!(se, ScheduleError::Infeasible(fe));
        let s = ScheduleError::Solver("x".into());
        assert!(s.to_string().contains("solver failure"));
    }
}
