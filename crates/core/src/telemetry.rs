//! Per-solve telemetry attached to schedules.
//!
//! Every optimizer in this crate can report *how* it arrived at a
//! schedule — iteration counts, the final residual, the barrier weight
//! trajectory (for interior-point solves), wall time, and whether a
//! fallback path produced the answer. The data rides on
//! [`crate::WaitSchedule`] / [`crate::MonolithicSchedule`] so callers
//! (the bench harness, the CLI) can aggregate it into run manifests
//! without re-instrumenting each solver.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How a single solve went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveTelemetry {
    /// Algorithm that produced the result (e.g. `"water-filling"`,
    /// `"interior-point"`, `"unimodal"`, `"scan"`, `"bnb"`).
    pub method: String,
    /// Iteration count in the method's natural unit: total Newton
    /// iterations (phase-1 included) for interior point, bisection steps
    /// for water-filling, objective evaluations for the integer
    /// searches.
    pub iterations: u64,
    /// Final residual in the method's natural unit: duality-gap bound
    /// for interior point, deadline-budget slack for water-filling,
    /// 0 for exact integer searches.
    pub residual: f64,
    /// Barrier weight trajectory (interior point only; empty otherwise).
    pub barrier_mu: Vec<f64>,
    /// Per-iteration convergence series in the method's residual unit:
    /// duality-gap bound per barrier stage for interior point,
    /// deadline-budget slack per bisection step for water-filling.
    /// Empty for exact integer searches.
    pub residual_series: Vec<f64>,
    /// Wall-clock time the solve took, in microseconds.
    pub wall_micros: f64,
    /// True if this result came from a fallback path after the primary
    /// method failed (e.g. water-filling → interior point on zero-gain
    /// pipelines).
    pub fallback: bool,
    /// True if the solve was seeded from a warm-start hint (a nearby
    /// instance's schedule) rather than started cold.
    pub warm_start: bool,
    /// Phase-1 (feasibility restoration) Newton iterations, when the
    /// method ran a phase-1 (interior point only; `None` otherwise).
    pub phase1_iterations: Option<u64>,
    /// Iterations a comparable cold solve used minus this solve's
    /// iterations, when the caller measured one (e.g. the calibration
    /// loop comparing against its previous round). Negative means the
    /// warm start hurt.
    pub iterations_saved: Option<i64>,
}

impl SolveTelemetry {
    /// Telemetry with everything zeroed except the method name; callers
    /// fill the rest in as the solve proceeds.
    pub fn new(method: impl Into<String>) -> Self {
        SolveTelemetry {
            method: method.into(),
            iterations: 0,
            residual: 0.0,
            barrier_mu: Vec::new(),
            residual_series: Vec::new(),
            wall_micros: 0.0,
            fallback: false,
            warm_start: false,
            phase1_iterations: None,
            iterations_saved: None,
        }
    }
}

/// Measure the wall time of `f` and stamp it (in microseconds) onto the
/// telemetry its result carries via the returned closure's output.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zeroes_everything_but_method() {
        let t = SolveTelemetry::new("water-filling");
        assert_eq!(t.method, "water-filling");
        assert_eq!(t.iterations, 0);
        assert!(!t.fallback);
        assert!(!t.warm_start);
        assert_eq!(t.phase1_iterations, None);
        assert_eq!(t.iterations_saved, None);
        assert!(t.barrier_mu.is_empty());
        assert!(t.residual_series.is_empty());
    }

    #[test]
    fn timed_reports_nonnegative_micros() {
        let (v, us) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
    }

    #[test]
    fn serializes_roundtrip() {
        let mut t = SolveTelemetry::new("interior-point");
        t.iterations = 12;
        t.barrier_mu = vec![1.0, 20.0];
        t.residual_series = vec![0.5, 0.05, 0.005];
        t.warm_start = true;
        t.phase1_iterations = Some(3);
        t.iterations_saved = Some(-2);
        let v = serde_json::to_value(&t).unwrap();
        let back: SolveTelemetry = serde_json::from_value(&v).unwrap();
        assert_eq!(back, t);
    }
}
