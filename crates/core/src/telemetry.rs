//! Per-solve telemetry attached to schedules.
//!
//! Every optimizer in this crate can report *how* it arrived at a
//! schedule — iteration counts, the final residual, the barrier weight
//! trajectory (for interior-point solves), wall time, and whether a
//! fallback path produced the answer. The data rides on
//! [`crate::WaitSchedule`] / [`crate::MonolithicSchedule`] so callers
//! (the bench harness, the CLI) can aggregate it into run manifests
//! without re-instrumenting each solver.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How a single solve went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveTelemetry {
    /// Algorithm that produced the result (e.g. `"water-filling"`,
    /// `"interior-point"`, `"unimodal"`, `"scan"`, `"bnb"`).
    pub method: String,
    /// Iteration count in the method's natural unit: total Newton
    /// iterations (phase-1 included) for interior point, bisection steps
    /// for water-filling, objective evaluations for the integer
    /// searches.
    pub iterations: u64,
    /// Final residual in the method's natural unit: duality-gap bound
    /// for interior point, deadline-budget slack for water-filling,
    /// 0 for exact integer searches.
    pub residual: f64,
    /// Barrier weight trajectory (interior point only; empty otherwise).
    pub barrier_mu: Vec<f64>,
    /// Per-iteration convergence series in the method's residual unit:
    /// duality-gap bound per barrier stage for interior point,
    /// deadline-budget slack per bisection step for water-filling.
    /// Empty for exact integer searches.
    pub residual_series: Vec<f64>,
    /// Wall-clock time the solve took, in microseconds.
    pub wall_micros: f64,
    /// True if this result came from a fallback path after the primary
    /// method failed (e.g. water-filling → interior point on zero-gain
    /// pipelines).
    pub fallback: bool,
    /// True if the solve was seeded from a warm-start hint (a nearby
    /// instance's schedule) rather than started cold.
    pub warm_start: bool,
    /// Phase-1 (feasibility restoration) Newton iterations, when the
    /// method ran a phase-1 (interior point only; `None` otherwise).
    pub phase1_iterations: Option<u64>,
    /// Iterations a comparable cold solve used minus this solve's
    /// iterations, when the caller measured one (e.g. the calibration
    /// loop comparing against its previous round). Negative means the
    /// warm start hurt.
    pub iterations_saved: Option<i64>,
    /// Newton factorization the interior-point solve used: `"dense"` or
    /// `"banded"`. `None` for non-Newton methods. Skipped when absent so
    /// existing serialized telemetry stays byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub factorization: Option<String>,
    /// Bandwidth of the banded factorization (only when `factorization`
    /// is `"banded"`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub bandwidth: Option<u64>,
    /// Wall-clock microseconds the solve spent assembling, factoring,
    /// and solving Newton KKT systems (banded interior point only;
    /// `None` otherwise). Separates the O(N·bw²) per-step kernel from
    /// line-search barrier evaluations so scaling benches can gate on
    /// the factorization cost rather than instance conditioning.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub newton_solve_micros: Option<f64>,
}

impl SolveTelemetry {
    /// Telemetry with everything zeroed except the method name; callers
    /// fill the rest in as the solve proceeds.
    pub fn new(method: impl Into<String>) -> Self {
        SolveTelemetry {
            method: method.into(),
            iterations: 0,
            residual: 0.0,
            barrier_mu: Vec::new(),
            residual_series: Vec::new(),
            wall_micros: 0.0,
            fallback: false,
            warm_start: false,
            phase1_iterations: None,
            iterations_saved: None,
            factorization: None,
            bandwidth: None,
            newton_solve_micros: None,
        }
    }

    /// Record which Newton factorization an interior-point solve used,
    /// from the solver's reported banded bandwidth (`None` = dense).
    pub fn record_factorization(&mut self, banded_bandwidth: Option<usize>) {
        match banded_bandwidth {
            Some(bw) => {
                self.factorization = Some("banded".to_string());
                self.bandwidth = Some(bw as u64);
            }
            None => {
                self.factorization = Some("dense".to_string());
                self.bandwidth = None;
            }
        }
    }
}

/// Measure the wall time of `f` and stamp it (in microseconds) onto the
/// telemetry its result carries via the returned closure's output.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zeroes_everything_but_method() {
        let t = SolveTelemetry::new("water-filling");
        assert_eq!(t.method, "water-filling");
        assert_eq!(t.iterations, 0);
        assert!(!t.fallback);
        assert!(!t.warm_start);
        assert_eq!(t.phase1_iterations, None);
        assert_eq!(t.iterations_saved, None);
        assert!(t.barrier_mu.is_empty());
        assert!(t.residual_series.is_empty());
        assert_eq!(t.factorization, None);
        assert_eq!(t.bandwidth, None);
        assert_eq!(t.newton_solve_micros, None);
    }

    #[test]
    fn factorization_fields_skip_when_absent_and_roundtrip_when_set() {
        let t = SolveTelemetry::new("water-filling");
        let v = serde_json::to_value(&t).unwrap();
        let rendered = serde_json::to_string(&v).unwrap();
        assert!(!rendered.contains("factorization"));
        assert!(!rendered.contains("bandwidth"));
        assert!(!rendered.contains("newton_solve_micros"));

        let mut t = SolveTelemetry::new("interior-point");
        t.record_factorization(Some(1));
        assert_eq!(t.factorization.as_deref(), Some("banded"));
        assert_eq!(t.bandwidth, Some(1));
        let back: SolveTelemetry =
            serde_json::from_value(&serde_json::to_value(&t).unwrap()).unwrap();
        assert_eq!(back, t);

        t.record_factorization(None);
        assert_eq!(t.factorization.as_deref(), Some("dense"));
        assert_eq!(t.bandwidth, None);
    }

    #[test]
    fn timed_reports_nonnegative_micros() {
        let (v, us) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
    }

    #[test]
    fn serializes_roundtrip() {
        let mut t = SolveTelemetry::new("interior-point");
        t.iterations = 12;
        t.barrier_mu = vec![1.0, 20.0];
        t.residual_series = vec![0.5, 0.05, 0.005];
        t.warm_start = true;
        t.phase1_iterations = Some(3);
        t.iterations_saved = Some(-2);
        let v = serde_json::to_value(&t).unwrap();
        let back: SolveTelemetry = serde_json::from_value(&v).unwrap();
        assert_eq!(back, t);
    }
}
