//! Worker-thread-count policy for embarrassingly parallel work.
//!
//! Both the `(τ0, D)` sweep scheduler ([`crate::comparison`]) and the
//! multi-seed simulation runner in `pipeline-sim` fan work out over
//! scoped threads. They share this policy so one environment variable
//! controls both: `RTSDF_THREADS` overrides the worker count (useful
//! for reproducible benchmarking and for containers whose
//! `available_parallelism` misreports the cgroup quota); otherwise the
//! detected parallelism is used, falling back to 4 when detection
//! fails.

use std::num::NonZeroUsize;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "RTSDF_THREADS";

/// Number of worker threads for parallel sweeps and seed fan-out.
///
/// Resolution order: a positive integer in `RTSDF_THREADS`, then
/// [`std::thread::available_parallelism`], then 4. Malformed or
/// non-positive override values are ignored rather than erroring, so a
/// stray `RTSDF_THREADS=0` degrades to the detected default instead of
/// breaking every experiment binary.
pub fn worker_threads() -> usize {
    worker_threads_from(std::env::var(THREADS_ENV).ok().as_deref())
}

/// Testable core of [`worker_threads`]: resolves the count from an
/// explicit override value instead of reading the environment.
pub fn worker_threads_from(override_value: Option<&str>) -> usize {
    if let Some(v) = override_value {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(4, NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_when_valid() {
        assert_eq!(worker_threads_from(Some("3")), 3);
        assert_eq!(worker_threads_from(Some(" 12 ")), 12);
        assert_eq!(worker_threads_from(Some("1")), 1);
    }

    #[test]
    fn invalid_overrides_fall_back_to_detection() {
        let detected = worker_threads_from(None);
        assert!(detected >= 1);
        for bad in ["0", "-2", "four", "", "1.5"] {
            assert_eq!(worker_threads_from(Some(bad)), detected, "{bad:?}");
        }
    }

    #[test]
    fn env_reader_returns_a_positive_count() {
        // Whatever the ambient environment says, the answer is usable.
        assert!(worker_threads() >= 1);
    }
}
