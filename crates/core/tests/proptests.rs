//! Property-based tests for the scheduling strategies: solver agreement,
//! feasibility, and KKT certification on randomized pipelines.

use dataflow_model::{GainModel, PipelineSpec, PipelineSpecBuilder, RtParams};
use proptest::prelude::*;
use rtsdf_core::comparison::{
    sweep, sweep_parallel, sweep_parallel_with, sweep_with, SweepConfig, SweepOptions,
};
use rtsdf_core::feasibility::minimal_periods;
use rtsdf_core::kkt::verify_kkt;
use rtsdf_core::{EnforcedWaitsProblem, MonolithicProblem, SolveMethod, WarmStart};

/// A random pipeline with strictly positive mean gains (so both Fig.-1
/// solution methods apply).
fn pipeline() -> impl Strategy<Value = PipelineSpec> {
    prop::collection::vec((10.0..2000.0f64, 0.1..3.0f64), 2..=6).prop_map(|stages| {
        let mut b = PipelineSpecBuilder::new(64);
        for (i, (t, gain)) in stages.into_iter().enumerate() {
            // Two-point empirical law with the requested mean: stresses
            // the Empirical code path rather than only Bernoulli.
            let k = gain.ceil().max(1.0) as u32;
            let p_hi = gain / k as f64;
            b = b.stage(
                format!("s{i}"),
                t,
                GainModel::Empirical {
                    pmf: vec![(0, 1.0 - p_hi), (k, p_hi)],
                },
            );
        }
        b.build().expect("valid")
    })
}

/// A feasible operating point + factors for the given pipeline, derived
/// from its minimal periods.
fn feasible_point(p: &PipelineSpec, tau_scale: f64, d_scale: f64) -> Option<(RtParams, Vec<f64>)> {
    let b: Vec<f64> = p.mean_gains().iter().map(|g| g.ceil().max(1.0)).collect();
    let xmin = minimal_periods(p);
    let tau0 = xmin[0] / p.vector_width() as f64 * tau_scale;
    // NaN or nonpositive tau0 means the scale degenerated the point.
    if tau0.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return None;
    }
    let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
    let d = min_d * d_scale;
    Some((RtParams::new(tau0, d).ok()?, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn waterfilling_and_interior_point_agree(
        p in pipeline(),
        tau_scale in 1.05..20.0f64,
        d_scale in 1.05..20.0f64,
    ) {
        let Some((params, b)) = feasible_point(&p, tau_scale, d_scale) else {
            return Ok(());
        };
        let prob = EnforcedWaitsProblem::new(&p, params, b);
        let wf = prob.solve(SolveMethod::WaterFilling).expect("feasible by construction");
        let ip = prob.solve(SolveMethod::InteriorPoint).expect("feasible by construction");
        prop_assert!(
            (wf.active_fraction - ip.active_fraction).abs()
                <= 1e-4 * wf.active_fraction.max(1e-9),
            "WF {} vs IP {}",
            wf.active_fraction,
            ip.active_fraction
        );
    }

    #[test]
    fn waterfilling_solution_is_feasible_and_certified(
        p in pipeline(),
        tau_scale in 1.05..20.0f64,
        d_scale in 1.05..20.0f64,
    ) {
        let Some((params, b)) = feasible_point(&p, tau_scale, d_scale) else {
            return Ok(());
        };
        let prob = EnforcedWaitsProblem::new(&p, params, b);
        let s = prob.solve(SolveMethod::WaterFilling).expect("feasible by construction");
        let cs = prob.constraint_set();
        prop_assert!(cs.is_feasible(&s.periods, 1e-6 * params.deadline.max(1.0)));
        prop_assert!(s.waits.iter().all(|&w| w >= 0.0));
        let kkt = verify_kkt(&prob, &s.periods, 1e-5);
        prop_assert!(kkt.is_optimal(5e-3), "{kkt:?}");
    }

    #[test]
    fn tighter_deadline_never_improves_active_fraction(
        p in pipeline(),
        tau_scale in 1.05..20.0f64,
        d_scale in 1.2..10.0f64,
    ) {
        let Some((params_loose, b)) = feasible_point(&p, tau_scale, d_scale * 2.0) else {
            return Ok(());
        };
        let Some((params_tight, _)) = feasible_point(&p, tau_scale, d_scale) else {
            return Ok(());
        };
        let loose = EnforcedWaitsProblem::new(&p, params_loose, b.clone())
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let tight = EnforcedWaitsProblem::new(&p, params_tight, b)
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        prop_assert!(loose.active_fraction <= tight.active_fraction + 1e-9);
    }

    #[test]
    fn minimal_periods_are_componentwise_minimal(
        p in pipeline(),
        inflate in prop::collection::vec(1.0..4.0f64, 6),
    ) {
        // Any feasible period vector (built by inflating x̂ upstream-first
        // so the chain constraints stay satisfied) dominates x̂.
        let xmin = minimal_periods(&p);
        let g = p.mean_gains();
        // Inflate from the tail: x_i' = max(t_i, g_i·x_{i+1}') · inflate_i.
        let t = p.service_times();
        let n = p.len();
        let mut x = vec![0.0; n];
        x[n - 1] = t[n - 1] * inflate[0];
        for i in (0..n - 1).rev() {
            x[i] = (t[i].max(g[i] * x[i + 1])) * inflate[(n - 1 - i) % inflate.len()];
        }
        for i in 0..n {
            prop_assert!(x[i] >= xmin[i] - 1e-9, "constructed feasible x below x̂ at {i}");
        }
    }

    #[test]
    fn warm_started_solves_converge_to_cold_schedule(
        p in pipeline(),
        tau_scale in 1.05..20.0f64,
        d_scale in 1.2..20.0f64,
        hint_scale in 1.05..2.0f64,
    ) {
        // A warm start seeded from a *different* operating point's
        // schedule must land on the same optimum as a cold solve, for
        // both Fig.-1 methods.
        let Some((params, b)) = feasible_point(&p, tau_scale, d_scale) else {
            return Ok(());
        };
        let Some((hint_params, _)) = feasible_point(&p, tau_scale, d_scale * hint_scale) else {
            return Ok(());
        };
        let hint_sched = EnforcedWaitsProblem::new(&p, hint_params, b.clone())
            .solve(SolveMethod::WaterFilling)
            .expect("feasible by construction");
        let hint = WarmStart::from_schedule(&hint_sched);
        for method in [SolveMethod::WaterFilling, SolveMethod::InteriorPoint] {
            let prob = EnforcedWaitsProblem::new(&p, params, b.clone());
            let cold = prob.solve(method).expect("feasible by construction");
            let warm = prob.solve_warm(method, &hint).expect("warm solve succeeds");
            prop_assert!(
                (cold.active_fraction - warm.active_fraction).abs()
                    <= 1e-4 * cold.active_fraction.max(1e-9),
                "{method:?}: cold {} vs warm {}",
                cold.active_fraction,
                warm.active_fraction
            );
            for (c, w) in cold.periods.iter().zip(&warm.periods) {
                prop_assert!(
                    (c - w).abs() <= 1e-3 * c.abs().max(1.0),
                    "{method:?}: periods {c} vs {w}"
                );
            }
        }
    }

    #[test]
    fn monolithic_exact_result_beats_random_probes(
        p in pipeline(),
        tau_scale in 2.0..40.0f64,
        d_scale in 2.0..40.0f64,
        probe in 1u64..5_000,
    ) {
        // Build an operating point generous enough that the monolithic
        // strategy usually has a feasible block size.
        let totals = p.total_gains();
        let rate_limit: f64 = p
            .nodes()
            .iter()
            .zip(&totals)
            .map(|(n, &g)| n.service_time * g)
            .sum::<f64>()
            / p.vector_width() as f64;
        let tau0 = rate_limit * tau_scale;
        let d = p.total_service_time() * d_scale + tau0 * 64.0;
        let params = RtParams::new(tau0, d).unwrap();
        let prob = MonolithicProblem::new(&p, params, 1.0, 1.0);
        if let Ok(best) = prob.solve() {
            if let Some(v) = prob.objective(probe.min(prob.max_block_size().max(1))) {
                prop_assert!(best.active_fraction <= v + 1e-12);
            }
        }
    }
}

/// Compare two sweep results cell by cell, requiring bit-identical
/// feasibility and active fractions.
fn assert_sweeps_identical(
    a: &rtsdf_core::comparison::SweepResult,
    b: &rtsdf_core::comparison::SweepResult,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.cells.len(), b.cells.len());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        prop_assert_eq!((x.tau0, x.deadline), (y.tau0, y.deadline));
        prop_assert_eq!(x.enforced, y.enforced, "tau0={} D={}", x.tau0, x.deadline);
        prop_assert_eq!(
            x.monolithic,
            y.monolithic,
            "tau0={} D={}",
            x.tau0,
            x.deadline
        );
    }
    Ok(())
}

proptest! {
    // Sweeps run many solves per case; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_sweep_bit_identical_to_sequential_on_random_grids(
        p in pipeline(),
        tau0s in prop::collection::vec(0.5..150.0f64, 0..=4),
        deadlines in prop::collection::vec(2e4..4e5f64, 0..=4),
    ) {
        // Random grid shapes include empty, 1×N, and N×1; random
        // operating points include infeasible cells. The work-stealing
        // scheduler must reproduce the sequential sweep bit for bit,
        // cold and warm alike.
        let config = SweepConfig {
            enforced_b: p.mean_gains().iter().map(|g| g.ceil().max(1.0)).collect(),
            monolithic_b: 1.0,
            monolithic_s: 1.0,
        };
        let seq = sweep(&p, &tau0s, &deadlines, &config).expect("valid grid");
        let par = sweep_parallel(&p, &tau0s, &deadlines, &config).expect("valid grid");
        assert_sweeps_identical(&seq, &par)?;
        let opts = SweepOptions::warm();
        let warm_seq = sweep_with(&p, &tau0s, &deadlines, &config, &opts).expect("valid grid");
        let warm_par =
            sweep_parallel_with(&p, &tau0s, &deadlines, &config, &opts).expect("valid grid");
        assert_sweeps_identical(&warm_seq, &warm_par)?;
    }
}
