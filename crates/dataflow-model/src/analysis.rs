//! Closed-form performance algebra for both scheduling strategies.
//!
//! These are the formulas of §4 (enforced waits) and §5 (monolithic
//! batching) of the paper. The optimizers in `rtsdf-core` build on them,
//! and the simulator's measurements are validated against them.
//!
//! A relationship worth noting (and tested below): in the limit of
//! unlimited deadline slack, the enforced-waits active fraction tends to
//! `(ρ0/v)·Σ t_i·G_i / N` while the monolithic active fraction tends to
//! `(ρ0/v)·Σ t_i·G_i` — i.e. enforced waits is asymptotically `N` times
//! better. This is the source of the "several-fold better" corner of the
//! paper's Figure 4 for the N = 4 BLAST pipeline.

use crate::params::RtParams;
use crate::pipeline::PipelineSpec;
use crate::topology::Topology;

/// Active fraction of the enforced-waits schedule with firing periods
/// `x_i = t_i + w_i` (paper §4.1):
///
/// ```text
/// T(w) = (1/N) Σ t_i / x_i
/// ```
///
/// # Panics
/// Panics if `periods.len()` differs from the pipeline length or any
/// period is not positive.
pub fn enforced_active_fraction(pipeline: &PipelineSpec, periods: &[f64]) -> f64 {
    assert_eq!(
        periods.len(),
        pipeline.len(),
        "period vector length mismatch"
    );
    let n = pipeline.len() as f64;
    pipeline
        .nodes()
        .iter()
        .zip(periods)
        .map(|(node, &x)| {
            assert!(x > 0.0, "firing period must be positive, got {x}");
            node.service_time / x
        })
        .sum::<f64>()
        / n
}

/// Upper bounds `U_i` on each firing period implied by the stability
/// constraints alone (paper §4.2):
///
/// * `x_0 ≤ v·τ0` — the head must keep up with arrivals;
/// * `x_i ≤ x_{i-1} / g_{i-1}` — each node must keep up with its
///   predecessor, which chains to `x_i ≤ v·τ0 / G_i`.
///
/// Nodes whose total input gain `G_i` is zero (some upstream gain is
/// exactly 0, so they see no traffic in the mean) get `f64::INFINITY`.
pub fn period_upper_bounds(pipeline: &PipelineSpec, params: &RtParams) -> Vec<f64> {
    let v = pipeline.vector_width() as f64;
    pipeline
        .total_gains()
        .iter()
        .map(|&g_total| {
            if g_total <= 0.0 {
                f64::INFINITY
            } else {
                v * params.tau0 / g_total
            }
        })
        .collect()
}

/// The smallest deadline any enforced-waits schedule can satisfy given
/// backlog factors `b`: `Σ b_i · t_i` (attained by `w_i = 0`).
///
/// # Panics
/// Panics on a length mismatch.
pub fn min_feasible_deadline(pipeline: &PipelineSpec, b: &[f64]) -> f64 {
    assert_eq!(b.len(), pipeline.len(), "backlog factor length mismatch");
    pipeline
        .nodes()
        .iter()
        .zip(b)
        .map(|(node, &bi)| bi * node.service_time)
        .sum()
}

/// Worst-case queueing latency bound for an enforced-waits schedule
/// (left side of the paper's deadline constraint): `Σ b_i·(t_i+w_i)`.
pub fn enforced_latency_bound(pipeline: &PipelineSpec, periods: &[f64], b: &[f64]) -> f64 {
    assert_eq!(periods.len(), pipeline.len());
    assert_eq!(b.len(), pipeline.len());
    periods.iter().zip(b).map(|(&x, &bi)| bi * x).sum()
}

/// Average time for the monolithic pipeline to consume a block of `M`
/// inputs (paper §5.1):
///
/// ```text
/// T̄(M) = Σ_i ⌈M·G_i / v⌉ · t_i
/// ```
pub fn monolithic_block_time(pipeline: &PipelineSpec, m: u64) -> f64 {
    let v = pipeline.vector_width() as f64;
    let totals = pipeline.total_gains();
    pipeline
        .nodes()
        .iter()
        .zip(&totals)
        .map(|(node, &g_total)| {
            let vectors = (m as f64 * g_total / v).ceil();
            vectors * node.service_time
        })
        .sum()
}

/// Average-case active fraction of the monolithic strategy at block size
/// `M`: `ρ0·T̄(M)/M`.
pub fn monolithic_active_fraction(pipeline: &PipelineSpec, params: &RtParams, m: u64) -> f64 {
    assert!(m > 0, "block size must be positive");
    params.rho0() * monolithic_block_time(pipeline, m) / m as f64
}

/// Stability check for the monolithic strategy: the pipeline must finish
/// a block before the next one finishes accumulating, `T̄(M) ≤ M·τ0`.
pub fn monolithic_stable(pipeline: &PipelineSpec, params: &RtParams, m: u64) -> bool {
    monolithic_block_time(pipeline, m) <= m as f64 * params.tau0
}

/// Worst-case response bound for the monolithic strategy with queue
/// multiplier `b` and worst-case scale `S` (paper Fig. 2 constraint):
/// `b·M·τ0 + S·T̄(M)`.
pub fn monolithic_latency_bound(
    pipeline: &PipelineSpec,
    params: &RtParams,
    m: u64,
    b: f64,
    s: f64,
) -> f64 {
    b * m as f64 * params.tau0 + s * monolithic_block_time(pipeline, m)
}

/// Limit of the monolithic active fraction as `M → ∞`:
/// `(ρ0/v)·Σ t_i·G_i`. The monolithic strategy cannot do better than
/// this no matter how much deadline slack is available — the
/// "diminishing returns" behaviour visible in the paper's Figure 3.
pub fn monolithic_limit_active_fraction(pipeline: &PipelineSpec, params: &RtParams) -> f64 {
    let v = pipeline.vector_width() as f64;
    let totals = pipeline.total_gains();
    params.rho0() / v
        * pipeline
            .nodes()
            .iter()
            .zip(&totals)
            .map(|(node, &g)| node.service_time * g)
            .sum::<f64>()
}

/// Limit of the enforced-waits active fraction as `D → ∞` (all periods
/// at their stability bounds `U_i`): `(ρ0/v)·Σ t_i·G_i / N` — a factor
/// `N` below the monolithic limit.
pub fn enforced_limit_active_fraction(pipeline: &PipelineSpec, params: &RtParams) -> f64 {
    monolithic_limit_active_fraction(pipeline, params) / pipeline.len() as f64
}

// ---------------------------------------------------------------------------
// DAG generalizations. Arrival rates propagate per edge: fan-out splits
// a node's output flow across its out-edges, fan-in sums the flows of a
// node's in-edges ([`Topology::total_gains`]). On a chain topology each
// function below reproduces its `PipelineSpec` counterpart bit-for-bit.
// ---------------------------------------------------------------------------

/// Active fraction of an enforced-waits schedule on a DAG with firing
/// periods `x_i`: `(1/N) Σ t_i / x_i`, node-indexed.
///
/// # Panics
/// Panics if `periods.len()` differs from the node count or any period
/// is not positive.
pub fn topology_enforced_active_fraction(topology: &Topology, periods: &[f64]) -> f64 {
    assert_eq!(
        periods.len(),
        topology.len(),
        "period vector length mismatch"
    );
    let n = topology.len() as f64;
    topology
        .nodes()
        .iter()
        .zip(periods)
        .map(|(node, &x)| {
            assert!(x > 0.0, "firing period must be positive, got {x}");
            node.service_time / x
        })
        .sum::<f64>()
        / n
}

/// Upper bounds `U_i` on each firing period implied by per-edge
/// stability alone: node `i` sees `G_i` items per stream input (fan-in
/// summed, fan-out split), so `x_i ≤ v·τ0 / G_i`. Nodes with zero mean
/// traffic get `f64::INFINITY`.
pub fn topology_period_upper_bounds(topology: &Topology, params: &RtParams) -> Vec<f64> {
    let v = topology.vector_width() as f64;
    topology
        .total_gains()
        .iter()
        .map(|&g_total| {
            if g_total <= 0.0 {
                f64::INFINITY
            } else {
                v * params.tau0 / g_total
            }
        })
        .collect()
}

/// The smallest deadline any enforced-waits schedule on the DAG can
/// satisfy given node-indexed backlog factors `b`: `Σ b_i · t_i`.
/// Conservative for DAGs: it charges every node once, i.e. the longest
/// path through the DAG is bounded by the sum over all nodes.
///
/// # Panics
/// Panics on a length mismatch.
pub fn topology_min_feasible_deadline(topology: &Topology, b: &[f64]) -> f64 {
    assert_eq!(b.len(), topology.len(), "backlog factor length mismatch");
    topology
        .nodes()
        .iter()
        .zip(b)
        .map(|(node, &bi)| bi * node.service_time)
        .sum()
}

/// Worst-case queueing latency bound for an enforced-waits schedule on
/// the DAG: `Σ b_i·x_i` over all nodes (every root-to-sink path is a
/// subset of the node set, so the sum bounds the longest path).
pub fn topology_enforced_latency_bound(topology: &Topology, periods: &[f64], b: &[f64]) -> f64 {
    assert_eq!(periods.len(), topology.len());
    assert_eq!(b.len(), topology.len());
    periods.iter().zip(b).map(|(&x, &bi)| bi * x).sum()
}

/// Average time for the monolithic runtime to push a block of `M`
/// inputs through the DAG: `T̄(M) = Σ_i ⌈M·G_i / v⌉ · t_i`, where `G_i`
/// is node `i`'s mean items per stream input (fan-in summed, fan-out
/// split by routing weight). The block visits nodes in topological
/// order on the single shared device, so the same per-node vector-count
/// formula as the chain applies.
pub fn topology_monolithic_block_time(topology: &Topology, m: u64) -> f64 {
    let v = topology.vector_width() as f64;
    let totals = topology.total_gains();
    topology
        .nodes()
        .iter()
        .zip(&totals)
        .map(|(node, &g_total)| {
            let vectors = (m as f64 * g_total / v).ceil();
            vectors * node.service_time
        })
        .sum()
}

/// Average-case active fraction of the monolithic strategy on the DAG at
/// block size `M`: `ρ0·T̄(M)/M`.
pub fn topology_monolithic_active_fraction(topology: &Topology, params: &RtParams, m: u64) -> f64 {
    assert!(m > 0, "block size must be positive");
    params.rho0() * topology_monolithic_block_time(topology, m) / m as f64
}

/// Stability check for the monolithic strategy on the DAG:
/// `T̄(M) ≤ M·τ0`.
pub fn topology_monolithic_stable(topology: &Topology, params: &RtParams, m: u64) -> bool {
    topology_monolithic_block_time(topology, m) <= m as f64 * params.tau0
}

/// Worst-case response bound for the monolithic strategy on the DAG:
/// `b·M·τ0 + S·T̄(M)`.
pub fn topology_monolithic_latency_bound(
    topology: &Topology,
    params: &RtParams,
    m: u64,
    b: f64,
    s: f64,
) -> f64 {
    b * m as f64 * params.tau0 + s * topology_monolithic_block_time(topology, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::GainModel;
    use crate::pipeline::PipelineSpecBuilder;

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    fn rt(tau0: f64, d: f64) -> RtParams {
        RtParams::new(tau0, d).unwrap()
    }

    #[test]
    fn zero_waits_give_full_activity() {
        let p = blast();
        let t = p.service_times();
        assert!((enforced_active_fraction(&p, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn doubling_every_period_halves_activity() {
        let p = blast();
        let x: Vec<f64> = p.service_times().iter().map(|t| 2.0 * t).collect();
        assert!((enforced_active_fraction(&p, &x) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn active_fraction_rejects_zero_period() {
        let p = blast();
        enforced_active_fraction(&p, &[1.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn period_bounds_follow_total_gain() {
        let p = blast();
        let params = rt(10.0, 1e5);
        let u = period_upper_bounds(&p, &params);
        let g = p.total_gains();
        assert!((u[0] - 1280.0).abs() < 1e-9);
        for i in 0..4 {
            assert!((u[i] - 128.0 * 10.0 / g[i]).abs() < 1e-6);
        }
        // Stage 1 sees less traffic than stage 0 (g0 < 1): larger bound.
        assert!(u[1] > u[0]);
        // Stage 2 sees ~1.92x stage 1's traffic: smaller bound than u[1].
        assert!(u[2] < u[1]);
        // Stage 3 sees very little traffic (g2 = 0.0332): much larger.
        assert!(u[3] > u[2]);
    }

    #[test]
    fn zero_gain_disables_downstream_bound() {
        let p = PipelineSpecBuilder::new(4)
            .stage("a", 1.0, GainModel::Deterministic { k: 0 })
            .stage("b", 1.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap();
        let u = period_upper_bounds(&p, &rt(1.0, 100.0));
        assert!(u[0].is_finite());
        assert!(u[1].is_infinite());
    }

    #[test]
    fn min_deadline_is_weighted_service_sum() {
        let p = blast();
        let b = [1.0, 3.0, 9.0, 6.0];
        let expect = 287.0 + 3.0 * 955.0 + 9.0 * 402.0 + 6.0 * 2753.0;
        assert!((min_feasible_deadline(&p, &b) - expect).abs() < 1e-9);
    }

    #[test]
    fn latency_bound_with_unit_b_is_period_sum() {
        let p = blast();
        let x = [300.0, 1000.0, 450.0, 2800.0];
        let b = [1.0; 4];
        assert!((enforced_latency_bound(&p, &x, &b) - 4550.0).abs() < 1e-9);
    }

    #[test]
    fn block_time_small_m_is_one_vector_per_stage() {
        let p = blast();
        // M = 1: every stage needs ⌈G_i/128⌉ = 1 vector (G_i ≤ 1.92... well
        // below 128), so T̄(1) = total service time.
        assert!((monolithic_block_time(&p, 1) - p.total_service_time()).abs() < 1e-9);
    }

    #[test]
    fn block_time_scales_with_ceilings() {
        let p = blast();
        // M = 128: stage 0 needs exactly 1 vector; stage 1 sees
        // 128·0.379 ≈ 48.5 items → 1 vector; stage 2 sees ≈ 93 → 1; stage 3
        // sees ≈ 3 → 1. Still the sum of service times.
        assert!((monolithic_block_time(&p, 128) - p.total_service_time()).abs() < 1e-9);
        // M = 256: stage 0 needs 2 vectors now.
        let t256 = monolithic_block_time(&p, 256);
        assert!((t256 - (2.0 * 287.0 + 955.0 + 2.0 * 402.0 + 2753.0)).abs() < 1e-9);
    }

    #[test]
    fn monolithic_active_fraction_decreases_then_flattens() {
        let p = blast();
        let params = rt(50.0, 3.5e5);
        let a1 = monolithic_active_fraction(&p, &params, 1);
        let a128 = monolithic_active_fraction(&p, &params, 128);
        let a4096 = monolithic_active_fraction(&p, &params, 4096);
        let limit = monolithic_limit_active_fraction(&p, &params);
        assert!(a1 > a128 && a128 > a4096, "{a1} {a128} {a4096}");
        assert!(a4096 >= limit - 1e-12, "never below the limit");
        assert!(
            (a4096 - limit) / limit < 0.25,
            "within 25% of limit by M=4096"
        );
    }

    #[test]
    fn stability_threshold() {
        let p = blast();
        // τ0 = 1: a single item per cycle. T̄(1) = 4397 > 1·1 → unstable.
        assert!(!monolithic_stable(&p, &rt(1.0, 1e5), 1));
        // Large M at τ0 = 50: T̄ grows ~linearly with slope well under 50/item.
        assert!(monolithic_stable(&p, &rt(50.0, 1e5), 4096));
    }

    #[test]
    fn monolithic_latency_bound_composition() {
        let p = blast();
        let params = rt(10.0, 1e5);
        let m = 64;
        let bound = monolithic_latency_bound(&p, &params, m, 1.0, 1.0);
        assert!((bound - (640.0 + monolithic_block_time(&p, m))).abs() < 1e-9);
        let bound2 = monolithic_latency_bound(&p, &params, m, 2.0, 1.5);
        assert!(bound2 > bound);
    }

    #[test]
    fn enforced_limit_is_n_times_better_than_monolithic_limit() {
        let p = blast();
        let params = rt(10.0, 1e5);
        let e = enforced_limit_active_fraction(&p, &params);
        let m = monolithic_limit_active_fraction(&p, &params);
        assert!((m / e - 4.0).abs() < 1e-12);
    }

    #[test]
    fn limits_scale_inversely_with_tau0() {
        let p = blast();
        let m1 = monolithic_limit_active_fraction(&p, &rt(10.0, 1e5));
        let m2 = monolithic_limit_active_fraction(&p, &rt(20.0, 1e5));
        assert!((m1 / m2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn topology_chain_analysis_bit_matches_pipeline_analysis() {
        let p = blast();
        let t = Topology::chain(&p);
        let params = rt(10.0, 1e5);
        let x = [300.0, 1000.0, 450.0, 2800.0];
        let b = [1.0, 3.0, 9.0, 6.0];
        assert_eq!(
            topology_enforced_active_fraction(&t, &x),
            enforced_active_fraction(&p, &x)
        );
        assert_eq!(
            topology_period_upper_bounds(&t, &params),
            period_upper_bounds(&p, &params)
        );
        assert_eq!(
            topology_min_feasible_deadline(&t, &b),
            min_feasible_deadline(&p, &b)
        );
        assert_eq!(
            topology_enforced_latency_bound(&t, &x, &b),
            enforced_latency_bound(&p, &x, &b)
        );
        for m in [1, 64, 128, 256, 4096] {
            assert_eq!(
                topology_monolithic_block_time(&t, m),
                monolithic_block_time(&p, m)
            );
            assert_eq!(
                topology_monolithic_active_fraction(&t, &params, m),
                monolithic_active_fraction(&p, &params, m)
            );
            assert_eq!(
                topology_monolithic_stable(&t, &params, m),
                monolithic_stable(&p, &params, m)
            );
            assert_eq!(
                topology_monolithic_latency_bound(&t, &params, m, 1.0, 1.5),
                monolithic_latency_bound(&p, &params, m, 1.0, 1.5)
            );
        }
    }

    #[test]
    fn topology_period_bounds_account_for_fan_in_sums() {
        use crate::topology::TopologyBuilder;
        // parse → {filter, enrich} → join: join's traffic is the SUM of
        // both branch flows, so its period bound is tighter than either
        // branch alone would imply.
        let t = TopologyBuilder::new(128)
            .node("parse", 100.0)
            .node("filter", 40.0)
            .node("enrich", 60.0)
            .node("join", 80.0)
            .edge(0, 1, GainModel::Deterministic { k: 1 }, 0.5)
            .edge(0, 2, GainModel::Deterministic { k: 1 }, 0.5)
            .edge(1, 3, GainModel::Deterministic { k: 1 }, 1.0)
            .edge(2, 3, GainModel::Deterministic { k: 2 }, 1.0)
            .build()
            .unwrap();
        let params = rt(10.0, 1e5);
        let u = topology_period_upper_bounds(&t, &params);
        let g = t.total_gains();
        // join sees 0.5·1 + 0.5·2 = 1.5 items per input.
        assert!((g[3] - 1.5).abs() < 1e-15);
        assert!((u[3] - 128.0 * 10.0 / 1.5).abs() < 1e-9);
        // Tighter than the head bound (more traffic than the source).
        assert!(u[3] < u[0]);
    }

    #[test]
    fn per_edge_flow_balance_holds() {
        use crate::topology::TopologyBuilder;
        let t = TopologyBuilder::new(64)
            .node("a", 10.0)
            .node("b", 10.0)
            .node("c", 10.0)
            .node("d", 10.0)
            .node("e", 10.0)
            .edge(0, 1, GainModel::Bernoulli { p: 0.7 }, 1.0)
            .edge(0, 2, GainModel::CensoredPoisson { mean: 1.3, cap: 8 }, 0.4)
            .edge(1, 3, GainModel::Deterministic { k: 2 }, 0.9)
            .edge(2, 3, GainModel::Bernoulli { p: 0.2 }, 1.0)
            .edge(2, 4, GainModel::Deterministic { k: 1 }, 0.1)
            .edge(3, 4, GainModel::Deterministic { k: 1 }, 1.0)
            .build()
            .unwrap();
        let g = t.total_gains();
        let flows = t.edge_flows();
        // Each edge's flow is its source's in-rate times gain times weight...
        for (e, edge) in t.edges().iter().enumerate() {
            assert!(
                (flows[e] - g[edge.src] * edge.gain.mean() * edge.weight).abs() < 1e-12,
                "edge {e} flow mismatch"
            );
        }
        // ...and every non-source node's in-rate is the sum of its
        // in-edge flows (fan-in conservation).
        for (i, &gi) in g.iter().enumerate() {
            if i == t.source() {
                continue;
            }
            let inflow: f64 = t.in_edges(i).iter().map(|&e| flows[e]).sum();
            assert!((gi - inflow).abs() < 1e-12, "node {i} flow imbalance");
        }
    }
}
