//! Arrival processes.
//!
//! The paper's model assumes items arrive *regularly* at rate `ρ0 = 1/τ0`
//! (§2.1). We implement that as [`ArrivalProcess::Periodic`], plus the
//! Poisson generalization the conclusion points at and an on/off bursty
//! process used to study the monolithic strategy's `S` (worst-case
//! scale) parameter.

use crate::error::ModelError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How items enter the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exactly one item every `tau0` cycles (the paper's model).
    Periodic {
        /// Inter-arrival time `τ0`.
        tau0: f64,
    },
    /// Poisson arrivals with mean inter-arrival `tau0` (rate `1/τ0`).
    Poisson {
        /// Mean inter-arrival time.
        tau0: f64,
    },
    /// On/off bursty arrivals: alternating exponentially-distributed
    /// "on" and "off" phases; during "on" phases items arrive
    /// periodically at interval `tau_on`. The long-run mean rate is
    /// `(on_mean / (on_mean + off_mean)) / tau_on`.
    Bursty {
        /// Inter-arrival time inside a burst.
        tau_on: f64,
        /// Mean duration of a burst (cycles).
        on_mean: f64,
        /// Mean gap between bursts (cycles).
        off_mean: f64,
    },
}

impl ArrivalProcess {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        let bad = |reason: String| Err(ModelError::InvalidRtParams { reason });
        let pos = |v: f64| v.is_finite() && v > 0.0;
        match self {
            ArrivalProcess::Periodic { tau0 } | ArrivalProcess::Poisson { tau0 } => {
                if pos(*tau0) {
                    Ok(())
                } else {
                    bad(format!("tau0 = {tau0} must be positive and finite"))
                }
            }
            ArrivalProcess::Bursty {
                tau_on,
                on_mean,
                off_mean,
            } => {
                if pos(*tau_on) && pos(*on_mean) && pos(*off_mean) {
                    Ok(())
                } else {
                    bad("bursty parameters must be positive and finite".into())
                }
            }
        }
    }

    /// Long-run mean inter-arrival time.
    pub fn mean_interarrival(&self) -> f64 {
        match self {
            ArrivalProcess::Periodic { tau0 } | ArrivalProcess::Poisson { tau0 } => *tau0,
            ArrivalProcess::Bursty {
                tau_on,
                on_mean,
                off_mean,
            } => {
                // Items per on/off cycle ≈ on_mean / tau_on; cycle length
                // = on_mean + off_mean.
                tau_on * (on_mean + off_mean) / on_mean
            }
        }
    }

    /// Long-run mean rate `ρ0`.
    pub fn mean_rate(&self) -> f64 {
        1.0 / self.mean_interarrival()
    }

    /// Generate the first `n` arrival times (cycles, nondecreasing),
    /// starting at time 0 for periodic arrivals.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        let mut times = Vec::with_capacity(n);
        match self {
            ArrivalProcess::Periodic { tau0 } => {
                for k in 0..n {
                    times.push(k as f64 * tau0);
                }
            }
            ArrivalProcess::Poisson { tau0 } => {
                let mut t = 0.0;
                for _ in 0..n {
                    // Inverse-CDF exponential draw.
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -tau0 * u.ln();
                    times.push(t);
                }
            }
            ArrivalProcess::Bursty {
                tau_on,
                on_mean,
                off_mean,
            } => {
                let mut t = 0.0;
                while times.len() < n {
                    // One burst: exponential length, periodic arrivals.
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let burst_len = -on_mean * u.ln();
                    let in_burst = ((burst_len / tau_on).floor() as usize).max(1);
                    for k in 0..in_burst {
                        if times.len() == n {
                            break;
                        }
                        times.push(t + k as f64 * tau_on);
                    }
                    t += in_burst as f64 * tau_on;
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -off_mean * u.ln();
                }
            }
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn periodic_is_exact() {
        let a = ArrivalProcess::Periodic { tau0: 10.0 };
        let times = a.generate(5, &mut rng());
        assert_eq!(times, vec![0.0, 10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.mean_interarrival(), 10.0);
        assert!((a.mean_rate() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn poisson_mean_rate_matches() {
        let a = ArrivalProcess::Poisson { tau0: 25.0 };
        let n = 100_000;
        let times = a.generate(n, &mut rng());
        let mean_gap = times.last().unwrap() / (n as f64);
        assert!((mean_gap - 25.0).abs() < 0.5, "mean gap {mean_gap}");
        assert!(times.windows(2).all(|w| w[1] >= w[0]), "nondecreasing");
    }

    #[test]
    fn bursty_rate_matches_formula() {
        let a = ArrivalProcess::Bursty {
            tau_on: 2.0,
            on_mean: 100.0,
            off_mean: 300.0,
        };
        let n = 200_000;
        let times = a.generate(n, &mut rng());
        let measured_gap = times.last().unwrap() / n as f64;
        let predicted = a.mean_interarrival();
        assert!(
            (measured_gap - predicted).abs() / predicted < 0.1,
            "measured {measured_gap}, predicted {predicted}"
        );
    }

    #[test]
    fn bursty_is_actually_bursty() {
        let a = ArrivalProcess::Bursty {
            tau_on: 1.0,
            on_mean: 50.0,
            off_mean: 500.0,
        };
        let times = a.generate(10_000, &mut rng());
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let small = gaps.iter().filter(|&&g| g < 2.0).count();
        let large = gaps.iter().filter(|&&g| g > 100.0).count();
        assert!(small > gaps.len() / 2, "most gaps inside bursts");
        assert!(large > 0, "some long inter-burst gaps");
    }

    #[test]
    fn validation() {
        assert!(ArrivalProcess::Periodic { tau0: 1.0 }.validate().is_ok());
        assert!(ArrivalProcess::Periodic { tau0: 0.0 }.validate().is_err());
        assert!(ArrivalProcess::Poisson { tau0: -1.0 }.validate().is_err());
        assert!(ArrivalProcess::Bursty {
            tau_on: 1.0,
            on_mean: 1.0,
            off_mean: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn deterministic_given_same_seed() {
        let a = ArrivalProcess::Poisson { tau0: 5.0 };
        let t1 = a.generate(100, &mut StdRng::seed_from_u64(7));
        let t2 = a.generate(100, &mut StdRng::seed_from_u64(7));
        assert_eq!(t1, t2);
    }

    #[test]
    fn generate_zero_items() {
        let a = ArrivalProcess::Periodic { tau0: 1.0 };
        assert!(a.generate(0, &mut rng()).is_empty());
    }
}
