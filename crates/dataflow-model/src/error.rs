//! Model-level error types.

use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A pipeline must contain at least one node.
    EmptyPipeline,
    /// A node's service time must be strictly positive.
    NonPositiveServiceTime {
        /// Offending node index.
        node: usize,
        /// The rejected value.
        value: f64,
    },
    /// SIMD vector width must be at least 1.
    ZeroVectorWidth,
    /// A gain model parameter is out of range.
    InvalidGain {
        /// Offending node index (`usize::MAX` when standalone).
        node: usize,
        /// What was wrong.
        reason: String,
    },
    /// Real-time parameters must be positive and finite.
    InvalidRtParams {
        /// What was wrong.
        reason: String,
    },
    /// Stage names must be unique (duplicates silently alias in
    /// forensics tables).
    DuplicateStageName {
        /// The repeated name.
        name: String,
    },
    /// An edge may not connect a node to itself.
    SelfEdge {
        /// The offending node index.
        node: usize,
    },
    /// An edge endpoint refers to a node index that does not exist.
    EdgeEndpointOutOfRange {
        /// Offending edge index.
        edge: usize,
        /// The out-of-range node index.
        endpoint: usize,
    },
    /// An edge routing weight must be finite and in `(0, 1]`.
    InvalidEdgeWeight {
        /// Offending edge index.
        edge: usize,
        /// The rejected value.
        value: f64,
    },
    /// An edge gain model parameter is out of range.
    InvalidEdgeGain {
        /// Offending edge index.
        edge: usize,
        /// What was wrong.
        reason: String,
    },
    /// At most one edge may connect a given (src, dst) pair.
    DuplicateEdge {
        /// Producing node index.
        src: usize,
        /// Consuming node index.
        dst: usize,
    },
    /// The edge relation must be acyclic.
    CyclicTopology,
    /// A topology must have exactly one source node (in-degree 0).
    MultipleSources {
        /// How many in-degree-0 nodes were found.
        count: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyPipeline => write!(f, "pipeline has no nodes"),
            ModelError::NonPositiveServiceTime { node, value } => {
                write!(
                    f,
                    "node {node}: service time {value} is not strictly positive"
                )
            }
            ModelError::ZeroVectorWidth => write!(f, "SIMD vector width must be >= 1"),
            ModelError::InvalidGain { node, reason } => {
                if *node == usize::MAX {
                    write!(f, "invalid gain model: {reason}")
                } else {
                    write!(f, "node {node}: invalid gain model: {reason}")
                }
            }
            ModelError::InvalidRtParams { reason } => write!(f, "invalid RT parameters: {reason}"),
            ModelError::DuplicateStageName { name } => {
                write!(f, "duplicate stage name '{name}'")
            }
            ModelError::SelfEdge { node } => {
                write!(f, "node {node}: self-edges are not allowed")
            }
            ModelError::EdgeEndpointOutOfRange { edge, endpoint } => {
                write!(f, "edge {edge}: endpoint {endpoint} is out of range")
            }
            ModelError::InvalidEdgeWeight { edge, value } => {
                write!(f, "edge {edge}: routing weight {value} is not in (0, 1]")
            }
            ModelError::InvalidEdgeGain { edge, reason } => {
                write!(f, "edge {edge}: invalid gain model: {reason}")
            }
            ModelError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src} -> {dst}")
            }
            ModelError::CyclicTopology => write!(f, "topology contains a cycle"),
            ModelError::MultipleSources { count } => {
                write!(
                    f,
                    "topology must have exactly one source node, found {count}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ModelError::EmptyPipeline.to_string(),
            "pipeline has no nodes"
        );
        let e = ModelError::NonPositiveServiceTime {
            node: 2,
            value: -1.0,
        };
        assert!(e.to_string().contains("node 2"));
        let e = ModelError::InvalidGain {
            node: usize::MAX,
            reason: "p>1".into(),
        };
        assert!(!e.to_string().contains("node"));
        let e = ModelError::InvalidGain {
            node: 1,
            reason: "p>1".into(),
        };
        assert!(e.to_string().contains("node 1"));
        assert!(ModelError::ZeroVectorWidth.to_string().contains(">= 1"));
        let e = ModelError::InvalidRtParams {
            reason: "tau0 <= 0".into(),
        };
        assert!(e.to_string().contains("tau0"));
    }

    #[test]
    fn display_topology_messages() {
        let e = ModelError::DuplicateStageName {
            name: "seed".into(),
        };
        assert!(e.to_string().contains("'seed'"));
        assert!(ModelError::SelfEdge { node: 3 }
            .to_string()
            .contains("node 3"));
        let e = ModelError::EdgeEndpointOutOfRange {
            edge: 1,
            endpoint: 9,
        };
        assert!(e.to_string().contains("edge 1"));
        assert!(e.to_string().contains('9'));
        let e = ModelError::InvalidEdgeWeight {
            edge: 0,
            value: 1.5,
        };
        assert!(e.to_string().contains("(0, 1]"));
        let e = ModelError::InvalidEdgeGain {
            edge: 2,
            reason: "p>1".into(),
        };
        assert!(e.to_string().contains("edge 2"));
        let e = ModelError::DuplicateEdge { src: 0, dst: 1 };
        assert!(e.to_string().contains("0 -> 1"));
        assert!(ModelError::CyclicTopology.to_string().contains("cycle"));
        let e = ModelError::MultipleSources { count: 2 };
        assert!(e.to_string().contains("found 2"));
    }
}
