//! Model-level error types.

use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A pipeline must contain at least one node.
    EmptyPipeline,
    /// A node's service time must be strictly positive.
    NonPositiveServiceTime {
        /// Offending node index.
        node: usize,
        /// The rejected value.
        value: f64,
    },
    /// SIMD vector width must be at least 1.
    ZeroVectorWidth,
    /// A gain model parameter is out of range.
    InvalidGain {
        /// Offending node index (`usize::MAX` when standalone).
        node: usize,
        /// What was wrong.
        reason: String,
    },
    /// Real-time parameters must be positive and finite.
    InvalidRtParams {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyPipeline => write!(f, "pipeline has no nodes"),
            ModelError::NonPositiveServiceTime { node, value } => {
                write!(
                    f,
                    "node {node}: service time {value} is not strictly positive"
                )
            }
            ModelError::ZeroVectorWidth => write!(f, "SIMD vector width must be >= 1"),
            ModelError::InvalidGain { node, reason } => {
                if *node == usize::MAX {
                    write!(f, "invalid gain model: {reason}")
                } else {
                    write!(f, "node {node}: invalid gain model: {reason}")
                }
            }
            ModelError::InvalidRtParams { reason } => write!(f, "invalid RT parameters: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ModelError::EmptyPipeline.to_string(),
            "pipeline has no nodes"
        );
        let e = ModelError::NonPositiveServiceTime {
            node: 2,
            value: -1.0,
        };
        assert!(e.to_string().contains("node 2"));
        let e = ModelError::InvalidGain {
            node: usize::MAX,
            reason: "p>1".into(),
        };
        assert!(!e.to_string().contains("node"));
        let e = ModelError::InvalidGain {
            node: 1,
            reason: "p>1".into(),
        };
        assert!(e.to_string().contains("node 1"));
        assert!(ModelError::ZeroVectorWidth.to_string().contains(">= 1"));
        let e = ModelError::InvalidRtParams {
            reason: "tau0 <= 0".into(),
        };
        assert!(e.to_string().contains("tau0"));
    }
}
