//! Backend-agnostic execution interfaces.
//!
//! The repo has (at least) two ways of *running* a pipeline: the
//! discrete-event simulator in `pipeline-sim` and the threaded real
//! executor in `rtsdf-exec`. Both consume the same [`Topology`] and the
//! same solved schedule, and both ultimately answer the same questions —
//! how many items arrived/completed/missed, what fraction of the device
//! was active. This module pins that shared contract so cross-backend
//! comparisons (`sim_vs_real`) operate on one vocabulary instead of
//! pattern-matching every backend's report type.

use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// The backend-independent outcome of one pipeline run: the counters
/// and ratios every execution backend must be able to report,
/// reduced from its own richer metrics type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Stream inputs that entered the run.
    pub items_arrived: u64,
    /// Stream inputs fully resolved (every derived output exited).
    pub items_completed: u64,
    /// Stream inputs unresolved at the end of the run.
    pub items_dropped: u64,
    /// Completed items whose end-to-end latency exceeded the deadline,
    /// plus dropped items (a drop is counted as a miss).
    pub deadline_misses: u64,
    /// Measured active fraction (Σ busy time / (N × horizon)).
    pub active_fraction: f64,
    /// Mean end-to-end latency of completed items, in cycles.
    pub mean_latency: f64,
    /// Logical span of the run, in cycles.
    pub horizon_cycles: f64,
}

impl ExecOutcome {
    /// Deadline misses over arrived items (0 for an empty run).
    pub fn miss_rate(&self) -> f64 {
        if self.items_arrived == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.items_arrived as f64
        }
    }

    /// Item conservation: every arrived item is either completed or
    /// dropped, never both, never lost.
    pub fn conservation_holds(&self) -> bool {
        self.items_completed + self.items_dropped == self.items_arrived
    }
}

/// Reduction from a backend's own report type to the shared outcome.
pub trait IntoOutcome {
    /// Fold this report into the backend-independent counters.
    fn outcome(&self) -> ExecOutcome;
}

/// A pipeline execution backend.
///
/// `Schedule` is backend-specific on purpose: the simulator and the
/// threaded executor both take the solver's schedules, but a future
/// backend (e.g. a device runtime) may take a lowered form. `Report`
/// keeps each backend's full-fidelity metrics; [`IntoOutcome`] is the
/// common denominator comparisons run on.
pub trait PipelineExecutor {
    /// The schedule type this backend consumes.
    type Schedule;
    /// The backend's full metrics type.
    type Report: IntoOutcome;
    /// The backend's failure type.
    type Error: std::error::Error;

    /// Short stable name for manifests and reports (`"des"`, `"threads"`).
    fn name(&self) -> &'static str;

    /// Run the stream described by the backend's own configuration
    /// through `topology` under `schedule`.
    fn run(
        &self,
        topology: &Topology,
        schedule: &Self::Schedule,
    ) -> Result<Self::Report, Self::Error>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_rates_and_conservation() {
        let o = ExecOutcome {
            items_arrived: 100,
            items_completed: 98,
            items_dropped: 2,
            deadline_misses: 5,
            active_fraction: 0.25,
            mean_latency: 1e4,
            horizon_cycles: 1e6,
        };
        assert!((o.miss_rate() - 0.05).abs() < 1e-12);
        assert!(o.conservation_holds());
        let leaky = ExecOutcome {
            items_completed: 97,
            ..o.clone()
        };
        assert!(!leaky.conservation_holds());
        let empty = ExecOutcome {
            items_arrived: 0,
            items_completed: 0,
            items_dropped: 0,
            deadline_misses: 0,
            ..o
        };
        assert_eq!(empty.miss_rate(), 0.0);
        assert!(empty.conservation_holds());
    }
}
