//! Gain models: the per-input output-count distribution of a node.
//!
//! The paper models irregularity per node as a distribution over how many
//! outputs one input produces. For the BLAST evaluation (§6.1) it uses:
//!
//! * **Bernoulli** for the filter-like stages (one output with
//!   probability `g_i`, else zero), and
//! * **censored Poisson** for the expanding stage (Poisson with mean
//!   `g_i`, truncated at the stage's architectural maximum `u = 16`).
//!
//! We additionally provide deterministic and empirical (arbitrary PMF)
//! models, which other applications in this workspace use.

use crate::error::ModelError;
use rand::Rng;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

/// Distribution of the number of outputs a node emits per consumed input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GainModel {
    /// Always exactly `k` outputs per input.
    Deterministic {
        /// Outputs per input.
        k: u32,
    },
    /// One output with probability `p`, zero otherwise (`0 ≤ p ≤ 1`).
    Bernoulli {
        /// Success probability.
        p: f64,
    },
    /// Poisson with the given mean, censored (clamped) at `cap`:
    /// draws above `cap` count as exactly `cap`.
    CensoredPoisson {
        /// Mean of the underlying Poisson.
        mean: f64,
        /// Architectural maximum outputs per input (`u` in the paper).
        cap: u32,
    },
    /// Arbitrary probability mass function over output counts.
    /// Probabilities must be nonnegative and sum to 1 (±1e-9).
    Empirical {
        /// `(output_count, probability)` pairs.
        pmf: Vec<(u32, f64)>,
    },
}

impl GainModel {
    /// Build an [`GainModel::Empirical`] model from observed output
    /// counts (e.g. a production trace). Returns an error if `samples`
    /// is empty.
    pub fn from_samples(samples: &[u32]) -> Result<Self, ModelError> {
        if samples.is_empty() {
            return Err(ModelError::InvalidGain {
                node: usize::MAX,
                reason: "no samples to build an empirical gain from".into(),
            });
        }
        let mut counts: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for &s in samples {
            *counts.entry(s).or_insert(0) += 1;
        }
        let total = samples.len() as f64;
        let pmf = counts
            .into_iter()
            .map(|(k, c)| (k, c as f64 / total))
            .collect();
        Ok(GainModel::Empirical { pmf })
    }

    /// Validate parameters. `node` is used only for error reporting; pass
    /// `usize::MAX` for a standalone model.
    pub fn validate(&self, node: usize) -> Result<(), ModelError> {
        let err = |reason: String| Err(ModelError::InvalidGain { node, reason });
        match self {
            GainModel::Deterministic { .. } => Ok(()),
            GainModel::Bernoulli { p } => {
                if !(0.0..=1.0).contains(p) || !p.is_finite() {
                    err(format!("Bernoulli p = {p} outside [0, 1]"))
                } else {
                    Ok(())
                }
            }
            GainModel::CensoredPoisson { mean, cap } => {
                if !mean.is_finite() || *mean <= 0.0 {
                    err(format!("Poisson mean = {mean} not strictly positive"))
                } else if *cap == 0 {
                    err("censoring cap must be >= 1".into())
                } else {
                    Ok(())
                }
            }
            GainModel::Empirical { pmf } => {
                if pmf.is_empty() {
                    return err("empirical PMF is empty".into());
                }
                if pmf.iter().any(|(_, p)| !p.is_finite() || *p < 0.0) {
                    return err("empirical PMF has a negative or non-finite probability".into());
                }
                let total: f64 = pmf.iter().map(|(_, p)| p).sum();
                if (total - 1.0).abs() > 1e-9 {
                    return err(format!("empirical PMF sums to {total}, expected 1"));
                }
                Ok(())
            }
        }
    }

    /// Expected outputs per input (`g_i` in the paper).
    pub fn mean(&self) -> f64 {
        match self {
            GainModel::Deterministic { k } => *k as f64,
            GainModel::Bernoulli { p } => *p,
            GainModel::CensoredPoisson { mean, cap } => censored_poisson_mean(*mean, *cap),
            GainModel::Empirical { pmf } => pmf.iter().map(|(k, p)| *k as f64 * p).sum(),
        }
    }

    /// Variance of outputs per input.
    pub fn variance(&self) -> f64 {
        match self {
            GainModel::Deterministic { .. } => 0.0,
            GainModel::Bernoulli { p } => p * (1.0 - p),
            GainModel::CensoredPoisson { mean, cap } => {
                let (m1, m2) = censored_poisson_moments(*mean, *cap);
                (m2 - m1 * m1).max(0.0)
            }
            GainModel::Empirical { pmf } => {
                let m1: f64 = pmf.iter().map(|(k, p)| *k as f64 * p).sum();
                let m2: f64 = pmf.iter().map(|(k, p)| (*k as f64).powi(2) * p).sum();
                (m2 - m1 * m1).max(0.0)
            }
        }
    }

    /// Largest possible output count per input, if bounded.
    pub fn max_outputs(&self) -> Option<u32> {
        match self {
            GainModel::Deterministic { k } => Some(*k),
            GainModel::Bernoulli { .. } => Some(1),
            GainModel::CensoredPoisson { cap, .. } => Some(*cap),
            GainModel::Empirical { pmf } => pmf.iter().map(|(k, _)| *k).max(),
        }
    }

    /// Draw an output count for one input.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            GainModel::Deterministic { k } => *k,
            GainModel::Bernoulli { p } => {
                if rng.gen::<f64>() < *p {
                    1
                } else {
                    0
                }
            }
            GainModel::CensoredPoisson { mean, cap } => {
                let pois = Poisson::new(*mean).expect("validated mean > 0");
                let draw = pois.sample(rng);
                // rand_distr returns f64; counts are exact small integers.
                (draw as u32).min(*cap)
            }
            GainModel::Empirical { pmf } => {
                let mut u = rng.gen::<f64>();
                for (k, p) in pmf {
                    if u < *p {
                        return *k;
                    }
                    u -= p;
                }
                // Floating-point slop: return the last support point.
                pmf.last().map(|(k, _)| *k).unwrap_or(0)
            }
        }
    }

    /// Draw output counts for a whole firing at once, filling `out`.
    ///
    /// Draw-for-draw identical to calling [`GainModel::sample`] once per
    /// element, but the enum dispatch (and, for the Poisson model, the
    /// distribution construction) is hoisted out of the per-item loop —
    /// this is the batch service path of the SoA simulators.
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [u32]) {
        match self {
            GainModel::Deterministic { k } => out.fill(*k),
            GainModel::Bernoulli { p } => {
                let p = *p;
                for o in out.iter_mut() {
                    *o = u32::from(rng.gen::<f64>() < p);
                }
            }
            GainModel::CensoredPoisson { mean, cap } => {
                let pois = Poisson::new(*mean).expect("validated mean > 0");
                let cap = *cap;
                for o in out.iter_mut() {
                    *o = (pois.sample(rng) as u32).min(cap);
                }
            }
            GainModel::Empirical { pmf } => {
                let last = pmf.last().map(|(k, _)| *k).unwrap_or(0);
                for o in out.iter_mut() {
                    let mut u = rng.gen::<f64>();
                    let mut drawn = last;
                    for (k, p) in pmf {
                        if u < *p {
                            drawn = *k;
                            break;
                        }
                        u -= p;
                    }
                    *o = drawn;
                }
            }
        }
    }

    /// Total outputs of `count` consumed inputs, summed as drawn.
    ///
    /// Uses exactly the RNG draws of `count` calls to
    /// [`GainModel::sample`] (none at all for the deterministic model),
    /// so block simulations that only need the stage total stay
    /// bit-compatible with per-item sampling.
    pub fn sample_sum<R: Rng + ?Sized>(&self, rng: &mut R, count: u64) -> u64 {
        match self {
            GainModel::Deterministic { k } => count * u64::from(*k),
            GainModel::Bernoulli { p } => {
                let p = *p;
                let mut total = 0u64;
                for _ in 0..count {
                    total += u64::from(rng.gen::<f64>() < p);
                }
                total
            }
            GainModel::CensoredPoisson { mean, cap } => {
                let pois = Poisson::new(*mean).expect("validated mean > 0");
                let cap = *cap;
                let mut total = 0u64;
                for _ in 0..count {
                    total += u64::from((pois.sample(rng) as u32).min(cap));
                }
                total
            }
            GainModel::Empirical { .. } => {
                let mut total = 0u64;
                for _ in 0..count {
                    total += u64::from(self.sample(rng));
                }
                total
            }
        }
    }
}

/// Mean of `min(Poisson(λ), cap)`.
fn censored_poisson_mean(lambda: f64, cap: u32) -> f64 {
    censored_poisson_moments(lambda, cap).0
}

/// First and second moments of `min(Poisson(λ), cap)`, computed by direct
/// summation of the PMF (cap is small — 16 in the paper).
fn censored_poisson_moments(lambda: f64, cap: u32) -> (f64, f64) {
    // P(X = k) for k < cap, and P(X >= cap) lumped at cap.
    let mut pk = (-lambda).exp(); // P(X=0)
    let mut below_mass = 0.0;
    let mut m1 = 0.0;
    let mut m2 = 0.0;
    for k in 0..cap {
        m1 += k as f64 * pk;
        m2 += (k as f64).powi(2) * pk;
        below_mass += pk;
        pk *= lambda / (k + 1) as f64;
    }
    let tail = (1.0 - below_mass).max(0.0);
    m1 += cap as f64 * tail;
    m2 += (cap as f64).powi(2) * tail;
    (m1, m2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn deterministic_model() {
        let g = GainModel::Deterministic { k: 3 };
        assert_eq!(g.mean(), 3.0);
        assert_eq!(g.variance(), 0.0);
        assert_eq!(g.max_outputs(), Some(3));
        assert_eq!(g.sample(&mut rng()), 3);
        assert!(g.validate(0).is_ok());
    }

    #[test]
    fn bernoulli_moments() {
        let g = GainModel::Bernoulli { p: 0.379 };
        assert!((g.mean() - 0.379).abs() < 1e-15);
        assert!((g.variance() - 0.379 * 0.621).abs() < 1e-12);
        assert_eq!(g.max_outputs(), Some(1));
    }

    #[test]
    fn bernoulli_sampling_frequency() {
        let g = GainModel::Bernoulli { p: 0.379 };
        let mut r = rng();
        let n = 200_000;
        let ones = (0..n).filter(|_| g.sample(&mut r) == 1).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.379).abs() < 0.005, "freq {freq}");
    }

    #[test]
    fn bernoulli_validation() {
        assert!(GainModel::Bernoulli { p: 1.0 }.validate(0).is_ok());
        assert!(GainModel::Bernoulli { p: 0.0 }.validate(0).is_ok());
        assert!(GainModel::Bernoulli { p: 1.1 }.validate(0).is_err());
        assert!(GainModel::Bernoulli { p: -0.1 }.validate(0).is_err());
        assert!(GainModel::Bernoulli { p: f64::NAN }.validate(0).is_err());
    }

    #[test]
    fn censored_poisson_mean_below_uncensored() {
        // Censoring can only reduce the mean.
        let g = GainModel::CensoredPoisson {
            mean: 1.920,
            cap: 16,
        };
        let m = g.mean();
        assert!(m <= 1.920 + 1e-12, "mean {m}");
        // With cap = 16 and λ = 1.92 the truncated mass is tiny, so the
        // censored mean should be extremely close to λ.
        assert!((m - 1.920).abs() < 1e-6, "mean {m}");
    }

    #[test]
    fn censored_poisson_tight_cap() {
        // λ = 2, cap = 1 → X is Bernoulli(1 - e^{-2}).
        let g = GainModel::CensoredPoisson { mean: 2.0, cap: 1 };
        let expect = 1.0 - (-2.0_f64).exp();
        assert!((g.mean() - expect).abs() < 1e-12);
        assert!((g.variance() - expect * (1.0 - expect)).abs() < 1e-12);
    }

    #[test]
    fn censored_poisson_sampling_respects_cap_and_mean() {
        let g = GainModel::CensoredPoisson {
            mean: 1.920,
            cap: 16,
        };
        let mut r = rng();
        let n = 200_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let k = g.sample(&mut r);
            assert!(k <= 16);
            sum += k as u64;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 1.920).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn censored_poisson_validation() {
        assert!(GainModel::CensoredPoisson { mean: 0.0, cap: 4 }
            .validate(0)
            .is_err());
        assert!(GainModel::CensoredPoisson { mean: 1.0, cap: 0 }
            .validate(0)
            .is_err());
        assert!(GainModel::CensoredPoisson { mean: 1.0, cap: 4 }
            .validate(0)
            .is_ok());
    }

    #[test]
    fn empirical_model() {
        let g = GainModel::Empirical {
            pmf: vec![(0, 0.5), (2, 0.25), (4, 0.25)],
        };
        assert!(g.validate(0).is_ok());
        assert!((g.mean() - 1.5).abs() < 1e-12);
        assert_eq!(g.max_outputs(), Some(4));
        // variance = E[X²] − mean² = (0 + 1 + 4) − 2.25 = 2.75
        assert!((g.variance() - 2.75).abs() < 1e-12);
        let mut r = rng();
        for _ in 0..1000 {
            let k = g.sample(&mut r);
            assert!(k == 0 || k == 2 || k == 4);
        }
    }

    #[test]
    fn empirical_validation() {
        assert!(GainModel::Empirical { pmf: vec![] }.validate(0).is_err());
        assert!(GainModel::Empirical {
            pmf: vec![(1, 0.5)]
        }
        .validate(0)
        .is_err());
        assert!(GainModel::Empirical {
            pmf: vec![(1, -0.5), (0, 1.5)]
        }
        .validate(0)
        .is_err());
        assert!(GainModel::Empirical {
            pmf: vec![(1, 1.0)]
        }
        .validate(0)
        .is_ok());
    }

    #[test]
    fn empirical_sampling_frequencies() {
        let g = GainModel::Empirical {
            pmf: vec![(0, 0.2), (1, 0.3), (5, 0.5)],
        };
        let mut r = rng();
        let n = 100_000;
        let mut c0 = 0;
        let mut c1 = 0;
        let mut c5 = 0;
        for _ in 0..n {
            match g.sample(&mut r) {
                0 => c0 += 1,
                1 => c1 += 1,
                5 => c5 += 1,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert!((c0 as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((c1 as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((c5 as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn from_samples_builds_matching_empirical() {
        let samples = [0u32, 0, 1, 1, 1, 3, 3, 0];
        let g = GainModel::from_samples(&samples).unwrap();
        assert!(g.validate(0).is_ok());
        let expect_mean = samples.iter().sum::<u32>() as f64 / samples.len() as f64;
        assert!((g.mean() - expect_mean).abs() < 1e-12);
        assert_eq!(g.max_outputs(), Some(3));
        match g {
            GainModel::Empirical { pmf } => {
                assert_eq!(pmf.len(), 3);
                assert!((pmf[0].1 - 3.0 / 8.0).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn from_samples_rejects_empty() {
        assert!(GainModel::from_samples(&[]).is_err());
    }

    fn all_models() -> Vec<GainModel> {
        vec![
            GainModel::Deterministic { k: 2 },
            GainModel::Bernoulli { p: 0.379 },
            GainModel::CensoredPoisson {
                mean: 1.920,
                cap: 16,
            },
            GainModel::CensoredPoisson { mean: 2.0, cap: 1 },
            GainModel::Empirical {
                pmf: vec![(0, 0.5), (2, 0.25), (4, 0.25)],
            },
        ]
    }

    #[test]
    fn sample_batch_is_draw_identical_to_scalar() {
        for g in all_models() {
            let mut scalar_rng = rng();
            let mut batch_rng = rng();
            let scalar: Vec<u32> = (0..500).map(|_| g.sample(&mut scalar_rng)).collect();
            let mut batch = vec![0u32; 500];
            g.sample_batch(&mut batch_rng, &mut batch);
            assert_eq!(scalar, batch, "{g:?}");
            // Both RNGs must sit at the same position afterwards.
            assert_eq!(
                scalar_rng.gen::<u64>(),
                batch_rng.gen::<u64>(),
                "{g:?} consumed a different number of draws"
            );
        }
    }

    #[test]
    fn sample_sum_is_draw_identical_to_scalar() {
        for g in all_models() {
            let mut scalar_rng = rng();
            let mut sum_rng = rng();
            let scalar: u64 = (0..500).map(|_| u64::from(g.sample(&mut scalar_rng))).sum();
            let sum = g.sample_sum(&mut sum_rng, 500);
            assert_eq!(scalar, sum, "{g:?}");
            assert_eq!(
                scalar_rng.gen::<u64>(),
                sum_rng.gen::<u64>(),
                "{g:?} consumed a different number of draws"
            );
        }
    }

    #[test]
    fn serde_roundtrip() {
        let g = GainModel::CensoredPoisson {
            mean: 1.92,
            cap: 16,
        };
        let json = serde_json::to_string(&g).unwrap();
        let back: GainModel = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
