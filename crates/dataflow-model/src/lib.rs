//! # dataflow-model — irregular streaming pipelines on SIMD devices
//!
//! This crate encodes the application and system model of §2 of
//! *Enabling Real-Time Irregular Data-Flow Pipelines on SIMD Devices*
//! (Plano & Buhler, SRMPDS '21):
//!
//! * a pipeline of `N` nodes connected by queues ([`pipeline::PipelineSpec`]);
//! * each node consumes up to a SIMD vector of `v` items per firing, at a
//!   fixed service time `t_i` regardless of how full the vector is
//!   ([`node::NodeSpec`]);
//! * each node's *gain* — outputs produced per input — is stochastic and
//!   data-dependent ([`gain::GainModel`]);
//! * items arrive on a fixed-rate stream with inter-arrival time `τ0`
//!   ([`arrival::ArrivalProcess`]), and every item must clear the whole
//!   pipeline within a deadline `D` ([`params::RtParams`]);
//! * the performance objective is the **active fraction** — the share of
//!   its allocated processor time the application spends firing nodes
//!   ([`analysis`]).
//!
//! The crate is purely a *model*: closed-form algebra and distributions.
//! The optimizers live in `rtsdf-core`, and the discrete-event execution
//! of the model lives in `pipeline-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod arrival;
pub mod error;
pub mod exec;
pub mod gain;
pub mod node;
pub mod params;
pub mod perturb;
pub mod pipeline;
pub mod topology;

pub use arrival::ArrivalProcess;
pub use error::ModelError;
pub use exec::{ExecOutcome, IntoOutcome, PipelineExecutor};
pub use gain::GainModel;
pub use node::NodeSpec;
pub use params::RtParams;
pub use perturb::Perturbation;
pub use pipeline::{PipelineSpec, PipelineSpecBuilder};
pub use topology::{EdgeSpec, Topology, TopologyBuilder};

/// The SIMD vector width used throughout the paper's evaluation
/// (consistent with the Mercator BLAST implementation).
pub const PAPER_VECTOR_WIDTH: u32 = 128;
