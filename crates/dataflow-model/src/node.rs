//! Pipeline node specification.

use crate::error::ModelError;
use crate::gain::GainModel;
use serde::{Deserialize, Serialize};

/// Static description of one pipeline stage.
///
/// `service_time` is the time (in device cycles) for one firing — the
/// node consuming one SIMD vector of up to `v` inputs — *measured under
/// the node's 1/N processor share* (paper §2.2). It is the same whether
/// the vector is full or nearly empty; that invariance is exactly what
/// makes waiting for fuller vectors profitable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable stage name.
    pub name: String,
    /// Cycles per firing (`t_i`), under the node's processor share.
    pub service_time: f64,
    /// Output-count distribution per consumed input (`g_i`'s law).
    pub gain: GainModel,
}

impl NodeSpec {
    /// Construct a node spec.
    pub fn new(name: impl Into<String>, service_time: f64, gain: GainModel) -> Self {
        NodeSpec {
            name: name.into(),
            service_time,
            gain,
        }
    }

    /// Average gain `g_i`.
    pub fn mean_gain(&self) -> f64 {
        self.gain.mean()
    }

    /// Validate this node's parameters (`idx` for error reporting).
    pub fn validate(&self, idx: usize) -> Result<(), ModelError> {
        if self.service_time <= 0.0 || !self.service_time.is_finite() {
            return Err(ModelError::NonPositiveServiceTime {
                node: idx,
                value: self.service_time,
            });
        }
        self.gain.validate(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_mean_gain() {
        let n = NodeSpec::new("seed", 287.0, GainModel::Bernoulli { p: 0.379 });
        assert_eq!(n.name, "seed");
        assert_eq!(n.service_time, 287.0);
        assert!((n.mean_gain() - 0.379).abs() < 1e-15);
    }

    #[test]
    fn validation_rejects_bad_service_time() {
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let n = NodeSpec::new("x", bad, GainModel::Deterministic { k: 1 });
            assert!(n.validate(3).is_err(), "service time {bad} accepted");
        }
    }

    #[test]
    fn validation_propagates_gain_errors() {
        let n = NodeSpec::new("x", 1.0, GainModel::Bernoulli { p: 2.0 });
        assert!(matches!(
            n.validate(1),
            Err(ModelError::InvalidGain { node: 1, .. })
        ));
    }

    #[test]
    fn validation_accepts_good_node() {
        let n = NodeSpec::new(
            "x",
            955.0,
            GainModel::CensoredPoisson {
                mean: 1.92,
                cap: 16,
            },
        );
        assert!(n.validate(0).is_ok());
    }
}
