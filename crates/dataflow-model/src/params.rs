//! Real-time operating parameters: arrival rate and deadline.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// The real-time operating point of a deployment: how fast items arrive
/// and how quickly each must clear the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RtParams {
    /// Inter-arrival time `τ0 = 1/ρ0` (cycles per item).
    pub tau0: f64,
    /// End-to-end deadline `D` (cycles).
    pub deadline: f64,
}

impl RtParams {
    /// Construct and validate.
    pub fn new(tau0: f64, deadline: f64) -> Result<Self, ModelError> {
        let p = RtParams { tau0, deadline };
        p.validate()?;
        Ok(p)
    }

    /// Arrival rate `ρ0 = 1/τ0` (items per cycle).
    pub fn rho0(&self) -> f64 {
        1.0 / self.tau0
    }

    /// Validate positivity and finiteness.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.tau0.is_finite() || self.tau0 <= 0.0 {
            return Err(ModelError::InvalidRtParams {
                reason: format!("tau0 = {} must be positive and finite", self.tau0),
            });
        }
        if !self.deadline.is_finite() || self.deadline <= 0.0 {
            return Err(ModelError::InvalidRtParams {
                reason: format!("deadline = {} must be positive and finite", self.deadline),
            });
        }
        Ok(())
    }

    /// The paper's evaluation grid (§6.1): `τ0 ∈ [1, 100]` and
    /// `D ∈ [2·10⁴, 3.5·10⁵]` cycles. Returns (τ0 values, D values) with
    /// the given number of points per axis, spaced geometrically for τ0
    /// and linearly for D (matching the ranges' character).
    pub fn paper_grid(tau0_points: usize, d_points: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(
            tau0_points >= 2 && d_points >= 2,
            "need at least 2 points per axis"
        );
        let tau0s: Vec<f64> = (0..tau0_points)
            .map(|i| {
                let f = i as f64 / (tau0_points - 1) as f64;
                // Geometric from 1 to 100.
                10f64.powf(2.0 * f)
            })
            .collect();
        let ds: Vec<f64> = (0..d_points)
            .map(|i| {
                let f = i as f64 / (d_points - 1) as f64;
                2e4 + f * (3.5e5 - 2e4)
            })
            .collect();
        (tau0s, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_rate() {
        let p = RtParams::new(10.0, 2e4).unwrap();
        assert!((p.rho0() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(RtParams::new(0.0, 1.0).is_err());
        assert!(RtParams::new(-1.0, 1.0).is_err());
        assert!(RtParams::new(1.0, 0.0).is_err());
        assert!(RtParams::new(f64::INFINITY, 1.0).is_err());
        assert!(RtParams::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn paper_grid_spans_the_paper_ranges() {
        let (tau0s, ds) = RtParams::paper_grid(11, 8);
        assert_eq!(tau0s.len(), 11);
        assert_eq!(ds.len(), 8);
        assert!((tau0s[0] - 1.0).abs() < 1e-12);
        assert!((tau0s[10] - 100.0).abs() < 1e-9);
        assert!((ds[0] - 2e4).abs() < 1e-9);
        assert!((ds[7] - 3.5e5).abs() < 1e-6);
        assert!(tau0s.windows(2).all(|w| w[1] > w[0]));
        assert!(ds.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn paper_grid_needs_two_points() {
        RtParams::paper_grid(1, 5);
    }
}
