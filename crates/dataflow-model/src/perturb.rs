//! Fault-injection perturbations: controlled departures from the
//! calibrated model.
//!
//! The paper's real-time guarantee holds while the runtime matches the
//! model the backlog factors `b_i` were calibrated against (§6.2). A
//! [`Perturbation`] describes a *sustained* departure from that model —
//! arrival jitter and bursts, service-time inflation and tail spikes,
//! gain-distribution drift, and transient stage stalls (device
//! preemption) — so the simulators can answer "what happens when
//! reality drifts?".
//!
//! Every component is scaled by a single `intensity` knob. At
//! `intensity = 0` all effective deltas are *exactly* zero (multipliers
//! are exactly `1.0`, probabilities exactly `0.0`, jitter amplitudes
//! exactly `0.0`), so a zero-intensity perturbed run is bit-identical
//! to an unperturbed run — a property the test suite enforces.
//!
//! Determinism: perturbations never draw from the simulator's existing
//! RNG substreams; callers hand them dedicated substreams, so the
//! unperturbed arrival/gain draws are untouched.

use crate::error::ModelError;
use crate::gain::GainModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A seed-deterministic, serializable fault-injection specification.
///
/// Component fields describe the departure at `intensity = 1`; the
/// effective values used by the simulators are the component values
/// scaled by [`Perturbation::intensity`] (see the accessor methods).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Perturbation {
    /// Global scaling knob: `0` is an exact identity, `1` applies the
    /// component fields as written, values above `1` overdrive them.
    pub intensity: f64,
    /// Arrival jitter amplitude as a fraction of the mean inter-arrival
    /// time: each arrival moves by up to `±arrival_jitter · intensity ·
    /// τ0` (uniform), order-preserving.
    pub arrival_jitter: f64,
    /// Per-arrival probability (scaled by intensity) that this arrival
    /// starts a burst: the next [`Perturbation::burst_len`] arrivals
    /// clump to the burst head's instant.
    pub burst_prob: f64,
    /// Arrivals pulled into each burst clump.
    pub burst_len: u32,
    /// Sustained service-time inflation: every firing's service time is
    /// multiplied by `1 + service_inflation · intensity`.
    pub service_inflation: f64,
    /// Per-firing probability (scaled by intensity) of a tail spike.
    pub spike_prob: f64,
    /// Service multiplier applied during a tail spike (≥ 1).
    pub spike_factor: f64,
    /// Gain-distribution drift: parametric gain means are multiplied by
    /// `1 + gain_drift · intensity` (Bernoulli `p` clamps at 1; the
    /// censored-Poisson cap is architectural and does not move).
    pub gain_drift: f64,
    /// Per-firing probability (scaled by intensity) of a transient
    /// stall — the device is preempted mid-firing.
    pub stall_prob: f64,
    /// Duration of one stall (cycles).
    pub stall_cycles: f64,
}

impl Perturbation {
    /// The identity perturbation: no departure at any intensity.
    pub fn none() -> Self {
        Perturbation {
            intensity: 0.0,
            arrival_jitter: 0.0,
            burst_prob: 0.0,
            burst_len: 0,
            service_inflation: 0.0,
            spike_prob: 0.0,
            spike_factor: 1.0,
            gain_drift: 0.0,
            stall_prob: 0.0,
            stall_cycles: 0.0,
        }
    }

    /// The canonical stress mix used by the robustness sweep and the
    /// `rtsdf-cli stress` subcommand: moderate jitter and bursts, 30 %
    /// sustained service inflation, rare 4× tail spikes, 25 % gain
    /// drift, and occasional multi-thousand-cycle preemption stalls —
    /// all at the given intensity.
    pub fn standard(intensity: f64) -> Self {
        Perturbation {
            intensity,
            arrival_jitter: 0.5,
            burst_prob: 0.02,
            burst_len: 8,
            service_inflation: 0.3,
            spike_prob: 0.02,
            spike_factor: 4.0,
            gain_drift: 0.25,
            stall_prob: 0.01,
            stall_cycles: 2_000.0,
        }
    }

    /// The same component mix at a different intensity.
    pub fn at_intensity(&self, intensity: f64) -> Self {
        Perturbation {
            intensity,
            ..self.clone()
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        let bad = |reason: String| Err(ModelError::InvalidRtParams { reason });
        let nonneg = |v: f64, name: &str| -> Result<(), ModelError> {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(ModelError::InvalidRtParams {
                    reason: format!("perturbation {name} = {v} must be nonnegative and finite"),
                })
            }
        };
        nonneg(self.intensity, "intensity")?;
        nonneg(self.arrival_jitter, "arrival_jitter")?;
        nonneg(self.burst_prob, "burst_prob")?;
        nonneg(self.service_inflation, "service_inflation")?;
        nonneg(self.spike_prob, "spike_prob")?;
        nonneg(self.stall_prob, "stall_prob")?;
        nonneg(self.stall_cycles, "stall_cycles")?;
        if !self.spike_factor.is_finite() || self.spike_factor < 1.0 {
            return bad(format!(
                "perturbation spike_factor = {} must be >= 1",
                self.spike_factor
            ));
        }
        if !self.gain_drift.is_finite() {
            return bad("perturbation gain_drift must be finite".into());
        }
        if self.gain_factor() <= 0.0 {
            return bad(format!(
                "perturbation gain drift {} at intensity {} would zero or negate gains",
                self.gain_drift, self.intensity
            ));
        }
        Ok(())
    }

    /// True if this perturbation has no effect at its intensity.
    pub fn is_noop(&self) -> bool {
        self.jitter_fraction() == 0.0
            && self.burst_p() == 0.0
            && self.service_multiplier() == 1.0
            && self.spike_p() == 0.0
            && self.gain_factor() == 1.0
            && self.stall_p() == 0.0
    }

    /// Effective jitter amplitude as a fraction of `τ0`.
    pub fn jitter_fraction(&self) -> f64 {
        self.arrival_jitter * self.intensity
    }

    /// Effective per-arrival burst probability.
    pub fn burst_p(&self) -> f64 {
        (self.burst_prob * self.intensity).clamp(0.0, 1.0)
    }

    /// Effective sustained service multiplier (`1.0` at intensity 0).
    pub fn service_multiplier(&self) -> f64 {
        1.0 + self.service_inflation * self.intensity
    }

    /// Effective per-firing tail-spike probability.
    pub fn spike_p(&self) -> f64 {
        (self.spike_prob * self.intensity).clamp(0.0, 1.0)
    }

    /// Effective per-firing stall probability.
    pub fn stall_p(&self) -> f64 {
        (self.stall_prob * self.intensity).clamp(0.0, 1.0)
    }

    /// Effective gain-mean multiplier (`1.0` at intensity 0).
    pub fn gain_factor(&self) -> f64 {
        1.0 + self.gain_drift * self.intensity
    }

    /// Apply gain drift to one model. Parametric models (Bernoulli,
    /// censored Poisson) scale their means; deterministic and empirical
    /// models are structural and pass through unchanged. At intensity 0
    /// the returned model is identical to the input (same parameters,
    /// same sampling draws).
    pub fn drift_gain(&self, gain: &GainModel) -> GainModel {
        let f = self.gain_factor();
        match gain {
            GainModel::Bernoulli { p } => GainModel::Bernoulli {
                p: (p * f).clamp(0.0, 1.0),
            },
            GainModel::CensoredPoisson { mean, cap } => GainModel::CensoredPoisson {
                mean: mean * f,
                cap: *cap,
            },
            other => other.clone(),
        }
    }

    /// Perturb precomputed arrival times in place: uniform jitter of up
    /// to `±jitter_fraction() · tau0` per arrival plus burst clumping,
    /// preserving the arrival count, nonnegativity, and nondecreasing
    /// order. Exactly one jitter draw and one burst draw are consumed
    /// per arrival regardless of intensity, so the draw sequence is
    /// stable as intensity varies.
    pub fn perturb_arrivals<R: Rng + ?Sized>(&self, times: &mut [f64], tau0: f64, rng: &mut R) {
        let amp = self.jitter_fraction() * tau0;
        let burst_p = self.burst_p();
        let mut clump_remaining = 0u32;
        let mut clump_at = 0.0_f64;
        let mut prev = 0.0_f64;
        for t in times.iter_mut() {
            let u: f64 = rng.gen();
            let jitter = (2.0 * u - 1.0) * amp;
            let b: f64 = rng.gen();
            let mut shifted = *t + jitter;
            if clump_remaining > 0 {
                clump_remaining -= 1;
                shifted = clump_at;
            } else if b < burst_p {
                clump_remaining = self.burst_len;
                clump_at = shifted;
            }
            let fixed = shifted.max(prev).max(0.0);
            *t = fixed;
            prev = fixed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn none_is_noop_and_valid() {
        let p = Perturbation::none();
        assert!(p.validate().is_ok());
        assert!(p.is_noop());
        assert_eq!(p.service_multiplier(), 1.0);
        assert_eq!(p.gain_factor(), 1.0);
    }

    #[test]
    fn standard_at_zero_intensity_is_noop() {
        let p = Perturbation::standard(0.0);
        assert!(p.validate().is_ok());
        assert!(p.is_noop());
        assert_eq!(p.spike_p(), 0.0);
        assert_eq!(p.stall_p(), 0.0);
        assert_eq!(p.burst_p(), 0.0);
        assert_eq!(p.jitter_fraction(), 0.0);
    }

    #[test]
    fn standard_at_positive_intensity_is_not_noop() {
        let p = Perturbation::standard(0.5);
        assert!(p.validate().is_ok());
        assert!(!p.is_noop());
        assert!(p.service_multiplier() > 1.0);
        assert!(p.gain_factor() > 1.0);
        let q = p.at_intensity(0.0);
        assert!(q.is_noop());
        assert_eq!(q.arrival_jitter, p.arrival_jitter);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut p = Perturbation::standard(1.0);
        p.spike_factor = 0.5;
        assert!(p.validate().is_err());
        let mut p = Perturbation::standard(1.0);
        p.intensity = -1.0;
        assert!(p.validate().is_err());
        let mut p = Perturbation::standard(1.0);
        p.gain_drift = -1.5; // gain factor would be negative
        assert!(p.validate().is_err());
        let mut p = Perturbation::standard(1.0);
        p.stall_cycles = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_intensity_leaves_arrivals_bit_identical() {
        let p = Perturbation::standard(0.0);
        let original: Vec<f64> = (0..100).map(|k| k as f64 * 10.0).collect();
        let mut times = original.clone();
        p.perturb_arrivals(&mut times, 10.0, &mut rng());
        assert_eq!(times, original);
    }

    #[test]
    fn perturbed_arrivals_stay_sorted_and_nonnegative() {
        let p = Perturbation::standard(1.5);
        let mut times: Vec<f64> = (0..500).map(|k| k as f64 * 10.0).collect();
        let n = times.len();
        p.perturb_arrivals(&mut times, 10.0, &mut rng());
        assert_eq!(times.len(), n);
        assert!(times.iter().all(|&t| t >= 0.0));
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
        // Something actually moved.
        assert!(times.iter().zip(0..).any(|(&t, k)| t != k as f64 * 10.0));
    }

    #[test]
    fn bursts_create_simultaneous_clumps() {
        let mut p = Perturbation::standard(1.0);
        p.burst_prob = 0.2;
        p.burst_len = 4;
        p.arrival_jitter = 0.0;
        let mut times: Vec<f64> = (0..2_000).map(|k| k as f64 * 10.0).collect();
        p.perturb_arrivals(&mut times, 10.0, &mut rng());
        let dup = times.windows(2).filter(|w| w[1] == w[0]).count();
        assert!(dup > 50, "expected clumped arrivals, got {dup} duplicates");
    }

    #[test]
    fn gain_drift_scales_parametric_means() {
        let p = Perturbation {
            gain_drift: 0.5,
            ..Perturbation::standard(1.0)
        };
        match p.drift_gain(&GainModel::Bernoulli { p: 0.4 }) {
            GainModel::Bernoulli { p } => assert!((p - 0.6).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        // Clamped at 1.
        match p.drift_gain(&GainModel::Bernoulli { p: 0.9 }) {
            GainModel::Bernoulli { p } => assert_eq!(p, 1.0),
            other => panic!("{other:?}"),
        }
        match p.drift_gain(&GainModel::CensoredPoisson { mean: 2.0, cap: 16 }) {
            GainModel::CensoredPoisson { mean, cap } => {
                assert!((mean - 3.0).abs() < 1e-12);
                assert_eq!(cap, 16);
            }
            other => panic!("{other:?}"),
        }
        // Structural models pass through.
        let det = GainModel::Deterministic { k: 3 };
        assert_eq!(p.drift_gain(&det), det);
    }

    #[test]
    fn zero_intensity_gain_drift_is_identity() {
        let p = Perturbation::standard(0.0);
        let g = GainModel::Bernoulli { p: 0.379 };
        assert_eq!(p.drift_gain(&g), g);
        let c = GainModel::CensoredPoisson {
            mean: 1.92,
            cap: 16,
        };
        assert_eq!(p.drift_gain(&c), c);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Perturbation::standard(0.75);
        let json = serde_json::to_string(&p).unwrap();
        let back: Perturbation = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
