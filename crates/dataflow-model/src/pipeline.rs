//! Pipeline specification: an ordered chain of nodes sharing one SIMD
//! device.

use crate::error::ModelError;
use crate::gain::GainModel;
use crate::node::NodeSpec;
use serde::{Deserialize, Serialize};

/// A validated pipeline of `N` stages with SIMD vector width `v`.
///
/// Construct via [`PipelineSpec::new`] (validating) or incrementally with
/// [`PipelineSpecBuilder`]. Invariants guaranteed after construction:
/// at least one node, all service times strictly positive and finite, all
/// gain models valid, `v ≥ 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    nodes: Vec<NodeSpec>,
    vector_width: u32,
}

impl PipelineSpec {
    /// Build and validate a pipeline.
    pub fn new(nodes: Vec<NodeSpec>, vector_width: u32) -> Result<Self, ModelError> {
        if nodes.is_empty() {
            return Err(ModelError::EmptyPipeline);
        }
        if vector_width == 0 {
            return Err(ModelError::ZeroVectorWidth);
        }
        for (i, n) in nodes.iter().enumerate() {
            n.validate(i)?;
        }
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[..i] {
                if a.name == b.name {
                    return Err(ModelError::DuplicateStageName {
                        name: a.name.clone(),
                    });
                }
            }
        }
        Ok(PipelineSpec {
            nodes,
            vector_width,
        })
    }

    /// Number of stages `N`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Pipelines are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// SIMD vector width `v`.
    pub fn vector_width(&self) -> u32 {
        self.vector_width
    }

    /// The stages in order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Stage `i`'s spec.
    pub fn node(&self, i: usize) -> &NodeSpec {
        &self.nodes[i]
    }

    /// Service times `t_i` as a vector.
    pub fn service_times(&self) -> Vec<f64> {
        self.nodes.iter().map(|n| n.service_time).collect()
    }

    /// Mean gains `g_i` as a vector (the last entry is unused by the
    /// design problems but still defined).
    pub fn mean_gains(&self) -> Vec<f64> {
        self.nodes.iter().map(|n| n.mean_gain()).collect()
    }

    /// Total gains `G_i = Π_{j<i} g_j` *into* each node, with `G_0 = 1`
    /// (paper §2.1). `G_i` is the average number of items arriving at
    /// node `i` per original stream input.
    pub fn total_gains(&self) -> Vec<f64> {
        let mut g = Vec::with_capacity(self.nodes.len());
        let mut acc = 1.0;
        for n in &self.nodes {
            g.push(acc);
            acc *= n.mean_gain();
        }
        g
    }

    /// Total gain *out of* the pipeline: expected final outputs per input.
    pub fn end_to_end_gain(&self) -> f64 {
        self.nodes.iter().map(|n| n.mean_gain()).product()
    }

    /// Sum of service times — the minimum conceivable trip through the
    /// pipeline (every stage fires immediately, once).
    pub fn total_service_time(&self) -> f64 {
        self.nodes.iter().map(|n| n.service_time).sum()
    }
}

/// Incremental builder for [`PipelineSpec`].
///
/// ```
/// use dataflow_model::{GainModel, PipelineSpecBuilder};
/// let p = PipelineSpecBuilder::new(128)
///     .stage("seed", 287.0, GainModel::Bernoulli { p: 0.379 })
///     .stage("extend", 955.0, GainModel::CensoredPoisson { mean: 1.920, cap: 16 })
///     .build()
///     .unwrap();
/// assert_eq!(p.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineSpecBuilder {
    nodes: Vec<NodeSpec>,
    vector_width: u32,
}

impl PipelineSpecBuilder {
    /// Start a pipeline with SIMD width `vector_width`.
    pub fn new(vector_width: u32) -> Self {
        PipelineSpecBuilder {
            nodes: Vec::new(),
            vector_width,
        }
    }

    /// Append a stage.
    pub fn stage(mut self, name: impl Into<String>, service_time: f64, gain: GainModel) -> Self {
        self.nodes.push(NodeSpec::new(name, service_time, gain));
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<PipelineSpec, ModelError> {
        PipelineSpec::new(self.nodes, self.vector_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blast_like() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn accessors() {
        let p = blast_like();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.vector_width(), 128);
        assert_eq!(p.node(3).service_time, 2753.0);
        assert_eq!(p.service_times(), vec![287.0, 955.0, 402.0, 2753.0]);
    }

    #[test]
    fn total_gains_match_paper_definition() {
        let p = blast_like();
        let g = p.mean_gains();
        let total = p.total_gains();
        assert_eq!(total[0], 1.0);
        assert!((total[1] - g[0]).abs() < 1e-12);
        assert!((total[2] - g[0] * g[1]).abs() < 1e-9);
        assert!((total[3] - g[0] * g[1] * g[2]).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_gain_and_total_service() {
        let p = blast_like();
        assert!((p.total_service_time() - 4397.0).abs() < 1e-9);
        let e2e = p.end_to_end_gain();
        // 0.379 · ~1.92 · 0.0332 · 1 ≈ 0.024
        assert!(e2e > 0.02 && e2e < 0.03, "{e2e}");
    }

    #[test]
    fn rejects_empty_pipeline() {
        assert!(matches!(
            PipelineSpec::new(vec![], 128),
            Err(ModelError::EmptyPipeline)
        ));
    }

    #[test]
    fn rejects_zero_vector_width() {
        let nodes = vec![NodeSpec::new("a", 1.0, GainModel::Deterministic { k: 1 })];
        assert!(matches!(
            PipelineSpec::new(nodes, 0),
            Err(ModelError::ZeroVectorWidth)
        ));
    }

    #[test]
    fn rejects_invalid_node_with_index() {
        let nodes = vec![
            NodeSpec::new("ok", 1.0, GainModel::Deterministic { k: 1 }),
            NodeSpec::new("bad", -1.0, GainModel::Deterministic { k: 1 }),
        ];
        match PipelineSpec::new(nodes, 4) {
            Err(ModelError::NonPositiveServiceTime { node, .. }) => assert_eq!(node, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_stage_names() {
        // Regression: duplicate names used to silently alias rows in the
        // forensics tables downstream.
        let err = PipelineSpecBuilder::new(8)
            .stage("dup", 1.0, GainModel::Deterministic { k: 1 })
            .stage("mid", 2.0, GainModel::Deterministic { k: 1 })
            .stage("dup", 3.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::DuplicateStageName { name: "dup".into() });
    }

    #[test]
    fn serde_roundtrip() {
        let p = blast_like();
        let json = serde_json::to_string(&p).unwrap();
        let back: PipelineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn single_stage_pipeline_is_valid() {
        let p = PipelineSpecBuilder::new(1)
            .stage("only", 5.0, GainModel::Deterministic { k: 0 })
            .build()
            .unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.total_gains(), vec![1.0]);
        assert_eq!(p.end_to_end_gain(), 0.0);
    }
}
