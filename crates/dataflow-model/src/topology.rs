//! Explicit DAG topologies.
//!
//! The paper's model is a linear chain: node `i` feeds node `i+1`, and
//! each node's [`GainModel`] describes the outputs it pushes downstream.
//! A [`Topology`] generalizes this to a directed acyclic graph: gains and
//! routing weights live on *edges*, so a node may split its outputs
//! across several consumers (fan-out) and merge inputs from several
//! producers (fan-in). Per-edge gains subsume per-stage gains — a chain
//! is the special case where node `i` has exactly one out-edge, to node
//! `i+1`, carrying the stage gain with weight 1 ([`Topology::chain`]).
//!
//! Invariants guaranteed after construction: at least one node, all node
//! and edge parameters valid, stage names unique, no self-edges or
//! parallel duplicate edges, the edge relation acyclic, and exactly one
//! source node (in-degree 0) that external arrivals feed.

use crate::error::ModelError;
use crate::gain::GainModel;
use crate::node::NodeSpec;
use crate::pipeline::PipelineSpec;

/// One directed edge of a [`Topology`].
///
/// Per consumed item at `src`, the edge emits `k ~ gain` items toward
/// `dst`; when `weight < 1`, each emitted item additionally survives an
/// independent Bernoulli(`weight`) routing draw. The mean per-item flow
/// along the edge is therefore `gain.mean() * weight`.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSpec {
    /// Producing node index.
    pub src: usize,
    /// Consuming node index.
    pub dst: usize,
    /// Output-count distribution per consumed input along this edge.
    pub gain: GainModel,
    /// Routing weight in `(0, 1]`: thinning probability applied to each
    /// output drawn from `gain`.
    pub weight: f64,
}

impl EdgeSpec {
    /// Construct an edge spec.
    pub fn new(src: usize, dst: usize, gain: GainModel, weight: f64) -> Self {
        EdgeSpec {
            src,
            dst,
            gain,
            weight,
        }
    }

    /// Mean items emitted toward `dst` per item consumed at `src`.
    pub fn mean_flow(&self) -> f64 {
        self.gain.mean() * self.weight
    }
}

/// A validated DAG of processing nodes sharing one SIMD device.
///
/// Construct via [`Topology::new`], incrementally with
/// [`TopologyBuilder`], or from a linear [`PipelineSpec`] with
/// [`Topology::chain`]. Unlike `PipelineSpec` this type is deliberately
/// *not* serializable: the precomputed topological order and adjacency
/// are invariants that deserialization could not re-establish safely, so
/// workloads are built in-process (see `apps::logalytics`).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    edges: Vec<EdgeSpec>,
    vector_width: u32,
    topo_order: Vec<usize>,
    in_edges: Vec<Vec<usize>>,
    out_edges: Vec<Vec<usize>>,
}

impl Topology {
    /// Build and validate a topology.
    pub fn new(
        nodes: Vec<NodeSpec>,
        edges: Vec<EdgeSpec>,
        vector_width: u32,
    ) -> Result<Self, ModelError> {
        if nodes.is_empty() {
            return Err(ModelError::EmptyPipeline);
        }
        if vector_width == 0 {
            return Err(ModelError::ZeroVectorWidth);
        }
        for (i, n) in nodes.iter().enumerate() {
            n.validate(i)?;
        }
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[..i] {
                if a.name == b.name {
                    return Err(ModelError::DuplicateStageName {
                        name: a.name.clone(),
                    });
                }
            }
        }
        let n = nodes.len();
        for (e, edge) in edges.iter().enumerate() {
            for &endpoint in &[edge.src, edge.dst] {
                if endpoint >= n {
                    return Err(ModelError::EdgeEndpointOutOfRange { edge: e, endpoint });
                }
            }
            if edge.src == edge.dst {
                return Err(ModelError::SelfEdge { node: edge.src });
            }
            if !(edge.weight.is_finite() && edge.weight > 0.0 && edge.weight <= 1.0) {
                return Err(ModelError::InvalidEdgeWeight {
                    edge: e,
                    value: edge.weight,
                });
            }
            if let Err(err) = edge.gain.validate(usize::MAX) {
                let reason = match err {
                    ModelError::InvalidGain { reason, .. } => reason,
                    other => other.to_string(),
                };
                return Err(ModelError::InvalidEdgeGain { edge: e, reason });
            }
            if edges[..e]
                .iter()
                .any(|p| p.src == edge.src && p.dst == edge.dst)
            {
                return Err(ModelError::DuplicateEdge {
                    src: edge.src,
                    dst: edge.dst,
                });
            }
        }

        // Adjacency as edge-id lists, in edge declaration order.
        let mut in_edges = vec![Vec::new(); n];
        let mut out_edges = vec![Vec::new(); n];
        for (e, edge) in edges.iter().enumerate() {
            out_edges[edge.src].push(e);
            in_edges[edge.dst].push(e);
        }

        // Kahn topological sort; smallest-index-first for determinism.
        let mut in_deg: Vec<usize> = in_edges.iter().map(Vec::len).collect();
        let sources = in_deg.iter().filter(|&&d| d == 0).count();
        if sources != 1 {
            return Err(ModelError::MultipleSources { count: sources });
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| in_deg[i] == 0).collect();
        let mut topo_order = Vec::with_capacity(n);
        while let Some(&next) = ready.iter().min() {
            ready.retain(|&i| i != next);
            topo_order.push(next);
            for &e in &out_edges[next] {
                let d = edges[e].dst;
                in_deg[d] -= 1;
                if in_deg[d] == 0 {
                    ready.push(d);
                }
            }
        }
        if topo_order.len() != n {
            return Err(ModelError::CyclicTopology);
        }

        Ok(Topology {
            nodes,
            edges,
            vector_width,
            topo_order,
            in_edges,
            out_edges,
        })
    }

    /// Express a linear [`PipelineSpec`] as a `Topology`: edge `i`
    /// connects node `i` to node `i+1` carrying node `i`'s gain with
    /// weight 1. The final node's gain stays on its [`NodeSpec`] only
    /// (a chain's last stage emits nothing downstream).
    pub fn chain(pipeline: &PipelineSpec) -> Self {
        let nodes = pipeline.nodes().to_vec();
        let edges = (0..nodes.len().saturating_sub(1))
            .map(|i| EdgeSpec::new(i, i + 1, nodes[i].gain.clone(), 1.0))
            .collect();
        // A valid PipelineSpec always yields a valid chain topology.
        Topology::new(nodes, edges, pipeline.vector_width())
            .expect("chain of a valid PipelineSpec is a valid Topology")
    }

    /// If this topology is exactly a linear chain (edge `i` is
    /// `i → i+1` with weight 1), reconstruct the equivalent
    /// [`PipelineSpec`]; otherwise `None`.
    ///
    /// For a topology built by [`Topology::chain`] the roundtrip is
    /// exact: `Topology::chain(&p).as_chain() == Some(p)`.
    pub fn as_chain(&self) -> Option<PipelineSpec> {
        let n = self.nodes.len();
        if self.edges.len() != n - 1 {
            return None;
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.src != i || e.dst != i + 1 || e.weight != 1.0 {
                return None;
            }
        }
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let gain = if i + 1 < n {
                    self.edges[i].gain.clone()
                } else {
                    node.gain.clone()
                };
                NodeSpec::new(node.name.clone(), node.service_time, gain)
            })
            .collect();
        Some(PipelineSpec::new(nodes, self.vector_width).expect("chain nodes already validated"))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Topologies are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// SIMD vector width `v`.
    pub fn vector_width(&self) -> u32 {
        self.vector_width
    }

    /// The nodes, in declaration order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Node `i`'s spec.
    pub fn node(&self, i: usize) -> &NodeSpec {
        &self.nodes[i]
    }

    /// The edges, in declaration order.
    pub fn edges(&self) -> &[EdgeSpec] {
        &self.edges
    }

    /// Edge `e`'s spec.
    pub fn edge(&self, e: usize) -> &EdgeSpec {
        &self.edges[e]
    }

    /// A topological order of the node indices (deterministic:
    /// smallest-index-first Kahn).
    pub fn topo_order(&self) -> &[usize] {
        &self.topo_order
    }

    /// Edge ids entering node `i`, in edge declaration order.
    pub fn in_edges(&self, i: usize) -> &[usize] {
        &self.in_edges[i]
    }

    /// Edge ids leaving node `i`, in edge declaration order.
    pub fn out_edges(&self, i: usize) -> &[usize] {
        &self.out_edges[i]
    }

    /// The unique source node (in-degree 0) external arrivals feed.
    pub fn source(&self) -> usize {
        self.topo_order[0]
    }

    /// True when node `i` has no out-edges (a sink).
    pub fn is_sink(&self, i: usize) -> bool {
        self.out_edges[i].is_empty()
    }

    /// Service times `t_i` indexed by node.
    pub fn service_times(&self) -> Vec<f64> {
        self.nodes.iter().map(|n| n.service_time).collect()
    }

    /// Total gains `G_i` *into* each node per original stream input:
    /// `G_source = 1`, and in topological order
    /// `G_j = Σ_{e: src(e)→j} G_{src(e)} · g_e · w_e` (fan-in sums the
    /// per-edge flows; fan-out splits them). For a chain this reduces to
    /// the paper's `G_i = Π_{j<i} g_j`, bit-for-bit.
    pub fn total_gains(&self) -> Vec<f64> {
        let mut g = vec![0.0; self.nodes.len()];
        for &i in &self.topo_order {
            if self.in_edges[i].is_empty() {
                g[i] = 1.0;
            } else {
                g[i] = self.in_edges[i]
                    .iter()
                    .map(|&e| {
                        let edge = &self.edges[e];
                        g[edge.src] * edge.gain.mean() * edge.weight
                    })
                    .sum();
            }
        }
        g
    }

    /// Mean items crossing each edge per original stream input:
    /// `flow_e = G_{src(e)} · g_e · w_e`, indexed by edge id.
    pub fn edge_flows(&self) -> Vec<f64> {
        let g = self.total_gains();
        self.edges
            .iter()
            .map(|e| g[e.src] * e.gain.mean() * e.weight)
            .collect()
    }

    /// Sum of service times over all nodes.
    pub fn total_service_time(&self) -> f64 {
        self.nodes.iter().map(|n| n.service_time).sum()
    }
}

/// Incremental builder for [`Topology`].
///
/// ```
/// use dataflow_model::{GainModel, TopologyBuilder};
/// let t = TopologyBuilder::new(128)
///     .node("parse", 100.0)
///     .node("filter", 50.0)
///     .node("join", 80.0)
///     .edge(0, 1, GainModel::Deterministic { k: 1 }, 1.0)
///     .edge(0, 2, GainModel::Bernoulli { p: 0.5 }, 1.0)
///     .edge(1, 2, GainModel::Deterministic { k: 1 }, 1.0)
///     .build()
///     .unwrap();
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.source(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    nodes: Vec<NodeSpec>,
    edges: Vec<EdgeSpec>,
    vector_width: u32,
}

impl TopologyBuilder {
    /// Start a topology with SIMD width `vector_width`.
    pub fn new(vector_width: u32) -> Self {
        TopologyBuilder {
            nodes: Vec::new(),
            edges: Vec::new(),
            vector_width,
        }
    }

    /// Append a node. Gains live on edges, so only the service time is
    /// given here; the node's own [`GainModel`] slot is a placeholder
    /// (`Deterministic { k: 1 }`) that DAG execution never samples.
    pub fn node(mut self, name: impl Into<String>, service_time: f64) -> Self {
        self.nodes.push(NodeSpec::new(
            name,
            service_time,
            GainModel::Deterministic { k: 1 },
        ));
        self
    }

    /// Append a directed edge.
    pub fn edge(mut self, src: usize, dst: usize, gain: GainModel, weight: f64) -> Self {
        self.edges.push(EdgeSpec::new(src, dst, gain, weight));
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<Topology, ModelError> {
        Topology::new(self.nodes, self.edges, self.vector_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineSpecBuilder;

    fn blast_like() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    fn diamond() -> Topology {
        TopologyBuilder::new(64)
            .node("parse", 100.0)
            .node("filter", 40.0)
            .node("enrich", 60.0)
            .node("join", 80.0)
            .edge(0, 1, GainModel::Deterministic { k: 1 }, 0.75)
            .edge(0, 2, GainModel::Deterministic { k: 1 }, 0.25)
            .edge(1, 3, GainModel::Bernoulli { p: 0.5 }, 1.0)
            .edge(2, 3, GainModel::Deterministic { k: 2 }, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn chain_roundtrip_is_exact() {
        let p = blast_like();
        let t = Topology::chain(&p);
        assert_eq!(t.len(), 4);
        assert_eq!(t.edges().len(), 3);
        assert_eq!(t.topo_order(), &[0, 1, 2, 3]);
        assert_eq!(t.source(), 0);
        assert!(t.is_sink(3) && !t.is_sink(0));
        assert_eq!(t.as_chain(), Some(p));
    }

    #[test]
    fn chain_total_gains_bit_match_pipeline() {
        let p = blast_like();
        let t = Topology::chain(&p);
        // Weight 1 multiplies exactly, so the DAG propagation must be
        // bit-identical to the chain product.
        assert_eq!(t.total_gains(), p.total_gains());
    }

    #[test]
    fn single_node_chain() {
        let p = PipelineSpecBuilder::new(1)
            .stage("only", 5.0, GainModel::Deterministic { k: 0 })
            .build()
            .unwrap();
        let t = Topology::chain(&p);
        assert_eq!(t.len(), 1);
        assert!(t.edges().is_empty());
        assert!(t.is_sink(0));
        assert_eq!(t.as_chain(), Some(p));
    }

    #[test]
    fn diamond_accessors_and_order() {
        let t = diamond();
        assert_eq!(t.topo_order(), &[0, 1, 2, 3]);
        assert_eq!(t.out_edges(0), &[0, 1]);
        assert_eq!(t.in_edges(3), &[2, 3]);
        assert_eq!(t.source(), 0);
        assert!(t.is_sink(3));
        assert_eq!(t.as_chain(), None);
        assert_eq!(t.edge(2).mean_flow(), 0.5);
    }

    #[test]
    fn diamond_total_gains_split_and_sum() {
        let t = diamond();
        let g = t.total_gains();
        assert_eq!(g[0], 1.0);
        assert!((g[1] - 0.75).abs() < 1e-15);
        assert!((g[2] - 0.25).abs() < 1e-15);
        // join: 0.75·0.5 + 0.25·2 = 0.875
        assert!((g[3] - 0.875).abs() < 1e-15);
        let flows = t.edge_flows();
        assert!((flows[2] - 0.375).abs() < 1e-15);
        assert!((flows[3] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn rejects_duplicate_stage_names() {
        let err = TopologyBuilder::new(4)
            .node("dup", 1.0)
            .node("dup", 2.0)
            .edge(0, 1, GainModel::Deterministic { k: 1 }, 1.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::DuplicateStageName { name: "dup".into() });
    }

    #[test]
    fn rejects_self_edges() {
        let err = TopologyBuilder::new(4)
            .node("a", 1.0)
            .node("b", 1.0)
            .edge(0, 1, GainModel::Deterministic { k: 1 }, 1.0)
            .edge(1, 1, GainModel::Deterministic { k: 1 }, 1.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::SelfEdge { node: 1 });
    }

    #[test]
    fn rejects_out_of_range_endpoints() {
        let err = TopologyBuilder::new(4)
            .node("a", 1.0)
            .edge(0, 7, GainModel::Deterministic { k: 1 }, 1.0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::EdgeEndpointOutOfRange {
                edge: 0,
                endpoint: 7
            }
        );
    }

    #[test]
    fn rejects_bad_weights() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let err = TopologyBuilder::new(4)
                .node("a", 1.0)
                .node("b", 1.0)
                .edge(0, 1, GainModel::Deterministic { k: 1 }, bad)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ModelError::InvalidEdgeWeight { edge: 0, .. }),
                "weight {bad} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_edge_gains() {
        let err = TopologyBuilder::new(4)
            .node("a", 1.0)
            .node("b", 1.0)
            .edge(0, 1, GainModel::Bernoulli { p: 2.0 }, 1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidEdgeGain { edge: 0, .. }));
    }

    #[test]
    fn rejects_parallel_duplicate_edges() {
        let err = TopologyBuilder::new(4)
            .node("a", 1.0)
            .node("b", 1.0)
            .edge(0, 1, GainModel::Deterministic { k: 1 }, 1.0)
            .edge(0, 1, GainModel::Deterministic { k: 2 }, 0.5)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::DuplicateEdge { src: 0, dst: 1 });
    }

    #[test]
    fn rejects_cycles() {
        let err = TopologyBuilder::new(4)
            .node("a", 1.0)
            .node("b", 1.0)
            .node("c", 1.0)
            .edge(0, 1, GainModel::Deterministic { k: 1 }, 1.0)
            .edge(1, 2, GainModel::Deterministic { k: 1 }, 1.0)
            .edge(2, 1, GainModel::Deterministic { k: 1 }, 1.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::CyclicTopology);
    }

    #[test]
    fn rejects_multiple_sources() {
        let err = TopologyBuilder::new(4)
            .node("a", 1.0)
            .node("b", 1.0)
            .node("c", 1.0)
            .edge(0, 2, GainModel::Deterministic { k: 1 }, 1.0)
            .edge(1, 2, GainModel::Deterministic { k: 1 }, 1.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::MultipleSources { count: 2 });
    }

    #[test]
    fn rejects_empty_and_zero_width() {
        assert_eq!(
            Topology::new(vec![], vec![], 4).unwrap_err(),
            ModelError::EmptyPipeline
        );
        let nodes = vec![NodeSpec::new("a", 1.0, GainModel::Deterministic { k: 1 })];
        assert_eq!(
            Topology::new(nodes, vec![], 0).unwrap_err(),
            ModelError::ZeroVectorWidth
        );
    }
}
