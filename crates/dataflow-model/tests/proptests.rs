//! Property-based tests for the application model.

use dataflow_model::analysis::*;
use dataflow_model::{GainModel, PipelineSpec, PipelineSpecBuilder, RtParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a valid gain model.
fn gain_model() -> impl Strategy<Value = GainModel> {
    prop_oneof![
        (0u32..5).prop_map(|k| GainModel::Deterministic { k }),
        (0.0..=1.0f64).prop_map(|p| GainModel::Bernoulli { p }),
        (0.05..4.0f64, 1u32..20).prop_map(|(mean, cap)| GainModel::CensoredPoisson { mean, cap }),
    ]
}

/// Strategy: a valid pipeline of 1..=6 stages.
fn pipeline() -> impl Strategy<Value = PipelineSpec> {
    (
        prop::collection::vec((1.0..5000.0f64, gain_model()), 1..=6),
        prop_oneof![Just(32u32), Just(64), Just(128), Just(256)],
    )
        .prop_map(|(stages, v)| {
            let mut b = PipelineSpecBuilder::new(v);
            for (i, (t, g)) in stages.into_iter().enumerate() {
                b = b.stage(format!("s{i}"), t, g);
            }
            b.build().expect("generated pipelines are valid")
        })
}

proptest! {
    #[test]
    fn total_gains_are_prefix_products(p in pipeline()) {
        let g = p.mean_gains();
        let total = p.total_gains();
        prop_assert_eq!(total[0], 1.0);
        let mut acc = 1.0;
        for i in 1..p.len() {
            acc *= g[i - 1];
            prop_assert!((total[i] - acc).abs() <= 1e-9 * acc.abs().max(1.0));
        }
    }

    #[test]
    fn active_fraction_bounds_and_monotonicity(p in pipeline(), scale in 1.0..50.0f64) {
        let t = p.service_times();
        // x = t → fraction exactly 1; scaling periods up reduces it.
        prop_assert!((enforced_active_fraction(&p, &t) - 1.0).abs() < 1e-12);
        let scaled: Vec<f64> = t.iter().map(|ti| ti * scale).collect();
        let af = enforced_active_fraction(&p, &scaled);
        prop_assert!((af - 1.0 / scale).abs() < 1e-9);
        prop_assert!(af > 0.0 && af <= 1.0);
    }

    #[test]
    fn block_time_bounds(p in pipeline(), m in 1u64..10_000) {
        // Lower bound: no ceilings; upper bound: each ceiling adds < 1.
        let v = p.vector_width() as f64;
        let totals = p.total_gains();
        let lower: f64 = p.nodes().iter().zip(&totals)
            .map(|(n, &g)| (m as f64 * g / v) * n.service_time).sum();
        let upper: f64 = lower + p.total_service_time();
        let t = monolithic_block_time(&p, m);
        prop_assert!(t >= lower - 1e-6, "{t} < {lower}");
        prop_assert!(t <= upper + 1e-6, "{t} > {upper}");
    }

    #[test]
    fn block_time_is_nondecreasing_in_m(p in pipeline(), m in 1u64..5_000) {
        prop_assert!(monolithic_block_time(&p, m + 1) >= monolithic_block_time(&p, m) - 1e-9);
    }

    #[test]
    fn period_bounds_scale_linearly_with_tau0(p in pipeline(), tau0 in 1.0..100.0f64) {
        let a = period_upper_bounds(&p, &RtParams::new(tau0, 1e5).unwrap());
        let b = period_upper_bounds(&p, &RtParams::new(2.0 * tau0, 1e5).unwrap());
        for (x, y) in a.iter().zip(&b) {
            if x.is_finite() {
                prop_assert!((y / x - 2.0).abs() < 1e-9);
            } else {
                prop_assert!(y.is_infinite());
            }
        }
    }

    #[test]
    fn limits_relationship_holds_generally(p in pipeline(), tau0 in 1.0..100.0f64) {
        let params = RtParams::new(tau0, 1e6).unwrap();
        let e = enforced_limit_active_fraction(&p, &params);
        let m = monolithic_limit_active_fraction(&p, &params);
        prop_assert!((m - e * p.len() as f64).abs() <= 1e-12 * m.abs().max(1.0));
    }

    #[test]
    fn gain_sampling_respects_max_outputs(g in gain_model(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let max = g.max_outputs().unwrap();
        for _ in 0..200 {
            prop_assert!(g.sample(&mut rng) <= max);
        }
    }

    #[test]
    fn gain_sample_mean_tracks_model_mean(g in gain_model(), seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 30_000;
        let sum: u64 = (0..n).map(|_| g.sample(&mut rng) as u64).sum();
        let sample_mean = sum as f64 / n as f64;
        let model_mean = g.mean();
        // 6-sigma-ish tolerance using the model's own variance.
        let tol = 6.0 * (g.variance() / n as f64).sqrt() + 1e-6;
        prop_assert!(
            (sample_mean - model_mean).abs() <= tol,
            "sample {sample_mean} vs model {model_mean} (tol {tol})"
        );
    }

    #[test]
    fn min_feasible_deadline_is_a_true_lower_bound(p in pipeline(), b_raw in prop::collection::vec(1.0..8.0f64, 6)) {
        let b = &b_raw[..p.len()];
        let min_d = min_feasible_deadline(&p, b);
        // Any period vector with x >= t has at least this latency bound.
        let bound_at_t = enforced_latency_bound(&p, &p.service_times(), b);
        prop_assert!((min_d - bound_at_t).abs() < 1e-9);
        let inflated: Vec<f64> = p.service_times().iter().map(|t| t * 1.7).collect();
        prop_assert!(enforced_latency_bound(&p, &inflated, b) >= min_d);
    }
}
