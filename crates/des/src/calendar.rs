//! The pending-event set.
//!
//! A [`Calendar`] orders events by timestamp with a stable FIFO tie-break:
//! two events scheduled for the same instant fire in scheduling order.
//! Without the tie-break, `BinaryHeap`'s arbitrary ordering of equal keys
//! would make simulations irreproducible across runs and platforms.

use crate::clock::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event drawn from the calendar: a timestamp plus a caller-defined
/// payload describing what happens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<P> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone sequence number assigned at scheduling time; exposes the
    /// FIFO tie-break order for tests and tracing.
    pub seq: u64,
    /// What the event means (interpreted by the simulation).
    pub payload: P,
}

/// Internal heap entry. `BinaryHeap` is a max-heap, so the ordering is
/// reversed: earliest time (then lowest sequence number) is "greatest".
struct Entry<P> {
    time: SimTime,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for Entry<P> {}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (time, seq) compares greater so it pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event calendar (pending-event set).
///
/// Events are popped in nondecreasing time order; equal times pop in
/// scheduling (FIFO) order. The calendar also tracks the timestamp of the
/// last popped event and rejects scheduling into the past, which turns
/// causality bugs into immediate panics instead of silent reordering.
pub struct Calendar<P> {
    heap: BinaryHeap<Entry<P>>,
    next_seq: u64,
    now: SimTime,
    scheduled: u64,
    fired: u64,
}

impl<P> Default for Calendar<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> Calendar<P> {
    /// Create an empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled: 0,
            fired: 0,
        }
    }

    /// Create an empty calendar with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Calendar {
            heap: BinaryHeap::with_capacity(cap),
            ..Calendar::new()
        }
    }

    /// The time of the most recently popped event (time zero initially).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled.
    #[inline]
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events ever popped.
    #[inline]
    pub fn total_fired(&self) -> u64 {
        self.fired
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current simulation time; an
    /// event in the past is a causality bug in the caller.
    pub fn schedule(&mut self, at: SimTime, payload: P) {
        assert!(
            at >= self.now,
            "scheduled event at {} is in the past (now = {})",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedule `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: P) {
        self.schedule(self.now + delay, payload);
    }

    /// Reserve capacity for at least `additional` more pending events.
    ///
    /// Hot simulation loops that know a burst of scheduling is coming
    /// (e.g. one `Deliver` + one `Fire` per firing) can pre-size the
    /// heap once instead of growing it incrementally mid-run.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next event, advancing the calendar clock to its timestamp.
    pub fn pop(&mut self) -> Option<Event<P>> {
        let entry = self.heap.pop()?;
        debug_assert!(
            entry.time >= self.now,
            "heap returned an out-of-order event"
        );
        self.now = entry.time;
        self.fired += 1;
        Some(Event {
            time: entry.time,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Pop the next event only if it fires at or before `horizon`.
    ///
    /// Events beyond the horizon stay pending; the clock does not advance
    /// past them. Simulations use this to cut off a run at a fixed
    /// measurement window.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<Event<P>> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Drop every pending event, leaving the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::from_cycles(c)
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(t(30), "c");
        cal.schedule(t(10), "a");
        cal.schedule(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| cal.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| cal.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_equal_and_unequal_times_are_stable() {
        let mut cal = Calendar::new();
        cal.schedule(t(10), "x1");
        cal.schedule(t(5), "y");
        cal.schedule(t(10), "x2");
        assert_eq!(cal.pop().unwrap().payload, "y");
        assert_eq!(cal.pop().unwrap().payload, "x1");
        assert_eq!(cal.pop().unwrap().payload, "x2");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(t(7), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), t(7));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(t(10), ());
        cal.pop();
        cal.schedule(t(9), ());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(t(10), 0u32);
        cal.pop();
        cal.schedule_after(t(5), 1u32);
        let e = cal.pop().unwrap();
        assert_eq!(e.time, t(15));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut cal = Calendar::new();
        cal.schedule(t(10), "in");
        cal.schedule(t(20), "out");
        assert_eq!(cal.pop_until(t(15)).unwrap().payload, "in");
        assert!(cal.pop_until(t(15)).is_none());
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.now(), t(10));
    }

    #[test]
    fn counters_track_activity() {
        let mut cal = Calendar::new();
        cal.schedule(t(1), ());
        cal.schedule(t(2), ());
        cal.pop();
        assert_eq!(cal.total_scheduled(), 2);
        assert_eq!(cal.total_fired(), 1);
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
        cal.clear();
        assert!(cal.is_empty());
    }

    #[test]
    fn reserve_grows_capacity_without_touching_events() {
        let mut cal = Calendar::new();
        cal.schedule(t(1), "a");
        cal.reserve(1024);
        cal.schedule(t(2), "b");
        assert_eq!(cal.pop().unwrap().payload, "a");
        assert_eq!(cal.pop().unwrap().payload, "b");
        assert_eq!(cal.total_scheduled(), 2);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut cal = Calendar::new();
        assert!(cal.peek_time().is_none());
        cal.schedule(t(4), ());
        assert_eq!(cal.peek_time(), Some(t(4)));
    }
}
