//! Simulated time.
//!
//! Time in this engine is an integer cycle count (`u64`). The paper
//! expresses all service times, waits, inter-arrival times, and deadlines
//! in processor cycles, so an integer clock is exact: there is no
//! floating-point drift over long streams.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in device cycles since simulation
/// start.
///
/// `SimTime` is ordered and supports the small amount of arithmetic a
/// simulation needs: adding a duration (another `SimTime`, interpreted as
/// a span) and subtracting an earlier time to get a span. Subtraction
/// panics (in all build profiles) if it would underflow, because a
/// negative span always indicates a causality bug in the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct a time from a raw cycle count.
    #[inline]
    pub const fn from_cycles(cycles: u64) -> Self {
        SimTime(cycles)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// The cycle count as `f64` (for statistics and reporting only).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier > self`; a negative span is a causality bug.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimTime {
        assert!(
            earlier.0 <= self.0,
            "causality violation: span from {} to {}",
            earlier,
            self
        );
        SimTime(self.0 - earlier.0)
    }

    /// Saturating addition of a span.
    #[inline]
    pub fn saturating_add(self, span: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(span.0))
    }

    /// Checked addition of a span; `None` on overflow.
    #[inline]
    pub fn checked_add(self, span: SimTime) -> Option<SimTime> {
        self.0.checked_add(span.0).map(SimTime)
    }

    /// Multiply a span by an integer count (e.g. `period * k`), saturating.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimTime {
        SimTime(self.0.saturating_mul(k))
    }

    /// Round a `f64` cycle quantity to the nearest integer time.
    ///
    /// Values are clamped to `[0, u64::MAX]`; NaN maps to zero. This is
    /// how continuous optimizer outputs (e.g. wait times `w_i`) are
    /// realized on the integer simulation clock.
    pub fn from_f64_rounded(cycles: f64) -> SimTime {
        if cycles.is_nan() || cycles <= 0.0 {
            SimTime(0)
        } else if cycles >= u64::MAX as f64 {
            SimTime(u64::MAX)
        } else {
            SimTime(cycles.round() as u64)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulated horizon exceeds u64 cycles"),
        )
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_cycles(42);
        assert_eq!(t.cycles(), 42);
        assert_eq!(t.as_f64(), 42.0);
        assert_eq!(SimTime::ZERO.cycles(), 0);
    }

    #[test]
    fn add_and_since() {
        let a = SimTime::from_cycles(10);
        let b = SimTime::from_cycles(25);
        assert_eq!((a + SimTime::from_cycles(15)), b);
        assert_eq!(b.since(a).cycles(), 15);
        assert_eq!((b - a).cycles(), 15);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn since_panics_on_negative_span() {
        let _ = SimTime::from_cycles(1).since(SimTime::from_cycles(2));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimTime::from_cycles(1)),
            SimTime::MAX
        );
        assert_eq!(SimTime::from_cycles(3).saturating_mul(4).cycles(), 12);
        assert_eq!(SimTime::MAX.saturating_mul(2), SimTime::MAX);
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX.checked_add(SimTime::from_cycles(1)).is_none());
        assert_eq!(
            SimTime::from_cycles(1).checked_add(SimTime::from_cycles(2)),
            Some(SimTime::from_cycles(3))
        );
    }

    #[test]
    fn f64_rounding_edge_cases() {
        assert_eq!(SimTime::from_f64_rounded(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_f64_rounded(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_f64_rounded(2.5).cycles(), 3);
        assert_eq!(SimTime::from_f64_rounded(2.4).cycles(), 2);
        assert_eq!(SimTime::from_f64_rounded(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_cycles(7).to_string(), "7cy");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_cycles(1) < SimTime::from_cycles(2));
        assert!(SimTime::MAX > SimTime::ZERO);
    }
}
