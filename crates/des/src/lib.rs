//! # des — a deterministic discrete-event simulation engine
//!
//! This crate provides the simulation substrate used by the pipeline
//! simulator in this workspace. It is deliberately generic: nothing in
//! here knows about SIMD pipelines, deadlines, or scheduling strategies.
//!
//! The engine is organized around a few small pieces:
//!
//! * [`calendar::Calendar`] — a pending-event set (priority queue) with a
//!   *stable* tie-break: events scheduled for the same timestamp fire in
//!   the order they were scheduled. Determinism of the whole simulation
//!   rests on this property.
//! * [`clock::SimTime`] — the simulated clock, a `u64` cycle count with
//!   saturating/checked helpers so arithmetic bugs surface as panics in
//!   debug builds rather than silent wraparound.
//! * [`rng::RngStream`] — splittable deterministic random-number streams.
//!   Each simulation entity derives its own stream from a master seed, so
//!   adding a new entity never perturbs the random draws of existing ones.
//! * [`stats`] — online statistics (mean/variance via Welford, min/max,
//!   fixed-bin histograms, time-weighted averages) used to accumulate
//!   measurements without storing full traces.
//! * [`trace`] — an optional bounded ring-buffer trace for debugging.
//!
//! ## Example
//!
//! ```
//! use des::prelude::*;
//!
//! // A toy simulation: two periodic sources write into a shared counter.
//! let mut cal: Calendar<&'static str> = Calendar::new();
//! cal.schedule(SimTime::ZERO, "a");
//! cal.schedule(SimTime::from_cycles(5), "b");
//! let mut fired = Vec::new();
//! while let Some(ev) = cal.pop() {
//!     fired.push((ev.time.cycles(), ev.payload));
//!     if fired.len() < 4 {
//!         cal.schedule(ev.time + SimTime::from_cycles(10), ev.payload);
//!     }
//! }
//! assert_eq!(fired[0], (0, "a"));
//! assert_eq!(fired[1], (5, "b"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod clock;
pub mod obs;
pub mod rng;
pub mod stats;
pub mod trace;

/// Convenience re-exports of the most commonly used engine types.
pub mod prelude {
    pub use crate::calendar::{Calendar, Event};
    pub use crate::clock::SimTime;
    pub use crate::obs::{ObsConfig, ObsReport, ObsSink};
    pub use crate::rng::RngStream;
    pub use crate::stats::{Histogram, OnlineStats, TimeWeighted};
    pub use crate::trace::{TraceBuffer, TraceRecord};
}
