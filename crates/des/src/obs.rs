//! Structured observability for simulations.
//!
//! An [`ObsSink`] collects per-stage distributions (queue depth, firing
//! occupancy, sojourn time), global event counters, and a bounded trace
//! of recent events. Simulators thread an `Option<&mut ObsSink>` through
//! their hot loop; when the option is `None` the cost of the layer is a
//! single untaken branch per hook, so the disabled path stays within
//! noise of an uninstrumented build (verified by the `obs_overhead`
//! criterion bench in `pipeline-sim`).
//!
//! At the end of a run, [`ObsSink::report`] folds the accumulators into
//! a serializable [`ObsReport`] that downstream harnesses embed in run
//! manifests.

use crate::clock::SimTime;
use crate::stats::{nearest_rank, Histogram, OnlineStats};
use crate::trace::{TraceBuffer, TraceRecord};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};

/// Shape of the accumulators an [`ObsSink`] allocates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Bins of the per-stage queue-depth histogram.
    pub depth_bins: usize,
    /// Upper bound of the queue-depth histogram range `[0, depth_max)`;
    /// deeper queues land in the overflow bin.
    pub depth_bins_max: f64,
    /// Bins of the per-stage occupancy histogram over `[0, 1)`. Full
    /// firings (occupancy exactly 1) land in the overflow bin, so the
    /// overflow count doubles as a full-firing counter.
    pub occupancy_bins: usize,
    /// Bins of the per-stage sojourn-time histogram.
    pub sojourn_bins: usize,
    /// Upper bound of the sojourn histogram range `[0, sojourn_max)`
    /// in cycles; longer sojourns land in the overflow bin.
    pub sojourn_max: f64,
    /// Capacity of the recent-event trace ring; `0` disables tracing
    /// entirely (trace hooks become no-ops).
    pub trace_capacity: usize,
    /// Distributions keep raw samples up to this count and report
    /// *exact* quantiles from them; past the cutoff the raw samples are
    /// discarded and quantiles fall back to the histogram
    /// approximation. `0` disables the exact path.
    pub exact_cutoff: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            depth_bins: 64,
            depth_bins_max: 1024.0,
            occupancy_bins: 32,
            sojourn_bins: 64,
            sojourn_max: 1e6,
            trace_capacity: 0,
            exact_cutoff: DEFAULT_EXACT_CUTOFF,
        }
    }
}

/// Default raw-sample budget for exact quantiles (per distribution).
pub const DEFAULT_EXACT_CUTOFF: usize = 4096;

impl ObsConfig {
    /// Default shapes plus a trace ring of `capacity` recent events.
    pub fn with_trace(capacity: usize) -> Self {
        ObsConfig {
            trace_capacity: capacity,
            ..ObsConfig::default()
        }
    }
}

/// A sampled distribution: exact moments plus a fixed-bin histogram for
/// quantiles.
#[derive(Debug, Clone)]
pub struct Dist {
    stats: OnlineStats,
    hist: Histogram,
    /// Raw samples while at most `exact_cutoff` have arrived; dropped
    /// (set to `None`) the moment the budget would overflow. Interior
    /// mutability lets [`Dist::summary`] sort the buffer lazily — once,
    /// on first use — behind its `&self` signature.
    raw: Option<RefCell<Vec<f64>>>,
    /// Whether `raw` is currently sorted (set by the lazy sort in
    /// [`Dist::summary`], cleared by every push).
    raw_sorted: Cell<bool>,
    exact_cutoff: usize,
}

impl Dist {
    /// New distribution with a histogram over `[lo, hi)` with `nbins`
    /// bins and the default exact-quantile budget.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        Dist::with_cutoff(lo, hi, nbins, DEFAULT_EXACT_CUTOFF)
    }

    /// New distribution keeping up to `exact_cutoff` raw samples for
    /// exact quantiles (`0` = histogram-only).
    pub fn with_cutoff(lo: f64, hi: f64, nbins: usize, exact_cutoff: usize) -> Self {
        Dist {
            stats: OnlineStats::new(),
            hist: Histogram::new(lo, hi, nbins),
            raw: (exact_cutoff > 0).then(|| RefCell::new(Vec::new())),
            raw_sorted: Cell::new(false),
            exact_cutoff,
        }
    }

    /// Record a sample.
    pub fn push(&mut self, x: f64) {
        self.stats.push(x);
        self.hist.push(x);
        if self
            .raw
            .as_mut()
            .is_some_and(|r| r.get_mut().len() >= self.exact_cutoff)
        {
            self.raw = None;
        }
        if let Some(raw) = self.raw.as_mut() {
            raw.get_mut().push(x);
            self.raw_sorted.set(false);
        }
    }

    /// Record a slice of samples, in order.
    ///
    /// State-identical to pushing each element in turn (same moments,
    /// same histogram bins, same raw-sample retention decision), but
    /// runs the moment/histogram accumulation over the whole batch.
    pub fn push_batch(&mut self, xs: &[f64]) {
        if xs.is_empty() {
            return;
        }
        self.stats.push_slice(xs);
        self.hist.push_batch(xs);
        // Scalar retention semantics: the raw buffer holds at most
        // `exact_cutoff` samples and is dropped by the push that would
        // exceed the budget.
        if let Some(raw) = self.raw.as_mut() {
            let buf = raw.get_mut();
            if buf.len() + xs.len() > self.exact_cutoff {
                self.raw = None;
            } else {
                buf.extend_from_slice(xs);
                self.raw_sorted.set(false);
            }
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Whether quantiles will be exact (raw samples still held).
    pub fn is_exact(&self) -> bool {
        self.raw.is_some()
    }

    /// Fold into a serializable summary.
    ///
    /// The first call after a push sorts the retained raw samples in
    /// place (lazily, behind the `&self` signature); repeat calls reuse
    /// the sorted buffer instead of re-sorting per summary.
    pub fn summary(&self) -> DistSummary {
        let sorted = self
            .raw
            .as_ref()
            .filter(|r| !r.borrow().is_empty())
            .map(|r| {
                if !self.raw_sorted.get() {
                    // `total_cmp` so a stray NaN sample sorts to the end
                    // instead of aborting the whole report.
                    r.borrow_mut().sort_by(f64::total_cmp);
                    self.raw_sorted.set(true);
                }
                r.borrow()
            });
        let q = |frac: f64| match &sorted {
            // Nearest-rank on the retained samples: exact for small
            // runs, immune to histogram bin width.
            Some(s) => {
                let rank = nearest_rank(frac, s.len() as u64) as usize;
                Some(s[rank - 1])
            }
            None => self.hist.quantile(frac),
        };
        DistSummary {
            count: self.stats.count(),
            mean: self.stats.mean(),
            stddev: self.stats.stddev(),
            min: self.stats.min(),
            max: self.stats.max(),
            p50: q(0.5),
            p90: q(0.9),
            p99: q(0.99),
            p999: q(0.999),
            exact: sorted.is_some() || self.stats.count() == 0,
        }
    }
}

/// Serializable summary of a [`Dist`]: exact moments, approximate
/// (histogram-midpoint) quantiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact sample mean (0 if empty).
    pub mean: f64,
    /// Exact sample standard deviation.
    pub stddev: f64,
    /// Smallest sample (`None` if empty).
    pub min: Option<f64>,
    /// Largest sample (`None` if empty).
    pub max: Option<f64>,
    /// Median (exact below the raw-sample cutoff).
    pub p50: Option<f64>,
    /// 90th percentile (exact below the raw-sample cutoff).
    pub p90: Option<f64>,
    /// 99th percentile (exact below the raw-sample cutoff).
    pub p99: Option<f64>,
    /// 99.9th percentile (exact below the raw-sample cutoff).
    pub p999: Option<f64>,
    /// Whether the quantiles came from raw samples (exact) rather than
    /// the histogram approximation.
    pub exact: bool,
}

/// Per-stage accumulators.
#[derive(Debug, Clone)]
pub struct StageObs {
    /// Queue depth sampled after each enqueue batch.
    pub queue_depth: Dist,
    /// Occupancy fraction (items consumed ÷ vector width) per firing.
    pub occupancy: Dist,
    /// Cycles each consumed item spent waiting in this stage's queue.
    pub sojourn: Dist,
}

impl StageObs {
    fn new(config: &ObsConfig) -> Self {
        let cut = config.exact_cutoff;
        StageObs {
            queue_depth: Dist::with_cutoff(0.0, config.depth_bins_max, config.depth_bins, cut),
            occupancy: Dist::with_cutoff(0.0, 1.0, config.occupancy_bins, cut),
            sojourn: Dist::with_cutoff(0.0, config.sojourn_max, config.sojourn_bins, cut),
        }
    }

    fn report(&self) -> StageReport {
        StageReport {
            queue_depth: self.queue_depth.summary(),
            occupancy: self.occupancy.summary(),
            sojourn: self.sojourn.summary(),
        }
    }
}

/// Serializable per-stage summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Queue-depth distribution (sampled at enqueue).
    pub queue_depth: DistSummary,
    /// Firing-occupancy distribution (fraction of vector width).
    pub occupancy: DistSummary,
    /// Sojourn-time distribution (cycles in queue before consumption).
    pub sojourn: DistSummary,
}

/// Global event counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsCounters {
    /// Simulation events processed (arrivals, firings, deliveries).
    pub events: u64,
    /// Stage firings, including empty ones.
    pub firings: u64,
    /// Firings that found an empty queue.
    pub empty_firings: u64,
    /// Items pushed onto stage queues (all stages).
    pub items_enqueued: u64,
    /// Items consumed off stage queues (all stages).
    pub items_consumed: u64,
    /// Pipeline-level completions observed.
    pub completions: u64,
    /// Items dropped (e.g. still in flight at a truncated horizon).
    pub drops: u64,
}

/// Live observability sink. Construct per run, thread through the
/// simulator as `Option<&mut ObsSink>`, then call [`ObsSink::report`].
#[derive(Debug, Clone)]
pub struct ObsSink {
    config: ObsConfig,
    stages: Vec<StageObs>,
    counters: ObsCounters,
    trace: Option<TraceBuffer>,
}

impl ObsSink {
    /// Sink for a pipeline with `num_stages` stages.
    pub fn new(num_stages: usize, config: ObsConfig) -> Self {
        let trace = (config.trace_capacity > 0).then(|| TraceBuffer::new(config.trace_capacity));
        ObsSink {
            stages: (0..num_stages).map(|_| StageObs::new(&config)).collect(),
            counters: ObsCounters::default(),
            trace,
            config,
        }
    }

    /// Sink with default shapes and no trace.
    pub fn with_defaults(num_stages: usize) -> Self {
        ObsSink::new(num_stages, ObsConfig::default())
    }

    /// Number of instrumented stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Counters so far.
    pub fn counters(&self) -> &ObsCounters {
        &self.counters
    }

    /// One simulation event processed.
    pub fn on_event(&mut self) {
        self.counters.events += 1;
    }

    /// `pushed` items entered `stage`'s queue, leaving it `depth` deep.
    pub fn on_enqueue(&mut self, stage: usize, pushed: u64, depth: usize) {
        self.counters.items_enqueued += pushed;
        self.stages[stage].queue_depth.push(depth as f64);
    }

    /// `stage` fired, consuming `take` of `width` lanes.
    pub fn on_fire(&mut self, stage: usize, take: usize, width: usize) {
        self.counters.firings += 1;
        if take == 0 {
            self.counters.empty_firings += 1;
        }
        self.counters.items_consumed += take as u64;
        self.stages[stage]
            .occupancy
            .push(take as f64 / width.max(1) as f64);
    }

    /// A consumed item had waited `cycles` in `stage`'s queue.
    pub fn on_sojourn(&mut self, stage: usize, cycles: f64) {
        self.stages[stage].sojourn.push(cycles);
    }

    /// A batch of consumed items waited `cycles[..]` in `stage`'s
    /// queue, in consumption order. State-identical to one
    /// [`ObsSink::on_sojourn`] call per element.
    pub fn on_sojourn_batch(&mut self, stage: usize, cycles: &[f64]) {
        self.stages[stage].sojourn.push_batch(cycles);
    }

    /// A pipeline-level completion.
    pub fn on_completion(&mut self) {
        self.counters.completions += 1;
    }

    /// `n` pipeline-level completions at once.
    pub fn on_completions(&mut self, n: u64) {
        self.counters.completions += n;
    }

    /// An item was dropped (never completed).
    pub fn on_drop(&mut self) {
        self.counters.drops += 1;
    }

    /// Whether trace hooks record anything (lets callers skip building
    /// trace messages when they would be thrown away).
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Record a trace event (no-op unless a trace ring was configured).
    pub fn trace(&mut self, time: SimTime, tag: u32, message: impl Into<String>) {
        if let Some(tb) = self.trace.as_mut() {
            tb.push(time, tag, message);
        }
    }

    /// Fold into a serializable report.
    pub fn report(&self) -> ObsReport {
        ObsReport {
            config: self.config.clone(),
            counters: self.counters.clone(),
            stages: self.stages.iter().map(StageObs::report).collect(),
            trace: self
                .trace
                .as_ref()
                .map_or_else(Vec::new, |tb| tb.iter().cloned().collect()),
            trace_dropped: self.trace.as_ref().map_or(0, TraceBuffer::dropped),
        }
    }
}

/// Serializable end-of-run observability report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Accumulator shapes the run used.
    pub config: ObsConfig,
    /// Global counters.
    pub counters: ObsCounters,
    /// Per-stage summaries.
    pub stages: Vec<StageReport>,
    /// Most recent trace records (empty unless tracing was enabled).
    pub trace: Vec<TraceRecord>,
    /// Trace records evicted from the ring.
    pub trace_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = ObsSink::with_defaults(2);
        s.on_event();
        s.on_enqueue(0, 3, 3);
        s.on_fire(0, 2, 4);
        s.on_sojourn(0, 10.0);
        s.on_fire(1, 0, 4);
        s.on_completion();
        s.on_drop();
        let r = s.report();
        assert_eq!(r.counters.events, 1);
        assert_eq!(r.counters.items_enqueued, 3);
        assert_eq!(r.counters.items_consumed, 2);
        assert_eq!(r.counters.firings, 2);
        assert_eq!(r.counters.empty_firings, 1);
        assert_eq!(r.counters.completions, 1);
        assert_eq!(r.counters.drops, 1);
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stages[0].queue_depth.count, 1);
        assert!((r.stages[0].occupancy.mean - 0.5).abs() < 1e-12);
        assert_eq!(r.stages[0].sojourn.count, 1);
    }

    #[test]
    fn small_samples_get_exact_quantiles() {
        let mut d = Dist::new(0.0, 10.0, 4); // coarse bins on purpose
        for i in 1..=100 {
            d.push(i as f64);
        }
        assert!(d.is_exact());
        let s = d.summary();
        assert!(s.exact);
        // Nearest-rank on 1..=100 hits the integers exactly, far
        // outside what 4 bins over [0, 10) could resolve.
        assert_eq!(s.p50, Some(50.0));
        assert_eq!(s.p90, Some(90.0));
        assert_eq!(s.p99, Some(99.0));
        assert_eq!(s.p999, Some(100.0));
    }

    /// Regression: a single NaN sample used to abort `summary()` via the
    /// `partial_cmp(..).expect(..)` sort. NaN now sorts to the end under
    /// the total order and the finite quantiles stay answerable.
    #[test]
    fn nan_samples_do_not_abort_summary() {
        let mut d = Dist::new(0.0, 10.0, 4);
        d.push(1.0);
        d.push(f64::NAN);
        d.push_batch(&[3.0, 2.0]);
        let s = d.summary();
        assert_eq!(s.count, 4);
        // Nearest-rank(0.5, 4) = 2nd of [1, 2, 3, NaN].
        assert_eq!(s.p50, Some(2.0));
        assert!(s.p999.is_some_and(f64::is_nan), "NaN sorts last");
    }

    #[test]
    fn past_cutoff_falls_back_to_histogram() {
        let mut d = Dist::with_cutoff(0.0, 100.0, 100, 8);
        for i in 0..50 {
            d.push(i as f64);
        }
        assert!(!d.is_exact(), "cutoff of 8 exceeded");
        let s = d.summary();
        assert!(!s.exact);
        // Histogram quantiles still answer, at bin-midpoint precision.
        let p50 = s.p50.unwrap();
        assert!((p50 - 25.0).abs() <= 1.0, "p50 {p50}");
        assert!(s.p999.is_some());
        // Zero cutoff disables the exact path from the first sample.
        let mut d0 = Dist::with_cutoff(0.0, 1.0, 4, 0);
        d0.push(0.5);
        assert!(!d0.is_exact());
    }

    #[test]
    fn default_summaries_report_p999() {
        let mut s = ObsSink::with_defaults(1);
        for i in 1..=1000 {
            s.on_sojourn(0, i as f64);
        }
        let sum = s.report().stages[0].sojourn.clone();
        assert!(sum.exact, "1000 samples sit below the default cutoff");
        assert_eq!(sum.p999, Some(999.0));
        assert_eq!(sum.p50, Some(500.0));
    }

    #[test]
    fn push_batch_summary_matches_sequential_push() {
        let xs: Vec<f64> = (0..300)
            .map(|i| (f64::from(i) * 1.3).sin() * 40.0)
            .collect();
        // Exercise both regimes: raw retained (exact) and dropped.
        for cutoff in [4096, 64] {
            let mut scalar = Dist::with_cutoff(-50.0, 50.0, 25, cutoff);
            for &x in &xs {
                scalar.push(x);
            }
            let mut batched = Dist::with_cutoff(-50.0, 50.0, 25, cutoff);
            for chunk in xs.chunks(37) {
                batched.push_batch(chunk);
            }
            assert_eq!(batched.is_exact(), scalar.is_exact());
            assert_eq!(batched.summary(), scalar.summary(), "cutoff {cutoff}");
        }
    }

    #[test]
    fn summary_is_stable_across_repeat_calls_and_interleaved_pushes() {
        let mut d = Dist::new(0.0, 100.0, 10);
        for i in 0..50 {
            d.push(f64::from((i * 37) % 100));
        }
        let first = d.summary();
        // The lazy sort ran once; a repeat call must reuse it verbatim.
        assert_eq!(d.summary(), first);
        // A push after a summary invalidates the sorted view.
        d.push(1000.0);
        let second = d.summary();
        assert_eq!(second.count, 51);
        assert_eq!(second.max, Some(1000.0));
        assert_eq!(second.p999, Some(1000.0));
    }

    #[test]
    fn sojourn_batch_matches_scalar_hook() {
        let cycles: Vec<f64> = (0..120).map(|i| f64::from(i) * 3.5).collect();
        let mut scalar = ObsSink::with_defaults(2);
        for &c in &cycles {
            scalar.on_sojourn(1, c);
        }
        let mut batched = ObsSink::with_defaults(2);
        batched.on_sojourn_batch(1, &cycles);
        assert_eq!(scalar.report(), batched.report());
        // Counter batch hook, same deal.
        let mut a = ObsSink::with_defaults(1);
        for _ in 0..7 {
            a.on_completion();
        }
        let mut b = ObsSink::with_defaults(1);
        b.on_completions(7);
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut s = ObsSink::with_defaults(1);
        assert!(!s.tracing());
        s.trace(SimTime::from_cycles(1), 0, "ignored");
        assert!(s.report().trace.is_empty());
    }

    #[test]
    fn trace_ring_keeps_most_recent() {
        let mut s = ObsSink::new(1, ObsConfig::with_trace(2));
        assert!(s.tracing());
        for i in 0..4u64 {
            s.trace(SimTime::from_cycles(i), 0, format!("e{i}"));
        }
        let r = s.report();
        assert_eq!(r.trace.len(), 2);
        assert_eq!(r.trace_dropped, 2);
        assert_eq!(r.trace[0].message, "e2");
        assert_eq!(r.trace[1].message, "e3");
    }

    #[test]
    fn full_firing_counts_as_occupancy_overflow() {
        let mut s = ObsSink::with_defaults(1);
        s.on_fire(0, 4, 4);
        let sum = s.report().stages[0].occupancy.clone();
        assert_eq!(sum.count, 1);
        assert!((sum.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut s = ObsSink::new(2, ObsConfig::with_trace(4));
        s.on_enqueue(1, 1, 1);
        s.on_fire(1, 1, 8);
        s.trace(SimTime::from_cycles(7), 1, "fire");
        let r = s.report();
        let v = serde_json::to_value(&r).unwrap();
        let back: ObsReport = serde_json::from_value(&v).unwrap();
        assert_eq!(back, r);
    }
}
