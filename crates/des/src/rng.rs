//! Deterministic, splittable random-number streams.
//!
//! Stochastic simulations need reproducibility (same seed → same run) and
//! *stream independence*: each simulated entity draws from its own stream
//! so that adding or reordering entities does not perturb the draws seen
//! by the others. We implement SplitMix64 for seeding and a 4×64-bit
//! xoshiro-style generator ([`RngStream`]) for the streams themselves.
//!
//! The generator implements [`rand::RngCore`] so the `rand`/`rand_distr`
//! distribution machinery works on top of it.

use rand::RngCore;

/// SplitMix64 step: the standard 64-bit finalizer-based generator used to
/// expand a single seed into independent stream seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random stream (xoshiro256** core).
///
/// Streams are created either directly from a seed ([`RngStream::new`]) or
/// derived from a parent stream and a label ([`RngStream::substream`]).
/// Derivation is pure: it does not consume state from the parent, so the
/// set of substreams an entity creates never depends on draw order.
#[derive(Debug, Clone)]
pub struct RngStream {
    s: [u64; 4],
    seed: u64,
    draws: u64,
}

impl RngStream {
    /// Create a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        RngStream { s, seed, draws: 0 }
    }

    /// Derive an independent substream identified by `label`.
    ///
    /// Derivation hashes the parent's seed with the label, so
    /// `parent.substream(l)` is a pure function of `(parent_seed, l)`.
    pub fn substream(&self, label: u64) -> RngStream {
        // Mix seed and label through two SplitMix64 rounds to decorrelate
        // adjacent labels.
        let mut sm = self.seed ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        let derived = splitmix64(&mut sm) ^ splitmix64(&mut sm).rotate_left(32);
        RngStream::new(derived)
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of 64-bit draws made so far (diagnostic).
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        // xoshiro256**
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        self.draws += 1;
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → [0,1) with full double precision.
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn uniform_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "uniform_below(0)");
        // Lemire-style rejection to remove modulo bias.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64_raw();
            let (hi, lo) = {
                let m = (x as u128) * (n as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RngStream::new(42);
        let mut b = RngStream::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStream::new(1);
        let mut b = RngStream::new(2);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert!(same < 2, "streams from different seeds look identical");
    }

    #[test]
    fn substreams_are_pure_functions_of_label() {
        let parent = RngStream::new(7);
        let mut s1 = parent.substream(3);
        let mut s2 = parent.substream(3);
        assert_eq!(s1.next_u64_raw(), s2.next_u64_raw());
    }

    #[test]
    fn substream_derivation_does_not_consume_parent_state() {
        let mut p1 = RngStream::new(9);
        let mut p2 = RngStream::new(9);
        let _ = p1.substream(0);
        let _ = p1.substream(1);
        assert_eq!(p1.next_u64_raw(), p2.next_u64_raw());
    }

    #[test]
    fn adjacent_labels_decorrelated() {
        let parent = RngStream::new(1234);
        let mut a = parent.substream(0);
        let mut b = parent.substream(1);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = RngStream::new(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = RngStream::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut r = RngStream::new(8);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.379)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.379).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bernoulli_clamps_out_of_range_p() {
        let mut r = RngStream::new(8);
        assert!(!r.bernoulli(-0.5));
        assert!(r.bernoulli(1.5));
    }

    #[test]
    fn uniform_below_in_range_and_roughly_uniform() {
        let mut r = RngStream::new(11);
        let n = 60_000;
        let mut counts = [0u32; 6];
        for _ in 0..n {
            let x = r.uniform_below(6);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 1.0 / 6.0).abs() < 0.01, "bin freq {f}");
        }
    }

    #[test]
    #[should_panic(expected = "uniform_below(0)")]
    fn uniform_below_zero_panics() {
        RngStream::new(0).uniform_below(0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = RngStream::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Extremely unlikely to be all zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn draw_counter_increments() {
        let mut r = RngStream::new(1);
        assert_eq!(r.draws(), 0);
        let _ = r.next_u64_raw();
        let _ = r.next_f64();
        assert_eq!(r.draws(), 2);
    }
}
