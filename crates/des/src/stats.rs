//! Online statistics accumulators.
//!
//! Long simulated streams (the paper uses 50 000 inputs × 100 seeds ×
//! thousands of parameter cells) make storing raw samples impractical.
//! These accumulators keep O(1) or O(bins) state.

use serde::{Deserialize, Serialize};

/// Nearest-rank of the `q`-quantile among `n` samples: the 1-based index
/// of the order statistic to report, `⌈q·n⌉` clamped to `[1, n]`.
///
/// This is the single rank convention shared by the exact
/// (sorted-raw-sample) quantile path and [`Histogram::quantile`], so the
/// two agree to within one bin width on in-range data. Returns 0 only
/// when `n == 0` (no sample to pick).
#[inline]
pub fn nearest_rank(q: f64, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    ((q * n as f64).ceil() as u64).clamp(1, n)
}

/// Welford online mean/variance plus min/max and count.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// New empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add a slice of samples, in order.
    ///
    /// Exactly equivalent to calling [`OnlineStats::push`] once per
    /// element (the Welford recurrence is inherently sequential, so the
    /// result is bit-identical); batching just amortizes call overhead
    /// on the simulators' accounting paths.
    pub fn push_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
    /// Largest sample that landed in the overflow bin (`None` while no
    /// sample has). Quantiles that resolve into the overflow bin report
    /// this instead of clamping to `hi`, so tail percentiles of
    /// overflow-heavy runs are not silently capped at the histogram
    /// range.
    overflow_max: Option<f64>,
}

impl Histogram {
    /// Create a histogram with `nbins` equal bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be nonempty");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            total: 0,
            overflow_max: None,
        }
    }

    /// Record a sample.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
            self.overflow_max = Some(self.overflow_max.map_or(x, |m| m.max(x)));
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Record a slice of samples.
    ///
    /// Produces exactly the same state as pushing each element in turn;
    /// the range bounds and bin scale are hoisted out of the loop so the
    /// common all-in-range case compiles to a tight counting loop.
    pub fn push_batch(&mut self, xs: &[f64]) {
        let lo = self.lo;
        let hi = self.hi;
        let range = hi - lo;
        let nbins = self.bins.len() as f64;
        let last = self.bins.len() - 1;
        let mut underflow = 0u64;
        let mut overflow = 0u64;
        let mut overflow_max = f64::NEG_INFINITY;
        for &x in xs {
            if x < lo {
                underflow += 1;
            } else if x >= hi {
                overflow += 1;
                overflow_max = overflow_max.max(x);
            } else {
                // Same expression as the scalar `push`, term for term:
                // bin selection must stay bit-identical across paths.
                let frac = (x - lo) / range;
                let idx = ((frac * nbins) as usize).min(last);
                self.bins[idx] += 1;
            }
        }
        self.total += xs.len() as u64;
        self.underflow += underflow;
        self.overflow += overflow;
        if overflow > 0 {
            self.overflow_max = Some(
                self.overflow_max
                    .map_or(overflow_max, |m| m.max(overflow_max)),
            );
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of samples below range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Largest sample that landed in the overflow bin, if any.
    pub fn overflow_max(&self) -> Option<f64> {
        self.overflow_max
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) from bin midpoints.
    ///
    /// Underflow samples count as `lo`. A quantile that resolves into
    /// the overflow bin reports the largest overflowed sample actually
    /// observed (not the range bound `hi`, which would silently cap
    /// tail percentiles of overflow-heavy runs). Returns `None` if the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = nearest_rank(q, self.total);
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        // The rank falls in the overflow bin (nonempty, or we would have
        // stopped above: underflow + Σbins + overflow = total ≥ target).
        Some(self.overflow_max.unwrap_or(self.hi))
    }

    /// Merge a compatible histogram (same range and bin count).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        assert!(
            (self.lo - other.lo).abs() < f64::EPSILON && (self.hi - other.hi).abs() < f64::EPSILON,
            "range mismatch"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
        self.overflow_max = match (self.overflow_max, other.overflow_max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue
/// length over simulated time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_t: f64,
    last_v: f64,
    area: f64,
    t0: f64,
    started: bool,
    max: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// New accumulator; the signal starts when [`TimeWeighted::record`]
    /// is first called.
    pub fn new() -> Self {
        TimeWeighted {
            last_t: 0.0,
            last_v: 0.0,
            area: 0.0,
            t0: 0.0,
            started: false,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record that the signal takes value `v` from time `t` onward.
    ///
    /// Times must be nondecreasing.
    pub fn record(&mut self, t: f64, v: f64) {
        if !self.started {
            self.t0 = t;
            self.started = true;
        } else {
            assert!(t >= self.last_t, "time went backwards");
            self.area += self.last_v * (t - self.last_t);
        }
        self.last_t = t;
        self.last_v = v;
        self.max = self.max.max(v);
    }

    /// Time-weighted mean of the signal up to time `t_end`.
    pub fn mean_until(&self, t_end: f64) -> f64 {
        if !self.started || t_end <= self.t0 {
            return 0.0;
        }
        let area = self.area + self.last_v * (t_end - self.last_t).max(0.0);
        area / (t_end - self.t0)
    }

    /// Maximum recorded value (`None` before any record).
    pub fn max(&self) -> Option<f64> {
        self.started.then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before_mean = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before_mean);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-1.0);
        h.push(0.0);
        h.push(9.999);
        h.push(10.0);
        h.push(5.5);
        assert_eq!(h.total(), 5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.push(i as f64);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 49.5).abs() <= 1.0, "median {med}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 97.0, "p99 {p99}");
        assert!(Histogram::new(0.0, 1.0, 1).quantile(0.5).is_none());
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.push(1.0);
        b.push(1.0);
        b.push(11.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.bins()[0], 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn nearest_rank_convention() {
        assert_eq!(nearest_rank(0.5, 0), 0);
        assert_eq!(nearest_rank(0.0, 10), 1);
        assert_eq!(nearest_rank(0.5, 10), 5);
        assert_eq!(nearest_rank(0.999, 10), 10);
        assert_eq!(nearest_rank(1.0, 10), 10);
        assert_eq!(nearest_rank(2.0, 10), 10, "q is clamped to [0, 1]");
        assert_eq!(nearest_rank(-1.0, 10), 1);
    }

    #[test]
    fn overflow_quantile_reports_observed_max_not_range_bound() {
        // Regression: quantiles resolving into the overflow bin used to
        // clamp at `hi`, underreporting true tail latency.
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..900 {
            h.push(f64::from(i % 100));
        }
        for i in 0..100 {
            h.push(250.0 + f64::from(i)); // 100 samples far past hi
        }
        assert_eq!(h.overflow(), 100);
        assert_eq!(h.overflow_max(), Some(349.0));
        let p999 = h.quantile(0.999).unwrap();
        assert!(p999 > 100.0, "p999 {p999} still clamped at hi");
        assert_eq!(p999, 349.0);
        // In-range quantiles are untouched by the fix.
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 < 100.0);
    }

    #[test]
    fn overflow_max_survives_merge() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.push(12.0);
        b.push(99.0);
        a.merge(&b);
        assert_eq!(a.overflow_max(), Some(99.0));
        let mut c = Histogram::new(0.0, 10.0, 5);
        c.merge(&a);
        assert_eq!(c.overflow_max(), Some(99.0));
    }

    #[test]
    fn push_batch_matches_sequential_push() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (f64::from(i) * 0.7134).sin() * 80.0 + 20.0)
            .collect();
        let mut scalar = Histogram::new(0.0, 50.0, 17);
        for &x in &xs {
            scalar.push(x);
        }
        let mut batched = Histogram::new(0.0, 50.0, 17);
        // Uneven chunks to exercise the partial-batch merges.
        for chunk in xs.chunks(97) {
            batched.push_batch(chunk);
        }
        assert_eq!(scalar.bins(), batched.bins());
        assert_eq!(scalar.underflow(), batched.underflow());
        assert_eq!(scalar.overflow(), batched.overflow());
        assert_eq!(scalar.total(), batched.total());
        assert_eq!(scalar.overflow_max(), batched.overflow_max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(scalar.quantile(q), batched.quantile(q));
        }
    }

    #[test]
    fn push_slice_matches_sequential_push() {
        let xs: Vec<f64> = (0..257).map(|i| (f64::from(i)).cos() * 5.0).collect();
        let mut scalar = OnlineStats::new();
        for &x in &xs {
            scalar.push(x);
        }
        let mut sliced = OnlineStats::new();
        sliced.push_slice(&xs);
        assert_eq!(scalar.count(), sliced.count());
        assert_eq!(scalar.mean(), sliced.mean());
        assert_eq!(scalar.variance(), sliced.variance());
        assert_eq!(scalar.min(), sliced.min());
        assert_eq!(scalar.max(), sliced.max());
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.record(0.0, 2.0); // v=2 on [0,10)
        tw.record(10.0, 4.0); // v=4 on [10,20)
        assert!((tw.mean_until(20.0) - 3.0).abs() < 1e-12);
        assert_eq!(tw.max(), Some(4.0));
    }

    #[test]
    fn time_weighted_before_start_is_zero() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean_until(5.0), 0.0);
        assert!(tw.max().is_none());
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_rejects_backwards_time() {
        let mut tw = TimeWeighted::new();
        tw.record(5.0, 1.0);
        tw.record(4.0, 1.0);
    }
}
