//! Bounded event tracing for debugging simulations.
//!
//! A [`TraceBuffer`] keeps the most recent `capacity` records in a ring.
//! Tracing is off the hot path by default: the simulator only calls
//! [`TraceBuffer::push`] when a trace has been attached, and the buffer
//! never allocates after construction.

use crate::clock::SimTime;
use serde::{Deserialize, Serialize};

/// One trace record: a timestamp, a subsystem tag, and a message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// When the traced event happened.
    pub time: SimTime,
    /// Which subsystem emitted it (e.g. a node index).
    pub tag: u32,
    /// Human-readable description.
    pub message: String,
}

/// A fixed-capacity ring buffer of [`TraceRecord`]s.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Create a buffer holding at most `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs nonzero capacity");
        TraceBuffer {
            records: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest if full.
    pub fn push(&mut self, time: SimTime, tag: u32, message: impl Into<String>) {
        let rec = TraceRecord {
            time,
            tag,
            message: message.into(),
        };
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been traced.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many records were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records in chronological order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let (newer, older) = self.records.split_at(self.head);
        older.iter().chain(newer.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::from_cycles(c)
    }

    #[test]
    fn keeps_all_records_under_capacity() {
        let mut tb = TraceBuffer::new(4);
        tb.push(t(1), 0, "a");
        tb.push(t(2), 0, "b");
        assert_eq!(tb.len(), 2);
        assert_eq!(tb.dropped(), 0);
        let msgs: Vec<_> = tb.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["a", "b"]);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut tb = TraceBuffer::new(3);
        for i in 0..5u64 {
            tb.push(t(i), 0, format!("m{i}"));
        }
        assert_eq!(tb.len(), 3);
        assert_eq!(tb.dropped(), 2);
        let msgs: Vec<_> = tb.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn iteration_order_is_chronological_after_wrap() {
        let mut tb = TraceBuffer::new(2);
        tb.push(t(1), 1, "x");
        tb.push(t(2), 2, "y");
        tb.push(t(3), 3, "z");
        let times: Vec<_> = tb.iter().map(|r| r.time.cycles()).collect();
        assert_eq!(times, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_panics() {
        TraceBuffer::new(0);
    }

    #[test]
    fn empty_buffer() {
        let tb = TraceBuffer::new(1);
        assert!(tb.is_empty());
        assert_eq!(tb.iter().count(), 0);
    }
}
