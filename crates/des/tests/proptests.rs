//! Property-based tests for the discrete-event engine.

use des::prelude::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn calendar_pops_sorted_by_time_then_seq(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_cycles(t), i);
        }
        let mut popped: Vec<(u64, u64)> = Vec::new();
        while let Some(ev) = cal.pop() {
            popped.push((ev.time.cycles(), ev.seq));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0] <= w[1], "out of (time, seq) order: {:?} then {:?}", w[0], w[1]);
        }
        // Every scheduled time appears.
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let got: Vec<u64> = popped.iter().map(|(t, _)| *t).collect();
        prop_assert_eq!(got, sorted);
    }

    #[test]
    fn online_stats_merge_is_order_insensitive(
        xs in prop::collection::vec(-1e6..1e6f64, 1..100),
        split in 0usize..100,
    ) {
        let cut = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..cut] { a.push(x); }
        for &x in &xs[cut..] { b.push(x); }
        // Merge both ways.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for m in [&ab, &ba] {
            prop_assert_eq!(m.count(), whole.count());
            prop_assert!((m.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
            prop_assert!((m.variance() - whole.variance()).abs() <= 1e-4 * whole.variance().abs().max(1.0));
        }
    }

    #[test]
    fn histogram_quantiles_are_monotone(
        xs in prop::collection::vec(0.0..100.0f64, 1..200),
        qa in 0.0..1.0f64,
        qb in 0.0..1.0f64,
    ) {
        let mut h = Histogram::new(0.0, 100.0, 50);
        for &x in &xs {
            h.push(x);
        }
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let a = h.quantile(lo_q).unwrap();
        let b = h.quantile(hi_q).unwrap();
        prop_assert!(a <= b, "quantile({lo_q})={a} > quantile({hi_q})={b}");
    }

    #[test]
    fn rng_uniform_below_is_always_in_range(seed in 0u64..10_000, n in 1u64..1_000_000) {
        let mut r = RngStream::new(seed);
        for _ in 0..100 {
            prop_assert!(r.uniform_below(n) < n);
        }
    }

    #[test]
    fn rng_substreams_with_distinct_labels_differ(seed in 0u64..10_000, l1 in 0u64..1000, l2 in 0u64..1000) {
        prop_assume!(l1 != l2);
        let parent = RngStream::new(seed);
        let mut a = parent.substream(l1);
        let mut b = parent.substream(l2);
        let matches = (0..16).filter(|_| a.next_u64_raw() == b.next_u64_raw()).count();
        prop_assert!(matches < 2, "substreams {l1} and {l2} coincide");
    }

    #[test]
    fn time_weighted_mean_is_within_signal_range(
        steps in prop::collection::vec((0.0..100.0f64, -50.0..50.0f64), 1..50),
    ) {
        let mut tw = TimeWeighted::new();
        let mut t = 0.0;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(dt, v) in &steps {
            t += dt + 1e-9;
            tw.record(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let mean = tw.mean_until(t + 10.0);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "mean {mean} outside [{lo}, {hi}]");
    }
}

proptest! {
    // The histogram path and the exact (sorted-sample) path share one
    // rank convention (`stats::nearest_rank`), so for in-range data a
    // histogram quantile may only differ from the exact quantile by
    // bin granularity: the exact rank-th sample lies inside the bin
    // whose upper edge the histogram reports, so the gap is at most one
    // bin width.
    #[test]
    fn histogram_and_exact_quantiles_agree_within_one_bin(
        samples in prop::collection::vec(0.0..1000.0f64, 1..400),
        nbins in 4usize..256,
        q in 0.0..=1.0f64,
    ) {
        use des::stats::nearest_rank;

        let (lo, hi) = (0.0, 1000.0);
        let mut h = Histogram::new(lo, hi, nbins);
        for &x in &samples {
            h.push(x);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = nearest_rank(q, sorted.len() as u64) as usize;
        let exact = sorted[rank - 1];
        let hist = h.quantile(q).expect("nonempty histogram");
        // The histogram reports the midpoint of the bin holding the
        // rank-th sample, so it is within half a bin of the exact value
        // — "one bin width" with slack for edge-placement rounding.
        let bin_width = (hi - lo) / nbins as f64;
        prop_assert!(
            (hist - exact).abs() <= bin_width + 1e-9,
            "q={q}: histogram {hist} vs exact {exact} (bin width {bin_width})"
        );
    }
}

proptest! {
    /// Randomized overfill of the trace ring: for any capacity and any
    /// number of pushes (often far past capacity), the report must
    /// account for every record — `trace_dropped` is exactly the
    /// overflow, and the ring retains exactly the newest `capacity`
    /// records in chronological order. This is the accounting the
    /// `rtsdf_sim` drop counters and `/metrics` exposition rely on:
    /// nothing is silently lost, nothing is double-counted.
    #[test]
    fn trace_ring_overfill_accounts_for_every_record(
        capacity in 1usize..64,
        pushes in 0usize..512,
    ) {
        let mut sink = ObsSink::new(1, ObsConfig::with_trace(capacity));
        for i in 0..pushes {
            sink.trace(SimTime::from_cycles(i as u64), 7, format!("e{i}"));
        }
        let report = sink.report();
        let kept = pushes.min(capacity);
        prop_assert_eq!(report.trace.len(), kept);
        prop_assert_eq!(
            report.trace_dropped,
            pushes.saturating_sub(capacity) as u64,
            "dropped must be exactly the overflow"
        );
        // Retained records are the newest `kept`, oldest first.
        let expect: Vec<String> =
            (pushes - kept..pushes).map(|i| format!("e{i}")).collect();
        let got: Vec<String> =
            report.trace.iter().map(|r| r.message.clone()).collect();
        prop_assert_eq!(got, expect);
        // Total accounting: retained + dropped == pushed.
        prop_assert_eq!(report.trace.len() as u64 + report.trace_dropped, pushes as u64);
    }

    /// A zero-capacity config disables tracing: hooks are no-ops and
    /// nothing is ever counted as dropped, however many events fire.
    #[test]
    fn disabled_trace_never_records_or_drops(pushes in 0usize..256) {
        let mut sink = ObsSink::new(1, ObsConfig::default());
        prop_assert!(!sink.tracing());
        for i in 0..pushes {
            sink.trace(SimTime::from_cycles(i as u64), 1, "ignored");
        }
        let report = sink.report();
        prop_assert_eq!(report.trace.len(), 0);
        prop_assert_eq!(report.trace_dropped, 0);
    }
}
