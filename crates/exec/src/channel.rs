//! Bounded MPSC channels between stage threads.
//!
//! `std::sync::mpsc` channels are unbounded (or rendezvous), and the
//! workspace vendors no external channel crate, so the stage links are
//! a small `Mutex<VecDeque>` + two `Condvar`s. Capacity is the finite
//! backlog bound: a sender whose destination queue is full *blocks* —
//! that is the real back-pressure the simulator's unbounded queues only
//! measure after the fact.
//!
//! Shutdown is by sender-count: every stage thread drops its `Sender`
//! clones when it exits, and a receiver that sees zero senders and an
//! empty queue knows its upstream cone has fully drained. Because the
//! topology is acyclic, this close cascade always terminates: a node
//! never exits before all of its producers have.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// One in-flight work item: the ancestral stream input it descends
/// from, and when it entered the destination queue (nanoseconds from
/// run start, for sojourn measurement).
#[derive(Debug, Clone, Copy)]
pub struct Item {
    /// Index of the ancestral stream input.
    pub origin: u64,
    /// Enqueue timestamp, ns from run start.
    pub enqueued_ns: u64,
}

struct State {
    queue: VecDeque<Item>,
    senders: usize,
    max_depth: usize,
}

struct Inner {
    state: Mutex<State>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

/// Sending half; clone one per in-edge. Dropping the last clone closes
/// the channel.
pub struct Sender(Arc<Inner>);

/// Receiving half (exactly one per node).
pub struct Receiver(Arc<Inner>);

/// What a non-blocking drain observed.
#[derive(Debug, Clone, Copy)]
pub struct Drain {
    /// Queue depth at the instant of the drain, before removal.
    pub depth_before: usize,
    /// Items actually taken.
    pub taken: usize,
    /// All senders have been dropped (no more items will ever arrive
    /// once the queue is empty).
    pub disconnected: bool,
}

/// A bounded channel of `capacity` items.
pub fn bounded(capacity: usize) -> (Sender, Receiver) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity.min(1024)),
            senders: 1,
            max_depth: 0,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity: capacity.max(1),
    });
    (Sender(Arc::clone(&inner)), Receiver(inner))
}

impl Clone for Sender {
    fn clone(&self) -> Self {
        self.0.state.lock().expect("channel poisoned").senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl Drop for Sender {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("channel poisoned");
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake a receiver blocked in `recv_block` so it observes
            // the disconnect.
            self.0.not_empty.notify_all();
        }
    }
}

impl Sender {
    /// Deliver one item, blocking while the queue is at capacity (the
    /// finite-`b_i` back-pressure). Returns the nanoseconds spent
    /// blocked (0 on the uncontended path).
    pub fn send(&self, item: Item) -> u64 {
        let mut st = self.0.state.lock().expect("channel poisoned");
        let mut blocked_ns = 0u64;
        while st.queue.len() >= self.0.capacity {
            let t0 = std::time::Instant::now();
            st = self.0.not_full.wait(st).expect("channel poisoned");
            blocked_ns += t0.elapsed().as_nanos() as u64;
        }
        st.queue.push_back(item);
        let depth = st.queue.len();
        st.max_depth = st.max_depth.max(depth);
        drop(st);
        self.0.not_empty.notify_one();
        blocked_ns
    }
}

impl Receiver {
    /// Take up to `max` items without blocking.
    pub fn drain_up_to(&self, max: usize, buf: &mut Vec<Item>) -> Drain {
        let mut st = self.0.state.lock().expect("channel poisoned");
        let depth_before = st.queue.len();
        let taken = depth_before.min(max);
        buf.extend(st.queue.drain(..taken));
        let disconnected = st.senders == 0;
        drop(st);
        if taken > 0 {
            self.0.not_full.notify_all();
        }
        Drain {
            depth_before,
            taken,
            disconnected,
        }
    }

    /// Block until `want` items are available (or the channel is closed
    /// and drained), then take up to `want`. Used by the monolithic
    /// block worker to accumulate whole blocks; the final partial block
    /// is whatever remains at close.
    pub fn recv_block(&self, want: usize, buf: &mut Vec<Item>) -> Drain {
        // Never wait for more than the channel can hold: senders block
        // at capacity, so a larger `want` could never be satisfied.
        let want = want.min(self.0.capacity);
        let mut st = self.0.state.lock().expect("channel poisoned");
        while st.queue.len() < want && st.senders > 0 {
            st = self.0.not_empty.wait(st).expect("channel poisoned");
        }
        let depth_before = st.queue.len();
        let taken = depth_before.min(want);
        buf.extend(st.queue.drain(..taken));
        let disconnected = st.senders == 0;
        drop(st);
        if taken > 0 {
            self.0.not_full.notify_all();
        }
        Drain {
            depth_before,
            taken,
            disconnected,
        }
    }

    /// High-water mark of the queue depth over the channel's lifetime.
    pub fn max_depth(&self) -> usize {
        self.0.state.lock().expect("channel poisoned").max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn item(origin: u64) -> Item {
        Item {
            origin,
            enqueued_ns: 0,
        }
    }

    #[test]
    fn fifo_and_depth_tracking() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(item(i));
        }
        let mut buf = Vec::new();
        let d = rx.drain_up_to(3, &mut buf);
        assert_eq!(d.depth_before, 5);
        assert_eq!(d.taken, 3);
        assert!(!d.disconnected);
        assert_eq!(
            buf.iter().map(|x| x.origin).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(rx.max_depth(), 5);
    }

    #[test]
    fn send_blocks_at_capacity_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(item(0));
        tx.send(item(1));
        let t = std::thread::spawn(move || {
            let blocked = tx.send(item(2));
            (tx, blocked)
        });
        // Give the sender time to block, then free a slot.
        std::thread::sleep(Duration::from_millis(20));
        let mut buf = Vec::new();
        rx.drain_up_to(1, &mut buf);
        let (_tx, blocked) = t.join().unwrap();
        assert!(blocked > 0, "sender must have waited for capacity");
        let d = rx.drain_up_to(8, &mut buf);
        assert_eq!(d.depth_before, 2);
    }

    #[test]
    fn disconnect_is_observable_after_drain() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.send(item(0));
        drop(tx);
        let mut buf = Vec::new();
        assert!(!rx.drain_up_to(8, &mut buf).disconnected, "tx2 still live");
        drop(tx2);
        let d = rx.drain_up_to(8, &mut buf);
        assert!(d.disconnected);
        assert_eq!(d.taken, 0);
    }

    #[test]
    fn recv_block_returns_partial_on_close() {
        let (tx, rx) = bounded(8);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(item(0));
            tx.send(item(1));
            drop(tx);
        });
        let mut buf = Vec::new();
        // Wants 4, gets the 2 that ever arrive.
        let d = rx.recv_block(4, &mut buf);
        t.join().unwrap();
        assert!(d.disconnected);
        assert_eq!(buf.len(), 2);
    }
}
