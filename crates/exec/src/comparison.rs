//! Sim-vs-real cross-validation: run the same schedule through the
//! discrete-event simulator and the threaded executor and quantify how
//! well they agree.
//!
//! The simulator is averaged over several seeds (its logical clock is
//! cheap), the executor runs once at its configured seed (wall time is
//! expensive). Agreement is reported per quantity — active fraction and
//! deadline-miss rate are the headline pair the CI gate reads — plus an
//! informational per-stage sojourn-quantile distance against an
//! observed simulator run at the executor's own seed.
//!
//! Two counters exist specifically for `bench_diff` gating:
//! `conservation_violations` (an executor run that lost or invented
//! items) and `agreement_failures` (quantities outside tolerance).
//! Both must be zero for a healthy run, so their gate direction is
//! "must not increase above the committed baseline of 0".

use crate::executor::{ExecConfig, ExecError, ThreadedBackend};
use crate::report::ExecMetrics;
use dataflow_model::exec::PipelineExecutor;
use dataflow_model::Topology;
use des::obs::ObsConfig;
use pipeline_sim::config::FiringDiscipline;
use pipeline_sim::{
    simulate_enforced_topology, simulate_enforced_topology_observed, simulate_monolithic_topology,
    simulate_monolithic_topology_observed, SimConfig, SimMetrics,
};
use rtsdf_core::AnySchedule;
use serde::{Deserialize, Serialize};

/// Agreement on one scalar quantity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantityAgreement {
    /// What is being compared (`"active_fraction"`, `"miss_rate"`, …).
    pub quantity: String,
    /// Simulator value (mean over the sim seeds).
    pub sim: f64,
    /// Executor value.
    pub real: f64,
    /// The error that was checked: relative where the simulator value
    /// is nonzero, absolute otherwise.
    pub error: f64,
    /// True if `error` is relative (`|real−sim|/|sim|`), false if it is
    /// the absolute difference (simulator value was zero).
    pub relative: bool,
    /// `error <= tolerance`.
    pub within: bool,
}

impl QuantityAgreement {
    fn check(quantity: &str, sim: f64, real: f64, tolerance: f64) -> Self {
        let abs = (real - sim).abs();
        let (error, relative) = if sim.abs() > 1e-12 {
            (abs / sim.abs(), true)
        } else {
            (abs, false)
        };
        QuantityAgreement {
            quantity: quantity.to_string(),
            sim,
            real,
            error,
            relative,
            within: error <= tolerance,
        }
    }
}

/// Informational per-stage sojourn-quantile distance (executor vs an
/// observed simulator run at the executor's seed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageSojournDistance {
    /// Stage name.
    pub stage: String,
    /// Simulator sojourn p50 / p90, cycles.
    pub sim_p50: Option<f64>,
    /// Executor sojourn p50, cycles.
    pub real_p50: Option<f64>,
    /// Simulator sojourn p90, cycles.
    pub sim_p90: Option<f64>,
    /// Executor sojourn p90, cycles.
    pub real_p90: Option<f64>,
    /// `|real_p90 − sim_p90|` normalized by `max(sim_p90, 1)`: a scale-
    /// free distance between the distribution tails. Timer granularity
    /// makes this noisy at small time scales, so it is reported but not
    /// gated.
    pub p90_distance: Option<f64>,
}

/// The full sim-vs-real agreement report for one workload × schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgreementReport {
    /// `"enforced"` or `"monolithic"`.
    pub strategy: String,
    /// Tolerance the scalar quantities were checked against.
    pub tolerance: f64,
    /// Simulator seeds averaged over.
    pub sim_seeds: Vec<u64>,
    /// Scalar agreements (active fraction, miss rate, completion rate).
    pub quantities: Vec<QuantityAgreement>,
    /// Per-stage sojourn distances (informational).
    pub sojourn: Vec<StageSojournDistance>,
    /// 1 if the executor run violated item conservation, else 0.
    /// Gated: must stay at 0.
    pub conservation_violations: u64,
    /// Number of scalar quantities outside tolerance. Gated: must stay
    /// at 0.
    pub agreement_failures: u64,
    /// The executor run the comparison is about.
    pub exec: ExecMetrics,
}

impl AgreementReport {
    /// True when every gated condition holds.
    pub fn passes(&self) -> bool {
        self.conservation_violations == 0 && self.agreement_failures == 0
    }
}

fn sim_config(exec: &ExecConfig, seed: u64) -> SimConfig {
    SimConfig {
        stream_length: exec.stream_length,
        seed,
        arrivals: exec.arrivals.clone(),
        charge_empty_firings: true,
        drain_factor: 50.0,
        discipline: FiringDiscipline::StrictPeriodic,
    }
}

fn run_sim(
    topology: &Topology,
    schedule: &AnySchedule,
    config: &SimConfig,
    deadline: f64,
) -> SimMetrics {
    match schedule {
        AnySchedule::Enforced(s) => simulate_enforced_topology(topology, s, deadline, config),
        AnySchedule::Monolithic(s) => simulate_monolithic_topology(topology, s, deadline, config),
    }
}

fn run_sim_observed(
    topology: &Topology,
    schedule: &AnySchedule,
    config: &SimConfig,
    deadline: f64,
) -> SimMetrics {
    let obs = ObsConfig::default();
    match schedule {
        AnySchedule::Enforced(s) => {
            simulate_enforced_topology_observed(topology, s, deadline, config, obs)
        }
        AnySchedule::Monolithic(s) => {
            simulate_monolithic_topology_observed(topology, s, deadline, config, obs)
        }
    }
}

/// Run `schedule` through both backends and quantify agreement.
///
/// The simulator runs once per seed in `sim_seeds` (scalar quantities
/// compare against the mean) plus one observed run at the executor's
/// seed (for the per-stage sojourn distances). The executor runs once,
/// per `exec_config`.
pub fn sim_vs_real(
    topology: &Topology,
    schedule: &AnySchedule,
    exec_config: &ExecConfig,
    sim_seeds: &[u64],
    tolerance: f64,
) -> Result<AgreementReport, ExecError> {
    if sim_seeds.is_empty() {
        return Err(ExecError::Config(
            "sim_vs_real needs at least one sim seed".into(),
        ));
    }
    let backend = ThreadedBackend {
        config: exec_config.clone(),
    };
    let exec = backend.run(topology, schedule)?;

    // Simulator scalar quantities, averaged over seeds.
    let mut sim_active = 0.0;
    let mut sim_miss = 0.0;
    let mut sim_completed = 0.0;
    for &seed in sim_seeds {
        let m = run_sim(
            topology,
            schedule,
            &sim_config(exec_config, seed),
            exec_config.deadline,
        );
        sim_active += m.active_fraction;
        sim_miss += m.miss_rate();
        sim_completed += m.items_completed as f64 / m.items_arrived.max(1) as f64;
    }
    let k = sim_seeds.len() as f64;
    sim_active /= k;
    sim_miss /= k;
    sim_completed /= k;

    let real_completed = exec.items_completed as f64 / exec.items_arrived.max(1) as f64;
    let quantities = vec![
        QuantityAgreement::check(
            "active_fraction",
            sim_active,
            exec.active_fraction,
            tolerance,
        ),
        QuantityAgreement::check("miss_rate", sim_miss, exec.miss_rate(), tolerance),
        QuantityAgreement::check("completion_rate", sim_completed, real_completed, tolerance),
    ];

    // Observed sim run at the executor's own seed: distributional
    // comparison of per-stage sojourn.
    let observed = run_sim_observed(
        topology,
        schedule,
        &sim_config(exec_config, exec_config.seed),
        exec_config.deadline,
    );
    let sojourn = match &observed.obs {
        Some(obs) => obs
            .stages
            .iter()
            .zip(&exec.stages)
            .enumerate()
            .map(|(i, (sim_stage, real_stage))| {
                let sim_p90 = sim_stage.sojourn.p90;
                let real_p90 = real_stage.sojourn_cycles.p90;
                StageSojournDistance {
                    stage: topology.node(i).name.clone(),
                    sim_p50: sim_stage.sojourn.p50,
                    real_p50: real_stage.sojourn_cycles.p50,
                    sim_p90,
                    real_p90,
                    p90_distance: match (sim_p90, real_p90) {
                        (Some(s), Some(r)) => Some((r - s).abs() / s.max(1.0)),
                        _ => None,
                    },
                }
            })
            .collect(),
        None => Vec::new(),
    };

    let conservation_violations = u64::from(!exec.conservation_holds());
    let agreement_failures = quantities.iter().filter(|q| !q.within).count() as u64;
    Ok(AgreementReport {
        strategy: exec.strategy.clone(),
        tolerance,
        sim_seeds: sim_seeds.to_vec(),
        quantities,
        sojourn,
        conservation_violations,
        agreement_failures,
        exec,
    })
}
