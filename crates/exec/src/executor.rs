//! The threaded executors: enforced waits (one thread per stage, plus
//! an arrival pacer) and monolithic batching (a pacer and one block
//! worker).
//!
//! ## Mapping from the simulator's semantics
//!
//! The enforced executor reproduces the simulator's `StrictPeriodic`
//! discipline: every stage fires every `x_i = t_i + w_i` cycles from
//! the run start, consumes up to `v` queued items, burns its service
//! time (charged whether or not it consumed anything), draws per-edge
//! gains from the edge's own RNG substream, and delivers outputs at
//! firing completion. The refire rule is the simulator's
//! `(fire_start + period).max(completion)` — on time when on schedule,
//! catch-up without oscillation when the OS wakes a thread late.
//!
//! The monolithic executor accumulates blocks of `M` items and pushes
//! each block through all nodes in topological order — `⌈n_i/v⌉`
//! firings of `t_i` per node, all of the block's inputs completing when
//! the block finishes — exactly the simulator's block semantics, with
//! the block's busy time as one real burn per node.
//!
//! ## Termination
//!
//! Shutdown is a close cascade along the (acyclic) topology: the pacer
//! drops its sender after the last arrival; a stage exits when its
//! input is both closed and empty, dropping its own senders. A node
//! therefore never exits before its producers, which (with every
//! consumer draining before exit) makes the executor deadlock-free by
//! construction — the property test in `tests/` exercises exactly
//! this claim over random topologies, capacities, and seeds.

use crate::channel::{bounded, Item, Receiver, Sender};
use crate::report::{ExecMetrics, ExecStageReport};
use crate::timer::{calibrate, TimerCalibration, Timers};
use dataflow_model::exec::PipelineExecutor;
use dataflow_model::{ArrivalProcess, GainModel, Topology};
use des::obs::Dist;
use des::rng::RngStream;
use des::stats::OnlineStats;
use rtsdf_core::{AnySchedule, MonolithicSchedule, WaitSchedule};
use simd_device::{ActiveTimeLedger, OccupancyStats};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Sentinel for "not completed" in the lineage completion lane.
const INCOMPLETE: u64 = u64::MAX;

/// Cap on retained per-stage samples (sojourn/depth) and burn spans, so
/// a long run cannot grow memory without bound.
const SAMPLE_CAP: usize = 1 << 20;

/// Configuration of one real execution.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of stream inputs to process.
    pub stream_length: usize,
    /// Master RNG seed; substream labels match the simulator's
    /// (0 = arrivals, 1+e = edge `e` gains).
    pub seed: u64,
    /// How items arrive (same process the simulator draws from).
    pub arrivals: ArrivalProcess,
    /// Per-item end-to-end deadline, cycles.
    pub deadline: f64,
    /// Target wall duration of the run, seconds. The cycle→nanosecond
    /// time scale is derived so the run's worst-case logical span fits
    /// this duration; actual runs finish earlier (the worst-case bound
    /// is conservative).
    pub target_duration_secs: f64,
    /// Fidelity floor: the shortest service burn allowed, nanoseconds.
    /// If the duration-derived scale would make some stage's burn
    /// shorter than this (drowning it in timer noise), the scale is
    /// raised — trading a longer run for meaningful burns.
    pub min_burn_ns: f64,
    /// Explicit time scale override (ns per cycle); `None` derives it
    /// from `target_duration_secs`.
    pub time_scale_ns: Option<f64>,
}

impl ExecConfig {
    /// A run of `stream_length` periodic arrivals at interval `tau0`,
    /// targeting roughly one second of wall time.
    pub fn new(stream_length: usize, seed: u64, tau0: f64, deadline: f64) -> Self {
        ExecConfig {
            stream_length,
            seed,
            arrivals: ArrivalProcess::Periodic { tau0 },
            deadline,
            target_duration_secs: 1.0,
            min_burn_ns: 20_000.0,
            time_scale_ns: None,
        }
    }

    /// Resolve the cycle→ns scale for a run whose worst-case logical
    /// span is `span_cycles` and whose shortest stage service time is
    /// `min_service_cycles`.
    fn time_scale(&self, span_cycles: f64, min_service_cycles: f64) -> f64 {
        if let Some(s) = self.time_scale_ns {
            return s;
        }
        let by_duration = (self.target_duration_secs.max(0.05) * 1e9) / span_cycles.max(1.0);
        let by_floor = self.min_burn_ns / min_service_cycles.max(1.0);
        by_duration.max(by_floor)
    }
}

/// Why an execution could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Schedule and topology disagree on shape.
    Mismatch(String),
    /// The configuration is unusable (empty stream, bad deadline, …).
    Config(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Mismatch(m) => write!(f, "schedule/topology mismatch: {m}"),
            ExecError::Config(m) => write!(f, "invalid exec config: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Atomic lineage ledger shared by all stage threads: one outstanding
/// count and one completion timestamp per stream input. `consume`
/// resolves an item's contribution wait-free, so lineage never
/// serializes the stages.
struct Lineage {
    outstanding: Vec<AtomicI64>,
    completion_ns: Vec<AtomicU64>,
}

impl Lineage {
    fn new(n: usize) -> Self {
        Lineage {
            // Every input starts with its own arrival outstanding.
            outstanding: (0..n).map(|_| AtomicI64::new(1)).collect(),
            completion_ns: (0..n).map(|_| AtomicU64::new(INCOMPLETE)).collect(),
        }
    }

    /// A firing consumed one output of `origin` and produced `k`
    /// replacements. Returns true when this resolved the item fully.
    fn consume(&self, origin: u64, k: u32, now_ns: u64) -> bool {
        let delta = i64::from(k) - 1;
        let prev = self.outstanding[origin as usize].fetch_add(delta, Ordering::AcqRel);
        if prev + delta == 0 {
            self.completion_ns[origin as usize].store(now_ns, Ordering::Release);
            true
        } else {
            false
        }
    }

    fn completion(&self, origin: usize) -> Option<u64> {
        match self.completion_ns[origin].load(Ordering::Acquire) {
            INCOMPLETE => None,
            ns => Some(ns),
        }
    }
}

/// What one stage thread hands back at join.
struct StageRun {
    fired: u64,
    empty_firings: u64,
    items_consumed: u64,
    items_emitted: u64,
    occupancy: OccupancyStats,
    sojourn_ns: Vec<f64>,
    depth: Vec<f64>,
    burns: Vec<(u64, u64)>,
    send_blocked_ns: u64,
    max_queue_depth: u64,
}

fn ns_of(start: Instant) -> u64 {
    start.elapsed().as_nanos() as u64
}

fn dur_ns(ns: f64) -> Duration {
    Duration::from_nanos(ns.max(0.0).round() as u64)
}

/// Sample per-edge gains for `take` consumed items, apply routing-
/// weight thinning, accumulate per-item output totals, and append the
/// surviving origins to `outs`. Draw-for-draw the simulator's firing
/// loop (`sample_batch`, then Bernoulli thinning from the same edge
/// substream).
#[allow(clippy::too_many_arguments)]
fn route_edge(
    gain: &GainModel,
    weight: f64,
    rng: &mut RngStream,
    consumed: &[Item],
    gains_buf: &mut Vec<u32>,
    ktot: &mut [u32],
    outs: &mut Vec<u64>,
) {
    let take = consumed.len();
    gains_buf.clear();
    gains_buf.resize(take, 0);
    gain.sample_batch(rng, gains_buf);
    if weight < 1.0 {
        for (i, item) in consumed.iter().enumerate() {
            let mut kept = 0u32;
            for _ in 0..gains_buf[i] {
                if rng.next_f64() < weight {
                    kept += 1;
                }
            }
            ktot[i] += kept;
            for _ in 0..kept {
                outs.push(item.origin);
            }
        }
    } else {
        for (i, item) in consumed.iter().enumerate() {
            let k = gains_buf[i];
            ktot[i] += k;
            for _ in 0..k {
                outs.push(item.origin);
            }
        }
    }
}

/// Run `schedule` on `topology` with one thread per stage.
pub fn run_enforced(
    topology: &Topology,
    schedule: &WaitSchedule,
    config: &ExecConfig,
) -> Result<ExecMetrics, ExecError> {
    let n = topology.len();
    if schedule.periods.len() != n {
        return Err(ExecError::Mismatch(format!(
            "schedule has {} periods, topology {} nodes",
            schedule.periods.len(),
            n
        )));
    }
    validate_config(config)?;
    let v = topology.vector_width();

    // Integer cycle quantities, exactly as the simulator rounds them.
    let service: Vec<u64> = topology
        .service_times()
        .iter()
        .map(|&t| (t.round() as u64).max(1))
        .collect();
    let periods: Vec<u64> = schedule
        .periods
        .iter()
        .zip(&service)
        .map(|(&x, &t)| (x.round() as u64).max(t))
        .collect();

    let master = RngStream::new(config.seed);
    let mut arrival_rng = master.substream(0);
    let arrivals_cycles: Vec<u64> = monotone_cycles(
        &config
            .arrivals
            .generate(config.stream_length, &mut arrival_rng),
    );
    let last_arrival = arrivals_cycles.last().copied().unwrap_or(0);

    let span_cycles = last_arrival as f64 + schedule.latency_bound.max(config.deadline);
    let min_service = service.iter().copied().min().unwrap_or(1) as f64;
    let scale = config.time_scale(span_cycles, min_service);
    let calibration = calibrate();
    let timers = Timers::new(calibration);

    // Bounded input channel per node; capacity is the design backlog
    // `⌈b_i⌉·v` items (at least two vectors so a transient cannot
    // wedge a well-designed schedule on rounding).
    let mut txs: Vec<Option<Sender>> = Vec::with_capacity(n);
    let mut rxs: Vec<Option<Receiver>> = Vec::with_capacity(n);
    for i in 0..n {
        let b = schedule
            .backlog_factors
            .get(i)
            .copied()
            .unwrap_or(1.0)
            .ceil()
            .max(1.0) as usize;
        let (tx, rx) = bounded((b * v as usize).max(2 * v as usize));
        txs.push(Some(tx));
        rxs.push(Some(rx));
    }
    let source_tx = txs[topology.source()].clone().expect("source sender");
    // Per-stage out-edge senders (cloned from the destination's input),
    // and the per-edge gain substreams, owned by the source stage of
    // each edge.
    let mut stage_senders: Vec<Vec<(usize, Sender)>> = (0..n)
        .map(|i| {
            topology
                .out_edges(i)
                .iter()
                .map(|&e| {
                    let dst = topology.edge(e).dst;
                    (e, txs[dst].clone().expect("dst sender"))
                })
                .collect()
        })
        .collect();
    // Drop the original senders: from here on, channel closure is
    // governed purely by pacer/stage thread lifetime.
    txs.clear();
    let mut stage_rngs: Vec<Vec<RngStream>> = (0..n)
        .map(|i| {
            topology
                .out_edges(i)
                .iter()
                .map(|&e| master.substream(1 + e as u64))
                .collect()
        })
        .collect();

    let lineage = Lineage::new(config.stream_length);
    let start = Instant::now() + Duration::from_millis(5);

    let (stage_runs, pacer_late) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let rx = rxs[i].take().expect("stage receiver");
            let senders = std::mem::take(&mut stage_senders[i]);
            let rngs = std::mem::take(&mut stage_rngs[i]);
            let lineage = &lineage;
            let period_ns = periods[i] as f64 * scale;
            let service_ns = service[i] as f64 * scale;
            handles.push(scope.spawn(move || {
                stage_thread(StageCtx {
                    topology,
                    v,
                    rx,
                    senders,
                    rngs,
                    lineage,
                    timers,
                    start,
                    period_ns,
                    service_ns,
                })
            }));
        }
        let pacer =
            scope.spawn(|| pace_arrivals(&arrivals_cycles, scale, start, &timers, source_tx));
        let runs: Vec<StageRun> = handles
            .into_iter()
            .map(|h| h.join().expect("stage thread panicked"))
            .collect();
        (runs, pacer.join().expect("pacer panicked"))
    });
    let wall_elapsed_ns = ns_of(start);

    Ok(assemble_metrics(AssembleArgs {
        strategy: "enforced",
        topology,
        config,
        schedule_is_monolithic: false,
        stage_runs,
        lineage: &lineage,
        arrivals_cycles: &arrivals_cycles,
        scale,
        wall_elapsed_ns,
        pacer_max_late_ns: pacer_late,
        calibration,
    }))
}

/// Everything one enforced stage thread needs.
struct StageCtx<'a> {
    topology: &'a Topology,
    v: u32,
    rx: Receiver,
    senders: Vec<(usize, Sender)>,
    rngs: Vec<RngStream>,
    lineage: &'a Lineage,
    timers: Timers,
    start: Instant,
    period_ns: f64,
    service_ns: f64,
}

/// The enforced-waits firing loop of one stage.
fn stage_thread(ctx: StageCtx<'_>) -> StageRun {
    let StageCtx {
        topology,
        v,
        rx,
        senders,
        mut rngs,
        lineage,
        timers,
        start,
        period_ns,
        service_ns,
    } = ctx;
    let mut run = StageRun {
        fired: 0,
        empty_firings: 0,
        items_consumed: 0,
        items_emitted: 0,
        occupancy: OccupancyStats::new(),
        sojourn_ns: Vec::new(),
        depth: Vec::new(),
        burns: Vec::new(),
        send_blocked_ns: 0,
        max_queue_depth: 0,
    };
    let mut consumed: Vec<Item> = Vec::with_capacity(v as usize);
    let mut gains_buf: Vec<u32> = Vec::with_capacity(v as usize);
    let mut ktot: Vec<u32> = Vec::with_capacity(v as usize);
    // Per-out-edge output origin batches, reused across firings.
    let mut outs: Vec<Vec<u64>> = senders.iter().map(|_| Vec::new()).collect();
    let period = dur_ns(period_ns);
    let mut next_fire = start;

    loop {
        timers.wait_until(next_fire);
        consumed.clear();
        let drain = rx.drain_up_to(v as usize, &mut consumed);
        let fire_start = Instant::now();
        let now_ns = ns_of(start);
        run.fired += 1;
        if drain.taken == 0 {
            run.empty_firings += 1;
        }
        run.items_consumed += drain.taken as u64;
        run.occupancy.record(drain.taken as u32, v);
        if run.depth.len() < SAMPLE_CAP {
            run.depth.push(drain.depth_before as f64);
        }
        if run.sojourn_ns.len() + drain.taken <= SAMPLE_CAP {
            run.sojourn_ns
                .extend(consumed.iter().map(|it| (now_ns - it.enqueued_ns) as f64));
        }

        // The service burn: real CPU until the wall deadline (charged
        // on empty firings too — StrictPeriodic).
        let burn_end = fire_start + dur_ns(service_ns);
        timers.burn_until(burn_end);
        let completion_ns = ns_of(start);
        if run.burns.len() < SAMPLE_CAP {
            run.burns.push((now_ns, completion_ns));
        }

        if drain.taken > 0 {
            ktot.clear();
            ktot.resize(drain.taken, 0);
            for (slot, &(e, _)) in senders.iter().enumerate() {
                let edge = topology.edge(e);
                outs[slot].clear();
                route_edge(
                    &edge.gain,
                    edge.weight,
                    &mut rngs[slot],
                    &consumed,
                    &mut gains_buf,
                    &mut ktot,
                    &mut outs[slot],
                );
            }
            // Lineage resolves at firing completion, before deliveries
            // land downstream — the simulator's intra-instant order.
            for (item, &k) in consumed.iter().zip(&ktot) {
                lineage.consume(item.origin, k, completion_ns);
            }
            for (slot, (_, tx)) in senders.iter().enumerate() {
                for &origin in &outs[slot] {
                    run.send_blocked_ns += tx.send(Item {
                        origin,
                        enqueued_ns: completion_ns,
                    });
                    run.items_emitted += 1;
                }
            }
        } else if drain.disconnected {
            // Upstream cone fully drained and nothing left here: exit,
            // dropping our senders (the close cascade).
            break;
        }

        // Refire: `(fire_start + period).max(completion)` like the
        // simulator; `burn_end >= fire_start + service` and the period
        // dominates the service, so on-schedule runs never slip.
        let scheduled = fire_start + period;
        next_fire = if scheduled > burn_end {
            scheduled
        } else {
            burn_end
        };
    }
    run.max_queue_depth = rx.max_depth() as u64;
    run
}

/// The arrival pacer: deliver every stream input at its nominal wall
/// instant (nominal stamps, so sojourn measures what the simulator
/// measures even when the pacer itself runs late). Returns the worst
/// observed lateness in nanoseconds.
fn pace_arrivals(
    arrivals_cycles: &[u64],
    scale: f64,
    start: Instant,
    timers: &Timers,
    tx: Sender,
) -> u64 {
    let mut max_late = 0u64;
    for (origin, &cycles) in arrivals_cycles.iter().enumerate() {
        let nominal_ns = cycles as f64 * scale;
        timers.wait_until(start + dur_ns(nominal_ns));
        tx.send(Item {
            origin: origin as u64,
            enqueued_ns: nominal_ns as u64,
        });
        let late = ns_of(start).saturating_sub(nominal_ns as u64);
        max_late = max_late.max(late);
    }
    max_late
}

/// Run the monolithic `schedule` on `topology`: a pacer and one block
/// worker.
pub fn run_monolithic(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    config: &ExecConfig,
) -> Result<ExecMetrics, ExecError> {
    validate_config(config)?;
    let n = topology.len();
    let v = topology.vector_width();
    let m = schedule.block_size.max(1) as usize;
    let service: Vec<f64> = topology.service_times();

    let master = RngStream::new(config.seed);
    let mut arrival_rng = master.substream(0);
    let arrivals_cycles: Vec<u64> = monotone_cycles(
        &config
            .arrivals
            .generate(config.stream_length, &mut arrival_rng),
    );
    let last_arrival = arrivals_cycles.last().copied().unwrap_or(0);
    let span_cycles = last_arrival as f64 + schedule.latency_bound.max(config.deadline);
    let min_service = service
        .iter()
        .fold(f64::INFINITY, |a, &b| a.min(b))
        .max(1.0);
    let scale = config.time_scale(span_cycles, min_service);
    let calibration = calibrate();
    let timers = Timers::new(calibration);

    let mut gain_rngs: Vec<RngStream> = (0..topology.edges().len())
        .map(|e| master.substream(1 + e as u64))
        .collect();

    let lineage = Lineage::new(config.stream_length);
    let (tx, rx) = bounded(2 * m);
    let start = Instant::now() + Duration::from_millis(5);

    let (worker_run, pacer_late) = std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            let mut run = StageRun {
                fired: 0,
                empty_firings: 0,
                items_consumed: 0,
                items_emitted: 0,
                occupancy: OccupancyStats::new(),
                sojourn_ns: Vec::new(),
                depth: Vec::new(),
                burns: Vec::new(),
                send_blocked_ns: 0,
                max_queue_depth: 0,
            };
            let mut occupancy: Vec<OccupancyStats> =
                (0..n).map(|_| OccupancyStats::new()).collect();
            let mut fired = vec![0u64; n];
            let mut busy_spans: Vec<Vec<(u64, u64)>> = (0..n).map(|_| Vec::new()).collect();
            let mut block: Vec<Item> = Vec::with_capacity(m);
            let mut counts = vec![0u64; n];
            loop {
                block.clear();
                let drain = rx.recv_block(m, &mut block);
                if block.is_empty() {
                    if drain.disconnected {
                        break;
                    }
                    continue;
                }
                let block_start_ns = ns_of(start);
                run.items_consumed += block.len() as u64;
                if run.depth.len() < SAMPLE_CAP {
                    run.depth.push(drain.depth_before as f64);
                }
                if run.sojourn_ns.len() + block.len() <= SAMPLE_CAP {
                    run.sojourn_ns.extend(
                        block
                            .iter()
                            .map(|it| block_start_ns.saturating_sub(it.enqueued_ns) as f64),
                    );
                }
                counts.iter_mut().for_each(|c| *c = 0);
                counts[topology.source()] = block.len() as u64;
                for &i in topology.topo_order() {
                    let count = counts[i];
                    if count == 0 {
                        continue;
                    }
                    let firings = count.div_ceil(u64::from(v));
                    let stage_busy_ns = firings as f64 * service[i] * scale;
                    let burn_start = ns_of(start);
                    timers.burn_until(Instant::now() + dur_ns(stage_busy_ns));
                    busy_spans[i].push((burn_start, ns_of(start)));
                    fired[i] += firings;
                    let full = count / u64::from(v);
                    for _ in 0..full {
                        occupancy[i].record(v, v);
                    }
                    let rem = (count % u64::from(v)) as u32;
                    if rem > 0 {
                        occupancy[i].record(rem, v);
                    }
                    for &e in topology.out_edges(i) {
                        let edge = topology.edge(e);
                        let out = edge.gain.sample_sum(&mut gain_rngs[e], count);
                        let kept = if edge.weight < 1.0 {
                            let mut kept = 0u64;
                            for _ in 0..out {
                                if gain_rngs[e].next_f64() < edge.weight {
                                    kept += 1;
                                }
                            }
                            kept
                        } else {
                            out
                        };
                        counts[edge.dst] += kept;
                    }
                }
                let finish_ns = ns_of(start);
                run.fired += 1;
                for it in &block {
                    lineage.consume(it.origin, 0, finish_ns);
                }
                if drain.disconnected && drain.depth_before == block.len() {
                    break;
                }
            }
            run.max_queue_depth = rx.max_depth() as u64;
            (run, occupancy, fired, busy_spans)
        });
        let pacer = scope.spawn(|| pace_arrivals(&arrivals_cycles, scale, start, &timers, tx));
        (
            worker.join().expect("block worker panicked"),
            pacer.join().expect("pacer panicked"),
        )
    });
    let wall_elapsed_ns = ns_of(start);
    let (run, per_node_occupancy, per_node_fired, busy_spans) = worker_run;

    // Horizon: last completion.
    let mut horizon_ns = 0u64;
    for origin in 0..config.stream_length {
        if let Some(c) = lineage.completion(origin) {
            horizon_ns = horizon_ns.max(c);
        }
    }
    let horizon_cycles = (horizon_ns as f64 / scale).max(1.0);

    // Latency + misses + conservation.
    let mut latency = OnlineStats::new();
    let mut misses = 0u64;
    let mut completed = 0u64;
    let mut dropped = 0u64;
    for (origin, &arr) in arrivals_cycles.iter().enumerate() {
        match lineage.completion(origin) {
            Some(c_ns) => {
                completed += 1;
                let lat = (c_ns as f64 / scale) - arr as f64;
                latency.push(lat);
                misses += u64::from(lat > config.deadline);
            }
            None => {
                dropped += 1;
                misses += 1;
            }
        }
    }

    // The monolithic application is one schedulable unit: active
    // fraction is total busy over the horizon (the simulator's
    // convention), with burns clipped at the horizon.
    let total_busy_ns: u64 = busy_spans
        .iter()
        .flatten()
        .map(|&(s, e)| e.min(horizon_ns).saturating_sub(s.min(horizon_ns)))
        .sum();
    let active_fraction = (total_busy_ns as f64 / scale) / horizon_cycles;

    let stages: Vec<ExecStageReport> = (0..n)
        .map(|i| {
            let busy_ns: u64 = busy_spans[i]
                .iter()
                .map(|&(s, e)| e.min(horizon_ns).saturating_sub(s.min(horizon_ns)))
                .sum();
            let src = i == topology.source();
            ExecStageReport {
                name: topology.node(i).name.clone(),
                fired: per_node_fired[i],
                empty_firings: 0,
                items_consumed: if src { run.items_consumed } else { 0 },
                items_emitted: 0,
                occupancy: per_node_occupancy[i].clone(),
                sojourn_cycles: scaled_summary(if src { &run.sojourn_ns } else { &[] }, scale),
                queue_depth: summary_of(if src { &run.depth } else { &[] }, 2.0 * m as f64),
                max_queue_depth: if src { run.max_queue_depth } else { 0 },
                busy_fraction: (busy_ns as f64 / scale) / horizon_cycles,
                send_blocked_ns: 0,
            }
        })
        .collect();

    Ok(ExecMetrics {
        strategy: "monolithic".into(),
        items_arrived: arrivals_cycles.len() as u64,
        items_completed: completed,
        items_dropped: dropped,
        deadline_misses: misses,
        active_fraction,
        active_fraction_nonempty: active_fraction,
        latency,
        stages,
        horizon_cycles,
        wall_elapsed_ns,
        time_scale_ns_per_cycle: scale,
        pacer_max_late_ns: pacer_late,
        calibration,
    })
}

fn validate_config(config: &ExecConfig) -> Result<(), ExecError> {
    if config.stream_length == 0 {
        return Err(ExecError::Config("stream_length must be positive".into()));
    }
    if !(config.deadline.is_finite() && config.deadline > 0.0) {
        return Err(ExecError::Config(format!(
            "deadline {} must be positive and finite",
            config.deadline
        )));
    }
    config
        .arrivals
        .validate()
        .map_err(|e| ExecError::Config(e.to_string()))?;
    if let Some(s) = config.time_scale_ns {
        if !(s.is_finite() && s > 0.0) {
            return Err(ExecError::Config(format!(
                "time scale {s} must be positive and finite"
            )));
        }
    }
    Ok(())
}

/// Round float arrival times onto the integer cycle clock, clamped
/// monotone — the simulator's exact rounding.
fn monotone_cycles(times: &[f64]) -> Vec<u64> {
    let mut last = 0u64;
    times
        .iter()
        .map(|&t| {
            let c = (t.round() as u64).max(last);
            last = c;
            c
        })
        .collect()
}

fn summary_of(samples: &[f64], hi: f64) -> des::obs::DistSummary {
    let mut d = Dist::with_cutoff(0.0, hi.max(1.0), 64, samples.len().max(1));
    d.push_batch(samples);
    d.summary()
}

fn scaled_summary(samples_ns: &[f64], scale: f64) -> des::obs::DistSummary {
    let cycles: Vec<f64> = samples_ns.iter().map(|&x| x / scale).collect();
    let hi = cycles.iter().fold(1.0f64, |a, &b| a.max(b));
    summary_of(&cycles, hi)
}

struct AssembleArgs<'a> {
    strategy: &'static str,
    topology: &'a Topology,
    config: &'a ExecConfig,
    #[allow(dead_code)]
    schedule_is_monolithic: bool,
    stage_runs: Vec<StageRun>,
    lineage: &'a Lineage,
    arrivals_cycles: &'a [u64],
    scale: f64,
    wall_elapsed_ns: u64,
    pacer_max_late_ns: u64,
    calibration: TimerCalibration,
}

/// Fold the per-stage raw runs into [`ExecMetrics`] (enforced path).
fn assemble_metrics(args: AssembleArgs<'_>) -> ExecMetrics {
    let AssembleArgs {
        strategy,
        topology,
        config,
        stage_runs,
        lineage,
        arrivals_cycles,
        scale,
        wall_elapsed_ns,
        pacer_max_late_ns,
        calibration,
        ..
    } = args;
    let n = topology.len();

    let mut horizon_ns = 0u64;
    for origin in 0..config.stream_length {
        if let Some(c) = lineage.completion(origin) {
            horizon_ns = horizon_ns.max(c);
        }
    }
    let horizon_cycles = (horizon_ns as f64 / scale).max(1.0);

    // Active time: every burn clipped at the horizon (post-drain empty
    // firings while the close cascade propagates fall outside it, just
    // as the simulator stops firing once every input resolves).
    let mut ledger = ActiveTimeLedger::new(n);
    for (i, run) in stage_runs.iter().enumerate() {
        for &(s, e) in &run.burns {
            let clipped = e.min(horizon_ns).saturating_sub(s.min(horizon_ns));
            if clipped > 0 {
                ledger.record_firing(i, clipped as f64 / scale, 1);
            }
        }
    }
    ledger.set_horizon(horizon_cycles);
    let active_fraction = ledger.active_fraction();

    // Nonempty active fraction: scale each stage's busy time by its
    // fraction of nonempty firings (every firing burns the same
    // service time, so the ratio is exact).
    let mut busy_nonempty_cycles = 0.0;
    for run in stage_runs.iter() {
        let busy: u64 = run
            .burns
            .iter()
            .map(|&(s, e)| e.min(horizon_ns).saturating_sub(s.min(horizon_ns)))
            .sum();
        let nonempty_frac = if run.fired > 0 {
            (run.fired - run.empty_firings) as f64 / run.fired as f64
        } else {
            0.0
        };
        busy_nonempty_cycles += busy as f64 / scale * nonempty_frac;
    }
    let active_fraction_nonempty = busy_nonempty_cycles / (n as f64 * horizon_cycles);

    let mut latency = OnlineStats::new();
    let mut misses = 0u64;
    let mut completed = 0u64;
    let mut dropped = 0u64;
    for (origin, &arr) in arrivals_cycles.iter().enumerate() {
        match lineage.completion(origin) {
            Some(c_ns) => {
                completed += 1;
                let lat = (c_ns as f64 / scale) - arr as f64;
                latency.push(lat);
                misses += u64::from(lat > config.deadline);
            }
            None => {
                dropped += 1;
                misses += 1;
            }
        }
    }

    let stages: Vec<ExecStageReport> = stage_runs
        .iter()
        .enumerate()
        .map(|(i, run)| {
            let busy_ns: u64 = run
                .burns
                .iter()
                .map(|&(s, e)| e.min(horizon_ns).saturating_sub(s.min(horizon_ns)))
                .sum();
            ExecStageReport {
                name: topology.node(i).name.clone(),
                fired: run.fired,
                empty_firings: run.empty_firings,
                items_consumed: run.items_consumed,
                items_emitted: run.items_emitted,
                occupancy: run.occupancy.clone(),
                sojourn_cycles: scaled_summary(&run.sojourn_ns, scale),
                queue_depth: summary_of(&run.depth, run.max_queue_depth as f64),
                max_queue_depth: run.max_queue_depth,
                busy_fraction: (busy_ns as f64 / scale) / horizon_cycles,
                send_blocked_ns: run.send_blocked_ns,
            }
        })
        .collect();

    ExecMetrics {
        strategy: strategy.into(),
        items_arrived: arrivals_cycles.len() as u64,
        items_completed: completed,
        items_dropped: dropped,
        deadline_misses: misses,
        active_fraction,
        active_fraction_nonempty,
        latency,
        stages,
        horizon_cycles,
        wall_elapsed_ns,
        time_scale_ns_per_cycle: scale,
        pacer_max_late_ns,
        calibration,
    }
}

/// The threaded backend as a [`PipelineExecutor`].
#[derive(Debug, Clone)]
pub struct ThreadedBackend {
    /// Run configuration (stream, seed, deadline, time scale).
    pub config: ExecConfig,
}

impl PipelineExecutor for ThreadedBackend {
    type Schedule = AnySchedule;
    type Report = ExecMetrics;
    type Error = ExecError;

    fn name(&self) -> &'static str {
        "threads"
    }

    fn run(&self, topology: &Topology, schedule: &AnySchedule) -> Result<ExecMetrics, ExecError> {
        match schedule {
            AnySchedule::Enforced(s) => run_enforced(topology, s, &self.config),
            AnySchedule::Monolithic(s) => run_monolithic(topology, s, &self.config),
        }
    }
}
