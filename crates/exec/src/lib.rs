//! # rtsdf-exec — real threaded execution backend
//!
//! Everything else in this workspace *predicts*: the solvers compute
//! schedules, the discrete-event simulator executes them on a logical
//! clock. This crate *runs* them: each pipeline stage is an OS thread,
//! stages are connected by bounded MPSC channels (back-pressure is the
//! finite backlog factor `b_i`), enforced waits are applied with real
//! monotonic-clock timers, and monolithic batching is real block
//! dispatch. Stage service time is emulated as calibrated spin work —
//! a burn until a wall-clock deadline — scaled from cycles to
//! nanoseconds by a configurable time scale.
//!
//! The backend consumes exactly what the simulator consumes — a
//! [`dataflow_model::Topology`], the solver's
//! [`rtsdf_core::WaitSchedule`] / [`rtsdf_core::MonolithicSchedule`]
//! (via [`rtsdf_core::AnySchedule`]), and the same seeded RNG substream
//! discipline for gains and arrivals — and measures the same
//! quantities: active fraction, per-stage sojourn and queue-depth
//! distributions, deadline-miss rate, and item conservation.
//! [`comparison::sim_vs_real`] quantifies sim/real agreement.
//!
//! Determinism note: per-edge gain draws come from the same substreams
//! the simulator uses (`master.substream(1 + e)`), consumed in item
//! FIFO order. On a chain the consume order is identical to the
//! simulator's, so realized per-item gains — and therefore total item
//! counts through every stage — match the simulation *exactly* at the
//! same seed; only timing differs. On DAGs with fan-in the interleaving
//! (and hence the realization) may differ, but the distributions are
//! identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod comparison;
pub mod executor;
pub mod report;
pub mod timer;

pub use comparison::{sim_vs_real, AgreementReport, QuantityAgreement};
pub use executor::{run_enforced, run_monolithic, ExecConfig, ExecError, ThreadedBackend};
pub use report::{ExecMetrics, ExecStageReport};
pub use timer::{calibrate, TimerCalibration, Timers};
