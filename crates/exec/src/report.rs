//! Measured metrics of one real execution, mirroring
//! [`pipeline_sim::SimMetrics`] so the two backends can be compared
//! quantity by quantity.

use crate::timer::TimerCalibration;
use dataflow_model::exec::{ExecOutcome, IntoOutcome};
use des::obs::DistSummary;
use des::stats::OnlineStats;
use serde::{Deserialize, Serialize};
use simd_device::OccupancyStats;

/// Per-stage measurements of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecStageReport {
    /// Stage name (from the topology).
    pub name: String,
    /// Total firings (enforced) or block passes (monolithic).
    pub fired: u64,
    /// Firings that consumed zero items.
    pub empty_firings: u64,
    /// Items consumed from the input queue.
    pub items_consumed: u64,
    /// Items emitted along out-edges (after gains and routing).
    pub items_emitted: u64,
    /// Lane occupancy per firing.
    pub occupancy: OccupancyStats,
    /// Queue-wait of consumed items, in cycles.
    pub sojourn_cycles: DistSummary,
    /// Input-queue depth sampled at each firing, in items.
    pub queue_depth: DistSummary,
    /// Input-queue high-water mark, in items.
    pub max_queue_depth: u64,
    /// Fraction of the run horizon this stage spent burning service.
    pub busy_fraction: f64,
    /// Wall nanoseconds spent blocked on full downstream queues
    /// (back-pressure).
    pub send_blocked_ns: u64,
}

/// Measured metrics of one real threaded execution. Field-for-field
/// comparable with [`pipeline_sim::SimMetrics`] where the quantity
/// exists in both backends; the extra fields document the realities a
/// logical clock does not have (wall time, time scale, calibration,
/// pacing error).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecMetrics {
    /// `"enforced"` or `"monolithic"`.
    pub strategy: String,
    /// Stream inputs delivered by the pacer.
    pub items_arrived: u64,
    /// Stream inputs fully resolved (all derived outputs exited).
    pub items_completed: u64,
    /// Stream inputs unresolved at shutdown (a correct run has none).
    pub items_dropped: u64,
    /// Completed items over deadline, plus dropped items.
    pub deadline_misses: u64,
    /// Measured active fraction: Σ busy/(N×horizon) for enforced, total
    /// busy/horizon for monolithic — the simulator's conventions.
    pub active_fraction: f64,
    /// Active fraction excluding empty firings' burns.
    pub active_fraction_nonempty: f64,
    /// End-to-end latency of completed items, in cycles.
    pub latency: OnlineStats,
    /// Per-stage measurements.
    pub stages: Vec<ExecStageReport>,
    /// Logical span of the run in cycles (wall span ÷ time scale).
    pub horizon_cycles: f64,
    /// Wall-clock duration of the run, nanoseconds.
    pub wall_elapsed_ns: u64,
    /// Nanoseconds of wall time per model cycle.
    pub time_scale_ns_per_cycle: f64,
    /// Worst pacer lateness: how far behind its nominal arrival instant
    /// the source delivery fell (back-pressure + timer granularity), ns.
    pub pacer_max_late_ns: u64,
    /// Clock calibration this run was configured with.
    pub calibration: TimerCalibration,
}

impl ExecMetrics {
    /// Deadline misses over arrived items.
    pub fn miss_rate(&self) -> f64 {
        if self.items_arrived == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.items_arrived as f64
        }
    }

    /// Item conservation: completed + dropped == arrived.
    pub fn conservation_holds(&self) -> bool {
        self.items_completed + self.items_dropped == self.items_arrived
    }
}

impl IntoOutcome for ExecMetrics {
    fn outcome(&self) -> ExecOutcome {
        ExecOutcome {
            items_arrived: self.items_arrived,
            items_completed: self.items_completed,
            items_dropped: self.items_dropped,
            deadline_misses: self.deadline_misses,
            active_fraction: self.active_fraction,
            mean_latency: self.latency.mean(),
            horizon_cycles: self.horizon_cycles,
        }
    }
}
