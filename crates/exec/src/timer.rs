//! Monotonic-clock timers: parked enforced waits, spinning service
//! burns, and the calibration that sizes both.
//!
//! Two different kinds of time pass in a stage thread:
//!
//! * **Enforced waits** (the schedule's `w_i`) are *idle* time. They
//!   park the thread with `thread::sleep` so the CPU is free for other
//!   stages' service burns — essential on machines with fewer cores
//!   than stages, which is exactly the paper's shared-device model.
//!   Sleep wakes late by the OS timer granularity; the measured
//!   overshoot is recorded by [`calibrate`] and reported, and the
//!   firing loop's catch-up rule absorbs it.
//! * **Service burns** emulate the stage's compute: a spin until a
//!   wall-clock deadline. Burning to a *deadline* rather than for an
//!   iteration count makes the emulation self-calibrating — preemption
//!   stretches neither the burn (the deadline is absolute) nor the
//!   schedule behind it.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Measured properties of this machine's clocks, serialized into run
/// manifests so a reported run carries its own timing context.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimerCalibration {
    /// Mean cost of one `Instant::now()` call, nanoseconds.
    pub now_overhead_ns: f64,
    /// Worst observed overshoot of a 1 ms `thread::sleep`, nanoseconds
    /// (OS timer granularity + scheduler latency).
    pub sleep_overshoot_ns: u64,
    /// Mean overshoot of the same sleeps, nanoseconds.
    pub sleep_overshoot_mean_ns: u64,
}

impl TimerCalibration {
    /// A nominal calibration for tests that must not spend wall time.
    pub fn nominal() -> Self {
        TimerCalibration {
            now_overhead_ns: 30.0,
            sleep_overshoot_ns: 200_000,
            sleep_overshoot_mean_ns: 60_000,
        }
    }
}

/// Measure clock overhead and sleep granularity. Costs ~15 ms of wall
/// time; run once per executor invocation.
pub fn calibrate() -> TimerCalibration {
    // Instant::now overhead over a tight loop.
    const NOW_CALLS: u32 = 4096;
    let t0 = Instant::now();
    for _ in 0..NOW_CALLS {
        std::hint::black_box(Instant::now());
    }
    let now_overhead_ns = t0.elapsed().as_nanos() as f64 / f64::from(NOW_CALLS);

    // Overshoot of short sleeps.
    const SLEEPS: u32 = 10;
    let nominal = Duration::from_millis(1);
    let mut worst = 0u64;
    let mut sum = 0u64;
    for _ in 0..SLEEPS {
        let t0 = Instant::now();
        std::thread::sleep(nominal);
        let over = t0.elapsed().saturating_sub(nominal).as_nanos() as u64;
        worst = worst.max(over);
        sum += over;
    }
    TimerCalibration {
        now_overhead_ns,
        sleep_overshoot_ns: worst,
        sleep_overshoot_mean_ns: sum / u64::from(SLEEPS),
    }
}

/// The two timer primitives, parameterized by calibration.
#[derive(Debug, Clone, Copy)]
pub struct Timers {
    _calibration: TimerCalibration,
}

impl Timers {
    /// Build from a calibration.
    pub fn new(calibration: TimerCalibration) -> Self {
        Timers {
            _calibration: calibration,
        }
    }

    /// Park until `deadline` (enforced wait). Pure sleep — the thread
    /// yields its core; wake-up is late by up to the OS granularity,
    /// which the caller's catch-up rule absorbs.
    pub fn wait_until(&self, deadline: Instant) {
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            std::thread::sleep(deadline - now);
        }
    }

    /// Spin until `deadline` (service burn). Consumes the CPU — this
    /// *is* the emulated work — and exits as soon as the wall clock
    /// passes the deadline, so preemption cannot stretch the schedule.
    pub fn burn_until(&self, deadline: Instant) {
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_sane() {
        let c = calibrate();
        assert!(c.now_overhead_ns > 0.0 && c.now_overhead_ns < 100_000.0);
        // A 1 ms sleep should not overshoot by a second.
        assert!(c.sleep_overshoot_ns < 1_000_000_000);
        assert!(c.sleep_overshoot_mean_ns <= c.sleep_overshoot_ns);
    }

    #[test]
    fn wait_and_burn_reach_their_deadlines() {
        let t = Timers::new(TimerCalibration::nominal());
        let d1 = Instant::now() + Duration::from_millis(5);
        t.wait_until(d1);
        assert!(Instant::now() >= d1);
        let d2 = Instant::now() + Duration::from_micros(300);
        t.burn_until(d2);
        assert!(Instant::now() >= d2);
        // Deadlines in the past return immediately.
        t.wait_until(Instant::now());
        t.burn_until(Instant::now());
    }
}
