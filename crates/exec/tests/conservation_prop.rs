//! Deadlock-freedom and conservation property test for the threaded
//! executor (the ISSUE's satellite 4): across random topologies,
//! channel capacities, and seeds — including *unstable* schedules whose
//! back-pressure chains all the way to the pacer — every run must
//! terminate with `completed + dropped == arrived`.
//!
//! Each case runs under an external watchdog thread: if the executor
//! wedges, the test fails with a timeout instead of hanging CI.

use dataflow_model::{ArrivalProcess, GainModel, Topology, TopologyBuilder};
use proptest::prelude::*;
use rtsdf_core::{SolveMethod, WaitSchedule};
use rtsdf_exec::{run_enforced, ExecConfig, ExecMetrics};
use std::sync::mpsc;
use std::time::Duration;

/// Bounded two-point gain with the requested mean (`k` w.p. `mean/k`,
/// else 0), so expansion stays finite but zero-gain extinction paths
/// are exercised.
fn two_point(mean: f64) -> GainModel {
    let k = mean.ceil().max(1.0) as u32;
    GainModel::Empirical {
        pmf: vec![(0, 1.0 - mean / k as f64), (k, mean / k as f64)],
    }
}

/// Random DAG: a linear chain of 2–5 nodes with an optional forward
/// skip edge (fan-out at its source, fan-in at its destination).
fn topology() -> impl Strategy<Value = Topology> {
    (
        prop::collection::vec((5.0..30.0f64, 0.3..1.6f64), 2..=5),
        prop::bool::ANY,
        0usize..8,
        0.4..1.0f64,
    )
        .prop_map(|(nodes, with_skip, skip_pick, weight)| {
            let n = nodes.len();
            let mut b = TopologyBuilder::new(8);
            for (i, (t, _)) in nodes.iter().enumerate() {
                b = b.node(format!("n{i}"), *t);
            }
            for (i, (_, mean)) in nodes.iter().enumerate().take(n - 1) {
                b = b.edge(i, i + 1, two_point(*mean), 1.0);
            }
            if with_skip && n >= 3 {
                // A forward skip from some node to the sink: fan-out at
                // its source, fan-in at the destination.
                let src = skip_pick % (n - 2);
                b = b.edge(src, n - 1, two_point(0.8), weight);
            }
            b.build().expect("forward edges only: acyclic")
        })
}

/// A hand-built schedule: periods are `service × stretch` (possibly
/// *unstable* — stretch can exceed what throughput needs) and backlog
/// factors set the channel capacities. No solver involved: the
/// property is about the executor, not about schedule quality.
fn schedule_for(topology: &Topology, stretch: &[f64], backlog: &[f64]) -> WaitSchedule {
    let service = topology.service_times();
    let periods: Vec<f64> = service
        .iter()
        .zip(stretch)
        .map(|(t, s)| (t * s).max(1.0))
        .collect();
    let waits: Vec<f64> = periods
        .iter()
        .zip(&service)
        .map(|(x, t)| (x - t).max(0.0))
        .collect();
    let n = service.len() as f64;
    WaitSchedule {
        active_fraction: service
            .iter()
            .zip(&periods)
            .map(|(t, x)| t / x)
            .sum::<f64>()
            / n,
        latency_bound: periods.iter().zip(backlog).map(|(x, b)| x * b).sum(),
        waits,
        periods,
        backlog_factors: backlog.to_vec(),
        method: SolveMethod::WaterFilling,
        telemetry: None,
    }
}

/// Run the executor under a watchdog; panics if it exceeds `timeout`.
fn run_with_watchdog(
    topology: Topology,
    schedule: WaitSchedule,
    config: ExecConfig,
    timeout: Duration,
) -> ExecMetrics {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = run_enforced(&topology, &schedule, &config);
        let _ = tx.send(result);
    });
    match rx.recv_timeout(timeout) {
        Ok(result) => result.expect("executor returned an error"),
        Err(_) => panic!("executor did not terminate within {timeout:?}: deadlock or livelock"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn executor_terminates_and_conserves_items(
        topology in topology(),
        stretch in prop::collection::vec(1.0..4.0f64, 5),
        backlog in prop::collection::vec(1.0..4.0f64, 5),
        seed in 0u64..1000,
        tau_scale in 0.5..4.0f64,
    ) {
        let n = topology.len();
        let schedule = schedule_for(&topology, &stretch[..n], &backlog[..n]);
        // Arrivals from clearly-overloaded to comfortable: tau_scale
        // below ~1 floods the pipeline and drives real back-pressure
        // stalls all the way into the pacer.
        let tau0 = (schedule.periods.iter().fold(0.0f64, |a, &x| a.max(x))
            / topology.vector_width() as f64)
            * tau_scale;
        let config = ExecConfig {
            stream_length: 40,
            seed,
            arrivals: ArrivalProcess::Periodic { tau0: tau0.max(1.0) },
            deadline: schedule.latency_bound.max(1.0) * 4.0,
            target_duration_secs: 0.05,
            min_burn_ns: 200.0,
            time_scale_ns: None,
        };
        let metrics = run_with_watchdog(
            topology,
            schedule,
            config,
            Duration::from_secs(30),
        );
        // Conservation: nothing lost, nothing invented. The executor
        // never drops — every input resolves through gain extinction or
        // sink consumption — so completion is total.
        prop_assert_eq!(metrics.items_arrived, 40);
        prop_assert_eq!(metrics.items_completed, 40);
        prop_assert_eq!(metrics.items_dropped, 0);
        prop_assert!(metrics.conservation_holds());
        // Sanity on the measured quantities.
        prop_assert!(metrics.active_fraction > 0.0);
        prop_assert!(metrics.horizon_cycles > 0.0);
        for stage in &metrics.stages {
            prop_assert!(stage.fired > 0);
        }
    }
}
