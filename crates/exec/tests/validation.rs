//! Cross-validation of the threaded executor against the simulator.
//!
//! On a chain the two backends consume RNG substreams in the same item
//! order, so realized gains — and therefore every per-stage item count
//! — must match *exactly* at the same seed. Timing quantities (active
//! fraction, miss rate) agree statistically, which `sim_vs_real`
//! checks with a tolerance wide enough for a loaded CI machine; the
//! tight 10% gate runs in CI against release builds with longer runs.

use dataflow_model::{ArrivalProcess, GainModel, PipelineSpecBuilder, RtParams, Topology};
use des::obs::ObsConfig;
use pipeline_sim::{simulate_enforced_topology_observed, simulate_monolithic_topology, SimConfig};
use rtsdf_core::{AnySchedule, EnforcedWaitsProblem, MonolithicProblem, SolveMethod};
use rtsdf_exec::{run_enforced, run_monolithic, sim_vs_real, ExecConfig};

/// A small two-gain chain with a generous operating point so the
/// single-core emulation keeps up (total CPU demand well under 1).
fn chain() -> (Topology, RtParams, Vec<f64>) {
    let p = PipelineSpecBuilder::new(16)
        .stage("ingest", 60.0, GainModel::Bernoulli { p: 0.7 })
        .stage("refine", 90.0, GainModel::Deterministic { k: 1 })
        .stage("emit", 50.0, GainModel::Deterministic { k: 1 })
        .build()
        .unwrap();
    let topology = Topology::chain(&p);
    let xmin = rtsdf_core::topology_minimal_periods(&topology);
    let v = topology.vector_width() as f64;
    // Arrival interval 3x the binding stage's per-item demand.
    let tau0 = xmin
        .iter()
        .zip(topology.total_gains())
        .map(|(x, g)| x * g / v)
        .fold(0.0f64, f64::max)
        * 3.0;
    let b = vec![2.0, 2.0, 2.0];
    let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
    let params = RtParams::new(tau0, min_d * 10.0).unwrap();
    (topology, params, b)
}

fn exec_config(params: &RtParams, stream: usize, seed: u64) -> ExecConfig {
    ExecConfig {
        stream_length: stream,
        seed,
        arrivals: ArrivalProcess::Periodic { tau0: params.tau0 },
        deadline: params.deadline,
        target_duration_secs: 0.2,
        min_burn_ns: 1_000.0,
        time_scale_ns: None,
    }
}

fn sim_config(params: &RtParams, stream: usize, seed: u64) -> SimConfig {
    SimConfig::quick(params.tau0, seed, stream)
}

#[test]
fn enforced_chain_item_counts_match_simulator_exactly() {
    let (topology, params, b) = chain();
    let chain_spec = topology.as_chain().unwrap();
    let schedule = EnforcedWaitsProblem::new(&chain_spec, params, b)
        .solve(SolveMethod::WaterFilling)
        .unwrap();

    let seed = 11;
    let stream = 300;
    let sim = simulate_enforced_topology_observed(
        &topology,
        &schedule,
        params.deadline,
        &sim_config(&params, stream, seed),
        ObsConfig::default(),
    );
    let exec = run_enforced(&topology, &schedule, &exec_config(&params, stream, seed)).unwrap();

    assert!(exec.conservation_holds(), "completed + dropped != arrived");
    assert_eq!(exec.items_dropped, 0, "stable schedule must drain fully");
    assert_eq!(exec.items_arrived, sim.items_arrived);
    assert_eq!(exec.items_completed, sim.items_completed);

    // Same seed, same substreams, same FIFO consume order: per-stage
    // consumed counts are bit-identical, not merely close.
    let sim_obs = sim.obs.as_ref().expect("observed run");
    for (i, stage) in exec.stages.iter().enumerate() {
        assert_eq!(
            stage.items_consumed, sim_obs.stages[i].sojourn.count,
            "stage {i} ({}) consumed a different item count than the simulator",
            stage.name
        );
    }
}

#[test]
fn monolithic_chain_matches_simulator_counts() {
    let (topology, params, _b) = chain();
    let chain_spec = topology.as_chain().unwrap();
    let schedule = MonolithicProblem::new(&chain_spec, params, 2.0, 1.0)
        .solve()
        .unwrap();
    assert!(schedule.block_size >= 1);

    let seed = 23;
    let stream = 240;
    let sim = simulate_monolithic_topology(
        &topology,
        &schedule,
        params.deadline,
        &sim_config(&params, stream, seed),
    );
    let exec = run_monolithic(&topology, &schedule, &exec_config(&params, stream, seed)).unwrap();

    assert!(exec.conservation_holds());
    assert_eq!(exec.items_arrived, sim.items_arrived);
    assert_eq!(exec.items_completed, sim.items_completed);
    assert_eq!(exec.items_dropped, 0);
    // The block worker draws `sample_sum` from the same substreams in
    // the same topo order, so firing counts per node match exactly.
    assert!(exec.active_fraction > 0.0);
}

#[test]
fn sim_vs_real_agreement_on_chain() {
    let (topology, params, b) = chain();
    let chain_spec = topology.as_chain().unwrap();
    let schedule = EnforcedWaitsProblem::new(&chain_spec, params, b)
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let config = exec_config(&params, 300, 7);

    // Debug build on a possibly-loaded machine: a loose tolerance
    // guards the *mechanism*; the tight threshold is CI's release gate.
    let report = sim_vs_real(
        &topology,
        &AnySchedule::from(schedule),
        &config,
        &[1, 2, 3],
        0.35,
    )
    .unwrap();

    assert_eq!(report.conservation_violations, 0);
    assert_eq!(
        report.agreement_failures, 0,
        "quantities disagreed: {:?}",
        report.quantities
    );
    assert!(report.passes());
    assert_eq!(report.strategy, "enforced");
    assert_eq!(report.quantities.len(), 3);
    assert_eq!(report.sojourn.len(), topology.len());
    // The report serializes (it is written into BENCH_exec.json).
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("active_fraction"));
}
