//! # metrics — live runtime telemetry for sweeps and simulations
//!
//! A sharded, allocation-free-on-the-hot-path registry of counters,
//! gauges, and fixed-bucket histograms. Metrics are registered up front
//! (one handle per metric); the hot path is a single relaxed atomic
//! read-modify-write on a per-worker shard, so concurrent workers never
//! contend on a cache line and never take a lock. A snapshot merges the
//! shards into a serde-stable [`MetricsSnapshot`] that two exporters
//! render: Prometheus text exposition ([`render_prometheus`]) and JSON
//! (`serde_json` on the snapshot).
//!
//! The disabled path follows the same discipline as the simulator's
//! `ObsSink`: callers thread an `Option<&...>` through their hot loop,
//! so a disabled registry costs one untaken branch per hook.
//!
//! [`MetricsServer`] serves `GET /metrics` (Prometheus text) from a
//! minimal std-only TCP responder — the pull endpoint a resident
//! scheduling service needs for admission decisions driven by current
//! backlog and solver health.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prometheus;
pub mod registry;
pub mod server;
pub mod snapshot;

pub use prometheus::render_prometheus;
pub use registry::{CounterHandle, GaugeHandle, HistogramHandle, Registry};
pub use server::MetricsServer;
pub use snapshot::{HistogramValue, MetricFamily, MetricSample, MetricsSnapshot};
