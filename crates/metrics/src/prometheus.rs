//! Prometheus text exposition (format version 0.0.4).
//!
//! Renders a [`MetricsSnapshot`] following the conventions scrapers
//! expect: one `# HELP` / `# TYPE` pair per family, escaped label
//! values, and for histograms cumulative `_bucket{le=...}` lines
//! (including the synthesized `le="+Inf"` line) plus `_sum` and
//! `_count`.

use crate::snapshot::{MetricSample, MetricsSnapshot};
use std::fmt::Write;

/// Content-Type header value for the exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format a sample value the way Prometheus clients do: integral values
/// without a fractional part, everything else via shortest-round-trip
/// `Display`.
fn fmt_value(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(&v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_histogram(out: &mut String, name: &str, sample: &MetricSample) {
    let Some(hist) = &sample.histogram else {
        return;
    };
    for (bound, cum) in hist.bounds.iter().zip(&hist.cumulative) {
        let labels = label_block(&sample.labels, Some(("le", fmt_value(*bound))));
        let _ = writeln!(out, "{name}_bucket{labels} {cum}");
    }
    let inf = label_block(&sample.labels, Some(("le", "+Inf".to_string())));
    let _ = writeln!(out, "{name}_bucket{inf} {}", hist.count);
    let plain = label_block(&sample.labels, None);
    let _ = writeln!(out, "{name}_sum{plain} {}", fmt_value(hist.sum));
    let _ = writeln!(out, "{name}_count{plain} {}", hist.count);
}

/// Render a snapshot as Prometheus text exposition.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind);
        for sample in &family.samples {
            if family.kind == "histogram" {
                render_histogram(&mut out, &family.name, sample);
            } else {
                let labels = label_block(&sample.labels, None);
                let _ = writeln!(out, "{}{labels} {}", family.name, fmt_value(sample.value));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistogramValue, MetricFamily, MetricsSnapshot};

    #[test]
    fn counter_renders_help_type_and_value() {
        let snap = MetricsSnapshot {
            families: vec![MetricFamily {
                name: "c_total".to_string(),
                help: "a counter".to_string(),
                kind: "counter".to_string(),
                samples: vec![MetricSample {
                    labels: vec![],
                    value: 7.0,
                    histogram: None,
                }],
            }],
        };
        assert_eq!(
            render_prometheus(&snap),
            "# HELP c_total a counter\n# TYPE c_total counter\nc_total 7\n"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let snap = MetricsSnapshot {
            families: vec![MetricFamily {
                name: "g".to_string(),
                help: "multi\nline \\ help".to_string(),
                kind: "gauge".to_string(),
                samples: vec![MetricSample {
                    labels: vec![("path".to_string(), "a\\b \"q\"\n".to_string())],
                    value: 1.5,
                    histogram: None,
                }],
            }],
        };
        let text = render_prometheus(&snap);
        assert!(text.contains("# HELP g multi\\nline \\\\ help\n"));
        assert!(text.contains("g{path=\"a\\\\b \\\"q\\\"\\n\"} 1.5\n"));
    }

    #[test]
    fn histogram_gets_inf_bucket_sum_and_count() {
        let snap = MetricsSnapshot {
            families: vec![MetricFamily {
                name: "h".to_string(),
                help: "hist".to_string(),
                kind: "histogram".to_string(),
                samples: vec![MetricSample {
                    labels: vec![("stage".to_string(), "2".to_string())],
                    value: 9.5,
                    histogram: Some(HistogramValue {
                        bounds: vec![0.5, 2.5],
                        cumulative: vec![1, 3],
                        sum: 9.5,
                        count: 4,
                    }),
                }],
            }],
        };
        let text = render_prometheus(&snap);
        assert!(text.contains("h_bucket{stage=\"2\",le=\"0.5\"} 1\n"));
        assert!(text.contains("h_bucket{stage=\"2\",le=\"2.5\"} 3\n"));
        assert!(text.contains("h_bucket{stage=\"2\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("h_sum{stage=\"2\"} 9.5\n"));
        assert!(text.contains("h_count{stage=\"2\"} 4\n"));
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(3.25), "3.25");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
    }
}
