//! The sharded metric registry.
//!
//! Metrics are registered once, up front, against a fixed number of
//! worker shards; registration returns a copyable handle. After that
//! the registry is immutable structure-wise and every mutation is a
//! relaxed atomic on the caller's own shard:
//!
//! * **counters** — monotone `u64`, one atomic cell per shard; a
//!   snapshot sums the shards (or reports them per worker).
//! * **gauges** — an `f64` stored as bits, one cell per shard; plain
//!   set or monotone set-max. Non-per-worker gauges merge by *max*
//!   across shards, so they must hold non-negative quantities (all of
//!   ours do: depths, totals, rates, fractions).
//! * **histograms** — fixed upper-bound buckets plus an overflow
//!   (`+Inf`) bucket and a running sum, all per shard; a snapshot merges
//!   shard buckets and renders cumulative counts.
//!
//! Because shard cells are pre-allocated at registration, the hot path
//! (`inc`, `gauge_set`, `observe`) performs no allocation and takes no
//! lock — the property the `metrics_overhead` bench in `bench/` gates.

use crate::snapshot::{HistogramValue, MetricFamily, MetricSample, MetricsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeHandle(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

#[derive(Debug)]
struct HistShard {
    /// One count per finite upper bound, plus a final overflow bucket.
    counts: Vec<AtomicU64>,
    /// Running sum of observed values, stored as `f64` bits.
    sum_bits: AtomicU64,
}

#[derive(Debug)]
enum Storage {
    /// One monotone cell per shard.
    Counter(Vec<AtomicU64>),
    /// One `f64`-bits cell per shard.
    Gauge(Vec<AtomicU64>),
    /// Per-shard bucket counts and sums.
    Histogram {
        bounds: Vec<f64>,
        shards: Vec<HistShard>,
    },
}

#[derive(Debug)]
struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    per_worker: bool,
    storage: Storage,
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self.storage {
            Storage::Counter(_) => "counter",
            Storage::Gauge(_) => "gauge",
            Storage::Histogram { .. } => "histogram",
        }
    }
}

/// The registry: a fixed set of metrics over a fixed set of worker
/// shards. Shared across workers behind an `Arc`; all mutation methods
/// take `&self`.
#[derive(Debug)]
pub struct Registry {
    shards: usize,
    metrics: Vec<Metric>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// Registry with `shards` worker shards (at least 1).
    pub fn new(shards: usize) -> Self {
        Registry {
            shards: shards.max(1),
            metrics: Vec::new(),
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    fn register(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        per_worker: bool,
        storage: Storage,
    ) -> usize {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let kind = Metric {
            name: String::new(),
            help: String::new(),
            labels: vec![],
            per_worker: false,
            storage,
        };
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_name(k), "invalid label name {k:?}");
                (k.to_string(), v.to_string())
            })
            .collect();
        for existing in &self.metrics {
            if existing.name == name {
                assert_eq!(
                    existing.kind(),
                    kind.kind(),
                    "metric {name:?} re-registered with a different kind"
                );
                assert!(
                    existing.labels != labels,
                    "metric {name:?} registered twice with identical labels"
                );
            }
        }
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            per_worker,
            storage: kind.storage,
        });
        self.metrics.len() - 1
    }

    fn zeroed(&self) -> Vec<AtomicU64> {
        (0..self.shards).map(|_| AtomicU64::new(0)).collect()
    }

    /// Register a counter reported as one sum across all shards.
    pub fn counter(&mut self, name: &str, help: &str) -> CounterHandle {
        self.counter_full(name, help, &[], false)
    }

    /// Register a counter with static labels; with `per_worker` the
    /// snapshot reports one sample per shard (label `worker="i"`)
    /// instead of the sum.
    pub fn counter_full(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        per_worker: bool,
    ) -> CounterHandle {
        let cells = self.zeroed();
        CounterHandle(self.register(name, help, labels, per_worker, Storage::Counter(cells)))
    }

    /// Register a gauge reported as the max across shards (gauges must
    /// hold non-negative values; see module docs).
    pub fn gauge(&mut self, name: &str, help: &str) -> GaugeHandle {
        self.gauge_full(name, help, &[], false)
    }

    /// Register a gauge with static labels; with `per_worker` the
    /// snapshot reports each shard's value under a `worker` label.
    pub fn gauge_full(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        per_worker: bool,
    ) -> GaugeHandle {
        let cells = self.zeroed();
        GaugeHandle(self.register(name, help, labels, per_worker, Storage::Gauge(cells)))
    }

    /// Register a histogram with the given finite, strictly increasing
    /// bucket upper bounds (an overflow `+Inf` bucket is implicit).
    pub fn histogram(&mut self, name: &str, help: &str, bounds: &[f64]) -> HistogramHandle {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        let shards = (0..self.shards)
            .map(|_| HistShard {
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0),
            })
            .collect();
        HistogramHandle(self.register(
            name,
            help,
            &[],
            false,
            Storage::Histogram {
                bounds: bounds.to_vec(),
                shards,
            },
        ))
    }

    fn shard_of(&self, worker: usize) -> usize {
        if worker < self.shards {
            worker
        } else {
            worker % self.shards
        }
    }

    /// Add `n` to a counter on `worker`'s shard.
    pub fn inc(&self, h: CounterHandle, worker: usize, n: u64) {
        let Storage::Counter(cells) = &self.metrics[h.0].storage else {
            unreachable!("counter handle points at a counter");
        };
        cells[self.shard_of(worker)].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a counter (sum over shards).
    pub fn counter_value(&self, h: CounterHandle) -> u64 {
        let Storage::Counter(cells) = &self.metrics[h.0].storage else {
            unreachable!("counter handle points at a counter");
        };
        cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Set a gauge on `worker`'s shard.
    pub fn gauge_set(&self, h: GaugeHandle, worker: usize, value: f64) {
        let Storage::Gauge(cells) = &self.metrics[h.0].storage else {
            unreachable!("gauge handle points at a gauge");
        };
        cells[self.shard_of(worker)].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Raise a gauge on `worker`'s shard to `value` if it is larger
    /// (monotone high-water mark).
    pub fn gauge_max(&self, h: GaugeHandle, worker: usize, value: f64) {
        let Storage::Gauge(cells) = &self.metrics[h.0].storage else {
            unreachable!("gauge handle points at a gauge");
        };
        let cell = &cells[self.shard_of(worker)];
        let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            (value > f64::from_bits(bits)).then(|| value.to_bits())
        });
    }

    /// Current merged value of a gauge (max over shards).
    pub fn gauge_value(&self, h: GaugeHandle) -> f64 {
        let Storage::Gauge(cells) = &self.metrics[h.0].storage else {
            unreachable!("gauge handle points at a gauge");
        };
        cells
            .iter()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .fold(0.0, f64::max)
    }

    /// Record an observation in a histogram on `worker`'s shard.
    pub fn observe(&self, h: HistogramHandle, worker: usize, value: f64) {
        let Storage::Histogram { bounds, shards } = &self.metrics[h.0].storage else {
            unreachable!("histogram handle points at a histogram");
        };
        let shard = &shards[self.shard_of(worker)];
        let idx = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        shard.counts[idx].fetch_add(1, Ordering::Relaxed);
        let _ = shard
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    /// Merge every shard into a serde-stable snapshot. Concurrent
    /// writers are fine: counters are monotone per shard, so repeated
    /// snapshots see non-decreasing sums and never a torn value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut families: Vec<MetricFamily> = Vec::new();
        for m in &self.metrics {
            let samples = self.metric_samples(m);
            match families.last_mut() {
                Some(f) if f.name == m.name => f.samples.extend(samples),
                _ => families.push(MetricFamily {
                    name: m.name.clone(),
                    help: m.help.clone(),
                    kind: m.kind().to_string(),
                    samples,
                }),
            }
        }
        MetricsSnapshot { families }
    }

    fn metric_samples(&self, m: &Metric) -> Vec<MetricSample> {
        let with_worker = |labels: &[(String, String)], w: usize| {
            let mut l = labels.to_vec();
            l.push(("worker".to_string(), w.to_string()));
            l
        };
        match &m.storage {
            Storage::Counter(cells) => {
                if m.per_worker {
                    cells
                        .iter()
                        .enumerate()
                        .map(|(w, c)| MetricSample {
                            labels: with_worker(&m.labels, w),
                            value: c.load(Ordering::Relaxed) as f64,
                            histogram: None,
                        })
                        .collect()
                } else {
                    let sum: u64 = cells.iter().map(|c| c.load(Ordering::Relaxed)).sum();
                    vec![MetricSample {
                        labels: m.labels.clone(),
                        value: sum as f64,
                        histogram: None,
                    }]
                }
            }
            Storage::Gauge(cells) => {
                let val = |c: &AtomicU64| f64::from_bits(c.load(Ordering::Relaxed));
                if m.per_worker {
                    cells
                        .iter()
                        .enumerate()
                        .map(|(w, c)| MetricSample {
                            labels: with_worker(&m.labels, w),
                            value: val(c),
                            histogram: None,
                        })
                        .collect()
                } else {
                    vec![MetricSample {
                        labels: m.labels.clone(),
                        value: cells.iter().map(val).fold(0.0, f64::max),
                        histogram: None,
                    }]
                }
            }
            Storage::Histogram { bounds, shards } => {
                let mut merged = vec![0u64; bounds.len() + 1];
                let mut sum = 0.0;
                for shard in shards {
                    for (acc, c) in merged.iter_mut().zip(&shard.counts) {
                        *acc += c.load(Ordering::Relaxed);
                    }
                    sum += f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
                }
                let count: u64 = merged.iter().sum();
                // Cumulative counts per finite bound; `count` doubles as
                // the implicit `+Inf` bucket.
                let mut cumulative = Vec::with_capacity(bounds.len());
                let mut acc = 0u64;
                for c in &merged[..bounds.len()] {
                    acc += c;
                    cumulative.push(acc);
                }
                vec![MetricSample {
                    labels: m.labels.clone(),
                    value: sum,
                    histogram: Some(HistogramValue {
                        bounds: bounds.clone(),
                        cumulative,
                        sum,
                        count,
                    }),
                }]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_shards() {
        let mut r = Registry::new(4);
        let c = r.counter("c_total", "a counter");
        r.inc(c, 0, 2);
        r.inc(c, 3, 5);
        r.inc(c, 7, 1); // worker 7 folds onto shard 3
        assert_eq!(r.counter_value(c), 8);
        let snap = r.snapshot();
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].samples[0].value, 8.0);
    }

    #[test]
    fn per_worker_counters_report_each_shard() {
        let mut r = Registry::new(2);
        let c = r.counter_full("claims", "per-worker", &[], true);
        r.inc(c, 0, 3);
        r.inc(c, 1, 4);
        let snap = r.snapshot();
        let samples = &snap.families[0].samples;
        assert_eq!(samples.len(), 2);
        assert_eq!(
            samples[0].labels,
            vec![("worker".to_string(), "0".to_string())]
        );
        assert_eq!(samples[0].value, 3.0);
        assert_eq!(samples[1].value, 4.0);
    }

    #[test]
    fn gauges_set_and_max_merge() {
        let mut r = Registry::new(2);
        let g = r.gauge("depth_hwm", "high-water mark");
        r.gauge_set(g, 0, 5.0);
        r.gauge_max(g, 1, 9.0);
        r.gauge_max(g, 1, 3.0); // lower: no effect
        assert_eq!(r.gauge_value(g), 9.0);
        r.gauge_set(g, 1, 1.0); // plain set overwrites the shard
        assert_eq!(r.gauge_value(g), 5.0);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut r = Registry::new(2);
        let h = r.histogram("lat", "latency", &[1.0, 10.0, 100.0]);
        for (w, v) in [(0, 0.5), (1, 0.9), (0, 5.0), (1, 50.0), (0, 1e6)] {
            r.observe(h, w, v);
        }
        let snap = r.snapshot();
        let sample = &snap.families[0].samples[0];
        let hist = sample.histogram.as_ref().unwrap();
        assert_eq!(hist.cumulative, vec![2, 3, 4]);
        assert_eq!(hist.count, 5);
        assert!((hist.sum - (0.5 + 0.9 + 5.0 + 50.0 + 1e6)).abs() < 1e-9);
    }

    #[test]
    fn boundary_value_lands_in_its_bucket() {
        let mut r = Registry::new(1);
        let h = r.histogram("b", "bounds", &[1.0, 2.0]);
        r.observe(h, 0, 1.0); // le="1" is inclusive, Prometheus-style
        r.observe(h, 0, 2.0);
        let snap = r.snapshot();
        let hist = snap.families[0].samples[0].histogram.clone().unwrap();
        assert_eq!(hist.cumulative, vec![1, 2]);
    }

    #[test]
    fn same_name_different_labels_is_one_family() {
        let mut r = Registry::new(1);
        let a = r.gauge_full("queue_hwm", "per stage", &[("stage", "0")], false);
        let b = r.gauge_full("queue_hwm", "per stage", &[("stage", "1")], false);
        r.gauge_set(a, 0, 1.0);
        r.gauge_set(b, 0, 2.0);
        let snap = r.snapshot();
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].samples.len(), 2);
        assert_eq!(snap.families[0].samples[1].value, 2.0);
    }

    #[test]
    #[should_panic(expected = "identical labels")]
    fn duplicate_registration_panics() {
        let mut r = Registry::new(1);
        let _ = r.counter("dup", "x");
        let _ = r.counter("dup", "x");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let mut r = Registry::new(1);
        let _ = r.counter("k", "x");
        let _ = r.gauge_full("k", "x", &[("a", "b")], false);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let mut r = Registry::new(1);
        let _ = r.counter("9starts_with_digit", "x");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let mut r = Registry::new(0);
        assert_eq!(r.shards(), 1);
        let c = r.counter("c_total", "x");
        r.inc(c, 5, 1);
        assert_eq!(r.counter_value(c), 1);
    }
}
