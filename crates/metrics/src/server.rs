//! Minimal std-only HTTP responder for `GET /metrics`.
//!
//! One accept-loop thread, no dependencies: enough to let Prometheus
//! (or `curl`) scrape a running sweep. Shutdown stores a stop flag and
//! self-connects to unblock `accept`; `Drop` does the same, so a server
//! never outlives its scope.

use crate::prometheus::{render_prometheus, CONTENT_TYPE};
use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Background server exposing a registry at `GET /metrics`.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

fn respond(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn handle_conn(mut conn: TcpStream, registry: &Registry) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let n = match conn.read(&mut buf) {
        Ok(n) if n > 0 => n,
        _ => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let reply = match request.lines().next().map(str::trim) {
        Some(line) if line.starts_with("GET /metrics ") || line == "GET /metrics" => {
            let body = render_prometheus(&registry.snapshot());
            respond("200 OK", CONTENT_TYPE, &body)
        }
        Some(line) if line.starts_with("GET ") => {
            respond("404 Not Found", "text/plain", "not found\n")
        }
        _ => respond("400 Bad Request", "text/plain", "bad request\n"),
    };
    let _ = conn.write_all(reply.as_bytes());
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, port 0 for an ephemeral
    /// port) and serve the registry until [`shutdown`](Self::shutdown)
    /// or drop.
    pub fn start<A: ToSocketAddrs>(addr: A, registry: Arc<Registry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-server".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(conn) = conn {
                        handle_conn(conn, &registry);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept() with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        reply
    }

    fn test_registry() -> Arc<Registry> {
        let mut r = Registry::new(2);
        let c = r.counter("rtsdf_sweep_cells_completed", "cells finished");
        r.inc(c, 0, 3);
        r.inc(c, 1, 4);
        Arc::new(r)
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let mut server = MetricsServer::start("127.0.0.1:0", test_registry()).unwrap();
        let reply = get(server.addr(), "/metrics");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(reply.contains("text/plain; version=0.0.4"));
        assert!(reply.contains("rtsdf_sweep_cells_completed 7\n"));
        assert!(get(server.addr(), "/other").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_is_clean() {
        let mut server = MetricsServer::start("127.0.0.1:0", test_registry()).unwrap();
        server.shutdown();
        server.shutdown();
        drop(server);
    }

    #[test]
    fn snapshot_reflects_writes_between_scrapes() {
        let mut r = Registry::new(1);
        let c = r.counter("live_total", "live");
        let registry = Arc::new(r);
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        assert!(get(server.addr(), "/metrics").contains("live_total 0\n"));
        registry.inc(c, 0, 5);
        assert!(get(server.addr(), "/metrics").contains("live_total 5\n"));
    }
}
