//! Serde-stable snapshot types.
//!
//! A [`MetricsSnapshot`] is a point-in-time merge of every shard in a
//! [`Registry`](crate::Registry). It is plain data — families of
//! samples with label pairs — so it serializes stably through the
//! vendored serde shims and can be embedded verbatim into a
//! `RunManifest` (the `live_metrics` key) or rendered to Prometheus
//! text. All fields are always serialized and required on deserialize;
//! histogram bounds are kept finite (the implicit `+Inf` bucket is
//! carried by `count`), so no field ever round-trips through JSON
//! `null` for a non-finite float.

use serde::{Deserialize, Serialize};

/// Merged view of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramValue {
    /// Finite bucket upper bounds, strictly increasing. The `+Inf`
    /// bucket is implicit: its cumulative count equals `count`.
    pub bounds: Vec<f64>,
    /// Cumulative observation counts, one per entry of `bounds`
    /// (Prometheus `_bucket` semantics).
    pub cumulative: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

/// One sample within a family: a label set and a value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Label pairs, in registration order; per-worker metrics carry a
    /// trailing `("worker", "<shard>")` pair.
    pub labels: Vec<(String, String)>,
    /// Counter sum, gauge value, or histogram sum (mirrors
    /// `histogram.sum` for histograms).
    pub value: f64,
    /// Bucket detail, present only for histograms.
    pub histogram: Option<HistogramValue>,
}

/// A named family of samples sharing one kind and help string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricFamily {
    /// Metric name (Prometheus-valid: `[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Human-readable help string.
    pub help: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Samples, one per distinct label set.
    pub samples: Vec<MetricSample>,
}

/// Point-in-time merge of a whole registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Families in registration order.
    pub families: Vec<MetricFamily>,
}

impl MetricsSnapshot {
    /// Look up a family by metric name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sum of all sample values in the family `name` (0.0 if absent).
    /// For non-per-worker counters and gauges this is the single merged
    /// sample; for per-worker families it totals the shards.
    pub fn total(&self, name: &str) -> f64 {
        self.family(name)
            .map(|f| f.samples.iter().map(|s| s.value).sum())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            families: vec![
                MetricFamily {
                    name: "rtsdf_sweep_cells_completed".to_string(),
                    help: "cells finished".to_string(),
                    kind: "counter".to_string(),
                    samples: vec![MetricSample {
                        labels: vec![],
                        value: 42.0,
                        histogram: None,
                    }],
                },
                MetricFamily {
                    name: "rtsdf_sim_latency".to_string(),
                    help: "latency".to_string(),
                    kind: "histogram".to_string(),
                    samples: vec![MetricSample {
                        labels: vec![("stage".to_string(), "1".to_string())],
                        value: 12.5,
                        histogram: Some(HistogramValue {
                            bounds: vec![1.0, 10.0],
                            cumulative: vec![3, 5],
                            sum: 12.5,
                            count: 6,
                        }),
                    }],
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample_snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn family_and_total_lookups() {
        let snap = sample_snapshot();
        assert_eq!(snap.total("rtsdf_sweep_cells_completed"), 42.0);
        assert_eq!(snap.total("missing"), 0.0);
        assert_eq!(snap.family("rtsdf_sim_latency").unwrap().kind, "histogram");
    }
}
