//! Concurrency properties of the sharded registry (satellite: snapshot
//! exactness).
//!
//! Two guarantees matter to callers:
//!  1. **Exactness at rest** — after all writers join, the merged
//!     snapshot equals the sequential ground truth, for any randomized
//!     assignment of operations to workers (a stand-in for the
//!     work-stealing scheduler's unpredictable claim order).
//!  2. **No tears while writing** — a snapshot taken concurrently with
//!     writers only ever sees counter values between 0 and the final
//!     total, and successive snapshots are monotone non-decreasing
//!     (per-shard counters are monotone, and a sum of monotone reads
//!     is monotone).

use metrics::Registry;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized "steal schedule": every op carries the worker that
    /// executes it and the amount. Ops are dealt round-robin to real
    /// threads, so shard contention and cross-shard interleaving both
    /// occur. The merged counter must equal the plain sum.
    #[test]
    fn merged_counters_match_sequential_ground_truth(
        ops in prop::collection::vec((0usize..8, 1u64..100), 1..400),
        shards in 1usize..8,
        threads in 1usize..6,
    ) {
        let mut r = Registry::new(shards);
        let total_handle = r.counter("ops_total", "all ops");
        let per_worker = r.counter_full("ops_by_worker", "per worker", &[], true);
        let hwm = r.gauge("amount_hwm", "largest single op");
        let registry = Arc::new(r);

        let expected_total: u64 = ops.iter().map(|&(_, n)| n).sum();
        let expected_hwm = ops.iter().map(|&(_, n)| n).max().unwrap_or(0) as f64;

        std::thread::scope(|scope| {
            for t in 0..threads {
                let registry = &registry;
                let ops = &ops;
                scope.spawn(move || {
                    for &(worker, n) in ops.iter().skip(t).step_by(threads) {
                        registry.inc(total_handle, worker, n);
                        registry.inc(per_worker, worker, n);
                        registry.gauge_max(hwm, worker, n as f64);
                    }
                });
            }
        });

        prop_assert_eq!(registry.counter_value(total_handle), expected_total);
        let snap = registry.snapshot();
        prop_assert_eq!(snap.total("ops_total"), expected_total as f64);
        // Per-worker samples must account for every op, just sliced by shard.
        prop_assert_eq!(snap.total("ops_by_worker"), expected_total as f64);
        prop_assert_eq!(snap.total("amount_hwm"), expected_hwm);

        // Shard-level ground truth: ops on worker w land on shard w % shards.
        let mut by_shard = vec![0u64; shards];
        for &(worker, n) in &ops {
            by_shard[worker % shards] += n;
        }
        let family = snap.family("ops_by_worker").unwrap();
        prop_assert_eq!(family.samples.len(), shards);
        for (shard, sample) in family.samples.iter().enumerate() {
            prop_assert_eq!(sample.value, by_shard[shard] as f64);
            prop_assert_eq!(
                &sample.labels,
                &vec![("worker".to_string(), shard.to_string())]
            );
        }
    }

    /// Snapshot while writers run: every observed value is within
    /// [0, final], the sequence of observations is monotone, and the
    /// final snapshot is exact.
    #[test]
    fn snapshots_during_writes_are_monotone_and_untorn(
        ops in prop::collection::vec((0usize..4, 1u64..16), 50..300),
        shards in 1usize..5,
    ) {
        let mut r = Registry::new(shards);
        let c = r.counter("progress_total", "progress");
        let registry = Arc::new(r);
        let done = Arc::new(AtomicBool::new(false));
        let expected: u64 = ops.iter().map(|&(_, n)| n).sum();

        let seen = std::thread::scope(|scope| {
            let reader = {
                let registry = Arc::clone(&registry);
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        seen.push(registry.snapshot().total("progress_total"));
                    }
                    seen.push(registry.snapshot().total("progress_total"));
                    seen
                })
            };
            for &(worker, n) in &ops {
                registry.inc(c, worker, n);
            }
            done.store(true, Ordering::Release);
            reader.join().unwrap()
        });

        for pair in seen.windows(2) {
            prop_assert!(pair[0] <= pair[1], "snapshot went backwards: {} then {}", pair[0], pair[1]);
        }
        for &v in &seen {
            prop_assert!(v >= 0.0 && v <= expected as f64, "torn read {v} (final {expected})");
            prop_assert_eq!(v, v.trunc()); // counter sums are whole numbers, never partial bits
        }
        prop_assert_eq!(*seen.last().unwrap(), expected as f64);
    }
}
