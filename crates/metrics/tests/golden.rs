//! Golden-file test for the Prometheus text exposition (satellite:
//! exposition format), plus a JSON round-trip of the same snapshot
//! through the serde shims.
//!
//! The golden file pins the scraper-facing contract: `# HELP`/`# TYPE`
//! ordering, label escaping (`\\`, `\"`, `\n`), per-worker labeling,
//! and histogram `_bucket{le=...}` / `+Inf` / `_sum` / `_count`
//! conventions. If rendering changes intentionally, regenerate
//! `tests/golden/exposition.prom` from the test's panic output.

use metrics::{render_prometheus, MetricsSnapshot, Registry};

const GOLDEN: &str = include_str!("golden/exposition.prom");

/// Deterministic registry exercising every sample shape the exporter
/// can produce.
fn build_registry() -> Registry {
    let mut r = Registry::new(2);

    let total = r.gauge("rtsdf_sweep_cells_total", "total cells in the sweep grid");
    r.gauge_set(total, 0, 256.0);

    let claimed = r.counter_full(
        "rtsdf_sweep_cells_claimed",
        "cells claimed, per worker",
        &[],
        true,
    );
    r.inc(claimed, 0, 3);
    r.inc(claimed, 1, 5);

    let hwm0 = r.gauge_full(
        "rtsdf_sim_queue_depth_hwm",
        "queue depth high-water mark",
        &[("stage", "0")],
        false,
    );
    let hwm1 = r.gauge_full(
        "rtsdf_sim_queue_depth_hwm",
        "queue depth high-water mark",
        &[("stage", "1")],
        false,
    );
    r.gauge_max(hwm0, 1, 17.0);
    r.gauge_max(hwm1, 0, 4.5);

    let odd = r.counter_full(
        "odd_labels",
        "label escaping: backslash \\, quote \", newline \n",
        &[("path", "a\\b"), ("note", "say \"hi\"\n")],
        false,
    );
    r.inc(odd, 0, 1);

    let lat = r.histogram(
        "rtsdf_sim_latency_cycles",
        "item latency",
        &[1.0, 10.0, 100.0],
    );
    for (worker, v) in [(0, 0.25), (1, 2.0), (0, 9.5), (1, 59.0), (0, 1200.0)] {
        r.observe(lat, worker, v);
    }

    r
}

#[test]
fn prometheus_exposition_matches_golden_file() {
    let rendered = render_prometheus(&build_registry().snapshot());
    assert_eq!(
        rendered, GOLDEN,
        "exposition drifted from tests/golden/exposition.prom;\n\
         if intentional, update the golden file to:\n{rendered}"
    );
}

#[test]
fn snapshot_round_trips_through_json() {
    let snap = build_registry().snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
    // And the round-tripped snapshot renders identically.
    assert_eq!(render_prometheus(&back), GOLDEN);
}

#[test]
fn snapshot_json_is_embeddable_as_value() {
    // Manifests embed snapshots as untyped values; keys must survive.
    let snap = build_registry().snapshot();
    let value = serde_json::to_value(&snap).unwrap();
    let families = value.get("families").and_then(|f| f.as_array()).unwrap();
    assert_eq!(families.len(), 5);
    assert_eq!(
        families[0].get("name").and_then(|n| n.as_str()),
        Some("rtsdf_sweep_cells_total")
    );
}
