//! Chrome Trace Event export.
//!
//! Converts a [`TraceLog`] into the JSON object format consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! `{"traceEvents": [...], "displayTimeUnit": "ms"}` with complete
//! (`ph:"X"`) events for spans, instant (`ph:"i"`) events for marks,
//! and metadata (`ph:"M"`) events naming the process/thread rows.
//!
//! Track layout:
//!
//! * **pid 1 — stages**: one thread per pipeline stage, carrying firing
//!   spans and any other stage-track spans.
//! * **pid 2 — items**: one thread per traced stream input; each
//!   [`ItemVisit`](crate::span::ItemVisit) renders as three back-to-back
//!   spans (`enforced-wait`, `queue-wait`, `service`) so the sojourn
//!   decomposition is visible directly on the lifeline.
//! * **pid 3 — solver**: one thread per solve attempt (timestamps are
//!   wall-clock microseconds rather than simulated cycles, hence the
//!   separate process).
//!
//! Timestamps pass through unscaled: one simulated cycle (or one µs of
//! solver wall time) renders as one microsecond in the viewer.

use crate::span::{TraceLog, Track, TrackKind};
use serde_json::{json, Map, Value};

const PID_STAGES: u64 = 1;
const PID_ITEMS: u64 = 2;
const PID_SOLVER: u64 = 3;
/// Counter series (solver convergence) render in their own process so
/// the `ph:"C"` tracks don't interleave with the span rows; the process
/// meta is emitted only when the log actually carries counters.
const PID_CONVERGENCE: u64 = 4;

fn pid_tid(track: Track) -> (u64, u64) {
    match track.kind {
        TrackKind::Stage => (PID_STAGES, track.index),
        TrackKind::Item => (PID_ITEMS, track.index),
        TrackKind::Solver => (PID_SOLVER, track.index),
    }
}

fn meta(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Value {
    let mut m = Map::new();
    m.insert("ph".into(), json!("M"));
    m.insert("name".into(), json!(name));
    m.insert("pid".into(), json!(pid));
    if let Some(tid) = tid {
        m.insert("tid".into(), json!(tid));
    }
    let mut args = Map::new();
    args.insert("name".into(), json!(value));
    m.insert("args".into(), Value::Object(args));
    Value::Object(m)
}

fn complete_event(
    track: Track,
    name: &str,
    cat: &str,
    detail: &str,
    start: f64,
    dur: f64,
) -> Value {
    let (pid, tid) = pid_tid(track);
    let mut m = Map::new();
    m.insert("ph".into(), json!("X"));
    m.insert("name".into(), json!(name));
    m.insert("cat".into(), json!(cat));
    m.insert("ts".into(), json!(start));
    m.insert("dur".into(), json!(dur));
    m.insert("pid".into(), json!(pid));
    m.insert("tid".into(), json!(tid));
    if !detail.is_empty() {
        let mut args = Map::new();
        args.insert("detail".into(), json!(detail));
        m.insert("args".into(), Value::Object(args));
    }
    Value::Object(m)
}

/// Render a [`TraceLog`] as a Chrome Trace Event JSON value.
pub fn chrome_trace(log: &TraceLog) -> Value {
    let mut events: Vec<Value> = Vec::new();

    // Process metadata. Thread metadata is emitted lazily for every
    // (pid, tid) pair actually used, so viewers show readable row names.
    events.push(meta("process_name", PID_STAGES, None, "pipeline stages"));
    events.push(meta("process_name", PID_ITEMS, None, "item lifelines"));
    events.push(meta("process_name", PID_SOLVER, None, "solver (wall µs)"));

    let mut named: Vec<(u64, u64)> = Vec::new();
    let mut name_thread = |events: &mut Vec<Value>, track: Track| {
        let (pid, tid) = pid_tid(track);
        if named.contains(&(pid, tid)) {
            return;
        }
        named.push((pid, tid));
        let label = match track.kind {
            TrackKind::Stage => format!("stage {tid}"),
            TrackKind::Item => format!("item {tid}"),
            TrackKind::Solver => format!("solve {tid}"),
        };
        events.push(meta("thread_name", pid, Some(tid), &label));
    };

    for s in &log.spans {
        name_thread(&mut events, s.track);
        events.push(complete_event(
            s.track, &s.name, &s.cat, &s.detail, s.start, s.dur,
        ));
    }

    for v in &log.visits {
        let track = Track::item(v.origin);
        name_thread(&mut events, track);
        let stage = v.stage;
        let parts = [
            ("enforced-wait", v.enqueued, v.enforced_wait()),
            ("queue-wait", v.eligible, v.queue_wait()),
            ("service", v.consumed, v.service()),
        ];
        for (name, start, dur) in parts {
            if dur > 0.0 {
                events.push(complete_event(
                    track,
                    name,
                    "lifeline",
                    &format!("stage={stage}"),
                    start,
                    dur,
                ));
            }
        }
    }

    for i in &log.instants {
        name_thread(&mut events, i.track);
        let (pid, tid) = pid_tid(i.track);
        let mut m = Map::new();
        m.insert("ph".into(), json!("i"));
        m.insert("name".into(), json!(i.name.clone()));
        m.insert("ts".into(), json!(i.at));
        m.insert("pid".into(), json!(pid));
        m.insert("tid".into(), json!(tid));
        m.insert("s".into(), json!("t"));
        events.push(Value::Object(m));
    }

    // Counter series (e.g. solver residual / barrier-μ) render as
    // ph:"C" tracks under their own process, one thread row per source
    // track index.
    if !log.counters.is_empty() {
        events.push(meta(
            "process_name",
            PID_CONVERGENCE,
            None,
            "solver convergence",
        ));
        let mut named_counters: Vec<u64> = Vec::new();
        for c in &log.counters {
            let tid = c.track.index;
            if !named_counters.contains(&tid) {
                named_counters.push(tid);
                events.push(meta(
                    "thread_name",
                    PID_CONVERGENCE,
                    Some(tid),
                    &format!("solve {tid}"),
                ));
            }
            let mut m = Map::new();
            m.insert("ph".into(), json!("C"));
            m.insert("name".into(), json!(c.name.clone()));
            m.insert("ts".into(), json!(c.at));
            m.insert("pid".into(), json!(PID_CONVERGENCE));
            m.insert("tid".into(), json!(tid));
            let mut args = Map::new();
            args.insert("value".into(), json!(c.value));
            m.insert("args".into(), Value::Object(args));
            events.push(Value::Object(m));
        }
    }

    // Completion / drop marks from fates land on the item lifeline.
    for f in &log.fates {
        let track = Track::item(f.origin);
        name_thread(&mut events, track);
        let (pid, tid) = pid_tid(track);
        let (name, ts) = match f.completion {
            Some(c) => ("complete", c),
            None => ("dropped", f.arrival),
        };
        let mut m = Map::new();
        m.insert("ph".into(), json!("i"));
        m.insert("name".into(), json!(name));
        m.insert("ts".into(), json!(ts));
        m.insert("pid".into(), json!(pid));
        m.insert("tid".into(), json!(tid));
        m.insert("s".into(), json!("t"));
        events.push(Value::Object(m));
    }

    let mut root = Map::new();
    root.insert("traceEvents".into(), Value::Array(events));
    root.insert("displayTimeUnit".into(), json!("ms"));
    if log.dropped_spans > 0 || log.dropped_visits > 0 {
        let mut o = Map::new();
        o.insert("dropped_spans".into(), json!(log.dropped_spans));
        o.insert("dropped_visits".into(), json!(log.dropped_visits));
        root.insert("otherData".into(), Value::Object(o));
    }
    Value::Object(root)
}

/// [`chrome_trace`], pretty-printed to a string.
pub fn chrome_trace_string(log: &TraceLog) -> String {
    serde_json::to_string_pretty(&chrome_trace(log)).expect("trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ItemFate, ItemVisit, SpanSink, Track};

    fn sample_log() -> TraceLog {
        let mut s = SpanSink::with_defaults();
        s.span_detail(Track::stage(0), "fire", "firing", "take=4", 10.0, 14.0);
        s.span(Track::stage(1), "fire", "firing", 14.0, 20.0);
        s.instant(Track::solver(0), "fallback", 3.5);
        s.visit(ItemVisit {
            origin: 2,
            stage: 0,
            enqueued: 0.0,
            eligible: 5.0,
            consumed: 10.0,
            done: 14.0,
        });
        s.fate(ItemFate {
            origin: 2,
            arrival: 0.0,
            completion: Some(20.0),
        });
        s.fate(ItemFate {
            origin: 3,
            arrival: 1.0,
            completion: None,
        });
        s.finish()
    }

    #[test]
    fn exports_trace_events_envelope() {
        let v = chrome_trace(&sample_log());
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        // Every event has a ph and pid.
        for e in events {
            assert!(e.get("ph").unwrap().as_str().is_some());
            assert!(e.get("pid").unwrap().as_u64().is_some());
        }
    }

    #[test]
    fn visits_expand_to_three_lifeline_spans() {
        let v = chrome_trace(&sample_log());
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let lifeline: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Value::as_str) == Some("lifeline"))
            .collect();
        assert_eq!(lifeline.len(), 3);
        let names: Vec<&str> = lifeline
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, ["enforced-wait", "queue-wait", "service"]);
        // Back-to-back: each span starts where the previous ended.
        let start = |e: &Value| e.get("ts").unwrap().as_f64().unwrap();
        let dur = |e: &Value| e.get("dur").unwrap().as_f64().unwrap();
        assert_eq!(start(lifeline[0]) + dur(lifeline[0]), start(lifeline[1]));
        assert_eq!(start(lifeline[1]) + dur(lifeline[1]), start(lifeline[2]));
    }

    #[test]
    fn metadata_names_processes_and_threads() {
        let v = chrome_trace(&sample_log());
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let metas: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        // 3 process names + threads: stage 0, stage 1, solve 0, item 2, item 3.
        assert_eq!(metas.len(), 8);
    }

    #[test]
    fn fates_become_instant_marks() {
        let v = chrome_trace(&sample_log());
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let instants: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(instants.contains(&"fallback"));
        assert!(instants.contains(&"complete"));
        assert!(instants.contains(&"dropped"));
    }

    #[test]
    fn counters_render_as_counter_events_in_their_own_process() {
        let mut s = SpanSink::with_defaults();
        s.span(Track::solver(0), "phase-1", "solver", 0.0, 5.0);
        s.counter(Track::solver(0), "residual", 5.0, 0.5);
        s.counter(Track::solver(0), "residual", 10.0, 0.05);
        let v = chrome_trace(&s.finish());
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let counters: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        for c in &counters {
            assert_eq!(c.get("pid").unwrap().as_u64(), Some(PID_CONVERGENCE));
            assert!(c["args"]["value"].as_f64().is_some());
        }
        // The convergence process meta appears exactly once.
        let conv_metas = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("M")
                    && e.get("pid").and_then(Value::as_u64) == Some(PID_CONVERGENCE)
            })
            .count();
        assert_eq!(conv_metas, 2); // process_name + one thread_name
    }

    #[test]
    fn counter_free_logs_emit_no_convergence_process() {
        let v = chrome_trace(&sample_log());
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("pid").and_then(Value::as_u64) != Some(PID_CONVERGENCE)));
    }

    #[test]
    fn string_export_parses_back() {
        let s = chrome_trace_string(&sample_log());
        let v: Value = serde_json::from_str(&s).unwrap();
        assert!(v.get("traceEvents").is_some());
    }
}
