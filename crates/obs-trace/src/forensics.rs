//! Deadline-miss forensics: causal blame attribution.
//!
//! Given a finished [`TraceLog`] and the run's deadline `D`, the
//! analyzer reconstructs the causal path of every *analyzed* item —
//! each completed stream input whose end-to-end latency exceeds
//! `α·D` (misses when `α = 1`, near-misses when `α < 1`) — and
//! attributes its time to per-stage components using the exact
//! enqueued/eligible/consumed/done decomposition carried by
//! [`ItemVisit`](crate::span::ItemVisit):
//!
//! * **enforced wait** — structural delay until the stage's next firing
//!   opportunity (the schedule's `w_i`, or block-fill time for the
//!   monolithic strategy);
//! * **queue wait** — extra firings waited out behind backlogged items
//!   (the empirical `b_i` term);
//! * **service** — the consuming firing itself (`t_i`).
//!
//! Per item, each component's share is its fraction of the item's total
//! attributed time, so the fractions sum to exactly 1 even when lineage
//! fans out across parallel branches. The aggregate report weights each
//! item by how far past the threshold it landed (`latency − α·D`), so a
//! 2× overrun counts twice as much as a 1× overrun and the resulting
//! per-stage fractions still account for 100 % of the analyzed weight.

use crate::span::TraceLog;
use serde::{Deserialize, Serialize};

/// Analyzer knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForensicsConfig {
    /// Analysis threshold as a fraction of the deadline: items with
    /// latency above `alpha · D` are analyzed. `1.0` = misses only;
    /// `0.8` also catches near-misses within 20 % of the deadline.
    pub alpha: f64,
    /// Maximum worst-item exemplars retained in the report.
    pub max_exemplars: usize,
}

impl Default for ForensicsConfig {
    fn default() -> Self {
        ForensicsConfig {
            alpha: 1.0,
            max_exemplars: 5,
        }
    }
}

/// Blame attributed to one pipeline stage, as fractions of the total
/// analyzed overrun weight. Summing every field across all stages of a
/// report yields 1 (when any item was analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageBlame {
    /// Stage index.
    pub stage: u32,
    /// Share attributable to enforced (structural) waiting.
    pub enforced_wait: f64,
    /// Share attributable to queueing behind backlog.
    pub queue_wait: f64,
    /// Share attributable to service time.
    pub service: f64,
}

impl StageBlame {
    /// Total share of this stage across all three components.
    pub fn total(&self) -> f64 {
        self.enforced_wait + self.queue_wait + self.service
    }
}

/// One worst-offender item kept for inspection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Stream input index.
    pub origin: u64,
    /// End-to-end latency.
    pub latency: f64,
    /// `latency − D` (negative for near-misses under `α < 1`).
    pub overrun: f64,
    /// Stage receiving the largest share of this item's time.
    pub worst_stage: u32,
    /// Component of `worst_stage` with the largest share
    /// (`"enforced-wait"`, `"queue-wait"`, or `"service"`).
    pub worst_component: String,
    /// That component's fraction of the item's attributed time.
    pub worst_fraction: f64,
}

/// Aggregated deadline-miss forensics for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlameReport {
    /// Deadline `D` the run was simulated against.
    pub deadline: f64,
    /// Threshold fraction used (see [`ForensicsConfig::alpha`]).
    pub alpha: f64,
    /// Stream inputs that completed.
    pub completed_items: u64,
    /// Stream inputs still unresolved at run end.
    pub dropped_items: u64,
    /// Completed inputs with latency above `deadline` (hard misses).
    pub missed_items: u64,
    /// Completed inputs with latency above `alpha · deadline` — the
    /// population the per-stage fractions describe.
    pub analyzed_items: u64,
    /// Σ max(latency − deadline, 0) over completed items.
    pub total_overrun: f64,
    /// Per-stage blame fractions; all components across all entries sum
    /// to 1 when `analyzed_items > 0`.
    pub stages: Vec<StageBlame>,
    /// Worst analyzed items, sorted by descending latency.
    pub exemplars: Vec<Exemplar>,
}

impl BlameReport {
    /// Sum of every component fraction across all stages — 1.0 (up to
    /// floating-point rounding) when anything was analyzed, else 0.
    pub fn accounted_fraction(&self) -> f64 {
        self.stages.iter().map(StageBlame::total).sum()
    }
}

const COMPONENTS: usize = 3;

/// Run the forensic analysis over `log` for a run with deadline
/// `deadline` (in the same time unit as the trace).
pub fn analyze(log: &TraceLog, deadline: f64, config: &ForensicsConfig) -> BlameReport {
    let threshold = config.alpha * deadline;

    // Per-origin component sums, flat-indexed as stage * 3 + component.
    // Origins are item indices; visits for one origin are contiguous in
    // neither order, so accumulate into a map keyed by origin.
    let mut max_stage: u32 = 0;
    let mut per_origin: std::collections::HashMap<u64, Vec<f64>> = std::collections::HashMap::new();
    for v in &log.visits {
        max_stage = max_stage.max(v.stage);
        let sums = per_origin.entry(v.origin).or_default();
        let need = (v.stage as usize + 1) * COMPONENTS;
        if sums.len() < need {
            sums.resize(need, 0.0);
        }
        let base = v.stage as usize * COMPONENTS;
        sums[base] += v.enforced_wait();
        sums[base + 1] += v.queue_wait();
        sums[base + 2] += v.service();
    }

    let n_stages = per_origin
        .values()
        .map(|s| s.len() / COMPONENTS)
        .max()
        .unwrap_or(0);
    let mut weights = vec![0.0f64; n_stages * COMPONENTS];
    let mut total_weight = 0.0f64;

    let mut completed = 0u64;
    let mut dropped = 0u64;
    let mut missed = 0u64;
    let mut analyzed = 0u64;
    let mut total_overrun = 0.0f64;
    let mut exemplars: Vec<Exemplar> = Vec::new();

    for f in &log.fates {
        let Some(latency) = f.latency() else {
            dropped += 1;
            continue;
        };
        completed += 1;
        if latency > deadline {
            missed += 1;
            total_overrun += latency - deadline;
        }
        if latency <= threshold {
            continue;
        }
        analyzed += 1;
        let weight = latency - threshold;
        let Some(sums) = per_origin.get(&f.origin) else {
            continue;
        };
        let item_total: f64 = sums.iter().sum();
        if item_total <= 0.0 {
            continue;
        }
        for (slot, component) in sums.iter().enumerate() {
            weights[slot] += weight * component / item_total;
        }
        total_weight += weight;

        // Exemplar bookkeeping: find the item's dominant component.
        let (worst_slot, worst_val) = sums.iter().enumerate().fold(
            (0, f64::MIN),
            |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc },
        );
        exemplars.push(Exemplar {
            origin: f.origin,
            latency,
            overrun: latency - deadline,
            worst_stage: (worst_slot / COMPONENTS) as u32,
            worst_component: match worst_slot % COMPONENTS {
                0 => "enforced-wait",
                1 => "queue-wait",
                _ => "service",
            }
            .to_string(),
            worst_fraction: worst_val / item_total,
        });
    }

    // NaN latencies (corrupt trace input) are surfaced at the head of
    // the descending total order rather than panicking mid-forensics.
    exemplars.sort_by(|a, b| b.latency.total_cmp(&a.latency));
    exemplars.truncate(config.max_exemplars);

    let stages: Vec<StageBlame> = if total_weight > 0.0 {
        (0..n_stages)
            .map(|s| StageBlame {
                stage: s as u32,
                enforced_wait: weights[s * COMPONENTS] / total_weight,
                queue_wait: weights[s * COMPONENTS + 1] / total_weight,
                service: weights[s * COMPONENTS + 2] / total_weight,
            })
            .collect()
    } else {
        Vec::new()
    };

    BlameReport {
        deadline,
        alpha: config.alpha,
        completed_items: completed,
        dropped_items: dropped,
        missed_items: missed,
        analyzed_items: analyzed,
        total_overrun,
        stages,
        exemplars,
    }
}

/// Human-readable rendering of a blame report.
pub fn render_blame(report: &BlameReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "deadline-miss forensics (D = {:.0}, threshold = {:.2}·D)\n",
        report.deadline, report.alpha
    ));
    out.push_str(&format!(
        "completed {}  dropped {}  missed {}  analyzed {}  total overrun {:.0}\n",
        report.completed_items,
        report.dropped_items,
        report.missed_items,
        report.analyzed_items,
        report.total_overrun
    ));
    if report.stages.is_empty() {
        out.push_str("no items above threshold — nothing to blame\n");
        return out;
    }
    out.push_str("stage   enforced-wait   queue-wait   service     total\n");
    for s in &report.stages {
        out.push_str(&format!(
            "{:>5}   {:>12.1}%   {:>9.1}%   {:>6.1}%   {:>6.1}%\n",
            s.stage,
            s.enforced_wait * 100.0,
            s.queue_wait * 100.0,
            s.service * 100.0,
            s.total() * 100.0
        ));
    }
    out.push_str(&format!(
        "accounted: {:.1}% of analyzed overrun weight\n",
        report.accounted_fraction() * 100.0
    ));
    for e in &report.exemplars {
        out.push_str(&format!(
            "  worst: item {} latency {:.0} (overrun {:+.0}) — {:.0}% in stage {} {}\n",
            e.origin,
            e.latency,
            e.overrun,
            e.worst_fraction * 100.0,
            e.worst_stage,
            e.worst_component
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ItemFate, ItemVisit, SpanSink};

    fn visit(
        origin: u64,
        stage: u32,
        enq: f64,
        eligible: f64,
        consumed: f64,
        done: f64,
    ) -> ItemVisit {
        ItemVisit {
            origin,
            stage,
            enqueued: enq,
            eligible,
            consumed,
            done,
        }
    }

    /// Two items through two stages; one misses. Blame fractions must
    /// sum to 1 and point at the stage that actually held the item.
    #[test]
    fn blame_sums_to_one_and_points_at_culprit() {
        let mut s = SpanSink::with_defaults();
        // Item 0: fast path, total 20 < D.
        s.visit(visit(0, 0, 0.0, 0.0, 0.0, 10.0));
        s.visit(visit(0, 1, 10.0, 10.0, 10.0, 20.0));
        s.fate(ItemFate {
            origin: 0,
            arrival: 0.0,
            completion: Some(20.0),
        });
        // Item 1: stage 1 queue-wait dominates, total 100 > D.
        s.visit(visit(1, 0, 0.0, 0.0, 0.0, 10.0));
        s.visit(visit(1, 1, 10.0, 20.0, 90.0, 100.0));
        s.fate(ItemFate {
            origin: 1,
            arrival: 0.0,
            completion: Some(100.0),
        });
        let log = s.finish();
        let report = analyze(&log, 50.0, &ForensicsConfig::default());

        assert_eq!(report.completed_items, 2);
        assert_eq!(report.missed_items, 1);
        assert_eq!(report.analyzed_items, 1);
        assert!((report.total_overrun - 50.0).abs() < 1e-12);
        assert!((report.accounted_fraction() - 1.0).abs() < 1e-12);

        // Item 1's decomposition: stage0 service 10, stage1 enforced 10,
        // queue 70, service 10 — queue-wait at stage 1 dominates.
        let s1 = report.stages.iter().find(|s| s.stage == 1).unwrap();
        assert!((s1.queue_wait - 0.7).abs() < 1e-12);
        assert!((s1.enforced_wait - 0.1).abs() < 1e-12);

        assert_eq!(report.exemplars.len(), 1);
        assert_eq!(report.exemplars[0].origin, 1);
        assert_eq!(report.exemplars[0].worst_stage, 1);
        assert_eq!(report.exemplars[0].worst_component, "queue-wait");
    }

    #[test]
    fn alpha_widens_the_analyzed_population() {
        let mut s = SpanSink::with_defaults();
        for (origin, done) in [(0u64, 40.0f64), (1, 45.0), (2, 60.0)] {
            s.visit(visit(origin, 0, 0.0, 0.0, 0.0, done));
            s.fate(ItemFate {
                origin,
                arrival: 0.0,
                completion: Some(done),
            });
        }
        let log = s.finish();
        let strict = analyze(&log, 50.0, &ForensicsConfig::default());
        assert_eq!(strict.analyzed_items, 1);
        let near = analyze(
            &log,
            50.0,
            &ForensicsConfig {
                alpha: 0.8,
                max_exemplars: 5,
            },
        );
        // Threshold 40: items with latency 45 and 60 analyzed.
        assert_eq!(near.analyzed_items, 2);
        assert_eq!(near.missed_items, 1);
        assert!((near.accounted_fraction() - 1.0).abs() < 1e-12);
        // Exemplars sorted worst-first.
        assert_eq!(near.exemplars[0].origin, 2);
    }

    /// Regression: one NaN completion time in the trace used to abort
    /// the entire forensics run at the exemplar sort. The NaN item is
    /// now carried through (latency preserved as NaN, surfaced first in
    /// the descending order) and the finite items still get analyzed.
    #[test]
    fn nan_latency_is_reported_not_fatal() {
        let mut s = SpanSink::with_defaults();
        s.visit(visit(0, 0, 0.0, 0.0, 0.0, 100.0));
        s.fate(ItemFate {
            origin: 0,
            arrival: 0.0,
            completion: Some(100.0),
        });
        s.visit(visit(1, 0, 0.0, 0.0, 0.0, f64::NAN));
        s.fate(ItemFate {
            origin: 1,
            arrival: 0.0,
            completion: Some(f64::NAN),
        });
        let log = s.finish();
        let report = analyze(&log, 50.0, &ForensicsConfig::default());
        assert_eq!(report.completed_items, 2);
        assert!(report.exemplars.iter().any(|e| e.origin == 0));
        let corrupt = report.exemplars.iter().find(|e| e.origin == 1).unwrap();
        assert!(corrupt.latency.is_nan());
    }

    #[test]
    fn weighting_prefers_larger_overruns() {
        let mut s = SpanSink::with_defaults();
        // Item 0 misses barely (latency 60, weight 10), all service in stage 0.
        s.visit(visit(0, 0, 0.0, 0.0, 0.0, 60.0));
        s.fate(ItemFate {
            origin: 0,
            arrival: 0.0,
            completion: Some(60.0),
        });
        // Item 1 misses badly (latency 90, weight 40), all queue in stage 1.
        s.visit(visit(1, 1, 0.0, 0.0, 90.0, 90.0));
        s.fate(ItemFate {
            origin: 1,
            arrival: 0.0,
            completion: Some(90.0),
        });
        let log = s.finish();
        let report = analyze(&log, 50.0, &ForensicsConfig::default());
        let s0 = report.stages.iter().find(|s| s.stage == 0).unwrap();
        let s1 = report.stages.iter().find(|s| s.stage == 1).unwrap();
        assert!((s0.service - 0.2).abs() < 1e-12, "10/50 of the weight");
        assert!((s1.queue_wait - 0.8).abs() < 1e-12, "40/50 of the weight");
        assert!((report.accounted_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drops_counted_but_not_blamed() {
        let mut s = SpanSink::with_defaults();
        s.fate(ItemFate {
            origin: 0,
            arrival: 0.0,
            completion: None,
        });
        let log = s.finish();
        let report = analyze(&log, 50.0, &ForensicsConfig::default());
        assert_eq!(report.dropped_items, 1);
        assert_eq!(report.analyzed_items, 0);
        assert!(report.stages.is_empty());
        assert_eq!(report.accounted_fraction(), 0.0);
    }

    #[test]
    fn render_is_stable_and_mentions_stages() {
        let mut s = SpanSink::with_defaults();
        s.visit(visit(0, 0, 0.0, 10.0, 30.0, 60.0));
        s.fate(ItemFate {
            origin: 0,
            arrival: 0.0,
            completion: Some(60.0),
        });
        let log = s.finish();
        let report = analyze(&log, 50.0, &ForensicsConfig::default());
        let text = render_blame(&report);
        assert!(text.contains("deadline-miss forensics"));
        assert!(text.contains("stage"));
        assert!(text.contains("worst: item 0"));
        let empty = analyze(&TraceLog::default(), 50.0, &ForensicsConfig::default());
        assert!(render_blame(&empty).contains("nothing to blame"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut s = SpanSink::with_defaults();
        s.visit(visit(0, 0, 0.0, 10.0, 30.0, 60.0));
        s.fate(ItemFate {
            origin: 0,
            arrival: 0.0,
            completion: Some(60.0),
        });
        let report = analyze(&s.finish(), 50.0, &ForensicsConfig::default());
        let v = serde_json::to_value(&report).unwrap();
        let back: BlameReport = serde_json::from_value(&v).unwrap();
        assert_eq!(back, report);
    }
}
