//! # obs-trace — causal tracing and deadline-miss forensics
//!
//! The workspace's observability layer (`des::obs`) reports *aggregates*:
//! histograms, counters, quantiles. This crate records *causality* — the
//! per-firing, per-item, per-solver-iteration spans that let a developer
//! answer "which stage caused this deadline miss?" rather than "how many
//! misses were there?".
//!
//! Three pieces:
//!
//! * [`span`] — a zero-dependency span sink. Simulators and solvers
//!   thread an `Option<&mut SpanSink>` through their hot paths; when the
//!   option is `None` each hook costs one untaken branch, the same
//!   contract as `des::obs::ObsSink`. The sink records generic
//!   enter/exit spans (with nesting), instant events, and two structured
//!   record kinds the forensics layer consumes: per-item stage visits
//!   (queue wait / enforced wait / service decomposition) and per-item
//!   fates (arrival → completion or drop).
//! * [`chrome`] — export a finished [`span::TraceLog`] as Chrome Trace
//!   Event JSON. The output opens directly in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev): stages, item lifelines, and
//!   solver activity land on separate process tracks.
//! * [`forensics`] — reconstruct the causal path of every missed or
//!   near-missed item (latency above a configurable `α·D` threshold) and
//!   aggregate a per-stage *blame report*: what fraction of the total
//!   overrun is attributable to each stage's queueing backlog, enforced
//!   wait, and service time. Per-item fractions always sum to 1, so the
//!   report accounts for 100 % of the overrun it analyzes.
//!
//! Timestamps are `f64` simulated cycles (or microseconds for solver
//! spans); the crate deliberately knows nothing about `des::SimTime`,
//! pipelines, or schedules, so every layer of the workspace can emit
//! spans without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod forensics;
pub mod span;

pub use chrome::{chrome_trace, chrome_trace_string};
pub use forensics::{analyze, render_blame, BlameReport, ForensicsConfig, StageBlame};
pub use span::{
    CounterRecord, ItemFate, ItemVisit, SpanRecord, SpanSink, TraceConfig, TraceLog, Track,
    TrackKind,
};
